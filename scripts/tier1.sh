#!/usr/bin/env bash
# Tier-1 gate, provably network-free: the workspace is 100 % path
# dependencies (enforced by tests/hermetic.rs), so everything below runs
# with --offline and CARGO_NET_OFFLINE as a belt-and-braces guarantee.
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release --offline
# --workspace is a superset of the gate's `cargo test -q`: it also runs
# every member crate's unit, integration and doc tests.
cargo test -q --offline --workspace
# Lints are part of the gate: warnings are build breaks.
cargo clippy --offline --workspace --all-targets -- -D warnings
# Bench bodies must at least execute (smoke mode runs each body once
# and measures nothing), so the baseline stays regenerable. The pass
# runs with tracing live so the disabled→enabled flip is exercised in
# CI. The trace summary prints only nonzero metrics, so any
# `*.no_convergence` line means a campaign-level solver failure.
smoke_log="$(mktemp)"
fault_log="$(mktemp)"
fault_clean="$(mktemp -d)"
fault_armed="$(mktemp -d)"
sched_serial="$(mktemp -d)"
sched_two="$(mktemp -d)"
sched_five="$(mktemp -d)"
batch_scalar="$(mktemp -d)"
batch_on="$(mktemp -d)"
serve_dir="$(mktemp -d)"
campaign_dir="$(mktemp -d)"
trap 'rm -f "$smoke_log" "$fault_log"; \
     rm -rf "$fault_clean" "$fault_armed" "$sched_serial" "$sched_two" "$sched_five" \
            "$batch_scalar" "$batch_on" "$serve_dir" "$campaign_dir"' EXIT
RLCKIT_BENCH_SMOKE=1 RLCKIT_TRACE=summary cargo bench --offline --workspace 2>&1 \
  | tee "$smoke_log"
if grep -q '\.no_convergence' "$smoke_log"; then
  echo "tier-1 gate: FAIL — nonzero no_convergence counter in bench smoke" >&2
  exit 1
fi

# Fault-injection smoke: arm deterministic injection (fixed seed, 10 %
# rate) over the Fig. 4-8 campaign grids. Every campaign must complete
# with the retry ladder absorbing every injection — the armed trace
# summary must show a nonzero `*.injected_faults` family and no
# `*.no_convergence` counter — and the emitted CSVs must be
# byte-identical to a clean run of the same bin.
for bin in fig04_lcrit fig05_hopt_ratio fig06_kopt_ratio fig07_delay_ratio fig08_variation; do
  RLCKIT_RESULTS_DIR="$fault_clean" \
    cargo run --release --offline -q -p rlckit-bench --bin "$bin" >/dev/null
  RLCKIT_RESULTS_DIR="$fault_armed" RLCKIT_FAULTS=2001:0.1 RLCKIT_TRACE=summary \
    cargo run --release --offline -q -p rlckit-bench --bin "$bin" >/dev/null 2>"$fault_log"
  if ! grep -q 'injected_faults' "$fault_log"; then
    echo "tier-1 gate: FAIL — $bin took no injected faults (harness disarmed?)" >&2
    exit 1
  fi
  if grep -q '\.no_convergence' "$fault_log"; then
    echo "tier-1 gate: FAIL — $bin surfaced no_convergence under injection" >&2
    exit 1
  fi
  if ! cmp -s "$fault_clean/$bin.csv" "$fault_armed/$bin.csv"; then
    echo "tier-1 gate: FAIL — $bin CSV drifted under fault injection" >&2
    exit 1
  fi
  # Cache liveness: every Fig. 4–8 campaign must take optimizer residual
  # cache hits (the pre-flight warm guarantees ≥ 1 per solve); a silent
  # zero means the hot-path cache has been disconnected.
  if ! grep -q 'optimizer\.cache\.hits' "$fault_log"; then
    echo "tier-1 gate: FAIL — $bin recorded no optimizer cache hits" >&2
    exit 1
  fi
done

# Scheduler identity: campaign CSVs must be byte-identical across the
# serial reference and guided work-stealing execution at two thread
# counts (each `cargo run` is a fresh process, so RLCKIT_THREADS is
# honored under its once-per-process semantics).
for bin in fig04_lcrit fig07_delay_ratio; do
  RLCKIT_RESULTS_DIR="$sched_serial" RLCKIT_THREADS=1 \
    cargo run --release --offline -q -p rlckit-bench --bin "$bin" >/dev/null
  RLCKIT_RESULTS_DIR="$sched_two" RLCKIT_THREADS=2 \
    cargo run --release --offline -q -p rlckit-bench --bin "$bin" >/dev/null
  RLCKIT_RESULTS_DIR="$sched_five" RLCKIT_THREADS=5 \
    cargo run --release --offline -q -p rlckit-bench --bin "$bin" >/dev/null
  for dir in "$sched_two" "$sched_five"; do
    if ! cmp -s "$sched_serial/$bin.csv" "$dir/$bin.csv"; then
      echo "tier-1 gate: FAIL — $bin CSV drifted between serial and guided execution" >&2
      exit 1
    fi
  done
done

# Batch identity: the lockstep structure-of-arrays engine must emit a
# byte-identical campaign CSV to the scalar reference path on the
# standard grids (fig07 runs standard_node_sweep at 25 points — the
# `standard_100nm_25` workload — across all three nodes).
# `RLCKIT_BATCH=off` routes every point through the scalar solver.
RLCKIT_RESULTS_DIR="$batch_scalar" RLCKIT_BATCH=off \
  cargo run --release --offline -q -p rlckit-bench --bin fig07_delay_ratio >/dev/null
RLCKIT_RESULTS_DIR="$batch_on" \
  cargo run --release --offline -q -p rlckit-bench --bin fig07_delay_ratio >/dev/null
if ! cmp -s "$batch_scalar/fig07_delay_ratio.csv" "$batch_on/fig07_delay_ratio.csv"; then
  echo "tier-1 gate: FAIL — fig07 CSV drifted between scalar and batched engines" >&2
  exit 1
fi

# Serving smoke: boot the daemon twice over one seeded loadgen mix
# (cold boot saves a warm-start snapshot; the second boot reloads it).
# Responses must be byte-identical across the runs once the documented
# `*_ns` wall-clock fields are stripped, the drained flight-recorder
# event streams must be byte-identical once `t_ns` is stripped, the
# trailing stats barrier must show memo hits, and the solver must never
# fail to converge while serving.
strip_ns() { sed 's/"[a-z0-9_]*_ns":[0-9]*,\{0,1\}//g' "$1"; }
cargo run --release --offline -q -p rlckit-bench --bin loadgen -- --emit=120 \
  > "$serve_dir/mix.jsonl"
for run in a b; do
  RLCKIT_TRACE=summary cargo run --release --offline -q -p rlckit-serve -- \
    --stdin --workers 4 --warm-grid 5 --snapshot "$serve_dir/memo.snapshot" \
    --trace-events "$serve_dir/$run.events.jsonl" \
    < "$serve_dir/mix.jsonl" > "$serve_dir/$run.out" 2> "$serve_dir/$run.log"
  if grep -q '\.no_convergence' "$serve_dir/$run.log"; then
    echo "tier-1 gate: FAIL — rlckit-serve surfaced no_convergence (run $run)" >&2
    exit 1
  fi
done
if ! cmp -s <(strip_ns "$serve_dir/a.out") <(strip_ns "$serve_dir/b.out"); then
  echo "tier-1 gate: FAIL — rlckit-serve responses drifted between two seeded runs" >&2
  exit 1
fi
if ! cmp -s <(strip_ns "$serve_dir/a.events.jsonl") <(strip_ns "$serve_dir/b.events.jsonl"); then
  echo "tier-1 gate: FAIL — flight-recorder event streams drifted between two seeded runs" >&2
  exit 1
fi
if ! grep -q 'warm-started' "$serve_dir/b.log"; then
  echo "tier-1 gate: FAIL — second serve boot did not warm-start from the snapshot" >&2
  exit 1
fi
serve_hits="$(tail -n 1 "$serve_dir/a.out" | grep -o '"hits":[0-9]*' | cut -d: -f2)"
if ! awk -v x="${serve_hits:-0}" 'BEGIN { exit !(x > 0) }'; then
  echo "tier-1 gate: FAIL — serve smoke took no memo hits (stats hits=${serve_hits:-missing})" >&2
  exit 1
fi
# The extended stats response must carry the new observability fields:
# a barrier stats is deterministic, so in_flight is exactly 0, and the
# latency percentiles/uptime must at least be present (values are
# wall-clock and were stripped from the cmp above).
stats_line="$(tail -n 1 "$serve_dir/a.out")"
if ! echo "$stats_line" | grep -q '"in_flight":0'; then
  echo "tier-1 gate: FAIL — barrier stats did not report in_flight=0: $stats_line" >&2
  exit 1
fi
for field in uptime_ns p50_ns p95_ns p99_ns; do
  if ! echo "$stats_line" | grep -q "\"$field\":"; then
    echo "tier-1 gate: FAIL — stats response lost the $field field: $stats_line" >&2
    exit 1
  fi
done

# Trace-op smoke: the live observability snapshot must answer with the
# slowest-requests table and a nonzero drained-event count.
printf '%s\n' \
  '{"id":1,"op":"optimum","node":"100nm","l_nh_mm":1.5}' \
  '{"id":2,"op":"stats"}' \
  '{"id":3,"op":"trace"}' \
  | RLCKIT_TRACE=summary cargo run --release --offline -q -p rlckit-serve -- \
      --stdin --workers 2 > "$serve_dir/trace_op.out" 2>/dev/null
trace_line="$(tail -n 1 "$serve_dir/trace_op.out")"
if ! echo "$trace_line" | grep -q '"op":"trace"'; then
  echo "tier-1 gate: FAIL — trace op got no trace response: $trace_line" >&2
  exit 1
fi
if ! echo "$trace_line" | grep -q '"slowest":\[{"trace_id":'; then
  echo "tier-1 gate: FAIL — trace op reported an empty slow log: $trace_line" >&2
  exit 1
fi
if ! echo "$trace_line" | grep -qE '"events":[1-9]'; then
  echo "tier-1 gate: FAIL — trace op saw no flight-recorder events: $trace_line" >&2
  exit 1
fi

# Traceview smoke: the offline analyzer must parse a real capture, see
# a nonzero event count, and exit 0.
cargo run --release --offline -q -p rlckit-bench --bin rlckit-traceview -- \
  "$serve_dir/a.events.jsonl" > "$serve_dir/traceview.out"
if ! grep -qE '^[1-9][0-9]* events across [1-9]' "$serve_dir/traceview.out"; then
  echo "tier-1 gate: FAIL — rlckit-traceview read no events from the serve capture" >&2
  exit 1
fi
if ! grep -q '^total' "$serve_dir/traceview.out"; then
  echo "tier-1 gate: FAIL — rlckit-traceview printed no total-phase row" >&2
  exit 1
fi

# Concurrent-serving smoke: one daemon, three simultaneous TCP clients
# each replaying its own seeded hot-only mix (on-grid keys only, so no
# session changes the shared memo and even the stats barrier lines are
# reproducible). Every client's concurrent response stream must be
# byte-identical (modulo the documented `*_ns` fields) to replaying the
# same mix alone against the same daemon afterwards, the accept loop
# must survive with zero errors, and nobody may be refused for
# capacity.
cargo run --release --offline -q -p rlckit-serve -- \
  --tcp 127.0.0.1:0 --workers 4 --warm-grid 5 --idle-timeout-secs 30 \
  2> "$serve_dir/tcp.log" &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
  port="$(grep -oE 'listening on 127\.0\.0\.1:[0-9]+' "$serve_dir/tcp.log" \
    | grep -oE '[0-9]+$' || true)"
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "tier-1 gate: FAIL — rlckit-serve --tcp never reported its listening port" >&2
  exit 1
fi
client_pids=()
for i in 1 2 3; do
  cargo run --release --offline -q -p rlckit-bench --bin loadgen -- \
    "--connect=127.0.0.1:$port" --emit=40 --seed=$((9000 + i)) --hot-only \
    > "$serve_dir/client$i.concurrent.out" &
  client_pids+=($!)
done
for pid in "${client_pids[@]}"; do
  if ! wait "$pid"; then
    echo "tier-1 gate: FAIL — a concurrent loadgen client session failed" >&2
    exit 1
  fi
done
for i in 1 2 3; do
  cargo run --release --offline -q -p rlckit-bench --bin loadgen -- \
    "--connect=127.0.0.1:$port" --emit=40 --seed=$((9000 + i)) --hot-only \
    > "$serve_dir/client$i.solo.out"
  if ! cmp -s <(strip_ns "$serve_dir/client$i.concurrent.out") \
              <(strip_ns "$serve_dir/client$i.solo.out"); then
    echo "tier-1 gate: FAIL — client $i's concurrent responses drifted from its solo replay" >&2
    exit 1
  fi
  # Hot-only mix against a 5-point warm grid: the trailing stats
  # barrier must report a miss-free session.
  if ! tail -n 1 "$serve_dir/client$i.concurrent.out" | grep -q '"misses":0'; then
    echo "tier-1 gate: FAIL — client $i's hot-only session took memo misses" >&2
    exit 1
  fi
done
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
if [ "$(grep -c 'closed after' "$serve_dir/tcp.log")" -ne 6 ]; then
  echo "tier-1 gate: FAIL — daemon did not report all 6 client sessions closing" >&2
  cat "$serve_dir/tcp.log" >&2
  exit 1
fi
if grep -q 'accept error' "$serve_dir/tcp.log"; then
  echo "tier-1 gate: FAIL — concurrent smoke took accept errors" >&2
  exit 1
fi
if grep -q 'at capacity' "$serve_dir/tcp.log"; then
  echo "tier-1 gate: FAIL — concurrent smoke refused a client for capacity" >&2
  exit 1
fi

# Campaign supervisor smoke: the standard Fig. 4–8 sweep campaign,
# sharded across three supervised processes with a seeded kill schedule
# armed (every shard crash-loops a few generations before drawing a
# clean run). The supervisor must take at least one relaunch, degrade
# nothing, and the merged CSV must be byte-identical to the
# single-process run of the same campaign. The summary sink prints only
# nonzero counters, so a degraded grep match is a hard failure.
cargo run --release --offline -q -p rlckit-campaign -- solo \
  --dir "$campaign_dir/solo" --out "$campaign_dir/solo.csv" 2>/dev/null
RLCKIT_SHARD_FAULTS=7001:0.2 RLCKIT_TRACE=summary \
  cargo run --release --offline -q -p rlckit-campaign -- run --shards 3 \
  --dir "$campaign_dir/run" --out "$campaign_dir/run.csv" \
  --backoff-ms 5 --poll-ms 5 2> "$campaign_dir/run.log"
if ! grep -q 'campaign\.shard\.relaunched' "$campaign_dir/run.log"; then
  echo "tier-1 gate: FAIL — campaign smoke took no shard relaunches (shard faults disarmed?)" >&2
  exit 1
fi
if grep -q 'campaign\.shard\.degraded' "$campaign_dir/run.log"; then
  echo "tier-1 gate: FAIL — campaign smoke degraded a shard (restart budget too small for the seed?)" >&2
  exit 1
fi
if ! cmp -s "$campaign_dir/solo.csv" "$campaign_dir/run.csv"; then
  echo "tier-1 gate: FAIL — supervised campaign CSV drifted from the single-process run" >&2
  exit 1
fi

# Perf guard on the committed bench baselines: the delay solver must
# hold the paper's ≤4-iteration claim, and the optimizer's engineered
# pre-flight cache hit must still land (exactly one hit per solve on
# the clean path — zero means the cache was disconnected).
bench_metric() { # group name metric
  grep "\"name\":\"$2\"" "results/BENCH_$1.json" \
    | grep -o "\"$3\":[0-9.]*" | cut -d: -f2
}
iters="$(bench_metric delay_solver random_configs iterations_per_solve)"
if ! awk -v x="${iters:-99}" 'BEGIN { exit !(x <= 4.1) }'; then
  echo "tier-1 gate: FAIL — delay solver iterations_per_solve regressed (${iters:-missing} > 4.1)" >&2
  exit 1
fi
hits="$(bench_metric optimizer single_point_250nm cache_hits_per_solve)"
if ! awk -v x="${hits:-0}" 'BEGIN { exit !(x >= 1.0) }'; then
  echo "tier-1 gate: FAIL — optimizer cache hits per solve dropped to ${hits:-0} (< 1)" >&2
  exit 1
fi
# Serving guard (BENCH_serve): the committed hot-mix baseline must show
# the memo absorbing the steady-state load — a warm replay of the
# seeded 64/30/6 hot/noisy/cold mix serves (almost) everything from the
# memo; a sub-0.9 hit rate means quantization or sharding broke.
serve_rate="$(bench_metric serve hot_mix_replay hit_rate)"
if ! awk -v x="${serve_rate:-0}" 'BEGIN { exit !(x > 0.9) }'; then
  echo "tier-1 gate: FAIL — serve hot-mix hit rate ${serve_rate:-missing} <= 0.9" >&2
  exit 1
fi
serve_errors="$(bench_metric serve hot_mix_replay errors)"
if ! awk -v x="${serve_errors:-1}" 'BEGIN { exit !(x == 0) }'; then
  echo "tier-1 gate: FAIL — serve hot-mix baseline recorded ${serve_errors:-missing} errors" >&2
  exit 1
fi
# Field hygiene: the deprecated log₂-bucket p95 column is retired; the
# ns headline must carry the latency baseline on its own.
if grep -q "p95_latency_log2_ns" results/BENCH_serve.json; then
  echo "tier-1 gate: FAIL — deprecated p95_latency_log2_ns column resurfaced in BENCH_serve.json" >&2
  exit 1
fi
serve_p95="$(bench_metric serve hot_mix_replay p95_latency_ns)"
if ! awk -v x="${serve_p95:-0}" 'BEGIN { exit !(x > 0) }'; then
  echo "tier-1 gate: FAIL — BENCH_serve.json lost its p95_latency_ns column" >&2
  exit 1
fi
# Eviction guard (BENCH_serve eviction_churn): under multi-connection
# hot + one-shot-cold churn against a deliberately small memo,
# promote-on-hit LRU must hold the warm grid (> 0.9 hit rate on hot
# requests) while FIFO — whose oldest-first victims are exactly the
# preloaded warm entries — must be measurably worse on the
# byte-identical workload. Both rates come from the committed baseline.
lru_rate="$(bench_metric serve eviction_churn lru_warm_hit_rate)"
fifo_rate="$(bench_metric serve eviction_churn fifo_warm_hit_rate)"
if ! awk -v x="${lru_rate:-0}" 'BEGIN { exit !(x > 0.9) }'; then
  echo "tier-1 gate: FAIL — LRU warm-grid hit rate ${lru_rate:-missing} <= 0.9 under churn" >&2
  exit 1
fi
if ! awk -v l="${lru_rate:-0}" -v f="${fifo_rate:-1}" 'BEGIN { exit !(f < l) }'; then
  echo "tier-1 gate: FAIL — FIFO (${fifo_rate:-missing}) did not degrade vs LRU (${lru_rate:-missing}) under churn" >&2
  exit 1
fi
# Concurrent-throughput guard (BENCH_serve concurrent_replay):
# cores-gated like the other scaling assertions — on ≥2 CPUs the
# 4-session shared-pool replay must out-serve the solo session's qps;
# a 1-CPU recording only asserts the entry exists.
cc_cores="$(bench_metric serve concurrent_replay cores)"
cc_qps="$(bench_metric serve concurrent_replay qps)"
if ! awk -v x="${cc_qps:-0}" 'BEGIN { exit !(x > 0) }'; then
  echo "tier-1 gate: FAIL — BENCH_serve.json lost its concurrent_replay qps column" >&2
  exit 1
fi
if awk -v c="${cc_cores:-1}" 'BEGIN { exit !(c >= 2) }'; then
  solo_qps="$(bench_metric serve hot_mix_replay qps)"
  if ! awk -v c="${cc_qps:-0}" -v s="${solo_qps:-0}" 'BEGIN { exit !(c > s) }'; then
    echo "tier-1 gate: FAIL — concurrent qps ${cc_qps:-missing} <= solo qps ${solo_qps:-missing} on ${cc_cores} CPUs" >&2
    exit 1
  fi
else
  echo "tier-1 gate: SKIP — concurrent-vs-solo qps assertion (BENCH_serve recorded on ${cc_cores:-1} CPU)"
fi
# Flight-recorder budget (BENCH_trace_overhead): the disabled-path
# `event!` must stay one relaxed load — a committed median above 25 ns
# means someone put work (a clock read, an allocation, a lock) in front
# of the enabled check, which taxes every request of every un-traced
# run.
event_off="$(bench_metric trace_overhead event_record_disabled median)"
if ! awk -v x="${event_off:-99}" 'BEGIN { exit !(x <= 25.0) }'; then
  echo "tier-1 gate: FAIL — disabled-path event record costs ${event_off:-missing} ns (> 25)" >&2
  exit 1
fi
# Batch-engine guards (BENCH_batch): the serial lockstep win must hold
# on any machine; the ≥2× campaign target (batched columns under guided
# threads vs the scalar serial PR 5 path) additionally needs real
# parallelism, so it is asserted only when the committed JSON was
# recorded with ≥2 CPUs (the speedup entries carry a `cores` field).
floor="$(bench_metric batch optimize_batch_speedup median)"
if ! awk -v x="${floor:-0}" 'BEGIN { exit !(x >= 1.05) }'; then
  echo "tier-1 gate: FAIL — serial batch speedup regressed (${floor:-missing} < 1.05)" >&2
  exit 1
fi
batch_cores="$(bench_metric batch sweep_campaign_speedup cores)"
if awk -v c="${batch_cores:-1}" 'BEGIN { exit !(c >= 2) }'; then
  campaign="$(bench_metric batch sweep_campaign_speedup median)"
  if ! awk -v x="${campaign:-0}" 'BEGIN { exit !(x >= 2.0) }'; then
    echo "tier-1 gate: FAIL — batched campaign speedup ${campaign:-missing} < 2.0 on ${batch_cores} CPUs" >&2
    exit 1
  fi
else
  echo "tier-1 gate: SKIP — BENCH_batch ≥2× campaign assertion (baseline recorded on ${batch_cores:-1} CPU; serial floor ${floor}x enforced instead)"
fi
# Parallel-speedup guard (BENCH_sweeps): meaningful only when the
# recording machine had ≥2 CPUs — a single-CPU recording bakes in ~1×
# numbers that say nothing about the scheduler.
sweep_cores="$(bench_metric sweeps campaign_sweep_speedup cores)"
if awk -v c="${sweep_cores:-1}" 'BEGIN { exit !(c >= 2) }'; then
  par="$(bench_metric sweeps campaign_sweep_speedup median)"
  if ! awk -v x="${par:-0}" 'BEGIN { exit !(x >= 1.3) }'; then
    echo "tier-1 gate: FAIL — campaign parallel speedup ${par:-missing} < 1.3 on ${sweep_cores} CPUs" >&2
    exit 1
  fi
else
  echo "tier-1 gate: SKIP — campaign parallel-speedup assertion (BENCH_sweeps recorded on ${sweep_cores:-1} CPU)"
fi
# Campaign shard-scaling guard (BENCH_campaign): a supervised
# multi-process campaign only beats the in-process solo run when the
# recording machine had ≥2 CPUs — a 1-CPU baseline measures pure
# supervision overhead, so only the presence of the solo baseline is
# enforced there (the byte-identity smoke above covers correctness).
camp_cores="$(bench_metric campaign shard_scaling_2 cores)"
if awk -v c="${camp_cores:-1}" 'BEGIN { exit !(c >= 2) }'; then
  camp="$(bench_metric campaign shard_scaling_2 median)"
  if ! awk -v x="${camp:-0}" 'BEGIN { exit !(x >= 1.2) }'; then
    echo "tier-1 gate: FAIL — 2-shard campaign speedup ${camp:-missing} < 1.2 on ${camp_cores} CPUs" >&2
    exit 1
  fi
else
  camp_solo="$(bench_metric campaign solo_100nm_25 median)"
  if ! awk -v x="${camp_solo:-0}" 'BEGIN { exit !(x > 0) }'; then
    echo "tier-1 gate: FAIL — BENCH_campaign.json lost its solo baseline" >&2
    exit 1
  fi
  echo "tier-1 gate: SKIP — BENCH_campaign shard-scaling assertion (baseline recorded on ${camp_cores:-1} CPU)"
fi
# Closed-form bins have no solver in the loop; arming must be harmless.
RLCKIT_RESULTS_DIR="$fault_armed" RLCKIT_FAULTS=2001:0.1 \
  cargo run --release --offline -q -p rlckit-bench --bin table1 >/dev/null

echo "tier-1 gate: OK"
