#!/usr/bin/env bash
# Tier-1 gate, provably network-free: the workspace is 100 % path
# dependencies (enforced by tests/hermetic.rs), so everything below runs
# with --offline and CARGO_NET_OFFLINE as a belt-and-braces guarantee.
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release --offline
# --workspace is a superset of the gate's `cargo test -q`: it also runs
# every member crate's unit, integration and doc tests.
cargo test -q --offline --workspace
# Lints are part of the gate: warnings are build breaks.
cargo clippy --offline --workspace --all-targets -- -D warnings
# Bench bodies must at least execute (smoke mode runs each body once
# and measures nothing), so the baseline stays regenerable. The pass
# runs with tracing live so the disabled→enabled flip is exercised in
# CI. The trace summary prints only nonzero metrics, so any
# `*.no_convergence` line means a campaign-level solver failure.
smoke_log="$(mktemp)"
fault_log="$(mktemp)"
fault_clean="$(mktemp -d)"
fault_armed="$(mktemp -d)"
sched_serial="$(mktemp -d)"
sched_two="$(mktemp -d)"
sched_five="$(mktemp -d)"
trap 'rm -f "$smoke_log" "$fault_log"; \
     rm -rf "$fault_clean" "$fault_armed" "$sched_serial" "$sched_two" "$sched_five"' EXIT
RLCKIT_BENCH_SMOKE=1 RLCKIT_TRACE=summary cargo bench --offline --workspace 2>&1 \
  | tee "$smoke_log"
if grep -q '\.no_convergence' "$smoke_log"; then
  echo "tier-1 gate: FAIL — nonzero no_convergence counter in bench smoke" >&2
  exit 1
fi

# Fault-injection smoke: arm deterministic injection (fixed seed, 10 %
# rate) over the Fig. 4-8 campaign grids. Every campaign must complete
# with the retry ladder absorbing every injection — the armed trace
# summary must show a nonzero `*.injected_faults` family and no
# `*.no_convergence` counter — and the emitted CSVs must be
# byte-identical to a clean run of the same bin.
for bin in fig04_lcrit fig05_hopt_ratio fig06_kopt_ratio fig07_delay_ratio fig08_variation; do
  RLCKIT_RESULTS_DIR="$fault_clean" \
    cargo run --release --offline -q -p rlckit-bench --bin "$bin" >/dev/null
  RLCKIT_RESULTS_DIR="$fault_armed" RLCKIT_FAULTS=2001:0.1 RLCKIT_TRACE=summary \
    cargo run --release --offline -q -p rlckit-bench --bin "$bin" >/dev/null 2>"$fault_log"
  if ! grep -q 'injected_faults' "$fault_log"; then
    echo "tier-1 gate: FAIL — $bin took no injected faults (harness disarmed?)" >&2
    exit 1
  fi
  if grep -q '\.no_convergence' "$fault_log"; then
    echo "tier-1 gate: FAIL — $bin surfaced no_convergence under injection" >&2
    exit 1
  fi
  if ! cmp -s "$fault_clean/$bin.csv" "$fault_armed/$bin.csv"; then
    echo "tier-1 gate: FAIL — $bin CSV drifted under fault injection" >&2
    exit 1
  fi
  # Cache liveness: every Fig. 4–8 campaign must take optimizer residual
  # cache hits (the pre-flight warm guarantees ≥ 1 per solve); a silent
  # zero means the hot-path cache has been disconnected.
  if ! grep -q 'optimizer\.cache\.hits' "$fault_log"; then
    echo "tier-1 gate: FAIL — $bin recorded no optimizer cache hits" >&2
    exit 1
  fi
done

# Scheduler identity: campaign CSVs must be byte-identical across the
# serial reference and guided work-stealing execution at two thread
# counts (each `cargo run` is a fresh process, so RLCKIT_THREADS is
# honored under its once-per-process semantics).
for bin in fig04_lcrit fig07_delay_ratio; do
  RLCKIT_RESULTS_DIR="$sched_serial" RLCKIT_THREADS=1 \
    cargo run --release --offline -q -p rlckit-bench --bin "$bin" >/dev/null
  RLCKIT_RESULTS_DIR="$sched_two" RLCKIT_THREADS=2 \
    cargo run --release --offline -q -p rlckit-bench --bin "$bin" >/dev/null
  RLCKIT_RESULTS_DIR="$sched_five" RLCKIT_THREADS=5 \
    cargo run --release --offline -q -p rlckit-bench --bin "$bin" >/dev/null
  for dir in "$sched_two" "$sched_five"; do
    if ! cmp -s "$sched_serial/$bin.csv" "$dir/$bin.csv"; then
      echo "tier-1 gate: FAIL — $bin CSV drifted between serial and guided execution" >&2
      exit 1
    fi
  done
done

# Perf guard on the committed bench baselines: the delay solver must
# hold the paper's ≤4-iteration claim, and the optimizer's engineered
# pre-flight cache hit must still land (exactly one hit per solve on
# the clean path — zero means the cache was disconnected).
bench_metric() { # group name metric
  grep "\"name\":\"$2\"" "results/BENCH_$1.json" \
    | grep -o "\"$3\":[0-9.]*" | cut -d: -f2
}
iters="$(bench_metric delay_solver random_configs iterations_per_solve)"
if ! awk -v x="${iters:-99}" 'BEGIN { exit !(x <= 4.1) }'; then
  echo "tier-1 gate: FAIL — delay solver iterations_per_solve regressed (${iters:-missing} > 4.1)" >&2
  exit 1
fi
hits="$(bench_metric optimizer single_point_250nm cache_hits_per_solve)"
if ! awk -v x="${hits:-0}" 'BEGIN { exit !(x >= 1.0) }'; then
  echo "tier-1 gate: FAIL — optimizer cache hits per solve dropped to ${hits:-0} (< 1)" >&2
  exit 1
fi
# Closed-form bins have no solver in the loop; arming must be harmless.
RLCKIT_RESULTS_DIR="$fault_armed" RLCKIT_FAULTS=2001:0.1 \
  cargo run --release --offline -q -p rlckit-bench --bin table1 >/dev/null

echo "tier-1 gate: OK"
