#!/usr/bin/env bash
# Tier-1 gate, provably network-free: the workspace is 100 % path
# dependencies (enforced by tests/hermetic.rs), so everything below runs
# with --offline and CARGO_NET_OFFLINE as a belt-and-braces guarantee.
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release --offline
# --workspace is a superset of the gate's `cargo test -q`: it also runs
# every member crate's unit, integration and doc tests.
cargo test -q --offline --workspace
# Lints are part of the gate: warnings are build breaks.
cargo clippy --offline --workspace --all-targets -- -D warnings
# Bench bodies must at least execute (smoke mode runs each body once
# and measures nothing), so the baseline stays regenerable. The pass
# runs with tracing live so the disabled→enabled flip is exercised in
# CI. The trace summary prints only nonzero metrics, so any
# `*.no_convergence` line means a campaign-level solver failure.
smoke_log="$(mktemp)"
trap 'rm -f "$smoke_log"' EXIT
RLCKIT_BENCH_SMOKE=1 RLCKIT_TRACE=summary cargo bench --offline --workspace 2>&1 \
  | tee "$smoke_log"
if grep -q '\.no_convergence' "$smoke_log"; then
  echo "tier-1 gate: FAIL — nonzero no_convergence counter in bench smoke" >&2
  exit 1
fi

echo "tier-1 gate: OK"
