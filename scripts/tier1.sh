#!/usr/bin/env bash
# Tier-1 gate, provably network-free: the workspace is 100 % path
# dependencies (enforced by tests/hermetic.rs), so everything below runs
# with --offline and CARGO_NET_OFFLINE as a belt-and-braces guarantee.
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release --offline
# --workspace is a superset of the gate's `cargo test -q`: it also runs
# every member crate's unit, integration and doc tests.
cargo test -q --offline --workspace
# Lints are part of the gate: warnings are build breaks.
cargo clippy --offline --workspace --all-targets -- -D warnings
# Bench bodies must at least execute (smoke mode runs each body once
# and measures nothing), so the baseline stays regenerable. The pass
# runs with tracing live so the disabled→enabled flip is exercised in
# CI. The trace summary prints only nonzero metrics, so any
# `*.no_convergence` line means a campaign-level solver failure.
smoke_log="$(mktemp)"
fault_log="$(mktemp)"
fault_clean="$(mktemp -d)"
fault_armed="$(mktemp -d)"
trap 'rm -f "$smoke_log" "$fault_log"; rm -rf "$fault_clean" "$fault_armed"' EXIT
RLCKIT_BENCH_SMOKE=1 RLCKIT_TRACE=summary cargo bench --offline --workspace 2>&1 \
  | tee "$smoke_log"
if grep -q '\.no_convergence' "$smoke_log"; then
  echo "tier-1 gate: FAIL — nonzero no_convergence counter in bench smoke" >&2
  exit 1
fi

# Fault-injection smoke: arm deterministic injection (fixed seed, 10 %
# rate) over the Fig. 4-8 campaign grids. Every campaign must complete
# with the retry ladder absorbing every injection — the armed trace
# summary must show a nonzero `*.injected_faults` family and no
# `*.no_convergence` counter — and the emitted CSVs must be
# byte-identical to a clean run of the same bin.
for bin in fig04_lcrit fig05_hopt_ratio fig06_kopt_ratio fig07_delay_ratio fig08_variation; do
  RLCKIT_RESULTS_DIR="$fault_clean" \
    cargo run --release --offline -q -p rlckit-bench --bin "$bin" >/dev/null
  RLCKIT_RESULTS_DIR="$fault_armed" RLCKIT_FAULTS=2001:0.1 RLCKIT_TRACE=summary \
    cargo run --release --offline -q -p rlckit-bench --bin "$bin" >/dev/null 2>"$fault_log"
  if ! grep -q 'injected_faults' "$fault_log"; then
    echo "tier-1 gate: FAIL — $bin took no injected faults (harness disarmed?)" >&2
    exit 1
  fi
  if grep -q '\.no_convergence' "$fault_log"; then
    echo "tier-1 gate: FAIL — $bin surfaced no_convergence under injection" >&2
    exit 1
  fi
  if ! cmp -s "$fault_clean/$bin.csv" "$fault_armed/$bin.csv"; then
    echo "tier-1 gate: FAIL — $bin CSV drifted under fault injection" >&2
    exit 1
  fi
done
# Closed-form bins have no solver in the loop; arming must be harmless.
RLCKIT_RESULTS_DIR="$fault_armed" RLCKIT_FAULTS=2001:0.1 \
  cargo run --release --offline -q -p rlckit-bench --bin table1 >/dev/null

echo "tier-1 gate: OK"
