#!/usr/bin/env bash
# Tier-1 gate, provably network-free: the workspace is 100 % path
# dependencies (enforced by tests/hermetic.rs), so everything below runs
# with --offline and CARGO_NET_OFFLINE as a belt-and-braces guarantee.
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release --offline
# --workspace is a superset of the gate's `cargo test -q`: it also runs
# every member crate's unit, integration and doc tests.
cargo test -q --offline --workspace
# Lints are part of the gate: warnings are build breaks.
cargo clippy --offline --workspace --all-targets -- -D warnings
# Bench bodies must at least execute (smoke mode runs each body once
# and measures nothing), so the baseline stays regenerable.
RLCKIT_BENCH_SMOKE=1 cargo bench --offline --workspace

echo "tier-1 gate: OK"
