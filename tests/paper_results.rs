//! Integration tests pinning the paper's headline quantitative results,
//! spanning every crate in the workspace. EXPERIMENTS.md records the
//! same numbers with commentary.

use rlckit::elmore::rc_optimum;
use rlckit::optimizer::{optimize_rlc, OptimizerOptions};
use rlckit::sweeps::{delay_ratio_series, standard_node_sweep, SweepPoint};
use rlckit_tech::TechNode;
use rlckit_tline::LineRlc;
use rlckit_units::HenriesPerMeter;

/// Table 1: the derived RC-optimum columns for both nodes.
#[test]
fn table1_derived_columns() {
    let cases = [
        (TechNode::nm250(), 14.4e-3, 578.0, 305.17e-12),
        (TechNode::nm100(), 11.1e-3, 528.0, 105.94e-12),
    ];
    for (node, h, k, tau) in cases {
        let opt = rc_optimum(&node.line(), &node.driver());
        assert!(
            (opt.segment_length.get() - h).abs() / h < 5e-3,
            "{}: h {} vs {}",
            node.name(),
            opt.segment_length.get(),
            h
        );
        assert!(
            (opt.repeater_size - k).abs() / k < 5e-3,
            "{}: k {} vs {}",
            node.name(),
            opt.repeater_size,
            k
        );
        assert!(
            (opt.segment_delay.get() - tau).abs() / tau < 5e-3,
            "{}: tau {} vs {}",
            node.name(),
            opt.segment_delay.get(),
            tau
        );
    }
}

/// Fig. 7: optimized delay ratio reaches ≈2× (250 nm) and ≈3–3.5×
/// (100 nm) at the top of the sweep, and the 100 nm curve dominates.
#[test]
fn fig7_endpoints() {
    let end = |node: &TechNode| {
        delay_ratio_series(&standard_node_sweep(node, 8).expect("sweep"))
            .last()
            .expect("points")
            .1
    };
    let e250 = end(&TechNode::nm250());
    let e100 = end(&TechNode::nm100());
    assert!((1.7..2.4).contains(&e250), "250nm: {e250}");
    assert!((2.6..3.6).contains(&e100), "100nm: {e100}");
    assert!(e100 > e250);
}

/// Fig. 8: worst-case penalty of the RC design point is single-digit to
/// low-teens percent, and larger at 100 nm than at 250 nm (paper: 6 %
/// and 12 %).
#[test]
fn fig8_worst_penalties() {
    let worst = |node: &TechNode| {
        standard_node_sweep(node, 11)
            .expect("sweep")
            .iter()
            .map(SweepPoint::variation_penalty)
            .fold(0.0f64, f64::max)
    };
    let w250 = (worst(&TechNode::nm250()) - 1.0) * 100.0;
    let w100 = (worst(&TechNode::nm100()) - 1.0) * 100.0;
    assert!((3.0..14.0).contains(&w250), "250nm worst {w250}%");
    assert!((8.0..18.0).contains(&w100), "100nm worst {w100}%");
    assert!(w100 > w250);
}

/// §3.1: the paper's qualitative optimum trends, cross-node.
#[test]
fn optimum_trends_across_nodes() {
    for node in TechNode::table1() {
        let line_lo = LineRlc::new(
            node.line().resistance,
            HenriesPerMeter::from_nano_per_milli(0.5),
            node.line().capacitance,
        );
        let line_hi = line_lo.with_inductance(HenriesPerMeter::from_nano_per_milli(4.5));
        let lo = optimize_rlc(&line_lo, &node.driver(), OptimizerOptions::default()).unwrap();
        let hi = optimize_rlc(&line_hi, &node.driver(), OptimizerOptions::default()).unwrap();
        assert!(hi.segment_length.get() > lo.segment_length.get(), "{}", node.name());
        assert!(hi.repeater_size < lo.repeater_size, "{}", node.name());
        assert!(
            hi.delay_per_length() > lo.delay_per_length(),
            "{}",
            node.name()
        );
    }
}

/// The paper's scaling argument in one number: the susceptibility ratio
/// at the top of the sweep grows monotonically as the driver shrinks
/// along the interpolated roadmap.
#[test]
fn susceptibility_grows_along_roadmap() {
    let mut last = 0.0;
    for feature in [250.0, 150.0, 100.0] {
        let node = if feature == 100.0 {
            TechNode::nm100()
        } else if feature == 250.0 {
            TechNode::nm250()
        } else {
            rlckit_tech::scaling::interpolate_node(feature)
        };
        let end = delay_ratio_series(&standard_node_sweep(&node, 6).expect("sweep"))
            .last()
            .expect("points")
            .1;
        assert!(end > last, "feature {feature}: {end} vs {last}");
        last = end;
    }
}
