//! Frequency-domain cross-validation: the simulator's AC analysis of the
//! discretized RLC ladder against the exact distributed transfer
//! function of Eq. 1 — two completely independent evaluation routes.

use rlckit_numeric::Complex;
use rlckit_spice::ac::ac_analysis;
use rlckit_spice::builders::{rlc_ladder, LadderLine};
use rlckit_spice::waveform::Waveform;
use rlckit_spice::Circuit;
use rlckit_tech::TechNode;
use rlckit_tline::{DriverInterconnectLoad, LineRlc};
use rlckit_units::{Farads, HenriesPerMeter, Meters, Ohms};

struct Setup {
    dil: DriverInterconnectLoad,
    circuit: Circuit,
    source: rlckit_spice::ElementId,
    far: rlckit_spice::Node,
}

fn build(l_nh: f64, segments: usize) -> Setup {
    let node = TechNode::nm100();
    let k = 528.0;
    let h = Meters::from_milli(11.1);
    let rs = node.driver().output_resistance.get() / k;
    let cp = node.driver().parasitic_capacitance.get() * k;
    let cl = node.driver().input_capacitance.get() * k;

    let line = LineRlc::new(
        node.line().resistance,
        HenriesPerMeter::from_nano_per_milli(l_nh),
        node.line().capacitance,
    );
    let dil = DriverInterconnectLoad::new(Ohms::new(rs), Farads::new(cp), line, h, Farads::new(cl));

    let mut circuit = Circuit::new();
    let src = circuit.add_node("src");
    let drv = circuit.add_node("drv");
    let far = circuit.add_node("far");
    let source = circuit.voltage_source(src, Circuit::GROUND, Waveform::Dc(0.0));
    circuit.resistor(src, drv, rs);
    circuit.capacitor(drv, Circuit::GROUND, cp);
    rlc_ladder(
        &mut circuit,
        drv,
        far,
        LadderLine {
            r_per_m: node.line().resistance.get(),
            l_per_m: l_nh * 1e-6,
            c_per_m: node.line().capacitance.get(),
        },
        h,
        segments,
    );
    circuit.capacitor(far, Circuit::GROUND, cl);
    Setup {
        dil,
        circuit,
        source,
        far,
    }
}

#[test]
fn ladder_ac_response_matches_exact_transfer_function() {
    let setup = build(1.8, 40);
    // Frequencies up to ~2× the system's bandwidth (1/b1).
    let f_scale = 1.0 / (2.0 * std::f64::consts::PI * setup.dil.b1());
    let freqs: Vec<f64> = [0.05, 0.2, 0.5, 1.0, 2.0].iter().map(|m| m * f_scale).collect();
    let ac = ac_analysis(&setup.circuit, setup.source, &freqs).expect("ac sweep");
    for (i, &f) in freqs.iter().enumerate() {
        let simulated = ac.voltage(i, setup.far);
        let exact = setup
            .dil
            .transfer_function(Complex::new(0.0, 2.0 * std::f64::consts::PI * f));
        let err = (simulated - exact).abs() / exact.abs().max(1e-6);
        assert!(
            err < 0.05,
            "f = {:.2}·bw: ladder {simulated} vs exact {exact} ({:.1}% off)",
            f / f_scale,
            err * 100.0
        );
    }
}

#[test]
fn ladder_discretization_error_shrinks_with_section_count() {
    // Convergence of the spatial discretization, measured in the
    // frequency domain at the bandwidth edge.
    let f = 1.0 / (2.0 * std::f64::consts::PI * build(1.8, 4).dil.b1());
    let error_at = |segments: usize| {
        let setup = build(1.8, segments);
        let ac = ac_analysis(&setup.circuit, setup.source, &[f]).expect("ac");
        let simulated = ac.voltage(0, setup.far);
        let exact = setup
            .dil
            .transfer_function(Complex::new(0.0, 2.0 * std::f64::consts::PI * f));
        (simulated - exact).abs() / exact.abs()
    };
    let e4 = error_at(4);
    let e16 = error_at(16);
    let e64 = error_at(64);
    assert!(e16 < e4, "16 sections ({e16}) not better than 4 ({e4})");
    assert!(e64 < e16, "64 sections ({e64}) not better than 16 ({e16})");
    assert!(e64 < 5e-3, "64-section error still {e64}");
}

#[test]
fn dc_gain_is_unity_in_both_routes() {
    let setup = build(3.0, 16);
    let ac = ac_analysis(&setup.circuit, setup.source, &[1.0]).expect("ac");
    let simulated = ac.voltage(0, setup.far);
    assert!((simulated.abs() - 1.0).abs() < 1e-3, "|H| at 1 Hz = {}", simulated.abs());
    let exact = setup.dil.transfer_function(Complex::new(0.0, 2.0 * std::f64::consts::PI));
    assert!((exact.abs() - 1.0).abs() < 1e-6);
}

#[test]
fn underdamped_peaking_appears_in_both_routes() {
    // With substantial inductance both routes must show the same
    // resonant peaking (|H| > 1 somewhere below the roll-off).
    let setup = build(4.0, 48);
    let f_scale = 1.0 / (2.0 * std::f64::consts::PI * setup.dil.b1());
    let freqs: Vec<f64> = (1..=30).map(|i| f_scale * i as f64 / 10.0).collect();
    let ac = ac_analysis(&setup.circuit, setup.source, &freqs).expect("ac");
    let peak_sim = ac
        .magnitude(setup.far)
        .into_iter()
        .fold(0.0f64, f64::max);
    let peak_exact = freqs
        .iter()
        .map(|&f| {
            setup
                .dil
                .transfer_function(Complex::new(0.0, 2.0 * std::f64::consts::PI * f))
                .abs()
        })
        .fold(0.0f64, f64::max);
    assert!(peak_sim > 1.05, "no peaking in simulation ({peak_sim})");
    assert!(peak_exact > 1.05, "no peaking in exact response ({peak_exact})");
    assert!(
        (peak_sim - peak_exact).abs() / peak_exact < 0.1,
        "peaks disagree: {peak_sim} vs {peak_exact}"
    );
}
