//! End-to-end cross-validation: the analytical stack (moments → two-pole
//! → Newton delay → optimizer) against the independent circuit-simulator
//! substrate (MNA, RLC ladder, transient analysis). The two pipelines
//! share no code beyond the numeric kernels, so agreement here validates
//! both.

use rlckit::optimizer::{optimize_rlc, OptimizerOptions};
use rlckit_spice::builders::{rlc_ladder, LadderLine};
use rlckit_spice::measure::{delay_between, Edge};
use rlckit_spice::transient::{simulate, TransientOptions};
use rlckit_spice::waveform::Waveform;
use rlckit_spice::Circuit;
use rlckit_tech::TechNode;
use rlckit_tline::LineRlc;
use rlckit_units::{HenriesPerMeter, Meters};

/// Simulates the linear driver–line–load structure (driver as the
/// calibrated resistor, as in the paper's own model) and returns the
/// measured 50 % delay.
fn simulated_delay(node: &TechNode, l_nh: f64, h: Meters, k: f64, segments: usize) -> f64 {
    let driver = node.driver();
    let mut ckt = Circuit::new();
    let src = ckt.add_node("src");
    let drv = ckt.add_node("drv");
    let far = ckt.add_node("far");
    ckt.voltage_source(src, Circuit::GROUND, Waveform::step(0.0, 1.0, 20e-12, 0.5e-12));
    ckt.resistor(src, drv, driver.output_resistance.get() / k);
    ckt.capacitor(drv, Circuit::GROUND, driver.parasitic_capacitance.get() * k);
    rlc_ladder(
        &mut ckt,
        drv,
        far,
        LadderLine {
            r_per_m: node.line().resistance.get(),
            l_per_m: l_nh * 1e-6,
            c_per_m: node.line().capacitance.get(),
        },
        h,
        segments,
    );
    ckt.capacitor(far, Circuit::GROUND, driver.input_capacitance.get() * k);

    // Horizon: a few Elmore delays; step fine enough for the ringing.
    let line = LineRlc::new(
        node.line().resistance,
        HenriesPerMeter::new(l_nh * 1e-6),
        node.line().capacitance,
    );
    let dil = rlckit::optimizer::segment_structure(&line, &driver, h, k);
    let t_stop = 8.0 * dil.b1() + 20e-12;
    let dt = dil.b1() / 400.0;
    let res = simulate(&ckt, &TransientOptions::new(t_stop, dt)).expect("transient");
    delay_between(
        res.times(),
        res.voltage(src),
        res.voltage(far),
        0.5,
        Edge::Rising,
        Edge::Rising,
    )
    .expect("both crossings")
}

#[test]
fn two_pole_delay_matches_spice_in_rc_regime() {
    let node = TechNode::nm250();
    let line = LineRlc::new(
        node.line().resistance,
        HenriesPerMeter::ZERO,
        node.line().capacitance,
    );
    let h = Meters::from_milli(14.4);
    let k = 578.0;
    let analytical = rlckit::optimizer::segment_delay(&line, &node.driver(), h, k, 0.5)
        .expect("delay")
        .get();
    let simulated = simulated_delay(&node, 0.0, h, k, 16);
    let err = (analytical - simulated).abs() / simulated;
    assert!(
        err < 0.06,
        "two-pole {analytical:e} vs spice {simulated:e} ({:.1}% off)",
        err * 100.0
    );
}

#[test]
fn two_pole_delay_tracks_spice_with_inductance() {
    let node = TechNode::nm100();
    let h = Meters::from_milli(11.1);
    let k = 528.0;
    for l_nh in [1.0, 2.5] {
        let line = LineRlc::new(
            node.line().resistance,
            HenriesPerMeter::from_nano_per_milli(l_nh),
            node.line().capacitance,
        );
        let analytical = rlckit::optimizer::segment_delay(&line, &node.driver(), h, k, 0.5)
            .expect("delay")
            .get();
        let simulated = simulated_delay(&node, l_nh, h, k, 16);
        let err = (analytical - simulated).abs() / simulated;
        // The two-pole reduction drops higher-order transmission-line
        // effects; the paper accepts that trade. 20 % is the observed band.
        assert!(
            err < 0.20,
            "l={l_nh}: two-pole {analytical:e} vs spice {simulated:e} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn optimizer_choice_wins_in_simulation_too() {
    // The RLC optimum must beat the RC design point *in the simulator*,
    // not just in its own objective.
    let node = TechNode::nm100();
    let l_nh = 3.0;
    let line = LineRlc::new(
        node.line().resistance,
        HenriesPerMeter::from_nano_per_milli(l_nh),
        node.line().capacitance,
    );
    let rc = rlckit::elmore::rc_optimum(&node.line(), &node.driver());
    let rlc = optimize_rlc(&line, &node.driver(), OptimizerOptions::default()).expect("optimum");

    let per_length_rc =
        simulated_delay(&node, l_nh, rc.segment_length, rc.repeater_size, 12)
            / rc.segment_length.get();
    let per_length_rlc =
        simulated_delay(&node, l_nh, rlc.segment_length, rlc.repeater_size, 12)
            / rlc.segment_length.get();
    assert!(
        per_length_rlc < per_length_rc,
        "rlc {per_length_rlc:e} should beat rc {per_length_rc:e} in simulation"
    );
}

#[test]
fn ladder_resolution_converges() {
    // Simulator fidelity knob: the measured delay stabilizes as the
    // section count grows (the DESIGN.md convergence study).
    let node = TechNode::nm100();
    let h = Meters::from_milli(11.1);
    let d8 = simulated_delay(&node, 2.0, h, 528.0, 8);
    let d16 = simulated_delay(&node, 2.0, h, 528.0, 16);
    let d32 = simulated_delay(&node, 2.0, h, 528.0, 32);
    let coarse_step = (d16 - d8).abs();
    let fine_step = (d32 - d16).abs();
    assert!(
        fine_step <= coarse_step + 1e-15,
        "not converging: {coarse_step:e} then {fine_step:e}"
    );
    assert!(fine_step / d32 < 0.02, "still moving {:.2}%", fine_step / d32 * 100.0);
}
