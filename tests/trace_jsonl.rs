//! Guard for the `RLCKIT_TRACE=jsonl` sink format: every line the sink
//! writes must parse as a standalone JSON object, and the only
//! non-deterministic values allowed are span wall-clock fields under
//! the documented `*_ns` keys. Downstream tooling (and the determinism
//! tests) rely on being able to strip `*_ns` and diff the rest. The
//! flight-recorder event stream (`rlckit_trace::events::jsonl_of`) is
//! held to the same contract with `t_ns` as its only wall-clock key.
//!
//! The sink has no serde dependency (hermetic build), so neither does
//! this guard: it carries a purpose-built minimal JSON reader.

use rlckit_trace::{counter, histogram, span};

/// Keys whose values are pure functions of the recorded inputs.
const DETERMINISTIC_KEYS: [&str; 8] = [
    "type", "name", "value", "count", "sum", "min", "max", "buckets",
];

/// A parsed JSON value — just enough structure for the guard.
#[derive(Debug, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

/// Minimal strict JSON reader over one line.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(line: &'a str) -> Self {
        Self {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(c) => return Err(format!("unsupported escape \\{}", c as char)),
                        None => return Err("dangling escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unescaped.
                    let start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|c| c != b'"' && c != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

/// Parses one JSONL line into its top-level object, failing on
/// trailing garbage.
fn parse_line(line: &str) -> Vec<(String, Json)> {
    let mut r = Reader::new(line);
    let value = r.value().unwrap_or_else(|e| panic!("{e} in {line:?}"));
    r.skip_ws();
    assert_eq!(r.pos, r.bytes.len(), "trailing bytes in {line:?}");
    match value {
        Json::Object(members) => members,
        other => panic!("line is not an object: {other:?} in {line:?}"),
    }
}

/// Drops every `*_ns` member, leaving the deterministic projection.
fn strip_ns(members: &[(String, Json)]) -> Vec<&(String, Json)> {
    members.iter().filter(|(k, _)| !k.ends_with("_ns")).collect()
}

#[test]
fn jsonl_sink_is_json_lines_with_only_documented_nondeterminism() {
    // One test owns the whole check: trace metrics are process-global,
    // so splitting this into parallel test fns would let one fn's
    // recording race another fn's render-twice comparison.
    counter!("jsonl.guard.counter").add(3);
    histogram!("jsonl.guard.iterations").observe(4);
    histogram!("jsonl.guard.iterations").observe(7);
    // A hostile label exercises the string escaper end to end.
    counter!("jsonl.guard.\"quoted\\path\"").incr();
    rlckit_trace::set_enabled(true);
    drop(span!("jsonl.guard.span"));
    rlckit_trace::set_enabled(false);

    let first = rlckit_trace::jsonl_string();
    assert!(!first.is_empty(), "recorded metrics must serialize");

    let mut saw_span = false;
    for line in first.lines() {
        let members = parse_line(line);

        // Every key is either deterministic-by-contract or `*_ns`.
        for (key, value) in &members {
            assert!(
                DETERMINISTIC_KEYS.contains(&key.as_str()) || key.ends_with("_ns"),
                "undocumented key {key:?} in {line:?}"
            );
            if key.ends_with("_ns") {
                assert!(
                    matches!(value, Json::Num(_)),
                    "{key:?} must be numeric in {line:?}"
                );
            }
        }

        // `*_ns` keys are confined to span records.
        let kind = members
            .iter()
            .find_map(|(k, v)| (k == "type").then_some(v))
            .unwrap_or_else(|| panic!("missing type in {line:?}"));
        if members.iter().any(|(k, _)| k.ends_with("_ns")) {
            assert_eq!(kind, &Json::Str("span".into()), "wall-clock outside span");
            saw_span = true;
        } else {
            assert!(
                matches!(kind, Json::Str(s) if s == "counter" || s == "histogram"),
                "unknown record type in {line:?}"
            );
        }
    }
    assert!(saw_span, "the enabled span must have produced a record");

    // The escaped label must round-trip through parse exactly.
    assert!(
        first.lines().any(|l| {
            parse_line(l)
                .iter()
                .any(|(k, v)| k == "name" && *v == Json::Str("jsonl.guard.\"quoted\\path\"".into()))
        }),
        "escaped metric name did not round-trip"
    );

    // Rendering again with only span activity in between must leave the
    // deterministic projection byte-for-byte stable.
    rlckit_trace::set_enabled(true);
    drop(span!("jsonl.guard.span"));
    rlckit_trace::set_enabled(false);
    let second = rlckit_trace::jsonl_string();
    let project = |text: &str| {
        text.lines()
            .map(|l| {
                let members = parse_line(l);
                format!("{:?}", strip_ns(&members))
            })
            .filter(|p| !p.contains("jsonl.guard.span") || p.contains("count"))
            .collect::<Vec<_>>()
    };
    let (a, b) = (project(&first), project(&second));
    // Counter and histogram records are identical; the span's count
    // member changed (it ran once more), which is the one allowed
    // deterministic difference here.
    let diffs: Vec<_> = a.iter().filter(|l| !b.contains(l)).collect();
    assert!(
        diffs.iter().all(|l| l.contains("jsonl.guard.span")),
        "deterministic records drifted between renders: {diffs:?}"
    );
}

/// Keys an `"event"` line may carry; `t_ns` is the only wall-clock one.
const EVENT_KEYS: [&str; 6] = ["type", "trace_id", "scope", "kind", "value", "t_ns"];

#[test]
fn event_stream_jsonl_has_only_t_ns_nondeterminism() {
    // The flight recorder shares the enable gate with spans, and the
    // sibling test toggles it; retry until a recording lands so the two
    // tests cannot race each other into a false failure.
    let mut recorded = Vec::new();
    let mut dropped = 0;
    for _ in 0..64 {
        rlckit_trace::set_enabled(true);
        rlckit_trace::event!(
            0x4A47_u64,
            "jsonl.guard.event",
            rlckit_trace::events::EventKind::Solve,
            7
        );
        let drained = rlckit_trace::events::collect();
        dropped += drained.dropped;
        recorded.extend(drained.events);
        if recorded
            .iter()
            .any(|e| e.trace_id == 0x4A47 && e.scope == "jsonl.guard.event")
        {
            break;
        }
    }
    let text = rlckit_trace::events::jsonl_of(&rlckit_trace::events::DrainedEvents {
        events: recorded,
        dropped,
    });

    let mut saw_ours = false;
    for line in text.lines() {
        let members = parse_line(line);
        let kind = members
            .iter()
            .find_map(|(k, v)| (k == "type").then_some(v))
            .unwrap_or_else(|| panic!("missing type in {line:?}"));
        match kind {
            Json::Str(s) if s == "event" => {
                for (key, _) in &members {
                    assert!(
                        EVENT_KEYS.contains(&key.as_str()),
                        "undocumented event key {key:?} in {line:?}"
                    );
                }
                for (key, _) in members.iter().filter(|(k, _)| k.ends_with("_ns")) {
                    assert_eq!(key, "t_ns", "wall clock outside t_ns in {line:?}");
                }
                if line.contains("\"scope\":\"jsonl.guard.event\"") {
                    assert!(line.contains("\"trace_id\":19015"), "{line}");
                    assert!(line.contains("\"kind\":\"solve\""), "{line}");
                    assert!(line.contains("\"value\":7"), "{line}");
                    saw_ours = true;
                }
            }
            Json::Str(s) if s == "events_dropped" => {
                for (key, _) in &members {
                    assert!(
                        key == "type" || key == "value",
                        "undocumented drop-footer key {key:?} in {line:?}"
                    );
                }
            }
            other => panic!("unknown event-stream record type {other:?} in {line:?}"),
        }
    }
    assert!(saw_ours, "the recorded guard event must serialize:\n{text}");
}

#[test]
fn reader_selftest_rejects_malformed_lines() {
    // Pure-parser self-test (touches no global metrics): a scanner
    // regression must not silently disarm the guard above.
    assert!(Reader::new("{\"a\":1}").value().is_ok());
    assert!(Reader::new("{\"a\":[0,1,2],\"b\":\"x\\\"y\"}").value().is_ok());
    assert!(Reader::new("{\"a\":}").value().is_err());
    assert!(Reader::new("{\"a\" 1}").value().is_err());
    assert!(Reader::new("{\"a\":tru}").value().is_err());
    assert!(Reader::new("\"unterminated").value().is_err());
}
