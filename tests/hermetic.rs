//! Hermetic-build guard: the workspace must remain 100 % path-dependency
//! so `cargo build --offline` can never regress into registry fetches.
//!
//! Parses every workspace `Cargo.toml` with a purpose-built minimal
//! reader (no `toml` crate — that would itself be a registry dependency)
//! and fails if any `[dependencies]`, `[dev-dependencies]`,
//! `[build-dependencies]` or `[workspace.dependencies]` entry is not a
//! `path` dependency (or a `workspace = true` reference to one).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Dependency-like sections whose entries must all be path-only.
const DEP_SECTIONS: [&str; 4] = [
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates).expect("crates/ directory");
    for entry in entries {
        let manifest = entry.expect("dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    manifests.sort();
    assert!(manifests.len() >= 15, "expected the full workspace, found {manifests:?}");
    assert!(
        manifests.iter().any(|m| m.ends_with("crates/par/Cargo.toml")),
        "the rlckit-par manifest must be scanned, found {manifests:?}"
    );
    assert!(
        manifests.iter().any(|m| m.ends_with("crates/trace/Cargo.toml")),
        "the rlckit-trace manifest must be scanned, found {manifests:?}"
    );
    assert!(
        manifests.iter().any(|m| m.ends_with("crates/fault/Cargo.toml")),
        "the rlckit-fault manifest must be scanned, found {manifests:?}"
    );
    assert!(
        manifests.iter().any(|m| m.ends_with("crates/serve/Cargo.toml")),
        "the rlckit-serve manifest must be scanned, found {manifests:?}"
    );
    assert!(
        manifests.iter().any(|m| m.ends_with("crates/campaign/Cargo.toml")),
        "the rlckit-campaign manifest must be scanned, found {manifests:?}"
    );
    assert!(
        manifests.iter().any(|m| m.ends_with("crates/bench/Cargo.toml")),
        "the rlckit-bench manifest (loadgen, rlckit-traceview) must be scanned, \
         found {manifests:?}"
    );
    manifests
}

/// Strips a trailing `#` comment (quote-aware enough for Cargo.toml).
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Where the line cursor currently is within a manifest.
enum Cursor {
    /// A section whose entries need no dependency check.
    Elsewhere,
    /// Directly inside one of [`DEP_SECTIONS`]; entries are inline specs.
    DepSection(String),
    /// Inside a long-form `[dependencies.<name>]` table; local iff a
    /// `path` key appears before the table ends.
    LongForm {
        section: String,
        name: String,
        has_path: bool,
    },
}

/// A dependency entry that is not purely local.
#[derive(Debug)]
struct Violation {
    manifest: PathBuf,
    section: String,
    entry: String,
}

/// Scans one manifest for non-path dependency entries.
fn scan_manifest(manifest: &Path) -> Vec<Violation> {
    let text = std::fs::read_to_string(manifest)
        .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
    let mut violations = Vec::new();
    let mut cursor = Cursor::Elsewhere;

    let flush_long_form = |cursor: &mut Cursor, violations: &mut Vec<Violation>| {
        if let Cursor::LongForm {
            section,
            name,
            has_path: false,
        } = cursor
        {
            violations.push(Violation {
                manifest: manifest.to_path_buf(),
                section: format!("{section} (long form)"),
                entry: name.clone(),
            });
        }
    };

    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            flush_long_form(&mut cursor, &mut violations);
            let header = line[1..line.len() - 1].trim();
            cursor = if let Some(section) = DEP_SECTIONS.iter().find(|s| header == **s) {
                Cursor::DepSection((*section).to_string())
            } else if let Some((section, name)) = DEP_SECTIONS
                .iter()
                .find_map(|s| header.strip_prefix(&format!("{s}.")).map(|n| (*s, n)))
            {
                Cursor::LongForm {
                    section: section.to_string(),
                    name: name.to_string(),
                    has_path: false,
                }
            } else {
                Cursor::Elsewhere
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let (key, value) = (key.trim(), value.trim());
        match &mut cursor {
            Cursor::Elsewhere => {}
            Cursor::LongForm { has_path, .. } => {
                if key == "path" {
                    *has_path = true;
                }
            }
            Cursor::DepSection(section) => {
                let is_path = value.contains("path =") || value.contains("path=");
                // `{ workspace = true }` entries resolve through
                // `[workspace.dependencies]`, which this same scan forces
                // to be path-only — so they are local by induction.
                let is_workspace_ref =
                    value.contains("workspace = true") || value.contains("workspace=true");
                if !(is_path || is_workspace_ref) {
                    violations.push(Violation {
                        manifest: manifest.to_path_buf(),
                        section: section.clone(),
                        entry: key.to_string(),
                    });
                }
            }
        }
    }
    flush_long_form(&mut cursor, &mut violations);
    violations
}

#[test]
fn every_workspace_dependency_is_a_path_dependency() {
    let mut violations = Vec::new();
    for manifest in workspace_manifests() {
        violations.extend(scan_manifest(&manifest));
    }
    if !violations.is_empty() {
        let mut msg = String::from(
            "registry dependencies are forbidden — the build must stay offline-safe \
             (see README.md, \"Hermetic build\"):\n",
        );
        for v in &violations {
            let _ = writeln!(
                msg,
                "  {} [{}] {}",
                v.manifest.display(),
                v.section,
                v.entry
            );
        }
        panic!("{msg}");
    }
}

#[test]
fn guard_rejects_registry_style_entries() {
    // Self-test of the scanner on a synthetic manifest, so a parser
    // regression cannot silently disarm the guard above.
    let dir = std::env::temp_dir().join("rlckit_hermetic_guard_selftest");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let manifest = dir.join("Cargo.toml");
    std::fs::write(
        &manifest,
        r#"[package]
name = "x"

[dependencies]
good = { path = "../good" }
shared = { workspace = true }
bad = "1.0"
worse = { version = "0.5", features = ["std"] }

[dependencies.longform]
version = "2"

[dev-dependencies]
alsobad = { git = "https://example.invalid/repo" }

[lib]
path = "src/lib.rs"
"#,
    )
    .expect("write manifest");
    let violations = scan_manifest(&manifest);
    let names: Vec<&str> = violations.iter().map(|v| v.entry.as_str()).collect();
    assert_eq!(names, ["bad", "worse", "longform", "alsobad"], "{violations:?}");

    // And a fully local manifest passes, including the long form.
    std::fs::write(
        &manifest,
        r#"[dependencies]
good = { path = "../good" }

[dependencies.longform]
path = "../longform"
"#,
    )
    .expect("write manifest");
    assert!(scan_manifest(&manifest).is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
