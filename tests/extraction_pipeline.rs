//! Extraction → technology → optimization, end to end: starting from
//! nothing but the wire cross-section geometry, the pipeline must
//! produce a sane repeater plan, and the frequency content of the
//! resulting design must justify the methodology's DC-resistance choice.

use rlckit::optimizer::{optimize_rlc, segment_structure, OptimizerOptions};
use rlckit_extract::capacitance::{total_line_capacitance, NeighborActivity};
use rlckit_extract::geometry::{Material, WireGeometry};
use rlckit_extract::inductance::{microstrip_loop_inductance, two_wire_loop_inductance};
use rlckit_extract::resistance::resistance_per_length;
use rlckit_extract::skin::{ac_resistance_per_length, skin_onset_frequency};
use rlckit_tech::TechNode;
use rlckit_tline::{Damping, LineRlc};
use rlckit_units::{Hertz, Meters};

fn table1_wire() -> WireGeometry {
    TechNode::nm100().wire()
}

#[test]
fn geometry_to_repeater_plan() {
    let wire = table1_wire();
    let node = TechNode::nm100();

    // Pure-extraction line parameters (no Table 1 shortcuts).
    let r = resistance_per_length(&wire, Material::COPPER_INTERCONNECT);
    let c = total_line_capacitance(&wire, node.relative_permittivity(), NeighborActivity::Quiet);
    let l = two_wire_loop_inductance(&wire, Meters::from_micro(500.0));
    let line = LineRlc::new(r, l, c);

    let opt = optimize_rlc(&line, &node.driver(), OptimizerOptions::default()).expect("optimum");
    // Global-wire answers must land in the physically sensible decade.
    assert!(
        opt.segment_length.get() > 3e-3 && opt.segment_length.get() < 60e-3,
        "h = {}",
        opt.segment_length
    );
    assert!(
        opt.repeater_size > 50.0 && opt.repeater_size < 5000.0,
        "k = {}",
        opt.repeater_size
    );
    assert!(opt.segment_delay.get() > 10e-12 && opt.segment_delay.get() < 2e-9);
}

#[test]
fn extracted_inductance_band_brackets_the_paper_sweep() {
    let wire = table1_wire();
    let floor = microstrip_loop_inductance(&wire).to_nano_per_milli();
    let worst = two_wire_loop_inductance(&wire, Meters::from_milli(5.0)).to_nano_per_milli();
    assert!(floor > 0.3 && floor < 1.5, "floor {floor}");
    assert!(worst > floor && worst < 5.0, "worst {worst}");
}

#[test]
fn design_ringing_sits_below_the_skin_onset() {
    // The damped natural frequency of the optimized underdamped segment
    // must sit below (or near) the skin onset for the DC-r choice to be
    // defensible — quantify it.
    let wire = table1_wire();
    let node = TechNode::nm100();
    let line = LineRlc::new(
        node.line().resistance,
        rlckit_units::HenriesPerMeter::from_nano_per_milli(2.0),
        node.line().capacitance,
    );
    let opt = optimize_rlc(&line, &node.driver(), OptimizerOptions::default()).expect("optimum");
    assert_eq!(opt.damping, Damping::Underdamped);
    let tp = segment_structure(&line, &node.driver(), opt.segment_length, opt.repeater_size)
        .two_pole();
    let f_ring = tp.natural_frequency() / (2.0 * std::f64::consts::PI);
    let f_onset = skin_onset_frequency(&wire, Material::COPPER_INTERCONNECT).get();
    assert!(
        f_ring < 2.0 * f_onset,
        "ringing at {f_ring:.3e} Hz vs onset {f_onset:.3e} Hz"
    );
    // And the AC resistance at the ringing frequency stays within ~2× DC.
    let r_dc = resistance_per_length(&wire, Material::COPPER_INTERCONNECT).get();
    let r_ac = ac_resistance_per_length(&wire, Material::COPPER_INTERCONNECT, Hertz::new(f_ring))
        .get();
    assert!(
        r_ac / r_dc < 2.0,
        "skin effect already {:.2}× at the ringing frequency",
        r_ac / r_dc
    );
}

#[test]
fn miller_band_moves_the_optimum_as_the_paper_expects() {
    // §3: effective c varies with neighbour activity; the optimizer's h
    // shrinks as c grows (denser segments for heavier lines).
    let wire = table1_wire();
    let node = TechNode::nm100();
    let r = resistance_per_length(&wire, Material::COPPER_INTERCONNECT);
    let l = rlckit_units::HenriesPerMeter::from_nano_per_milli(1.0);
    let mut last_h = f64::MAX;
    for activity in [
        NeighborActivity::SwitchingWith,
        NeighborActivity::Quiet,
        NeighborActivity::SwitchingAgainst,
    ] {
        let c = total_line_capacitance(&wire, node.relative_permittivity(), activity);
        let opt = optimize_rlc(&LineRlc::new(r, l, c), &node.driver(), OptimizerOptions::default())
            .expect("optimum");
        assert!(
            opt.segment_length.get() < last_h,
            "h not shrinking with effective c ({activity:?})"
        );
        last_h = opt.segment_length.get();
    }
}
