//! Property-based tests on the workspace's core invariants, drawing
//! technology parameters and design points from wide but physically
//! sensible ranges. Runs on the in-tree `rlckit-check` harness (seeded,
//! deterministic, replayable via `RLCKIT_CHECK_SEED`).

use rlckit_check::{check_assume, gen, Check, Gen};

use rlckit::optimizer::{optimize_rlc, segment_delay, segment_structure, OptimizerOptions};
use rlckit_tech::DriverParams;
use rlckit_tline::{LineRlc, TwoPole};
use rlckit_units::{Farads, FaradsPerMeter, HenriesPerMeter, Meters, Ohms, OhmsPerMeter};

fn arbitrary_line() -> Gen<LineRlc> {
    gen::tuple3(
        gen::range(1.0, 50.0),   // r in Ω/mm
        gen::range(0.0, 5.0),    // l in nH/mm
        gen::range(50.0, 400.0), // c in pF/m
    )
    .map(|(r, l, c)| {
        LineRlc::new(
            OhmsPerMeter::from_ohm_per_milli(r),
            HenriesPerMeter::from_nano_per_milli(l),
            FaradsPerMeter::from_pico(c),
        )
    })
}

fn arbitrary_driver() -> Gen<DriverParams> {
    gen::tuple3(
        gen::range(2.0, 30.0), // r_s in kΩ
        gen::range(0.2, 3.0),  // c₀ in fF
        gen::range(0.0, 8.0),  // c_p in fF
    )
    .map(|(rs, c0, cp)| {
        DriverParams::new(
            Ohms::from_kilo(rs),
            Farads::from_femto(cp),
            Farads::from_femto(c0),
        )
    })
}

/// Two-pole delays are positive, finite and monotone in the threshold.
#[test]
fn delay_monotone_in_threshold() {
    Check::new().cases(64).run(
        &gen::tuple4(
            arbitrary_line(),
            arbitrary_driver(),
            gen::range(2.0, 40.0),
            gen::range(20.0, 2000.0),
        ),
        |(line, driver, h_mm, k)| {
            let dil = segment_structure(line, driver, Meters::from_milli(*h_mm), *k);
            let tp = dil.two_pole();
            let mut last = 0.0;
            for f in [0.2, 0.5, 0.8] {
                let d = tp.delay(f).expect("delay").get();
                assert!(d.is_finite() && d > last);
                last = d;
            }
        },
    );
}

/// Adding inductance never decreases the 50 % delay of a fixed
/// configuration (b₂ grows affinely with l; the crossing retreats).
#[test]
fn delay_nondecreasing_in_inductance() {
    Check::new().cases(64).run(
        &gen::tuple5(
            arbitrary_line(),
            arbitrary_driver(),
            gen::range(2.0, 40.0),
            gen::range(20.0, 2000.0),
            gen::range(0.1, 2.0),
        ),
        |(line, driver, h_mm, k, dl)| {
            let h = Meters::from_milli(*h_mm);
            let base = segment_delay(line, driver, h, *k, 0.5).expect("delay").get();
            let more = line.with_inductance(HenriesPerMeter::new(
                line.inductance().get() + dl * 1e-6,
            ));
            let bumped = segment_delay(&more, driver, h, *k, 0.5).expect("delay").get();
            assert!(bumped >= base * (1.0 - 1e-9), "{bumped} < {base}");
        },
    );
}

/// The paper's closed-form moments agree with the automatic series
/// expansion for arbitrary physical parameters.
#[test]
fn moment_closed_forms_match_series() {
    Check::new().cases(64).run(
        &gen::tuple4(
            arbitrary_line(),
            arbitrary_driver(),
            gen::range(2.0, 40.0),
            gen::range(20.0, 2000.0),
        ),
        |(line, driver, h_mm, k)| {
            let dil = segment_structure(line, driver, Meters::from_milli(*h_mm), *k);
            let m = dil.moments(2);
            assert!((m[1] - dil.b1()).abs() <= 1e-9 * dil.b1());
            assert!((m[2] - dil.b2()).abs() <= 1e-9 * dil.b2());
        },
    );
}

/// Critical inductance really sits on the damping boundary.
#[test]
fn critical_inductance_is_critical() {
    Check::new().cases(64).run(
        &gen::tuple4(
            arbitrary_line(),
            arbitrary_driver(),
            gen::range(2.0, 40.0),
            gen::range(20.0, 2000.0),
        ),
        |(line, driver, h_mm, k)| {
            let dil = segment_structure(line, driver, Meters::from_milli(*h_mm), *k);
            let lc = dil.critical_inductance();
            check_assume!(lc.get() > 0.0);
            let at_crit = segment_structure(
                &line.with_inductance(lc),
                driver,
                Meters::from_milli(*h_mm),
                *k,
            );
            let b1 = at_crit.b1();
            assert!((b1 * b1 - 4.0 * at_crit.b2()).abs() < 1e-9 * b1 * b1);
        },
    );
}

/// The optimizer's answer is a genuine local minimum of the rigorous
/// objective, for arbitrary technologies (not just Table 1).
#[test]
fn optimizer_returns_local_minimum() {
    Check::new().cases(64).run(
        &gen::tuple2(arbitrary_line(), arbitrary_driver()),
        |(line, driver)| {
            let opt = optimize_rlc(line, driver, OptimizerOptions::default())
                .expect("optimization");
            let objective = |h: f64, k: f64| {
                segment_delay(line, driver, Meters::new(h), k, 0.5)
                    .expect("delay")
                    .get() / h
            };
            let best = objective(opt.segment_length.get(), opt.repeater_size);
            for (hs, ks) in [(1.03, 1.0), (0.97, 1.0), (1.0, 1.03), (1.0, 0.97)] {
                let perturbed = objective(opt.segment_length.get() * hs, opt.repeater_size * ks);
                assert!(
                    perturbed >= best * (1.0 - 1e-7),
                    "perturbation ({hs},{ks}): {perturbed} < {best}"
                );
            }
        },
    );
}

/// Asserts the physical-band invariant the `response_stays_in_physical_band`
/// property checks, for one `(b1, zeta)` point.
fn assert_response_in_physical_band(b1: f64, zeta: f64) {
    let b2 = (b1 / (2.0 * zeta)).powi(2);
    let tp = TwoPole::new(b1, b2);
    let ceiling = tp.overshoot().map_or(1.0, |(_, v)| v) + 1e-9;
    for i in 1..=60 {
        let t = b1 * i as f64 / 4.0;
        let v = tp.response(t);
        assert!(v >= -1e-9 && v <= ceiling, "v({t}) = {v}");
    }
    // Settling horizon: the ringing envelope decays as e^{-b₁t/(2b₂)},
    // so reaching 1e-5 needs t ≳ 23·b₂/b₁ (≈ 200·b₁ at ζ = 0.05).
    let t_settle = 25.0 * b2 / b1 + 14.0 * b1;
    assert!((tp.response(t_settle) - 1.0).abs() < 1e-5);
}

/// Two-pole step responses stay within the physically allowed band
/// (0 to 1 + overshoot) and settle to 1.
#[test]
fn response_stays_in_physical_band() {
    Check::new().cases(64).run(
        &gen::tuple2(gen::range(1e-12, 1e-8), gen::range(0.05, 3.0)),
        |&(b1, zeta)| assert_response_in_physical_band(b1, zeta),
    );
}

/// Historical proptest shrink case (`tests/properties.proptest-regressions`):
/// the fastest line in the generated band at the most underdamped ζ once
/// tripped the settling-horizon assertion. Pinned forever as a plain test.
#[test]
fn regression_fast_line_most_underdamped() {
    assert_response_in_physical_band(1e-12, 0.05);
}

/// Historical proptest shrink case (`tests/properties.proptest-regressions`):
/// an overdamped ζ ≈ 2.585 at the same fast b₁ once violated the response
/// band. Pinned forever as a plain test.
#[test]
fn regression_fast_line_overdamped() {
    assert_response_in_physical_band(1e-12, 2.584832161580639);
}
