//! The oracle chain: exact transfer function → numerical inverse Laplace
//! → reduced models. Each stage validates the next across a grid of
//! configurations spanning the damping regimes.

use rlckit::optimizer::segment_structure;
use rlckit_numeric::Complex;
use rlckit_tech::TechNode;
use rlckit_tline::awe::ReducedModel;
use rlckit_tline::exact::{exact_delay, step_response_at, step_response_grid};
use rlckit_tline::LineRlc;
use rlckit_units::{HenriesPerMeter, Meters, Seconds};

fn dil_grid() -> Vec<rlckit_tline::DriverInterconnectLoad> {
    let mut out = Vec::new();
    for node in TechNode::table1() {
        for l in [0.0, 1.0, 3.0] {
            for (h_mm, k) in [(8.0, 700.0), (14.0, 400.0)] {
                let line = LineRlc::new(
                    node.line().resistance,
                    HenriesPerMeter::from_nano_per_milli(l),
                    node.line().capacitance,
                );
                out.push(segment_structure(
                    &line,
                    &node.driver(),
                    Meters::from_milli(h_mm),
                    k,
                ));
            }
        }
    }
    out
}

#[test]
fn exact_response_settles_to_unity_everywhere() {
    for dil in dil_grid() {
        // The settling horizon is set by the envelope time constant
        // 2·b₂/b₁ for underdamped configurations, not by b₁ alone.
        let b1 = dil.b1();
        let envelope = 2.0 * dil.b2() / b1;
        let t_late = 12.0 * b1 + 14.0 * envelope;
        let late = step_response_at(&dil, Seconds::new(t_late)).expect("ilt");
        assert!((late - 1.0).abs() < 2e-3, "late value {late}");
    }
}

#[test]
fn two_pole_tracks_exact_delay_within_band() {
    for dil in dil_grid() {
        let exact = exact_delay(&dil, 0.5).expect("oracle").get();
        let reduced = dil.two_pole().delay(0.5).expect("two-pole").get();
        let err = (reduced - exact).abs() / exact;
        assert!(
            err < 0.2,
            "two-pole off by {:.1}% at {dil:?}",
            err * 100.0
        );
    }
}

#[test]
fn awe_order_two_equals_two_pole_everywhere() {
    for dil in dil_grid() {
        let model = ReducedModel::from_structure(&dil, 2).expect("order 2 is always stable");
        let tp = dil.two_pole();
        for t_rel in [0.5, 1.5, 4.0] {
            let t = t_rel * dil.b1();
            assert!(
                (model.step_response(t) - tp.response(t)).abs() < 1e-8,
                "mismatch at t = {t_rel}·b1"
            );
        }
    }
}

#[test]
fn moments_match_exact_transfer_function_values() {
    // Low-frequency check: H(s) ≈ 1/(1 + b₁s + b₂s² + b₃s³) with the
    // automatically-expanded b₃.
    for dil in dil_grid() {
        let m = dil.moments(3);
        let s = Complex::new(0.0, 0.05 / m[1]);
        let exact = dil.transfer_function(s);
        let series = (Complex::ONE + s * m[1] + s * s * m[2] + s * s * s * m[3]).recip();
        assert!(
            (exact - series).abs() < 2e-4 * exact.abs(),
            "series mismatch: {exact} vs {series}"
        );
    }
}

#[test]
fn monotone_rise_to_first_crossing() {
    // The delay definition assumes the first crossing is on a monotone
    // rise; verify on the exact response, not just the reduction.
    for dil in dil_grid().into_iter().step_by(3) {
        let tau = exact_delay(&dil, 0.5).expect("oracle").get();
        let times: Vec<f64> = (1..=20).map(|i| tau * i as f64 / 20.0).collect();
        let vs = step_response_grid(&dil, &times).expect("grid");
        // The exact distributed response carries a wave-arrival staircase
        // (time-of-flight steps); "monotone" here means no dip beyond a
        // couple of percent of the swing before the crossing.
        for w in vs.windows(2) {
            assert!(w[1] >= w[0] - 0.02, "dip before crossing: {} -> {}", w[0], w[1]);
        }
    }
}

#[test]
fn delay_threshold_ordering_on_exact_response() {
    let dils = dil_grid();
    let dil = &dils[4];
    let d25 = exact_delay(dil, 0.25).expect("oracle").get();
    let d50 = exact_delay(dil, 0.50).expect("oracle").get();
    let d75 = exact_delay(dil, 0.75).expect("oracle").get();
    assert!(d25 < d50 && d50 < d75);
}
