//! Netlist-parser round trip: a deck describing the paper's
//! driver–line–load experiment must simulate identically to the same
//! circuit built through the programmatic API.

use rlckit_spice::measure::{delay_between, Edge};
use rlckit_spice::parse::parse_netlist_for_node;
use rlckit_spice::transient::{simulate, TransientOptions};
use rlckit_tech::TechNode;

/// A five-section 100 nm line segment at l = 2 nH/mm, as a SPICE deck.
/// (R = 4.4 Ω/mm · 2.22 mm, L = 2 nH/mm · 2.22 mm, C = 123.33 pF/m ·
/// 2.22 mm per section; driver R_S = 7534/528 Ω, C_P/C_L per Table 1.)
const DECK: &str = "\
* 100nm driver-line-load, 11.1 mm in 5 sections
VIN src 0 PWL(0 0 20p 0 21p 1.2)
RS src drv 14.269
CP drv 0 1943f
* section 1
R1 drv n1 9.768
L1 n1 n2 4.44n
C1 n2 0 273.8f
* section 2
R2 n2 n3 9.768
L2 n3 n4 4.44n
C2 n4 0 273.8f
* section 3
R3 n4 n5 9.768
L3 n5 n6 4.44n
C3 n6 0 273.8f
* section 4
R4 n6 n7 9.768
L4 n7 n8 4.44n
C4 n8 0 273.8f
* section 5
R5 n8 n9 9.768
L5 n9 far 4.44n
C5 far 0 273.8f
CL far 0 400.2f
.END
";

#[test]
fn parsed_deck_simulates_like_the_programmatic_circuit() {
    let node = TechNode::nm100();
    let parsed = parse_netlist_for_node(DECK, &node).expect("parse");
    assert_eq!(parsed.circuit.elements().len(), 19);

    let src = parsed.node("src").expect("src node");
    let far = parsed.node("far").expect("far node");
    let res = simulate(&parsed.circuit, &TransientOptions::new(1.5e-9, 1e-12)).expect("sim");
    let parsed_delay = delay_between(
        res.times(),
        res.voltage(src),
        res.voltage(far),
        0.6,
        Edge::Rising,
        Edge::Falling,
    )
    .or_else(|| {
        delay_between(
            res.times(),
            res.voltage(src),
            res.voltage(far),
            0.6,
            Edge::Rising,
            Edge::Rising,
        )
    })
    .expect("delay measured");

    // The same structure built programmatically.
    use rlckit_spice::builders::{rlc_ladder, LadderLine};
    use rlckit_spice::waveform::Waveform;
    use rlckit_spice::Circuit;
    let mut ckt = Circuit::new();
    let src2 = ckt.add_node("src");
    let drv2 = ckt.add_node("drv");
    let far2 = ckt.add_node("far");
    ckt.voltage_source(
        src2,
        Circuit::GROUND,
        Waveform::Pwl(vec![(0.0, 0.0), (20e-12, 0.0), (21e-12, 1.2)]),
    );
    ckt.resistor(src2, drv2, 14.269);
    ckt.capacitor(drv2, Circuit::GROUND, 1943e-15);
    rlc_ladder(
        &mut ckt,
        drv2,
        far2,
        LadderLine {
            r_per_m: 4400.0,
            l_per_m: 2e-6,
            c_per_m: 123.33e-12,
        },
        rlckit_units::Meters::from_milli(11.1),
        5,
    );
    ckt.capacitor(far2, Circuit::GROUND, 400.2e-15);
    let res2 = simulate(&ckt, &TransientOptions::new(1.5e-9, 1e-12)).expect("sim");
    let api_delay = delay_between(
        res2.times(),
        res2.voltage(src2),
        res2.voltage(far2),
        0.6,
        Edge::Rising,
        Edge::Rising,
    )
    .expect("delay measured");

    // The deck uses L-sections with end caps placed slightly differently
    // from the builder's π-ladder, so allow a few percent.
    let err = (parsed_delay - api_delay).abs() / api_delay;
    assert!(
        err < 0.10,
        "deck {parsed_delay:e} vs api {api_delay:e} ({:.1}% apart)",
        err * 100.0
    );
}

#[test]
fn parsed_inverter_ring_oscillates() {
    // A three-stage minimum ring written as a deck (no lines): sanity for
    // the MOSFET cards end to end.
    let node = TechNode::nm100();
    let deck = "\
VDD vdd 0 1.2
M1N a c 0 0 NMOS W=8
M1P a c vdd vdd PMOS W=8
M2N b a 0 0 NMOS W=8
M2P b a vdd vdd PMOS W=8
M3N c b 0 0 NMOS W=8
M3P c b vdd vdd PMOS W=8
C1 a 0 50f
C2 b 0 50f
C3 c 0 50f
";
    let parsed = parse_netlist_for_node(deck, &node).expect("parse");
    let a = parsed.node("a").expect("node a");
    let opts = TransientOptions::new(6e-9, 2e-12).with_initial_voltage(a, 0.0);
    let res = simulate(&parsed.circuit, &opts).expect("sim");
    let v = res.voltage(a);
    let swing = v.iter().cloned().fold(f64::MIN, f64::max)
        - v.iter().cloned().fold(f64::MAX, f64::min);
    assert!(swing > 1.0, "ring did not oscillate (swing {swing})");
    let period = rlckit_spice::measure::oscillation_period(res.times(), v, 0.6, 0.6);
    assert!(period.is_some(), "no period detected");
}
