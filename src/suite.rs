//! `rlckit-suite` — umbrella package for the rlckit workspace.
//!
//! This crate exists so that the repository-level `tests/` and `examples/`
//! directories can exercise every crate in the workspace through one
//! dependency set. It re-exports the member crates for convenience.

pub use rlckit;
pub use rlckit_extract as extract;
pub use rlckit_numeric as numeric;
pub use rlckit_spice as spice;
pub use rlckit_tech as tech;
pub use rlckit_tline as tline;
pub use rlckit_units as units;
