//! Property-based tests for the numeric kernels.

use proptest::prelude::*;

use rlckit_numeric::complex::Complex;
use rlckit_numeric::dense::Matrix;
use rlckit_numeric::ilt::EulerInversion;
use rlckit_numeric::poly::Polynomial;
use rlckit_numeric::series::Series;
use rlckit_numeric::sparse::TripletMatrix;

fn well_conditioned_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = data[i * n + j];
            }
            // Diagonal dominance keeps the condition number tame.
            m[(i, i)] += n as f64;
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dense LU: `A·solve(A, b) = b` for well-conditioned matrices.
    #[test]
    fn dense_lu_round_trip(
        m in well_conditioned_matrix(6),
        b in prop::collection::vec(-10.0f64..10.0, 6),
    ) {
        let x = m.solve(&b).expect("solvable");
        let r = m.mul_vec(&x).expect("dims");
        for i in 0..6 {
            prop_assert!((r[i] - b[i]).abs() < 1e-9);
        }
    }

    /// Sparse LU agrees with dense LU on the same matrix.
    #[test]
    fn sparse_matches_dense(
        entries in prop::collection::vec((0usize..8, 0usize..8, -1.0f64..1.0), 1..40),
        b in prop::collection::vec(-5.0f64..5.0, 8),
    ) {
        let mut t = TripletMatrix::new(8);
        let mut dense = Matrix::zeros(8, 8);
        for &(i, j, v) in &entries {
            t.push(i, j, v);
            dense[(i, j)] += v;
        }
        for i in 0..8 {
            t.push(i, i, 10.0);
            dense[(i, i)] += 10.0;
        }
        let xs = t.to_csr().lu().expect("factor").solve(&b).expect("solve");
        let xd = dense.solve(&b).expect("solve");
        for i in 0..8 {
            prop_assert!((xs[i] - xd[i]).abs() < 1e-9, "i={i}: {} vs {}", xs[i], xd[i]);
        }
    }

    /// Complex field axioms hold numerically.
    #[test]
    fn complex_field_axioms(
        a in (-10.0f64..10.0, -10.0f64..10.0),
        b in (-10.0f64..10.0, -10.0f64..10.0),
        c in (-10.0f64..10.0, -10.0f64..10.0),
    ) {
        let (a, b, c) = (
            Complex::new(a.0, a.1),
            Complex::new(b.0, b.1),
            Complex::new(c.0, c.1),
        );
        // Distributivity.
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
        // |ab| = |a||b|.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9 * (1.0 + a.abs() * b.abs()));
        // Conjugation is multiplicative.
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-9 * (1.0 + a.abs() * b.abs()));
    }

    /// `exp(a + b) = exp(a)·exp(b)` within range.
    #[test]
    fn complex_exp_is_a_homomorphism(
        a in (-3.0f64..3.0, -3.0f64..3.0),
        b in (-3.0f64..3.0, -3.0f64..3.0),
    ) {
        let (a, b) = (Complex::new(a.0, a.1), Complex::new(b.0, b.1));
        let lhs = (a + b).exp();
        let rhs = a.exp() * b.exp();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    /// Series reciprocal is a two-sided inverse up to the truncation order.
    #[test]
    fn series_recip_round_trip(
        coeffs in prop::collection::vec(-2.0f64..2.0, 5),
        lead in 0.5f64..3.0,
    ) {
        let mut v = coeffs;
        v[0] = lead; // nonzero constant term
        let s = Series::from_coeffs(v);
        let r = s.recip().expect("invertible");
        let id = s.mul(&r);
        prop_assert!((id.coeff(0) - 1.0).abs() < 1e-9);
        for i in 1..=s.order() {
            prop_assert!(id.coeff(i).abs() < 1e-7, "order {i}: {}", id.coeff(i));
        }
    }

    /// Polynomial roots evaluate to ~zero, and there are degree-many.
    #[test]
    fn polynomial_roots_are_roots(
        coeffs in prop::collection::vec(-3.0f64..3.0, 3..7),
        lead in prop::sample::select(vec![1.0f64, -1.0, 2.0]),
    ) {
        let mut v = coeffs;
        let n = v.len();
        v.push(lead);
        let p = Polynomial::new(v);
        prop_assume!(p.degree() == n);
        let roots = p.roots().expect("roots");
        prop_assert_eq!(roots.len(), n);
        // Scale tolerance by the polynomial's coefficient magnitude at the root.
        for z in roots {
            let scale: f64 = p
                .coeffs()
                .iter()
                .enumerate()
                .map(|(i, c)| c.abs() * z.abs().powi(i as i32))
                .sum();
            prop_assert!(p.eval_complex(z).abs() <= 1e-6 * scale.max(1.0), "residual at {z}");
        }
    }

    /// The Euler inverse Laplace transform reproduces e^{-a t} across a
    /// random decay-rate/time grid.
    #[test]
    fn euler_ilt_matches_exponential(a in 0.2f64..5.0, t in 0.1f64..4.0) {
        let euler = EulerInversion::default();
        let got = euler.invert(|s| (s + a).recip(), t).expect("invert");
        let want = (-a * t).exp();
        prop_assert!((got - want).abs() < 1e-6, "a={a}, t={t}: {got} vs {want}");
    }

    /// Damped cosine: an oscillatory transform with a closed form.
    #[test]
    fn euler_ilt_matches_damped_cosine(a in 0.1f64..2.0, w in 0.5f64..6.0, t in 0.1f64..3.0) {
        let euler = EulerInversion::new(18);
        let got = euler
            .invert(|s| (s + a) / ((s + a) * (s + a) + w * w), t)
            .expect("invert");
        let want = (-a * t).exp() * (w * t).cos();
        prop_assert!((got - want).abs() < 1e-5, "a={a}, w={w}, t={t}");
    }
}
