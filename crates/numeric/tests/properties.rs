//! Property-based tests for the numeric kernels, on the in-tree
//! `rlckit-check` harness (seeded, deterministic, replayable via
//! `RLCKIT_CHECK_SEED`).

use rlckit_check::{check_assume, gen, Check, Gen};

use rlckit_numeric::complex::Complex;
use rlckit_numeric::dense::Matrix;
use rlckit_numeric::ilt::EulerInversion;
use rlckit_numeric::poly::Polynomial;
use rlckit_numeric::series::Series;
use rlckit_numeric::sparse::TripletMatrix;

fn well_conditioned_matrix(n: usize) -> Gen<Matrix> {
    gen::vec_of(gen::range(-1.0, 1.0), n * n).map(move |data| {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = data[i * n + j];
            }
            // Diagonal dominance keeps the condition number tame.
            m[(i, i)] += n as f64;
        }
        m
    })
}

fn complex_in(lo: f64, hi: f64) -> Gen<Complex> {
    gen::tuple2(gen::range(lo, hi), gen::range(lo, hi)).map(|(re, im)| Complex::new(re, im))
}

/// Dense LU: `A·solve(A, b) = b` for well-conditioned matrices.
#[test]
fn dense_lu_round_trip() {
    Check::new().cases(64).run(
        &gen::tuple2(well_conditioned_matrix(6), gen::vec_of(gen::range(-10.0, 10.0), 6)),
        |(m, b)| {
            let x = m.solve(b).expect("solvable");
            let r = m.mul_vec(&x).expect("dims");
            for i in 0..6 {
                assert!((r[i] - b[i]).abs() < 1e-9);
            }
        },
    );
}

/// Sparse LU agrees with dense LU on the same matrix.
#[test]
fn sparse_matches_dense() {
    let entry = gen::tuple3(gen::usize_range(0, 8), gen::usize_range(0, 8), gen::range(-1.0, 1.0));
    Check::new().cases(64).run(
        &gen::tuple2(gen::vec_in(entry, 1, 40), gen::vec_of(gen::range(-5.0, 5.0), 8)),
        |(entries, b)| {
            let mut t = TripletMatrix::new(8);
            let mut dense = Matrix::zeros(8, 8);
            for &(i, j, v) in entries {
                t.push(i, j, v);
                dense[(i, j)] += v;
            }
            for i in 0..8 {
                t.push(i, i, 10.0);
                dense[(i, i)] += 10.0;
            }
            let xs = t.to_csr().lu().expect("factor").solve(b).expect("solve");
            let xd = dense.solve(b).expect("solve");
            for i in 0..8 {
                assert!((xs[i] - xd[i]).abs() < 1e-9, "i={i}: {} vs {}", xs[i], xd[i]);
            }
        },
    );
}

/// Complex field axioms hold numerically.
#[test]
fn complex_field_axioms() {
    Check::new().cases(64).run(
        &gen::tuple3(complex_in(-10.0, 10.0), complex_in(-10.0, 10.0), complex_in(-10.0, 10.0)),
        |&(a, b, c)| {
            // Distributivity.
            let lhs = a * (b + c);
            let rhs = a * b + a * c;
            assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
            // |ab| = |a||b|.
            assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9 * (1.0 + a.abs() * b.abs()));
            // Conjugation is multiplicative.
            assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-9 * (1.0 + a.abs() * b.abs()));
        },
    );
}

/// `exp(a + b) = exp(a)·exp(b)` within range.
#[test]
fn complex_exp_is_a_homomorphism() {
    Check::new().cases(64).run(
        &gen::tuple2(complex_in(-3.0, 3.0), complex_in(-3.0, 3.0)),
        |&(a, b)| {
            let lhs = (a + b).exp();
            let rhs = a.exp() * b.exp();
            assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
        },
    );
}

/// Series reciprocal is a two-sided inverse up to the truncation order.
#[test]
fn series_recip_round_trip() {
    Check::new().cases(64).run(
        &gen::tuple2(gen::vec_of(gen::range(-2.0, 2.0), 5), gen::range(0.5, 3.0)),
        |(coeffs, lead)| {
            let mut v = coeffs.clone();
            v[0] = *lead; // nonzero constant term
            let s = Series::from_coeffs(v);
            let r = s.recip().expect("invertible");
            let id = s.mul(&r);
            assert!((id.coeff(0) - 1.0).abs() < 1e-9);
            for i in 1..=s.order() {
                assert!(id.coeff(i).abs() < 1e-7, "order {i}: {}", id.coeff(i));
            }
        },
    );
}

/// Polynomial roots evaluate to ~zero, and there are degree-many.
#[test]
fn polynomial_roots_are_roots() {
    Check::new().cases(64).run(
        &gen::tuple2(
            gen::vec_in(gen::range(-3.0, 3.0), 3, 7),
            gen::select(vec![1.0f64, -1.0, 2.0]),
        ),
        |(coeffs, lead)| {
            let mut v = coeffs.clone();
            let n = v.len();
            v.push(*lead);
            let p = Polynomial::new(v);
            check_assume!(p.degree() == n);
            let roots = p.roots().expect("roots");
            assert_eq!(roots.len(), n);
            // Scale tolerance by the polynomial's coefficient magnitude at the root.
            for z in roots {
                let scale: f64 = p
                    .coeffs()
                    .iter()
                    .enumerate()
                    .map(|(i, c)| c.abs() * z.abs().powi(i as i32))
                    .sum();
                assert!(p.eval_complex(z).abs() <= 1e-6 * scale.max(1.0), "residual at {z}");
            }
        },
    );
}

/// The Euler inverse Laplace transform reproduces e^{-a t} across a
/// random decay-rate/time grid.
#[test]
fn euler_ilt_matches_exponential() {
    Check::new().cases(64).run(
        &gen::tuple2(gen::range(0.2, 5.0), gen::range(0.1, 4.0)),
        |&(a, t)| {
            let euler = EulerInversion::default();
            let got = euler.invert(|s| (s + a).recip(), t).expect("invert");
            let want = (-a * t).exp();
            assert!((got - want).abs() < 1e-6, "a={a}, t={t}: {got} vs {want}");
        },
    );
}

/// Damped cosine: an oscillatory transform with a closed form.
#[test]
fn euler_ilt_matches_damped_cosine() {
    Check::new().cases(64).run(
        &gen::tuple3(gen::range(0.1, 2.0), gen::range(0.5, 6.0), gen::range(0.1, 3.0)),
        |&(a, w, t)| {
            let euler = EulerInversion::new(18);
            let got = euler
                .invert(|s| (s + a) / ((s + a) * (s + a) + w * w), t)
                .expect("invert");
            let want = (-a * t).exp() * (w * t).cos();
            assert!((got - want).abs() < 1e-5, "a={a}, w={w}, t={t}");
        },
    );
}
