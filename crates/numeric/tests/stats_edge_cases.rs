//! Edge-case coverage for `rlckit_numeric::stats`: the Fig. 12
//! reliability numbers are time-weighted integrals over possibly
//! non-uniform simulator output, so the degenerate shapes must be
//! well-defined.

use rlckit_numeric::stats::{peak_abs, trapezoid_mean, trapezoid_rms};

#[test]
fn empty_series_are_all_zero() {
    assert_eq!(peak_abs(&[]), 0.0);
    assert_eq!(trapezoid_mean(&[], &[]), 0.0);
    assert_eq!(trapezoid_rms(&[], &[]), 0.0);
}

#[test]
fn single_sample_has_no_span() {
    assert_eq!(trapezoid_mean(&[2.0], &[7.0]), 0.0);
    assert_eq!(trapezoid_rms(&[2.0], &[7.0]), 0.0);
    assert_eq!(peak_abs(&[-7.0]), 7.0);
}

#[test]
fn zero_span_series_return_zero() {
    // Two samples at the same instant: span is degenerate.
    assert_eq!(trapezoid_mean(&[1.0, 1.0], &[3.0, 5.0]), 0.0);
    assert_eq!(trapezoid_rms(&[1.0, 1.0], &[3.0, 5.0]), 0.0);
}

#[test]
fn nonuniform_steps_weight_by_time() {
    // Value 2 held for 9 time units, then 0 for 1 unit: mean = 1.8.
    let times = [0.0, 9.0, 9.0 + 1e-12, 10.0];
    let values = [2.0, 2.0, 0.0, 0.0];
    assert!((trapezoid_mean(&times, &values) - 1.8).abs() < 1e-6);
    // rms of the same signal: sqrt(4 * 0.9) = 1.897…
    assert!((trapezoid_rms(&times, &values) - (3.6f64).sqrt()).abs() < 1e-6);
}

#[test]
fn uniform_and_nonuniform_sampling_agree_on_smooth_signals() {
    // A slow ramp sampled uniformly vs. with jittered steps must give
    // the same trapezoid integral (the rule is exact for linear data).
    let uniform_t: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
    let jitter_t: Vec<f64> = {
        let mut t: Vec<f64> = uniform_t.clone();
        for (i, v) in t.iter_mut().enumerate() {
            if i > 0 && i < 100 {
                *v += if i % 2 == 0 { 3e-3 } else { -3e-3 };
            }
        }
        t
    };
    let ramp = |ts: &[f64]| -> Vec<f64> { ts.iter().map(|&t| 5.0 * t).collect() };
    let mu = trapezoid_mean(&uniform_t, &ramp(&uniform_t));
    let mj = trapezoid_mean(&jitter_t, &ramp(&jitter_t));
    assert!((mu - 2.5).abs() < 1e-12);
    assert!((mj - 2.5).abs() < 1e-9);
}

#[test]
#[should_panic(expected = "length mismatch")]
fn mean_with_mismatched_lengths_panics() {
    let _ = trapezoid_mean(&[0.0, 1.0, 2.0], &[1.0, 2.0]);
}

#[test]
#[should_panic(expected = "length mismatch")]
fn rms_with_mismatched_lengths_panics() {
    let _ = trapezoid_rms(&[0.0, 1.0], &[1.0]);
}
