//! Truncated Taylor-series algebra in one variable.
//!
//! The transfer-function denominator of the driver–interconnect–load
//! structure (paper Eq. 1) is an entire function of the Laplace variable
//! `s`; its Maclaurin coefficients are exactly the moments `b₁, b₂, …`
//! that the Padé reduction needs. Because `cosh(θh)` and `sinh(θh)/θh`
//! are power series in `(θh)² = (r + sl)·s·c·h²` — itself a polynomial in
//! `s` — the whole expansion is mechanical polynomial algebra, which this
//! module provides to arbitrary truncation order. Matching the paper's
//! hand-derived `b₁` and `b₂` against this machinery is one of the
//! workspace's strongest self-checks.

use crate::{NumericError, Result};

/// A Taylor series `Σ aᵢ·xⁱ` truncated (inclusively) at a fixed order.
///
/// All arithmetic stays at the truncation order of the operands (which
/// must agree).
///
/// # Examples
///
/// ```
/// use rlckit_numeric::series::Series;
///
/// // (1 + x)² = 1 + 2x + x² to order 3.
/// let p = Series::from_coeffs(vec![1.0, 1.0, 0.0, 0.0]);
/// let sq = p.mul(&p);
/// assert_eq!(sq.coeffs(), &[1.0, 2.0, 1.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    coeffs: Vec<f64>,
}

impl Series {
    /// Creates a series from ascending coefficients; the truncation order
    /// is `coeffs.len() - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    #[must_use]
    pub fn from_coeffs(coeffs: Vec<f64>) -> Self {
        assert!(!coeffs.is_empty(), "series needs at least a constant term");
        Self { coeffs }
    }

    /// The zero series at truncation order `order`.
    #[must_use]
    pub fn zero(order: usize) -> Self {
        Self {
            coeffs: vec![0.0; order + 1],
        }
    }

    /// The constant-one series at truncation order `order`.
    #[must_use]
    pub fn one(order: usize) -> Self {
        let mut s = Self::zero(order);
        s.coeffs[0] = 1.0;
        s
    }

    /// The series `x` (the variable itself) at truncation order `order`.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`.
    #[must_use]
    pub fn variable(order: usize) -> Self {
        assert!(order >= 1, "variable needs order >= 1");
        let mut s = Self::zero(order);
        s.coeffs[1] = 1.0;
        s
    }

    /// Returns the truncation order.
    #[must_use]
    pub fn order(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Returns the coefficients in ascending order.
    #[must_use]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Returns coefficient `i` (0 beyond the truncation order).
    #[must_use]
    pub fn coeff(&self, i: usize) -> f64 {
        self.coeffs.get(i).copied().unwrap_or(0.0)
    }

    /// Adds two series of identical truncation order.
    ///
    /// # Panics
    ///
    /// Panics if the orders disagree.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.order(), other.order(), "order mismatch");
        Self {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Multiplies two series, truncating at the common order.
    ///
    /// # Panics
    ///
    /// Panics if the orders disagree.
    #[must_use]
    pub fn mul(&self, other: &Self) -> Self {
        assert_eq!(self.order(), other.order(), "order mismatch");
        let n = self.coeffs.len();
        let mut out = vec![0.0; n];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().take(n - i).enumerate() {
                out[i + j] += a * b;
            }
        }
        Self { coeffs: out }
    }

    /// Scales every coefficient by `factor`.
    #[must_use]
    pub fn scale(&self, factor: f64) -> Self {
        Self {
            coeffs: self.coeffs.iter().map(|c| c * factor).collect(),
        }
    }

    /// Multiplies by `x^p` (shifting coefficients up, truncating the top).
    #[must_use]
    pub fn shift_up(&self, p: usize) -> Self {
        let n = self.coeffs.len();
        let mut out = vec![0.0; n];
        out[p..n].copy_from_slice(&self.coeffs[..n - p]);
        Self { coeffs: out }
    }

    /// Composes an entire function `f(u) = Σ_m w(m)·uᵐ` with this series,
    /// which must have a zero constant term.
    ///
    /// Used for `cosh(θh) = Σ Pᵐ/(2m)!` and `sinh(θh)/(θh) = Σ Pᵐ/(2m+1)!`
    /// with `P = (θh)²` a polynomial in `s`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] if the constant term is
    /// nonzero (the composition would not terminate at the truncation
    /// order).
    pub fn compose_entire(&self, weight: impl Fn(usize) -> f64) -> Result<Self> {
        if self.coeffs[0] != 0.0 {
            return Err(NumericError::InvalidInput(
                "composition argument must have zero constant term".to_string(),
            ));
        }
        let order = self.order();
        let mut acc = Series::zero(order).add(&Series::one(order).scale(weight(0)));
        let mut power = Series::one(order);
        // Pᵐ has lowest degree ≥ m, so m > order contributes nothing.
        for m in 1..=order {
            power = power.mul(self);
            acc = acc.add(&power.scale(weight(m)));
        }
        Ok(acc)
    }

    /// Returns the reciprocal series `1/self`, requiring a nonzero
    /// constant term.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] if the constant term is 0.
    pub fn recip(&self) -> Result<Self> {
        let a0 = self.coeffs[0];
        if a0 == 0.0 {
            return Err(NumericError::InvalidInput(
                "reciprocal of series with zero constant term".to_string(),
            ));
        }
        let n = self.coeffs.len();
        let mut out = vec![0.0; n];
        out[0] = 1.0 / a0;
        for k in 1..n {
            let mut acc = 0.0;
            for j in 1..=k {
                acc += self.coeffs[j] * out[k - j];
            }
            out[k] = -acc / a0;
        }
        Ok(Self { coeffs: out })
    }

    /// Evaluates the truncated series at `x` by Horner's rule.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factorial(n: usize) -> f64 {
        (1..=n).map(|i| i as f64).product()
    }

    #[test]
    fn mul_truncates_consistently() {
        let a = Series::from_coeffs(vec![1.0, 2.0, 3.0]);
        let b = Series::from_coeffs(vec![4.0, 5.0, 6.0]);
        // (1+2x+3x²)(4+5x+6x²) = 4 + 13x + 28x² + …
        let p = a.mul(&b);
        assert_eq!(p.coeffs(), &[4.0, 13.0, 28.0]);
    }

    #[test]
    fn compose_exponential_series() {
        // exp(P) with P = x (weight 1/m!) reproduces e^x coefficients.
        let p = Series::variable(6);
        let e = p.compose_entire(|m| 1.0 / factorial(m)).unwrap();
        for i in 0..=6 {
            assert!((e.coeff(i) - 1.0 / factorial(i)).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn compose_cosh_of_sqrt_polynomial() {
        // cosh(√P) with P = x: Σ xᵐ/(2m)! — the transmission-line pattern.
        let p = Series::variable(5);
        let c = p.compose_entire(|m| 1.0 / factorial(2 * m)).unwrap();
        assert_eq!(c.coeff(0), 1.0);
        assert!((c.coeff(1) - 0.5).abs() < 1e-15);
        assert!((c.coeff(2) - 1.0 / 24.0).abs() < 1e-15);
    }

    #[test]
    fn compose_rejects_nonzero_constant() {
        let p = Series::one(3);
        assert!(p.compose_entire(|_| 1.0).is_err());
    }

    #[test]
    fn recip_of_geometric() {
        // 1/(1 - x) = 1 + x + x² + …
        let s = Series::from_coeffs(vec![1.0, -1.0, 0.0, 0.0, 0.0]);
        let r = s.recip().unwrap();
        assert_eq!(r.coeffs(), &[1.0, 1.0, 1.0, 1.0, 1.0]);
        // Round-trip: s · (1/s) = 1.
        let id = s.mul(&r);
        assert!((id.coeff(0) - 1.0).abs() < 1e-15);
        for i in 1..=4 {
            assert!(id.coeff(i).abs() < 1e-15);
        }
    }

    #[test]
    fn recip_requires_nonzero_constant() {
        assert!(Series::variable(3).recip().is_err());
    }

    #[test]
    fn shift_up_moves_coefficients() {
        let s = Series::from_coeffs(vec![1.0, 2.0, 3.0, 4.0]);
        let t = s.shift_up(2);
        assert_eq!(t.coeffs(), &[0.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn eval_matches_polynomial_value() {
        let s = Series::from_coeffs(vec![1.0, -1.0, 0.5]);
        assert!((s.eval(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coeff_beyond_order_is_zero() {
        let s = Series::one(2);
        assert_eq!(s.coeff(10), 0.0);
    }
}
