//! Numerical inverse Laplace transforms.
//!
//! The exact step response of the driver–interconnect–load structure is
//! "analytically intractable" (paper §2.1); the paper therefore reduces
//! the transfer function to two poles. To *validate* that reduction we
//! invert the exact `H(s)/s` numerically. Two classic algorithms are
//! provided:
//!
//! * [`EulerInversion`] — the Abate–Whitt Euler algorithm (Fourier series
//!   with Euler summation). Robust for oscillatory (underdamped)
//!   responses, which is the regime where inductance matters.
//! * [`TalbotInversion`] — the fixed-Talbot deformed-contour method.
//!   Spectacularly accurate for smooth, overdamped responses.
//!
//! Both assume all singularities of `F` lie in the open left half-plane,
//! which holds for every passive circuit transfer function in this
//! workspace.

use crate::complex::Complex;
use crate::{NumericError, Result};

/// Abate–Whitt Euler-summation inverse Laplace transform.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::ilt::EulerInversion;
/// use rlckit_numeric::Complex;
///
/// # fn main() -> Result<(), rlckit_numeric::NumericError> {
/// let euler = EulerInversion::new(16);
/// // F(s) = 1/(s+1)  ⇒  f(t) = e^{-t}
/// let f = euler.invert(|s| (s + 1.0).recip(), 0.7)?;
/// assert!((f - (-0.7f64).exp()).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EulerInversion {
    m: usize,
    /// Euler-accelerated binomial weights `ξ₀ … ξ_{2M}`.
    xi: Vec<f64>,
}

impl EulerInversion {
    /// Creates an inverter with acceleration parameter `m`.
    ///
    /// Accuracy is roughly `0.6·m` significant digits until round-off
    /// (≈ `10^{m/3}` amplification) takes over; `m = 16` is a good
    /// default in `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` or `m > 40` (weights overflow `f64` above that).
    #[must_use]
    pub fn new(m: usize) -> Self {
        assert!((2..=40).contains(&m), "euler parameter out of range");
        let mut xi = vec![0.0; 2 * m + 1];
        xi[0] = 0.5;
        for x in xi.iter_mut().take(m + 1).skip(1) {
            *x = 1.0;
        }
        let two_pow_neg_m = 0.5f64.powi(m as i32);
        xi[2 * m] = two_pow_neg_m;
        // ξ_{2M-j} = ξ_{2M-j+1} + 2^{-M}·C(M, j)
        let mut binom = 1.0f64; // C(M, 0)
        for j in 1..m {
            binom = binom * (m - j + 1) as f64 / j as f64; // C(M, j)
            xi[2 * m - j] = xi[2 * m - j + 1] + two_pow_neg_m * binom;
        }
        Self { m, xi }
    }

    /// Returns the acceleration parameter.
    #[must_use]
    pub fn parameter(&self) -> usize {
        self.m
    }

    /// Inverts `F` at time `t > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] if `t ≤ 0` or the transform
    /// evaluates to a non-finite value on the summation abscissas.
    pub fn invert(&self, transform: impl Fn(Complex) -> Complex, t: f64) -> Result<f64> {
        if t <= 0.0 || !t.is_finite() {
            return Err(NumericError::InvalidInput(format!(
                "inverse laplace requires t > 0, got {t}"
            )));
        }
        let m = self.m as f64;
        let a = m * std::f64::consts::LN_10 / 3.0;
        let scale = 10.0f64.powf(m / 3.0) / t;
        let mut sum = 0.0;
        for (k, &xi) in self.xi.iter().enumerate() {
            let beta = Complex::new(a, std::f64::consts::PI * k as f64);
            let val = transform(beta / t);
            if !val.is_finite() {
                return Err(NumericError::InvalidInput(format!(
                    "transform non-finite at s = {}",
                    beta / t
                )));
            }
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            sum += sign * xi * val.re;
        }
        Ok(scale * sum)
    }

    /// Inverts `F` on a whole grid of times.
    ///
    /// # Errors
    ///
    /// Propagates the first error of [`EulerInversion::invert`].
    pub fn invert_grid(
        &self,
        transform: impl Fn(Complex) -> Complex,
        times: &[f64],
    ) -> Result<Vec<f64>> {
        times.iter().map(|&t| self.invert(&transform, t)).collect()
    }
}

impl Default for EulerInversion {
    fn default() -> Self {
        Self::new(16)
    }
}

/// Fixed-Talbot inverse Laplace transform (Abate–Valkó).
///
/// # Examples
///
/// ```
/// use rlckit_numeric::ilt::TalbotInversion;
/// use rlckit_numeric::Complex;
///
/// # fn main() -> Result<(), rlckit_numeric::NumericError> {
/// let talbot = TalbotInversion::new(32);
/// // F(s) = 1/s²  ⇒  f(t) = t
/// let f = talbot.invert(|s| (s * s).recip(), 2.5)?;
/// assert!((f - 2.5).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TalbotInversion {
    m: usize,
}

impl TalbotInversion {
    /// Creates an inverter using `m` contour nodes.
    ///
    /// # Panics
    ///
    /// Panics if `m < 4`.
    #[must_use]
    pub fn new(m: usize) -> Self {
        assert!(m >= 4, "talbot needs at least 4 nodes");
        Self { m }
    }

    /// Returns the number of contour nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.m
    }

    /// Inverts `F` at time `t > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] if `t ≤ 0` or the transform
    /// evaluates to a non-finite value on the contour.
    pub fn invert(&self, transform: impl Fn(Complex) -> Complex, t: f64) -> Result<f64> {
        if t <= 0.0 || !t.is_finite() {
            return Err(NumericError::InvalidInput(format!(
                "inverse laplace requires t > 0, got {t}"
            )));
        }
        let m = self.m;
        let r = 2.0 * m as f64 / (5.0 * t);
        // k = 0 node: the contour's vertex on the real axis.
        let mut sum = 0.5 * (Complex::from_real(r * t).exp() * transform(Complex::from_real(r))).re;
        for k in 1..m {
            let theta = k as f64 * std::f64::consts::PI / m as f64;
            let cot = theta.cos() / theta.sin();
            let s = Complex::new(r * theta * cot, r * theta);
            let sigma = theta + (theta * cot - 1.0) * cot;
            let val = transform(s);
            if !val.is_finite() {
                return Err(NumericError::InvalidInput(format!(
                    "transform non-finite at s = {s}"
                )));
            }
            let w = (s * t).exp() * Complex::new(1.0, sigma);
            sum += (w * val).re;
        }
        Ok(2.0 / (5.0 * t) * sum)
    }

    /// Inverts `F` on a whole grid of times.
    ///
    /// # Errors
    ///
    /// Propagates the first error of [`TalbotInversion::invert`].
    pub fn invert_grid(
        &self,
        transform: impl Fn(Complex) -> Complex,
        times: &[f64],
    ) -> Result<Vec<f64>> {
        times.iter().map(|&t| self.invert(&transform, t)).collect()
    }
}

impl Default for TalbotInversion {
    fn default() -> Self {
        Self::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(
        invert: impl Fn(&dyn Fn(Complex) -> Complex, f64) -> Result<f64>,
        transform: impl Fn(Complex) -> Complex + 'static,
        exact: impl Fn(f64) -> f64,
        times: &[f64],
        tol: f64,
        label: &str,
    ) {
        for &t in times {
            let got = invert(&transform, t).unwrap();
            let want = exact(t);
            assert!(
                (got - want).abs() < tol,
                "{label}: t={t}, got {got}, want {want}"
            );
        }
    }

    #[test]
    fn euler_step_function() {
        let e = EulerInversion::default();
        check(
            |f, t| e.invert(f, t),
            |s| s.recip(),
            |_| 1.0,
            &[0.1, 1.0, 5.0],
            1e-8,
            "euler 1/s",
        );
    }

    #[test]
    fn euler_ramp_and_exponential() {
        let e = EulerInversion::default();
        check(
            |f, t| e.invert(f, t),
            |s| (s * s).recip(),
            |t| t,
            &[0.2, 1.0, 3.0],
            1e-7,
            "euler 1/s^2",
        );
        check(
            |f, t| e.invert(f, t),
            |s| (s + 2.0).recip(),
            |t| (-2.0 * t).exp(),
            &[0.1, 0.5, 2.0],
            1e-8,
            "euler exp",
        );
    }

    #[test]
    fn euler_handles_oscillation() {
        let e = EulerInversion::new(20);
        check(
            |f, t| e.invert(f, t),
            |s| (s * s + 1.0).recip(),
            f64::sin,
            &[0.5, 1.5, 3.0, 6.0],
            1e-6,
            "euler sin",
        );
    }

    #[test]
    fn euler_underdamped_two_pole_step() {
        // H(s)/s with ζ = 0.3, ωn = 1: the exact paper regime.
        let (zeta, wn) = (0.3, 1.0);
        let e = EulerInversion::new(18);
        let transform = move |s: Complex| {
            (s * (s * s / (wn * wn) + s * (2.0 * zeta / wn) + 1.0)).recip()
        };
        let wd = wn * (1.0f64 - zeta * zeta).sqrt();
        let exact = move |t: f64| {
            1.0 - (-zeta * wn * t).exp()
                * ((wd * t).cos() + zeta * wn / wd * (wd * t).sin())
        };
        check(
            |f, t| e.invert(f, t),
            transform,
            exact,
            &[0.3, 1.0, 2.0, 4.0, 8.0],
            1e-6,
            "euler two-pole",
        );
    }

    #[test]
    fn talbot_smooth_transforms() {
        let t = TalbotInversion::default();
        check(
            |f, x| t.invert(f, x),
            |s| s.recip(),
            |_| 1.0,
            &[0.1, 1.0, 10.0],
            1e-9,
            "talbot 1/s",
        );
        check(
            |f, x| t.invert(f, x),
            |s| (s + 1.0).recip(),
            |x| (-x).exp(),
            &[0.2, 1.0, 4.0],
            1e-9,
            "talbot exp",
        );
    }

    #[test]
    fn talbot_mildly_oscillatory() {
        // Talbot degrades with oscillation but must stay usable for a few
        // periods — matching how the oracle is applied (first crossing).
        let t = TalbotInversion::new(48);
        check(
            |f, x| t.invert(f, x),
            |s| (s * s + 1.0).recip(),
            f64::sin,
            &[0.5, 1.5, 3.0],
            1e-5,
            "talbot sin",
        );
    }

    #[test]
    fn invalid_time_is_rejected() {
        let e = EulerInversion::default();
        assert!(e.invert(|s| s.recip(), 0.0).is_err());
        assert!(e.invert(|s| s.recip(), -1.0).is_err());
        let t = TalbotInversion::default();
        assert!(t.invert(|s| s.recip(), 0.0).is_err());
    }

    #[test]
    fn grid_inversion_matches_pointwise() {
        let e = EulerInversion::default();
        let times = [0.5, 1.0, 2.0];
        let grid = e.invert_grid(|s| s.recip(), &times).unwrap();
        for (&t, &g) in times.iter().zip(&grid) {
            assert_eq!(g, e.invert(|s| s.recip(), t).unwrap());
        }
    }

    #[test]
    fn euler_weights_sum_to_ten_thirds_power() {
        // Σ (-1)^k ξ_k telescopes to a small number; sanity-check the
        // construction against the closed form for small M.
        let e = EulerInversion::new(4);
        assert_eq!(e.xi[0], 0.5);
        assert_eq!(e.xi[4], 1.0);
        assert_eq!(e.xi[8], 0.0625);
        // ξ_7 = ξ_8 + 2^-4·C(4,1) = 0.0625 + 0.25
        assert!((e.xi[7] - 0.3125).abs() < 1e-15);
        // ξ_5 = ξ_6 + 2^-4 C(4,3); ξ_6 = ξ_7 + 2^-4 C(4,2)
        assert!((e.xi[6] - (0.3125 + 0.375)).abs() < 1e-15);
        assert!((e.xi[5] - (0.6875 + 0.25)).abs() < 1e-15);
    }
}
