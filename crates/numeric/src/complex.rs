//! Complex arithmetic with the transcendental functions needed for
//! transmission-line transfer-function evaluation.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over `f64`.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::Complex;
///
/// let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * 1e9); // jω at 1 GHz
/// let z = (Complex::new(4400.0, 0.0) + s * 1e-6) / (s * 203.5e-12);
/// let z0 = z.sqrt(); // lossy characteristic impedance
/// assert!(z0.re > 0.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[must_use]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates.
    #[must_use]
    pub fn from_polar(radius: f64, angle: f64) -> Self {
        Self::new(radius * angle.cos(), radius * angle.sin())
    }

    /// Returns the complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Returns the modulus `|z|`, computed without intermediate overflow.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns the squared modulus `|z|²`.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the principal argument in `(-π, π]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns the multiplicative inverse `1/z`.
    #[must_use]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Returns the principal square root (branch cut on the negative real
    /// axis, result in the right half-plane).
    #[must_use]
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return Self::ZERO;
        }
        let r = self.abs();
        // Numerically stable form avoiding cancellation.
        let re = ((r + self.re) / 2.0).sqrt();
        let im_mag = ((r - self.re) / 2.0).sqrt();
        Self::new(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }

    /// Returns the complex exponential `e^z`.
    #[must_use]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Returns the principal natural logarithm.
    #[must_use]
    pub fn ln(self) -> Self {
        Self::new(self.abs().ln(), self.arg())
    }

    /// Returns the hyperbolic cosine.
    #[must_use]
    pub fn cosh(self) -> Self {
        Self::new(
            self.re.cosh() * self.im.cos(),
            self.re.sinh() * self.im.sin(),
        )
    }

    /// Returns the hyperbolic sine.
    #[must_use]
    pub fn sinh(self) -> Self {
        Self::new(
            self.re.sinh() * self.im.cos(),
            self.re.cosh() * self.im.sin(),
        )
    }

    /// Returns the hyperbolic tangent.
    #[must_use]
    pub fn tanh(self) -> Self {
        self.sinh() / self.cosh()
    }

    /// Returns the cosine.
    #[must_use]
    pub fn cos(self) -> Self {
        Self::new(
            self.re.cos() * self.im.cosh(),
            -self.re.sin() * self.im.sinh(),
        )
    }

    /// Returns the sine.
    #[must_use]
    pub fn sin(self) -> Self {
        Self::new(
            self.re.sin() * self.im.cosh(),
            self.re.cos() * self.im.sinh(),
        )
    }

    /// Returns `sinh(z)/z`, stable near `z = 0`.
    ///
    /// Transmission-line two-ports use `sinh(θh)/θ` and `θ·sinh(θh)`
    /// combinations that are even in `θ`; expressing them through `sinhc`
    /// keeps them single-valued regardless of the square-root branch.
    #[must_use]
    pub fn sinhc(self) -> Self {
        if self.abs() < 1e-6 {
            // sinh(z)/z = 1 + z²/6 + z⁴/120 + …
            let z2 = self * self;
            return Self::ONE + z2 * (1.0 / 6.0) + z2 * z2 * (1.0 / 120.0);
        }
        self.sinh() / self
    }

    /// Returns `true` if both parts are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Raises the number to an integer power by repeated squaring.
    #[must_use]
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Self::ONE;
        }
        let mut base = if n < 0 { self.recip() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Self::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        // Smith's algorithm for a robust complex division.
        if rhs.re.abs() >= rhs.im.abs() {
            let ratio = rhs.im / rhs.re;
            let denom = rhs.re + rhs.im * ratio;
            Self::new(
                (self.re + self.im * ratio) / denom,
                (self.im - self.re * ratio) / denom,
            )
        } else {
            let ratio = rhs.re / rhs.im;
            let denom = rhs.re * ratio + rhs.im;
            Self::new(
                (self.re * ratio + self.im) / denom,
                (self.im * ratio - self.re) / denom,
            )
        }
    }
}

impl Neg for Complex {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Self;
    fn add(self, rhs: f64) -> Self {
        Self::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Self;
    fn sub(self, rhs: f64) -> Self {
        Self::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<Complex> for f64 {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self + rhs.re, rhs.im)
    }
}

impl Sub<Complex> for f64 {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self - rhs.re, -rhs.im)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self * rhs.re, self * rhs.im)
    }
}

impl Div<Complex> for f64 {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        Complex::from_real(self) / rhs
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, z| acc + z)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -4.0);
        assert_eq!(a + b, Complex::new(4.0, -2.0));
        assert_eq!(a - b, Complex::new(-2.0, 6.0));
        assert_eq!(a * b, Complex::new(11.0, 2.0));
        assert!(close(a / b * b, a, TOL));
        assert!(close(a.recip() * a, Complex::ONE, TOL));
    }

    #[test]
    fn mixed_real_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        assert_eq!(a + 1.0, Complex::new(2.0, 2.0));
        assert_eq!(1.0 + a, Complex::new(2.0, 2.0));
        assert_eq!(a - 1.0, Complex::new(0.0, 2.0));
        assert_eq!(1.0 - a, Complex::new(0.0, -2.0));
        assert_eq!(a * 2.0, Complex::new(2.0, 4.0));
        assert_eq!(2.0 * a, Complex::new(2.0, 4.0));
        assert_eq!(a / 2.0, Complex::new(0.5, 1.0));
        assert!(close(2.0 / a, a.recip() * 2.0, TOL));
    }

    #[test]
    fn sqrt_is_principal_branch() {
        // sqrt(-1) = i, not -i.
        let z = Complex::new(-1.0, 0.0).sqrt();
        assert!(close(z, Complex::I, TOL));
        // sqrt of conjugate is conjugate of sqrt (below the cut).
        let z = Complex::new(-1.0, -1e-30).sqrt();
        assert!(z.im < 0.0);
        // Round-trip.
        for &(re, im) in &[(3.0, 4.0), (-3.0, 4.0), (-3.0, -4.0), (0.0, 2.0)] {
            let w = Complex::new(re, im);
            let s = w.sqrt();
            assert!(close(s * s, w, 1e-10));
            assert!(s.re >= 0.0);
        }
    }

    #[test]
    fn exp_ln_round_trip() {
        let z = Complex::new(0.3, -1.2);
        assert!(close(z.exp().ln(), z, 1e-12));
        assert!(close(
            Complex::new(0.0, core::f64::consts::PI).exp(),
            Complex::new(-1.0, 0.0),
            1e-12
        ));
    }

    #[test]
    fn hyperbolic_identities() {
        let z = Complex::new(0.7, 0.4);
        // cosh² - sinh² = 1
        let c = z.cosh();
        let s = z.sinh();
        assert!(close(c * c - s * s, Complex::ONE, 1e-12));
        // tanh = sinh/cosh
        assert!(close(z.tanh(), s / c, 1e-12));
        // cosh(z) = (e^z + e^-z)/2
        assert!(close(c, (z.exp() + (-z).exp()) / 2.0, 1e-12));
    }

    #[test]
    fn trigonometric_identities() {
        let z = Complex::new(1.1, -0.3);
        let c = z.cos();
        let s = z.sin();
        assert!(close(c * c + s * s, Complex::ONE, 1e-12));
        // sin(iz) = i sinh(z)
        assert!(close((Complex::I * z).sin(), Complex::I * z.sinh(), 1e-12));
    }

    #[test]
    fn sinhc_is_stable_near_zero() {
        assert!(close(Complex::ZERO.sinhc(), Complex::ONE, TOL));
        let tiny = Complex::new(1e-9, 1e-9);
        assert!(close(tiny.sinhc(), Complex::ONE, 1e-12));
        let z = Complex::new(0.5, 0.25);
        assert!(close(z.sinhc(), z.sinh() / z, 1e-13));
        // Even function of z.
        assert!(close(z.sinhc(), (-z).sinhc(), 1e-13));
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex::new(1.2, -0.7);
        let mut acc = Complex::ONE;
        for n in 0..8 {
            assert!(close(z.powi(n), acc, 1e-10 * acc.abs().max(1.0)));
            acc *= z;
        }
        assert!(close(z.powi(-3), (z * z * z).recip(), 1e-12));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, 0.75);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - 0.75).abs() < TOL);
    }

    #[test]
    fn division_avoids_overflow() {
        let big = Complex::new(1e300, 1e300);
        let q = big / big;
        assert!(close(q, Complex::ONE, 1e-12));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(f64::from(k), 1.0)).sum();
        assert_eq!(total, Complex::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1-2i");
    }
}
