//! Error type shared by all numeric routines.

use core::fmt;

/// Errors produced by the numeric kernels.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::{dense::Matrix, NumericError};
///
/// let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
/// match singular.lu() {
///     Err(NumericError::SingularMatrix { pivot }) => assert!(pivot < 2),
///     other => panic!("expected singular matrix, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericError {
    /// A (near-)zero pivot was encountered during factorization.
    SingularMatrix {
        /// Index of the elimination step at which the pivot vanished.
        pivot: usize,
    },
    /// An iterative method exhausted its iteration budget.
    NoConvergence {
        /// The iteration budget that was exhausted.
        iterations: usize,
        /// Residual magnitude at the last iterate.
        residual: f64,
    },
    /// A root bracket `[a, b]` did not actually bracket a sign change.
    InvalidBracket {
        /// Lower end of the offending bracket.
        lo: f64,
        /// Upper end of the offending bracket.
        hi: f64,
    },
    /// An argument was outside the routine's domain.
    InvalidInput(String),
    /// Dimensions of the operands do not agree.
    DimensionMismatch {
        /// Dimension expected by the routine.
        expected: usize,
        /// Dimension that was provided.
        actual: usize,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at elimination step {pivot}")
            }
            Self::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            Self::InvalidBracket { lo, hi } => {
                write!(f, "interval [{lo:.6e}, {hi:.6e}] does not bracket a root")
            }
            Self::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            Self::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NumericError::NoConvergence {
            iterations: 50,
            residual: 1e-3,
        };
        let msg = format!("{e}");
        assert!(msg.starts_with("no convergence"));
        assert!(msg.contains("50"));

        let e = NumericError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        assert_eq!(format!("{e}"), "dimension mismatch: expected 3, got 2");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }
}
