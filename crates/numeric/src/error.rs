//! Error type shared by all numeric routines.

use core::fmt;

/// Errors produced by the numeric kernels.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::{dense::Matrix, NumericError};
///
/// let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
/// match singular.lu() {
///     Err(NumericError::SingularMatrix { pivot }) => assert!(pivot < 2),
///     other => panic!("expected singular matrix, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericError {
    /// A (near-)zero pivot was encountered during factorization.
    SingularMatrix {
        /// Index of the elimination step at which the pivot vanished.
        pivot: usize,
    },
    /// An iterative method exhausted its iteration budget.
    NoConvergence {
        /// The iteration budget that was exhausted.
        iterations: usize,
        /// Residual magnitude at the last iterate.
        residual: f64,
    },
    /// A root bracket `[a, b]` did not actually bracket a sign change.
    InvalidBracket {
        /// Lower end of the offending bracket.
        lo: f64,
        /// Upper end of the offending bracket.
        hi: f64,
    },
    /// An argument was outside the routine's domain.
    InvalidInput(String),
    /// Dimensions of the operands do not agree.
    DimensionMismatch {
        /// Dimension expected by the routine.
        expected: usize,
        /// Dimension that was provided.
        actual: usize,
    },
    /// A residual or iterate lost finiteness mid-solve.
    NonFiniteResidual {
        /// The iterate (for systems: its infinity norm) where
        /// finiteness was lost.
        at: f64,
        /// Iteration at which it happened.
        iteration: usize,
    },
    /// A deterministic fault-injection site fired (`rlckit-fault`,
    /// armed via `RLCKIT_FAULTS`). Never produced in production runs.
    InjectedFault {
        /// The faultpoint site that fired.
        site: &'static str,
    },
}

/// Coarse classification of a [`NumericError`], used by retry ladders
/// to decide whether a perturbed restart can plausibly help.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// An iteration/evaluation budget ran out ([`NumericError::NoConvergence`]).
    IterationBudget,
    /// A bracket was invalid or its expansion exhausted
    /// ([`NumericError::InvalidBracket`]).
    BracketExhausted,
    /// A residual or iterate lost finiteness
    /// ([`NumericError::NonFiniteResidual`]).
    NonFiniteResidual,
    /// A fault-injection site fired ([`NumericError::InjectedFault`]).
    InjectedFault,
    /// A linear solve met a vanishing pivot
    /// ([`NumericError::SingularMatrix`]).
    Singular,
    /// The inputs were outside the routine's domain
    /// ([`NumericError::InvalidInput`], [`NumericError::DimensionMismatch`]).
    InvalidInput,
}

impl NumericError {
    /// The coarse [`FailureClass`] of this error.
    #[must_use]
    pub fn class(&self) -> FailureClass {
        match self {
            Self::NoConvergence { .. } => FailureClass::IterationBudget,
            Self::InvalidBracket { .. } => FailureClass::BracketExhausted,
            Self::NonFiniteResidual { .. } => FailureClass::NonFiniteResidual,
            Self::InjectedFault { .. } => FailureClass::InjectedFault,
            Self::SingularMatrix { .. } => FailureClass::Singular,
            Self::InvalidInput(_) | Self::DimensionMismatch { .. } => FailureClass::InvalidInput,
        }
    }

    /// Whether this failure came from an injected fault.
    #[must_use]
    pub fn is_injected(&self) -> bool {
        self.class() == FailureClass::InjectedFault
    }

    /// Whether a retry — same problem, perturbed starting point — could
    /// plausibly succeed. Domain errors ([`FailureClass::InvalidInput`])
    /// are deterministic rejections and never retried.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        !matches!(self.class(), FailureClass::InvalidInput)
    }
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at elimination step {pivot}")
            }
            Self::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            Self::InvalidBracket { lo, hi } => {
                write!(f, "interval [{lo:.6e}, {hi:.6e}] does not bracket a root")
            }
            Self::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            Self::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            Self::NonFiniteResidual { at, iteration } => write!(
                f,
                "residual became non-finite at iterate {at:.6e} (iteration {iteration})"
            ),
            Self::InjectedFault { site } => {
                write!(f, "injected fault at site {site}")
            }
        }
    }
}

impl std::error::Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NumericError::NoConvergence {
            iterations: 50,
            residual: 1e-3,
        };
        let msg = format!("{e}");
        assert!(msg.starts_with("no convergence"));
        assert!(msg.contains("50"));

        let e = NumericError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        assert_eq!(format!("{e}"), "dimension mismatch: expected 3, got 2");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }

    #[test]
    fn classification_and_retryability() {
        let budget = NumericError::NoConvergence {
            iterations: 10,
            residual: 1e-3,
        };
        assert_eq!(budget.class(), FailureClass::IterationBudget);
        assert!(budget.is_retryable());
        assert!(!budget.is_injected());

        let bracket = NumericError::InvalidBracket { lo: 0.0, hi: 1.0 };
        assert_eq!(bracket.class(), FailureClass::BracketExhausted);
        assert!(bracket.is_retryable());

        let nonfinite = NumericError::NonFiniteResidual {
            at: 2.0,
            iteration: 3,
        };
        assert_eq!(nonfinite.class(), FailureClass::NonFiniteResidual);
        assert!(nonfinite.is_retryable());
        assert!(format!("{nonfinite}").contains("non-finite"));

        let injected = NumericError::InjectedFault { site: "roots.test" };
        assert!(injected.is_injected());
        assert!(injected.is_retryable());
        assert_eq!(format!("{injected}"), "injected fault at site roots.test");

        let domain = NumericError::InvalidInput("bad".into());
        assert_eq!(domain.class(), FailureClass::InvalidInput);
        assert!(!domain.is_retryable());
    }
}
