//! Deterministic pseudo-random numbers for workload generation and
//! Monte-Carlo studies.
//!
//! The workspace is hermetic (no registry dependencies), so the random
//! layer every stochastic check needs — bench workload draws, the §3.2
//! inductance-variation Monte-Carlo, the property-test harness in
//! `rlckit-check` — lives here. The generator is xoshiro256++ seeded
//! through SplitMix64, the combination its authors recommend: nearby
//! integer seeds (`seed`, `seed + 1`, …) still yield statistically
//! independent streams, which is exactly what a per-case property-test
//! seed schedule requires.
//!
//! Everything is deterministic: the same seed always produces the same
//! sequence, on every platform, so any failure can be replayed from its
//! reported seed alone.
//!
//! # Examples
//!
//! ```
//! use rlckit_numeric::rng::Rng;
//!
//! let mut rng = Rng::new(42);
//! let a = rng.uniform(0.0, 5.0);
//! assert!((0.0..5.0).contains(&a));
//!
//! // Same seed, same stream.
//! let b = Rng::new(42).uniform(0.0, 5.0);
//! assert_eq!(a.to_bits(), b.to_bits());
//! ```

/// One step of the SplitMix64 sequence; used to expand a 64-bit seed
/// into the 256-bit xoshiro state.
#[must_use]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second Box–Muller variate, so `normal` consumes uniforms
    /// in pairs.
    spare_normal: Option<u64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            *slot = splitmix64(&mut sm);
        }
        if state == [0, 0, 0, 0] {
            // xoshiro must never be seeded with the all-zero state.
            state[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self {
            state,
            spare_normal: None,
        }
    }

    /// Returns the next raw 64-bit output of xoshiro256++.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[must_use]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform draw from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lo > hi`.
    #[must_use]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a uniform index in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is
    /// eliminated by widening to 128 bits, which matters for none of the
    /// workloads here but costs nothing.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Returns a normal draw with the given mean and standard deviation
    /// (Box–Muller; the paired variate is cached so uniforms are consumed
    /// two draws at a time).
    #[must_use]
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        if let Some(bits) = self.spare_normal.take() {
            return mean + sigma * f64::from_bits(bits);
        }
        // Reject u1 == 0 so ln stays finite.
        let u1 = loop {
            let v = self.next_f64();
            if v > 0.0 {
                break v;
            }
        };
        let u2 = self.next_f64();
        let radius = (-2.0 * u1.ln()).sqrt();
        let (sin, cos) = (2.0 * core::f64::consts::PI * u2).sin_cos();
        self.spare_normal = Some((radius * sin).to_bits());
        mean + sigma * radius * cos
    }

    /// Fills a slice with uniform draws from `[0, 1)`.
    pub fn fill(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.next_f64();
        }
    }

    /// Fills a slice with uniform draws from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lo > hi`.
    pub fn fill_uniform(&mut self, out: &mut [f64], lo: f64, hi: f64) {
        for v in out {
            *v = self.uniform(lo, hi);
        }
    }

    /// Derives an independent child generator, advancing this one.
    ///
    /// Useful to hand each parallel worker its own stream from one
    /// master seed.
    #[must_use]
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0, from the reference implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(0xDEAD_BEEF);
        let mut b = Rng::new(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_interval_is_half_open() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v), "{v} outside [0, 1)");
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::new(11);
        for _ in 0..10_000 {
            let v = rng.uniform(-3.0, 17.5);
            assert!((-3.0..17.5).contains(&v), "{v} outside [-3, 17.5)");
        }
    }

    #[test]
    fn uniform_degenerate_range_is_constant() {
        let mut rng = Rng::new(3);
        assert_eq!(rng.uniform(2.5, 2.5), 2.5);
    }

    #[test]
    fn index_respects_bound_and_covers() {
        let mut rng = Rng::new(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.index(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn normal_moments_at_fixed_seed() {
        let mut rng = Rng::new(0x5EED);
        let n = 40_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let v = rng.normal(2.0, 3.0);
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn normal_spare_is_deterministic() {
        // Pairs of draws must replay identically across clones.
        let mut a = Rng::new(99);
        let mut b = a.clone();
        for _ in 0..9 {
            assert_eq!(a.normal(0.0, 1.0).to_bits(), b.normal(0.0, 1.0).to_bits());
        }
    }

    #[test]
    fn fill_covers_whole_slice() {
        let mut rng = Rng::new(21);
        let mut buf = [f64::NAN; 33];
        rng.fill(&mut buf);
        assert!(buf.iter().all(|v| (0.0..1.0).contains(v)));
        let mut buf2 = [f64::NAN; 9];
        rng.fill_uniform(&mut buf2, 5.0, 6.0);
        assert!(buf2.iter().all(|v| (5.0..6.0).contains(v)));
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Rng::new(1234);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
