//! Sparse matrices assembled from triplets, with a sparse LU solver.
//!
//! Modified nodal analysis produces matrices whose rows hold only a handful
//! of entries (each circuit element touches at most four unknowns), but
//! whose structure is not banded — a ring oscillator's feedback edge puts
//! an entry in a far corner. The solver here performs row-based Gaussian
//! elimination with partial pivoting directly on sorted sparse rows, which
//! is simple, robust, and fast for the few-hundred-unknown systems the
//! simulator substrate produces.

use crate::{NumericError, Result};

/// A sparse matrix under assembly, as `(row, col, value)` triplets.
///
/// Duplicate coordinates are summed when the matrix is compressed, which is
/// exactly the "stamping" discipline of circuit simulators.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::sparse::TripletMatrix;
///
/// # fn main() -> Result<(), rlckit_numeric::NumericError> {
/// let mut a = TripletMatrix::new(2);
/// a.push(0, 0, 1.0);
/// a.push(0, 0, 1.0); // stamps accumulate
/// a.push(0, 1, 1.0);
/// a.push(1, 0, 1.0);
/// a.push(1, 1, 3.0);
/// let x = a.to_csr().lu()?.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TripletMatrix {
    n: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `n × n` triplet matrix.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            entries: Vec::new(),
        }
    }

    /// Returns the matrix order.
    #[must_use]
    pub fn order(&self) -> usize {
        self.n
    }

    /// Returns the number of accumulated triplets (duplicates included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no triplets have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `value` at `(row, col)`; duplicates are summed on compression.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "triplet index out of bounds");
        self.entries.push((row, col, value));
    }

    /// Discards all triplets, keeping the allocation and order.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Compresses the triplets into compressed-sparse-row form.
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        let n = self.n;
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut current_row = 0usize;
        for (r, c, v) in sorted {
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            // Merge duplicates only within the current row: an entry for
            // row `r` exists iff entries were pushed after the row-`r`
            // boundary was recorded.
            let row_has_entries = *row_ptr.last().expect("nonempty") < col_idx.len();
            if row_has_entries {
                if let (Some(&last_col), Some(last_val)) = (col_idx.last(), values.last_mut()) {
                    if last_col == c {
                        *last_val += v;
                        continue;
                    }
                }
            }
            col_idx.push(c);
            values.push(v);
        }
        while current_row < n {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed-sparse-row matrix.
///
/// Produced by [`TripletMatrix::to_csr`].
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Returns the matrix order.
    #[must_use]
    pub fn order(&self) -> usize {
        self.n
    }

    /// Returns the number of stored (structurally nonzero) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the entries of row `i` as parallel `(columns, values)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= order()`.
    #[must_use]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Computes `self · x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `x.len()` differs
    /// from the matrix order.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                expected: self.n,
                actual: x.len(),
            });
        }
        Ok((0..self.n)
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter().zip(vals).map(|(&c, &v)| v * x[c]).sum()
            })
            .collect())
    }

    /// Factors the matrix with sparse row-based LU and partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::SingularMatrix`] if no usable pivot exists
    /// at some elimination step.
    pub fn lu(&self) -> Result<SparseLu> {
        SparseLu::factor(self)
    }
}

/// Sparse LU factors `P·A = L·U` with partial pivoting.
///
/// Rows of `L` (unit diagonal implied) and `U` are stored as sorted
/// `(column, value)` lists.
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// `l_rows[i]`: strictly-lower entries of row `i` of L, sorted by column.
    l_rows: Vec<Vec<(usize, f64)>>,
    /// `u_rows[i]`: entries of row `i` of U (diagonal first position ≥ i), sorted.
    u_rows: Vec<Vec<(usize, f64)>>,
    /// Row permutation: working row `i` came from original row `perm[i]`.
    perm: Vec<usize>,
}

impl SparseLu {
    /// Factors a CSR matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::SingularMatrix`] if the matrix is singular
    /// to working precision.
    pub fn factor(a: &CsrMatrix) -> Result<Self> {
        let n = a.n;
        // Working rows: sorted (col, value) lists.
        let mut rows: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|i| {
                let (cols, vals) = a.row(i);
                cols.iter().copied().zip(vals.iter().copied()).collect()
            })
            .collect();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut l_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut u_rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);

        let mut scratch: Vec<(usize, f64)> = Vec::new();

        for k in 0..n {
            // Partial pivoting: among rows k..n, largest |entry in column k|.
            let mut piv_row = usize::MAX;
            let mut piv_val = 0.0f64;
            for (r, row) in rows.iter().enumerate().skip(k) {
                if let Some(&(_, v)) = row.first() {
                    // Leading entry is the column-k entry iff its column == k;
                    // earlier columns were eliminated already.
                    debug_assert!(row[0].0 >= k);
                    if row[0].0 == k && v.abs() > piv_val.abs() {
                        piv_val = v;
                        piv_row = r;
                    }
                }
            }
            if piv_row == usize::MAX || piv_val == 0.0 {
                return Err(NumericError::SingularMatrix { pivot: k });
            }
            rows.swap(k, piv_row);
            perm.swap(k, piv_row);
            l_rows.swap(k, piv_row);

            let pivot_row = std::mem::take(&mut rows[k]);
            let pivot = piv_val;

            for r in (k + 1)..n {
                let has_k = rows[r].first().is_some_and(|&(c, _)| c == k);
                if !has_k {
                    continue;
                }
                let factor = rows[r][0].1 / pivot;
                l_rows[r].push((k, factor));
                // rows[r] = rows[r] - factor * pivot_row, skipping column k.
                scratch.clear();
                let mut it_a = rows[r][1..].iter().copied().peekable();
                let mut it_b = pivot_row[1..].iter().copied().peekable();
                loop {
                    match (it_a.peek().copied(), it_b.peek().copied()) {
                        (Some((ca, va)), Some((cb, vb))) => {
                            if ca < cb {
                                scratch.push((ca, va));
                                it_a.next();
                            } else if cb < ca {
                                scratch.push((cb, -factor * vb));
                                it_b.next();
                            } else {
                                let v = va - factor * vb;
                                // Keep exact zeros out of the structure only
                                // when they are true cancellations; retaining
                                // them would be harmless but wasteful.
                                if v != 0.0 {
                                    scratch.push((ca, v));
                                }
                                it_a.next();
                                it_b.next();
                            }
                        }
                        (Some((ca, va)), None) => {
                            scratch.push((ca, va));
                            it_a.next();
                        }
                        (None, Some((cb, vb))) => {
                            scratch.push((cb, -factor * vb));
                            it_b.next();
                        }
                        (None, None) => break,
                    }
                }
                std::mem::swap(&mut rows[r], &mut scratch);
            }
            u_rows.push(pivot_row);
        }

        Ok(Self {
            n,
            l_rows,
            u_rows,
            perm,
        })
    }

    /// Returns the order of the factored matrix.
    #[must_use]
    pub fn order(&self) -> usize {
        self.n
    }

    /// Returns the number of stored factor entries (fill-in diagnostics).
    #[must_use]
    pub fn factor_nnz(&self) -> usize {
        self.l_rows.iter().map(Vec::len).sum::<usize>()
            + self.u_rows.iter().map(Vec::len).sum::<usize>()
    }

    /// Solves `A·x = b` using the precomputed factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len()` differs
    /// from the matrix order.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                expected: self.n,
                actual: b.len(),
            });
        }
        // Permute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit-diagonal L.
        for i in 0..self.n {
            let mut acc = x[i];
            for &(c, v) in &self.l_rows[i] {
                acc -= v * x[c];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..self.n).rev() {
            let row = &self.u_rows[i];
            debug_assert_eq!(row[0].0, i, "U diagonal must lead the row");
            let mut acc = x[i];
            for &(c, v) in &row[1..] {
                acc -= v * x[c];
            }
            x[i] = acc / row[0].1;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Matrix;

    fn dense_of(t: &TripletMatrix) -> Matrix {
        let n = t.order();
        let csr = t.to_csr();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            let (cols, vals) = csr.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                m[(i, c)] += v;
            }
        }
        m
    }

    #[test]
    fn duplicate_triplets_accumulate() {
        let mut t = TripletMatrix::new(2);
        t.push(0, 0, 1.5);
        t.push(0, 0, 2.5);
        t.push(1, 1, 1.0);
        let csr = t.to_csr();
        assert_eq!(csr.nnz(), 2);
        let (cols, vals) = csr.row(0);
        assert_eq!(cols, &[0]);
        assert_eq!(vals, &[4.0]);
    }

    #[test]
    fn adjacent_rows_sharing_a_column_do_not_merge() {
        // Regression: (2,0) followed by (3,0) must stay two entries.
        let mut t = TripletMatrix::new(4);
        t.push(2, 0, 1.0);
        t.push(3, 0, 1.0);
        let csr = t.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.row(2).0, &[0]);
        assert_eq!(csr.row(3).0, &[0]);
    }

    #[test]
    fn empty_rows_are_represented() {
        let mut t = TripletMatrix::new(3);
        t.push(2, 2, 1.0);
        let csr = t.to_csr();
        assert_eq!(csr.row(0).0.len(), 0);
        assert_eq!(csr.row(1).0.len(), 0);
        assert_eq!(csr.row(2).0, &[2]);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let mut t = TripletMatrix::new(3);
        t.push(0, 0, 2.0);
        t.push(0, 2, -1.0);
        t.push(1, 1, 3.0);
        t.push(2, 0, 4.0);
        t.push(2, 2, 5.0);
        let x = [1.0, 2.0, 3.0];
        let y = t.to_csr().mul_vec(&x).unwrap();
        let yd = dense_of(&t).mul_vec(&x).unwrap();
        assert_eq!(y, yd);
    }

    #[test]
    fn solve_small_system() {
        let mut t = TripletMatrix::new(2);
        t.push(0, 0, 2.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 3.0);
        let x = t.to_csr().lu().unwrap().solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_is_exercised() {
        // Zero on the diagonal forces a row swap.
        let mut t = TripletMatrix::new(2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        let x = t.to_csr().lu().unwrap().solve(&[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn singular_is_detected() {
        let mut t = TripletMatrix::new(2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        assert!(matches!(
            t.to_csr().lu(),
            Err(NumericError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn ring_structure_with_corner_entry() {
        // Chain plus a feedback corner entry, like a ring oscillator MNA.
        let n = 40;
        let mut t = TripletMatrix::new(n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.push(0, n - 1, -1.5);
        t.push(n - 1, 0, -0.5);
        let csr = t.to_csr();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = csr.lu().unwrap().solve(&b).unwrap();
        let r = csr.mul_vec(&x).unwrap();
        for i in 0..n {
            assert!((r[i] - b[i]).abs() < 1e-10, "i={i}");
        }
    }

    #[test]
    fn agrees_with_dense_on_random_matrices() {
        let mut state = 0xdeadbeefu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / f64::from(u32::MAX) * 2.0 - 1.0
        };
        for n in [3usize, 8, 25] {
            let mut t = TripletMatrix::new(n);
            for i in 0..n {
                t.push(i, i, 5.0 + next());
                for _ in 0..3 {
                    let j = ((next().abs() * n as f64) as usize).min(n - 1);
                    t.push(i, j, next());
                }
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let xs = t.to_csr().lu().unwrap().solve(&b).unwrap();
            let xd = dense_of(&t).solve(&b).unwrap();
            for i in 0..n {
                assert!((xs[i] - xd[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn clear_retains_order() {
        let mut t = TripletMatrix::new(4);
        t.push(1, 1, 1.0);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.order(), 4);
    }
}
