//! Scalar and small-system root finding.
//!
//! The paper's delay computation solves the transcendental crossing
//! equation (Eq. 3) with Newton–Raphson; this module provides that solver
//! plus the bracketing fallbacks that make it robust far from the
//! asymptotic regime, and a damped Newton for small nonlinear systems.

use crate::{NumericError, Result};
use rlckit_trace::{counter, histogram, Counter, Histogram};

/// Records the outcome of a scalar root solve: iterations histogram on
/// success, budget-exhaustion counter on a spent budget. Pure
/// telemetry — never alters the result.
fn tally_root(
    iterations: &'static Histogram,
    budget_exhausted: &'static Counter,
    result: &Result<Root>,
) {
    match result {
        Ok(root) => iterations.observe(root.iterations as u64),
        Err(NumericError::NoConvergence { .. }) => budget_exhausted.incr(),
        Err(_) => {}
    }
}

/// Options controlling an iterative root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootOptions {
    /// Absolute tolerance on the abscissa.
    pub x_tol: f64,
    /// Absolute tolerance on the residual.
    pub f_tol: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Opt-in loosened acceptance for [`newton_system`]: when `Some`,
    /// a solve that exhausts its budget while still improving is
    /// accepted if the residual norm is below this looser tolerance
    /// (on top of `f_tol`). `None` (the default) keeps the caller's
    /// `f_tol` strict — budget exhaustion above `f_tol` is reported as
    /// [`NumericError::NoConvergence`], never silently accepted.
    pub relaxed_f_tol: Option<f64>,
}

impl Default for RootOptions {
    fn default() -> Self {
        Self {
            x_tol: 1e-14,
            f_tol: 1e-14,
            max_iterations: 100,
            relaxed_f_tol: None,
        }
    }
}

/// The result of a converged root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Root {
    /// Abscissa of the root.
    pub x: f64,
    /// Residual at the returned abscissa.
    pub residual: f64,
    /// Number of iterations spent.
    pub iterations: usize,
}

/// Finds a root of `f` by Newton–Raphson from `x0` using derivative `df`.
///
/// Convergence is declared when either the step or the residual falls
/// below the configured tolerances.
///
/// # Errors
///
/// Returns [`NumericError::NoConvergence`] if the iteration budget is
/// exhausted, [`NumericError::InvalidInput`] if the derivative
/// vanishes, and [`NumericError::NonFiniteResidual`] if an iterate or
/// residual becomes non-finite.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::roots::{newton_raphson, RootOptions};
///
/// # fn main() -> Result<(), rlckit_numeric::NumericError> {
/// let root = newton_raphson(|x| x * x - 2.0, |x| 2.0 * x, 1.0, RootOptions::default())?;
/// assert!((root.x - 2.0_f64.sqrt()).abs() < 1e-12);
/// assert!(root.iterations <= 8);
/// # Ok(())
/// # }
/// ```
pub fn newton_raphson(
    f: impl FnMut(f64) -> f64,
    df: impl FnMut(f64) -> f64,
    x0: f64,
    options: RootOptions,
) -> Result<Root> {
    counter!("roots.newton_raphson.solves").incr();
    if rlckit_fault::faultpoint!("roots.newton_raphson") {
        return Err(NumericError::InjectedFault {
            site: "roots.newton_raphson",
        });
    }
    let result = newton_raphson_impl(f, df, x0, options);
    tally_root(
        histogram!("roots.newton_raphson.iterations"),
        counter!("roots.newton_raphson.budget_exhausted"),
        &result,
    );
    result
}

fn newton_raphson_impl(
    mut f: impl FnMut(f64) -> f64,
    mut df: impl FnMut(f64) -> f64,
    x0: f64,
    options: RootOptions,
) -> Result<Root> {
    let mut x = x0;
    for iteration in 1..=options.max_iterations {
        let fx = f(x);
        if !fx.is_finite() {
            return Err(NumericError::NonFiniteResidual { at: x, iteration });
        }
        if fx.abs() <= options.f_tol {
            return Ok(Root {
                x,
                residual: fx,
                iterations: iteration - 1,
            });
        }
        let dfx = df(x);
        if dfx == 0.0 || !dfx.is_finite() {
            return Err(NumericError::InvalidInput(format!(
                "derivative vanished at x = {x:.6e}"
            )));
        }
        let step = fx / dfx;
        x -= step;
        if !x.is_finite() {
            return Err(NumericError::NonFiniteResidual { at: x, iteration });
        }
        if step.abs() <= options.x_tol * x.abs().max(1.0) {
            return Ok(Root {
                x,
                residual: f(x),
                iterations: iteration,
            });
        }
    }
    Err(NumericError::NoConvergence {
        iterations: options.max_iterations,
        residual: f(x).abs(),
    })
}

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// # Errors
///
/// Returns [`NumericError::InvalidBracket`] if `f(lo)` and `f(hi)` have
/// the same sign, and [`NumericError::NoConvergence`] if the budget is
/// exhausted before the interval shrinks below tolerance.
pub fn bisection(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    options: RootOptions,
) -> Result<Root> {
    let (mut a, mut b) = (lo.min(hi), lo.max(hi));
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(NumericError::InvalidBracket { lo: a, hi: b });
    }
    for iteration in 1..=options.max_iterations {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm == 0.0 || (b - a) <= options.x_tol * mid.abs().max(1.0) {
            return Ok(Root {
                x: mid,
                residual: fm,
                iterations: iteration,
            });
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(NumericError::NoConvergence {
        iterations: options.max_iterations,
        residual: f(0.5 * (a + b)).abs(),
    })
}

/// Finds a root of `f` in `[lo, hi]` by Brent's method.
///
/// Combines bisection, secant and inverse quadratic interpolation; this is
/// the derivative-free workhorse used when Newton's method is not safe.
///
/// # Errors
///
/// Returns [`NumericError::InvalidBracket`] if the interval does not
/// bracket a sign change, and [`NumericError::NoConvergence`] if the
/// budget is exhausted.
pub fn brent(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    options: RootOptions,
) -> Result<Root> {
    let (mut a, mut b) = (lo, hi);
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(NumericError::InvalidBracket { lo, hi });
    }
    if fa.abs() < fb.abs() {
        core::mem::swap(&mut a, &mut b);
        core::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for iteration in 1..=options.max_iterations {
        if fb.abs() <= options.f_tol {
            return Ok(Root {
                x: b,
                residual: fb,
                iterations: iteration - 1,
            });
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let cond_interval = {
            let lo_q = (3.0 * a + b) / 4.0;
            let (lo_q, hi_q) = if lo_q < b { (lo_q, b) } else { (b, lo_q) };
            s < lo_q || s > hi_q
        };
        let cond_step = if mflag {
            (s - b).abs() >= (b - c).abs() / 2.0
        } else {
            (s - b).abs() >= (c - d).abs() / 2.0
        };
        let cond_tol = if mflag {
            (b - c).abs() < options.x_tol
        } else {
            (c - d).abs() < options.x_tol
        };
        if cond_interval || cond_step || cond_tol {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            core::mem::swap(&mut a, &mut b);
            core::mem::swap(&mut fa, &mut fb);
        }
        if (b - a).abs() <= options.x_tol * b.abs().max(1.0) {
            return Ok(Root {
                x: b,
                residual: fb,
                iterations: iteration,
            });
        }
    }
    Err(NumericError::NoConvergence {
        iterations: options.max_iterations,
        residual: fb.abs(),
    })
}

/// Expands `[lo, hi]` geometrically until it brackets a sign change of `f`.
///
/// Returns the bracketing interval.
///
/// # Errors
///
/// Returns [`NumericError::InvalidBracket`] if no sign change is found
/// within `max_expansions` doublings, or if an endpoint or function
/// value becomes non-finite during the expansion (a runaway search —
/// e.g. a rootless `f` driven past the floating-point range — must not
/// feed ±∞/NaN into downstream solvers).
pub fn expand_bracket(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    max_expansions: usize,
) -> Result<(f64, f64)> {
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    for expansion in 0..max_expansions {
        if !(a.is_finite() && b.is_finite() && fa.is_finite() && fb.is_finite()) {
            counter!("roots.expand_bracket.failures").incr();
            return Err(NumericError::InvalidBracket { lo: a, hi: b });
        }
        if fa.signum() != fb.signum() {
            histogram!("roots.expand_bracket.expansions").observe(expansion as u64);
            return Ok((a, b));
        }
        // zbrac-style: move the endpoint whose |f| is *smaller* — that
        // side sits closer to a crossing, so pushing it outward hunts
        // the root fastest.
        if fa.abs() < fb.abs() {
            a -= 1.6 * (b - a);
            fa = f(a);
        } else {
            b += 1.6 * (b - a);
            fb = f(b);
        }
    }
    counter!("roots.expand_bracket.failures").incr();
    Err(NumericError::InvalidBracket { lo: a, hi: b })
}

/// Newton–Raphson with an automatic bisection fallback on a bracket.
///
/// The Newton iterate is accepted only while it stays inside the current
/// bracket; otherwise the step falls back to bisection. This retains the
/// quadratic convergence the paper reports (≤ 4 iterations) while being
/// globally convergent on a valid bracket.
///
/// # Errors
///
/// Returns [`NumericError::InvalidBracket`] if `[lo, hi]` does not bracket
/// a root, and [`NumericError::NoConvergence`] on budget exhaustion.
pub fn newton_bracketed(
    f: impl FnMut(f64) -> f64,
    df: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    options: RootOptions,
) -> Result<Root> {
    counter!("roots.newton_bracketed.solves").incr();
    if rlckit_fault::faultpoint!("roots.newton_bracketed") {
        return Err(NumericError::InjectedFault {
            site: "roots.newton_bracketed",
        });
    }
    let result = newton_bracketed_impl(f, df, lo, hi, options);
    tally_root(
        histogram!("roots.newton_bracketed.iterations"),
        counter!("roots.newton_bracketed.budget_exhausted"),
        &result,
    );
    result
}

/// [`newton_bracketed`] for callers that can evaluate the function and
/// its derivative together, optionally seeding the endpoint residuals.
///
/// `fdf(x)` returns `(f(x), f'(x))` in one call — the two-pole step
/// response and its derivative share their discriminant, pole and
/// exponential subexpressions, so the fused evaluation costs barely
/// more than either alone. `seed`, when `Some((f_lo, f_hi))`, supplies
/// the residuals at `lo` and `hi` so the solver does not re-evaluate
/// endpoints the caller has already computed (the delay solve's bracket
/// expansion ends on exactly such an evaluation).
///
/// The iterate sequence — and therefore the returned [`Root`] — is
/// bit-identical to [`newton_bracketed`] with separate `f`/`df`
/// closures, provided `fdf` returns the same bits as the separate
/// evaluations and the seeded residuals match `f(lo)`/`f(hi)` exactly.
/// Only the *number* of closure calls changes.
///
/// # Errors
///
/// Returns [`NumericError::InvalidBracket`] if `[lo, hi]` does not bracket
/// a root, and [`NumericError::NoConvergence`] on budget exhaustion.
pub fn newton_bracketed_fdf(
    fdf: impl FnMut(f64) -> (f64, f64),
    lo: f64,
    hi: f64,
    seed: Option<(f64, f64)>,
    options: RootOptions,
) -> Result<Root> {
    counter!("roots.newton_bracketed.solves").incr();
    if rlckit_fault::faultpoint!("roots.newton_bracketed") {
        return Err(NumericError::InjectedFault {
            site: "roots.newton_bracketed",
        });
    }
    let result = newton_bracketed_fdf_impl(fdf, lo, hi, seed, options);
    tally_root(
        histogram!("roots.newton_bracketed.iterations"),
        counter!("roots.newton_bracketed.budget_exhausted"),
        &result,
    );
    result
}

fn newton_bracketed_fdf_impl(
    mut fdf: impl FnMut(f64) -> (f64, f64),
    lo: f64,
    hi: f64,
    seed: Option<(f64, f64)>,
    options: RootOptions,
) -> Result<Root> {
    let (mut a, mut b) = (lo.min(hi), lo.max(hi));
    // Seeded residuals arrive in (lo, hi) order; swap with the endpoints.
    let seed = seed.map(|(f_lo, f_hi)| if lo <= hi { (f_lo, f_hi) } else { (f_hi, f_lo) });
    let mut fa = seed.map_or_else(|| fdf(a).0, |(f_a, _)| f_a);
    let fb = seed.map_or_else(|| fdf(b).0, |(_, f_b)| f_b);
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(NumericError::InvalidBracket { lo: a, hi: b });
    }

    let mut x = 0.5 * (a + b);
    let mut eval = fdf(x);
    for iteration in 1..=options.max_iterations {
        let (fx, dfx) = eval;
        if fx.abs() <= options.f_tol {
            return Ok(Root {
                x,
                residual: fx,
                iterations: iteration,
            });
        }
        // Maintain the bracket.
        if fx.signum() == fa.signum() {
            a = x;
            fa = fx;
        } else {
            b = x;
        }
        let newton = if dfx != 0.0 { x - fx / dfx } else { f64::NAN };
        let next = if newton.is_finite() && newton > a && newton < b {
            newton
        } else {
            counter!("roots.newton_bracketed.bisection_fallbacks").incr();
            0.5 * (a + b)
        };
        // One fused evaluation serves both the small-step residual check
        // below and the next iteration's (fx, dfx) — the unfused solver
        // evaluates these separately at the identical abscissa.
        let next_eval = fdf(next);
        if (next - x).abs() <= options.x_tol * x.abs().max(1.0) {
            // Same honest-convergence rule as `newton_bracketed`: a tiny
            // step counts only if the residual actually meets `f_tol`.
            let f_next = next_eval.0;
            if f_next.abs() <= options.f_tol {
                return Ok(Root {
                    x: next,
                    residual: f_next,
                    iterations: iteration,
                });
            }
        }
        x = next;
        eval = next_eval;
    }
    Err(NumericError::NoConvergence {
        iterations: options.max_iterations,
        residual: eval.0.abs(),
    })
}

fn newton_bracketed_impl(
    mut f: impl FnMut(f64) -> f64,
    mut df: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    options: RootOptions,
) -> Result<Root> {
    let (mut a, mut b) = (lo.min(hi), lo.max(hi));
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(NumericError::InvalidBracket { lo: a, hi: b });
    }

    let mut x = 0.5 * (a + b);
    for iteration in 1..=options.max_iterations {
        let fx = f(x);
        if fx.abs() <= options.f_tol {
            return Ok(Root {
                x,
                residual: fx,
                iterations: iteration,
            });
        }
        // Maintain the bracket.
        if fx.signum() == fa.signum() {
            a = x;
            fa = fx;
        } else {
            b = x;
        }
        let dfx = df(x);
        let newton = if dfx != 0.0 { x - fx / dfx } else { f64::NAN };
        let next = if newton.is_finite() && newton > a && newton < b {
            newton
        } else {
            counter!("roots.newton_bracketed.bisection_fallbacks").incr();
            0.5 * (a + b)
        };
        if (next - x).abs() <= options.x_tol * x.abs().max(1.0) {
            // A tiny step alone is not convergence: near a very steep
            // (or jump-like) crossing the bracket collapses while the
            // residual stays large. Declare a root only if the residual
            // at `next` actually meets `f_tol`; otherwise keep
            // iterating and let the budget produce an honest
            // `NoConvergence`.
            let f_next = f(next);
            if f_next.abs() <= options.f_tol {
                return Ok(Root {
                    x: next,
                    residual: f_next,
                    iterations: iteration,
                });
            }
        }
        x = next;
    }
    Err(NumericError::NoConvergence {
        iterations: options.max_iterations,
        residual: f(x).abs(),
    })
}

/// Result of a converged system Newton solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemRoot {
    /// Solution vector.
    pub x: Vec<f64>,
    /// Infinity norm of the residual at `x`.
    pub residual: f64,
    /// Number of Newton iterations spent.
    pub iterations: usize,
}

/// Damped Newton for a small nonlinear system `F(x) = 0`.
///
/// The caller supplies the residual `f(x, &mut out)` and Jacobian
/// `jac(x, &mut out_matrix)` (row-major, dense). The step is damped by
/// halving until the residual norm does not increase (simple Armijo-type
/// backtracking), which is what lets the optimizer cross the
/// critically-damped manifold where the residual is non-smooth.
///
/// Convergence requires the residual norm to meet `options.f_tol` (or a
/// small step under `options.x_tol` while improving). If the iteration
/// budget runs out with the residual still above `f_tol`, the solve
/// fails — unless the caller opted into a looser acceptance via
/// [`RootOptions::relaxed_f_tol`].
///
/// # Errors
///
/// Returns [`NumericError::NoConvergence`] on budget exhaustion,
/// [`NumericError::SingularMatrix`] if the Jacobian is singular, or
/// [`NumericError::NonFiniteResidual`] if residuals become non-finite.
pub fn newton_system(
    f: impl FnMut(&[f64], &mut [f64]),
    jac: impl FnMut(&[f64], &mut crate::dense::Matrix),
    x0: &[f64],
    options: RootOptions,
) -> Result<SystemRoot> {
    counter!("roots.newton_system.solves").incr();
    if rlckit_fault::faultpoint!("roots.newton_system") {
        return Err(NumericError::InjectedFault {
            site: "roots.newton_system",
        });
    }
    let result = newton_system_impl(f, jac, x0, options);
    match &result {
        Ok(root) => {
            histogram!("roots.newton_system.iterations").observe(root.iterations as u64);
        }
        Err(NumericError::NoConvergence { .. }) => {
            counter!("roots.newton_system.budget_exhausted").incr();
        }
        Err(_) => {}
    }
    result
}

fn newton_system_impl(
    mut f: impl FnMut(&[f64], &mut [f64]),
    mut jac: impl FnMut(&[f64], &mut crate::dense::Matrix),
    x0: &[f64],
    options: RootOptions,
) -> Result<SystemRoot> {
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut residual = vec![0.0; n];
    let mut jacobian = crate::dense::Matrix::zeros(n, n);
    let inf_norm = |v: &[f64]| v.iter().fold(0.0f64, |m, &a| m.max(a.abs()));

    f(&x, &mut residual);
    crate::injected_abort("roots.newton_system")?;
    let mut rnorm = inf_norm(&residual);
    for iteration in 1..=options.max_iterations {
        if !rnorm.is_finite() {
            return Err(NumericError::NonFiniteResidual {
                at: inf_norm(&x),
                iteration,
            });
        }
        if rnorm <= options.f_tol {
            return Ok(SystemRoot {
                x,
                residual: rnorm,
                iterations: iteration - 1,
            });
        }
        jac(&x, &mut jacobian);
        crate::injected_abort("roots.newton_system")?;
        let step = jacobian.lu()?.solve(&residual)?;

        // Backtracking line search on the residual norm.
        let mut lambda = 1.0f64;
        let mut accepted = false;
        let mut trial = vec![0.0; n];
        let mut trial_res = vec![0.0; n];
        for _ in 0..30 {
            for i in 0..n {
                trial[i] = x[i] - lambda * step[i];
            }
            f(&trial, &mut trial_res);
            // An injected fault inside a trial evaluation surfaces as a
            // NaN residual here; without this fail-stop the next
            // halving would re-evaluate cleanly and the solve would
            // "recover" onto a different (bit-drifted) iterate path.
            crate::injected_abort("roots.newton_system")?;
            let tnorm = inf_norm(&trial_res);
            if tnorm.is_finite() && tnorm < rnorm {
                x.copy_from_slice(&trial);
                residual.copy_from_slice(&trial_res);
                let step_small =
                    lambda * inf_norm(&step) <= options.x_tol * inf_norm(&x).max(1.0);
                rnorm = tnorm;
                accepted = true;
                if step_small {
                    return Ok(SystemRoot {
                        x,
                        residual: rnorm,
                        iterations: iteration,
                    });
                }
                break;
            }
            lambda *= 0.5;
        }
        if !accepted {
            counter!("roots.newton_system.line_search_stalls").incr();
            return Err(NumericError::NoConvergence {
                iterations: iteration,
                residual: rnorm,
            });
        }
    }
    // Budget exhausted while still improving. Accepting a residual
    // looser than the caller's `f_tol` is opt-in only: callers like the
    // RLC optimizer ask for it explicitly via `relaxed_f_tol` (the FD
    // outer Jacobian limits achievable accuracy there); everyone else
    // gets an honest `NoConvergence` rather than a silently loosened
    // tolerance.
    if let Some(relaxed) = options.relaxed_f_tol {
        if rnorm <= options.f_tol.max(relaxed) {
            counter!("roots.newton_system.relaxed_accepts").incr();
            return Ok(SystemRoot {
                x,
                residual: rnorm,
                iterations: options.max_iterations,
            });
        }
    }
    Err(NumericError::NoConvergence {
        iterations: options.max_iterations,
        residual: rnorm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newton_converges_quadratically() {
        let root = newton_raphson(|x| x * x - 2.0, |x| 2.0 * x, 1.5, RootOptions::default())
            .unwrap();
        assert!((root.x - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!(root.iterations <= 6);
    }

    #[test]
    fn newton_reports_vanishing_derivative() {
        let err = newton_raphson(|x| x * x + 1.0, |x| 2.0 * x, 0.0, RootOptions::default());
        assert!(matches!(err, Err(NumericError::InvalidInput(_))));
    }

    #[test]
    fn bisection_on_transcendental() {
        let root = bisection(|x| x.cos() - x, 0.0, 1.0, RootOptions::default()).unwrap();
        assert!((root.x - 0.7390851332151607).abs() < 1e-9);
    }

    #[test]
    fn bisection_rejects_bad_bracket() {
        let err = bisection(|x| x * x + 1.0, -1.0, 1.0, RootOptions::default());
        assert!(matches!(err, Err(NumericError::InvalidBracket { .. })));
    }

    #[test]
    fn brent_on_transcendental() {
        let root = brent(|x| x.cos() - x, 0.0, 1.0, RootOptions::default()).unwrap();
        assert!((root.x - 0.7390851332151607).abs() < 1e-12);
        assert!(root.iterations < 20);
    }

    #[test]
    fn brent_handles_flat_regions() {
        // f has a wide flat region; Brent must still converge.
        let f = |x: f64| (x - 2.0).powi(3);
        let root = brent(f, 0.0, 5.0, RootOptions::default()).unwrap();
        assert!((root.x - 2.0).abs() < 1e-4);
    }

    #[test]
    fn bracket_expansion_finds_sign_change() {
        let (a, b) = expand_bracket(|x| x - 100.0, 0.0, 1.0, 60).unwrap();
        assert!(a <= 100.0 && 100.0 <= b);
        assert!(expand_bracket(|x| x * x + 1.0, 0.0, 1.0, 10).is_err());
    }

    #[test]
    fn newton_bracketed_is_safe_and_fast() {
        // An equation like the paper's Eq. (3): exponential crossing.
        let f = |t: f64| 0.5 - (-t).exp();
        let df = |t: f64| (-t).exp();
        let root = newton_bracketed(f, df, 0.0, 10.0, RootOptions::default()).unwrap();
        assert!((root.x - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(root.iterations <= 8);
    }

    #[test]
    fn newton_bracketed_rejects_stale_step_with_large_residual() {
        // Regression: a jump-like crossing (infinitely steep) collapses
        // the bisection bracket until the step is below x_tol while the
        // residual stays at ±1. The small-step early return used to
        // declare this a converged `Root` with |residual| = 1 ≫ f_tol;
        // it must instead run to an honest NoConvergence.
        let jump = |x: f64| if x < 0.5 { -1.0 } else { 1.0 };
        let result = newton_bracketed(jump, |_| 0.0, 0.0, 1.0, RootOptions::default());
        match result {
            Err(NumericError::NoConvergence { residual, .. }) => {
                assert!((residual - 1.0).abs() < 1e-12, "residual {residual}")
            }
            other => panic!("jump crossing must not converge, got {other:?}"),
        }
    }

    #[test]
    fn newton_bracketed_converged_roots_always_meet_f_tol() {
        // Companion invariant to the regression above: every Ok result
        // honours the residual tolerance, steep crossings included.
        let options = RootOptions::default();
        for steepness in [1.0, 1e3, 1e9] {
            let root = newton_bracketed(
                |x| steepness * (x - 0.3),
                move |_| steepness,
                0.0,
                1.0,
                options,
            )
            .unwrap();
            assert!(
                root.residual.abs() <= options.f_tol,
                "steepness {steepness}: residual {:e}",
                root.residual
            );
        }
    }

    #[test]
    fn newton_bracketed_survives_bad_derivative() {
        // Derivative lies wildly; bisection fallback must still converge.
        let root =
            newton_bracketed(|x| x - 3.0, |_| 1e-30, 0.0, 10.0, RootOptions::default()).unwrap();
        assert!((root.x - 3.0).abs() < 1e-9);
    }

    #[test]
    fn system_newton_on_rosenbrock_gradient() {
        // Roots of the gradient of Rosenbrock's function: (1, 1).
        let f = |x: &[f64], out: &mut [f64]| {
            out[0] = -2.0 * (1.0 - x[0]) - 400.0 * x[0] * (x[1] - x[0] * x[0]);
            out[1] = 200.0 * (x[1] - x[0] * x[0]);
        };
        let jac = |x: &[f64], m: &mut crate::dense::Matrix| {
            m[(0, 0)] = 2.0 - 400.0 * (x[1] - 3.0 * x[0] * x[0]);
            m[(0, 1)] = -400.0 * x[0];
            m[(1, 0)] = -400.0 * x[0];
            m[(1, 1)] = 200.0;
        };
        let sol = newton_system(
            f,
            jac,
            &[-0.5, 0.5],
            RootOptions {
                max_iterations: 200,
                ..RootOptions::default()
            },
        )
        .unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-8);
        assert!((sol.x[1] - 1.0).abs() < 1e-8);
    }

    /// A deliberately slow 1-D solve: Newton on `x³` contracts by 2/3
    /// per step, so a budget of 30 from `x₀ = 1` lands the residual
    /// near 1.4e-16 — far above an `f_tol` of 1e-40, but inside the old
    /// hard-wired 1e-9 acceptance window.
    fn run_slow_cubic(options: RootOptions) -> Result<SystemRoot> {
        let f = |x: &[f64], out: &mut [f64]| out[0] = x[0] * x[0] * x[0];
        let jac = |x: &[f64], m: &mut crate::dense::Matrix| {
            m[(0, 0)] = 3.0 * x[0] * x[0];
        };
        newton_system(f, jac, &[1.0], options)
    }

    #[test]
    fn system_newton_keeps_caller_f_tol_strict_on_budget_exhaustion() {
        // Regression: on budget exhaustion the solver used to accept
        // `rnorm <= f_tol.max(1e-9)`, silently overriding a stricter
        // caller-requested f_tol. Strict is now the default.
        let strict = RootOptions {
            f_tol: 1e-40,
            x_tol: 1e-30,
            max_iterations: 30,
            relaxed_f_tol: None,
        };
        match run_slow_cubic(strict) {
            Err(NumericError::NoConvergence { residual, .. }) => {
                assert!(residual > 1e-40 && residual < 1e-9, "residual {residual:e}")
            }
            other => panic!("strict f_tol must not be loosened, got {other:?}"),
        }
    }

    #[test]
    fn system_newton_relaxed_acceptance_is_opt_in() {
        // The same starved solve succeeds when the caller explicitly
        // opts into the looser acceptance (as the RLC optimizer does).
        let relaxed = RootOptions {
            f_tol: 1e-40,
            x_tol: 1e-30,
            max_iterations: 30,
            relaxed_f_tol: Some(1e-9),
        };
        let sol = run_slow_cubic(relaxed).expect("relaxed acceptance");
        assert!(sol.residual < 1e-9, "residual {:e}", sol.residual);
        assert_eq!(sol.iterations, 30);
    }

    #[test]
    fn bracket_expansion_guards_against_non_finite_runaway() {
        // Regression: `sin(x) + 2` has no root; geometric expansion
        // overflows an endpoint to ±∞ where sin returns NaN, and
        // `NaN.signum() != fb.signum()` used to report a *successful*
        // bracket with a non-finite endpoint. It must now fail cleanly.
        match expand_bracket(|x| x.sin() + 2.0, 0.0, 1.0, 5_000) {
            Err(NumericError::InvalidBracket { .. }) => {}
            other => panic!("runaway expansion must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn system_newton_linear_system_in_one_step() {
        let f = |x: &[f64], out: &mut [f64]| {
            out[0] = 2.0 * x[0] + x[1] - 3.0;
            out[1] = x[0] + 3.0 * x[1] - 5.0;
        };
        let jac = |_: &[f64], m: &mut crate::dense::Matrix| {
            m[(0, 0)] = 2.0;
            m[(0, 1)] = 1.0;
            m[(1, 0)] = 1.0;
            m[(1, 1)] = 3.0;
        };
        let sol = newton_system(f, jac, &[0.0, 0.0], RootOptions::default()).unwrap();
        assert!(sol.iterations <= 2);
        assert!((sol.x[0] - 0.8).abs() < 1e-12);
        assert!((sol.x[1] - 1.4).abs() < 1e-12);
    }
}
