//! Derivative-free minimization: golden-section search and Nelder–Mead.
//!
//! The paper minimizes delay per unit length with Newton on the
//! stationarity conditions; these derivative-free methods serve as
//! independent cross-checks (and as the fallback when a configuration sits
//! exactly on the critically-damped manifold where the residuals are not
//! smooth).

use crate::{NumericError, Result};
use rlckit_trace::{counter, histogram};

/// Result of a converged minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct Minimum {
    /// Arguments of the minimum.
    pub x: Vec<f64>,
    /// Objective value at the minimum.
    pub value: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
}

/// Minimizes a unimodal `f` on `[lo, hi]` by golden-section search.
///
/// # Errors
///
/// Returns [`NumericError::InvalidInput`] if `lo >= hi` or the interval
/// endpoints are not finite.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::minimize::golden_section;
///
/// # fn main() -> Result<(), rlckit_numeric::NumericError> {
/// let m = golden_section(|x| (x - 2.0) * (x - 2.0), 0.0, 5.0, 1e-10, 200)?;
/// assert!((m.x[0] - 2.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn golden_section(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    x_tol: f64,
    max_evaluations: usize,
) -> Result<Minimum> {
    if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
        return Err(NumericError::InvalidInput(format!(
            "invalid golden-section interval [{lo}, {hi}]"
        )));
    }
    if rlckit_fault::faultpoint!("minimize.golden_section") {
        return Err(NumericError::InjectedFault {
            site: "minimize.golden_section",
        });
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut a = lo;
    let mut b = hi;
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    let mut evaluations = 2;
    while (b - a).abs() > x_tol * (a.abs() + b.abs()).max(1.0) && evaluations < max_evaluations {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
        evaluations += 1;
    }
    let x = 0.5 * (a + b);
    let value = f(x);
    // Fail-stop: callers map delay-solver errors to ∞, so an injected
    // fault inside an objective evaluation would otherwise skew the
    // bracket walk and return a silently drifted minimum.
    crate::injected_abort("minimize.golden_section")?;
    counter!("minimize.golden_section.calls").incr();
    histogram!("minimize.golden_section.evaluations").observe((evaluations + 1) as u64);
    Ok(Minimum {
        x: vec![x],
        value,
        evaluations: evaluations + 1,
    })
}

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Relative size of the initial simplex around the starting point.
    pub initial_scale: f64,
    /// Convergence tolerance on the simplex's objective spread.
    pub f_tol: f64,
    /// Convergence tolerance on the simplex diameter.
    pub x_tol: f64,
    /// Budget of objective evaluations.
    pub max_evaluations: usize,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        Self {
            initial_scale: 0.05,
            f_tol: 1e-12,
            x_tol: 1e-10,
            max_evaluations: 2000,
        }
    }
}

/// Minimizes `f` from `x0` with the Nelder–Mead downhill simplex.
///
/// # Errors
///
/// Returns [`NumericError::InvalidInput`] for an empty starting point and
/// [`NumericError::NoConvergence`] if the evaluation budget is exhausted
/// before the simplex collapses.
pub fn nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    options: NelderMeadOptions,
) -> Result<Minimum> {
    let n = x0.len();
    if n == 0 {
        return Err(NumericError::InvalidInput(
            "empty starting point".to_string(),
        ));
    }
    if rlckit_fault::faultpoint!("minimize.nelder_mead") {
        return Err(NumericError::InjectedFault {
            site: "minimize.nelder_mead",
        });
    }
    // Standard coefficients.
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut v = x0.to_vec();
        let step = if v[i] != 0.0 {
            v[i] * options.initial_scale
        } else {
            options.initial_scale
        };
        v[i] += step;
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| f(v)).collect();
    let mut evaluations = n + 1;

    while evaluations < options.max_evaluations {
        // Order the simplex.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("NaN objective"));
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        let spread = (values[worst] - values[best]).abs();
        let diameter = simplex
            .iter()
            .map(|v| {
                v.iter()
                    .zip(&simplex[best])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        if spread <= options.f_tol * values[best].abs().max(1.0)
            && diameter
                <= options.x_tol
                    * simplex[best]
                        .iter()
                        .map(|v| v.abs())
                        .fold(0.0f64, f64::max)
                        .max(1.0)
        {
            // Fail-stop: objectives swallow errors into ∞, so a
            // poisoned attempt must not be accepted as converged.
            crate::injected_abort("minimize.nelder_mead")?;
            counter!("minimize.nelder_mead.calls").incr();
            histogram!("minimize.nelder_mead.evaluations").observe(evaluations as u64);
            return Ok(Minimum {
                x: simplex[best].clone(),
                value: values[best],
                evaluations,
            });
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (idx, v) in simplex.iter().enumerate() {
            if idx == worst {
                continue;
            }
            for (ci, vi) in centroid.iter_mut().zip(v) {
                *ci += vi / n as f64;
            }
        }

        let lerp = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
        };

        // Reflection.
        let reflected = lerp(&centroid, &simplex[worst], -alpha);
        let f_reflected = f(&reflected);
        evaluations += 1;

        if f_reflected < values[best] {
            // Expansion.
            let expanded = lerp(&centroid, &simplex[worst], -gamma);
            let f_expanded = f(&expanded);
            evaluations += 1;
            if f_expanded < f_reflected {
                simplex[worst] = expanded;
                values[worst] = f_expanded;
            } else {
                simplex[worst] = reflected;
                values[worst] = f_reflected;
            }
        } else if f_reflected < values[second_worst] {
            simplex[worst] = reflected;
            values[worst] = f_reflected;
        } else {
            // Contraction.
            let contracted = lerp(&centroid, &simplex[worst], rho);
            let f_contracted = f(&contracted);
            evaluations += 1;
            if f_contracted < values[worst] {
                simplex[worst] = contracted;
                values[worst] = f_contracted;
            } else {
                // Shrink towards the best vertex.
                let best_point = simplex[best].clone();
                for (idx, v) in simplex.iter_mut().enumerate() {
                    if idx == best {
                        continue;
                    }
                    *v = lerp(&best_point, v, sigma);
                    values[idx] = f(v);
                    evaluations += 1;
                }
            }
        }
    }
    // Return the best point found with a NoConvergence marker.
    counter!("minimize.nelder_mead.budget_exhausted").incr();
    Err(NumericError::NoConvergence {
        iterations: evaluations,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_on_quadratic() {
        let m = golden_section(|x| (x - 3.5) * (x - 3.5) + 1.0, 0.0, 10.0, 1e-12, 500).unwrap();
        // Golden section cannot resolve a quadratic bottom below ~√ε·|x|.
        assert!((m.x[0] - 3.5).abs() < 5e-8);
        assert!((m.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn golden_section_rejects_inverted_interval() {
        assert!(golden_section(|x| x, 1.0, 0.0, 1e-8, 100).is_err());
    }

    #[test]
    fn nelder_mead_on_rosenbrock() {
        let rosenbrock = |x: &[f64]| {
            (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
        };
        let m = nelder_mead(
            rosenbrock,
            &[-1.2, 1.0],
            NelderMeadOptions {
                max_evaluations: 5000,
                ..NelderMeadOptions::default()
            },
        )
        .unwrap();
        assert!((m.x[0] - 1.0).abs() < 1e-4);
        assert!((m.x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn nelder_mead_on_scaled_quadratic() {
        // Badly scaled quadratic similar to (h, k) optimization where h is
        // millimetres and k is hundreds.
        let f = |x: &[f64]| {
            let a = (x[0] - 0.0144) * 1e4;
            let b = (x[1] - 578.0) * 1e-2;
            a * a + b * b
        };
        let m = nelder_mead(f, &[0.01, 400.0], NelderMeadOptions::default()).unwrap();
        assert!((m.x[0] - 0.0144).abs() < 1e-5);
        assert!((m.x[1] - 578.0).abs() < 1e-1);
    }

    #[test]
    fn nelder_mead_rejects_empty_start() {
        assert!(nelder_mead(|_| 0.0, &[], NelderMeadOptions::default()).is_err());
    }

    #[test]
    fn nelder_mead_reports_budget_exhaustion() {
        let err = nelder_mead(
            |x| x[0].sin() * x[1].cos(),
            &[0.3, 0.7],
            NelderMeadOptions {
                max_evaluations: 5,
                ..NelderMeadOptions::default()
            },
        );
        assert!(matches!(err, Err(NumericError::NoConvergence { .. })));
    }
}
