//! Dense matrices and LU factorization with partial pivoting.
//!
//! Sized for the workloads of this workspace: modified-nodal-analysis
//! systems of a few hundred unknowns and the 2×2 Newton steps of the
//! repeater optimizer. Storage is row-major `Vec<f64>`.

use core::fmt;
use core::ops::{Index, IndexMut};

use crate::{NumericError, Result};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::dense::Matrix;
///
/// # fn main() -> Result<(), rlckit_numeric::NumericError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = a.lu()?.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an all-zero matrix with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates an identity matrix of order `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Self {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Returns the number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns an immutable view of the backing storage (row-major).
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Computes `self · x` for a vector `x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(NumericError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        Ok((0..self.rows)
            .map(|i| {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect())
    }

    /// Computes the matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the inner dimensions
    /// disagree.
    pub fn mul_mat(&self, other: &Self) -> Result<Self> {
        if self.cols != other.rows {
            return Err(NumericError::DimensionMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Factors the matrix as `P·A = L·U` with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::SingularMatrix`] if a pivot is exactly zero
    /// (the matrix is singular to working precision), and
    /// [`NumericError::DimensionMismatch`] if the matrix is not square.
    pub fn lu(&self) -> Result<LuFactors> {
        if self.rows != self.cols {
            return Err(NumericError::DimensionMismatch {
                expected: self.rows,
                actual: self.cols,
            });
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0f64;

        for k in 0..n {
            // Partial pivoting: largest magnitude in column k at/below row k.
            let mut piv = k;
            let mut max = lu[k * n + k].abs();
            for r in (k + 1)..n {
                let v = lu[r * n + k].abs();
                if v > max {
                    max = v;
                    piv = r;
                }
            }
            if max == 0.0 {
                return Err(NumericError::SingularMatrix { pivot: k });
            }
            if piv != k {
                for j in 0..n {
                    lu.swap(k * n + j, piv * n + j);
                }
                perm.swap(k, piv);
                sign = -sign;
            }
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let factor = lu[r * n + k] / pivot;
                lu[r * n + k] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        lu[r * n + j] -= factor * lu[k * n + j];
                    }
                }
            }
        }

        Ok(LuFactors {
            n,
            lu,
            perm,
            sign,
        })
    }

    /// Solves `A·x = b` directly (factor + substitute).
    ///
    /// Prefer [`Matrix::lu`] when the same matrix is solved against several
    /// right-hand sides ([C-INTERMEDIATE]).
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Matrix::lu`] and
    /// [`LuFactors::solve`].
    ///
    /// [C-INTERMEDIATE]: https://rust-lang.github.io/api-guidelines/flexibility.html
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.lu()?.solve(b)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:12.5e}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The result of an LU factorization `P·A = L·U`.
///
/// Produced by [`Matrix::lu`]; reuse it to solve against multiple
/// right-hand sides.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Combined L (strictly lower, unit diagonal implicit) and U storage.
    lu: Vec<f64>,
    perm: Vec<usize>,
    sign: f64,
}

impl LuFactors {
    /// Returns the order of the factored matrix.
    #[must_use]
    pub fn order(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` using the precomputed factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len()` differs
    /// from the matrix order.
    #[allow(clippy::needless_range_loop)] // substitution indexes x and lu in lockstep
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                expected: self.n,
                actual: b.len(),
            });
        }
        let n = self.n;
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution (unit lower).
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc / self.lu[i * n + i];
        }
        Ok(x)
    }

    /// Returns the determinant of the original matrix.
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.n {
            det *= self.lu[i * self.n + i];
        }
        det
    }
}

/// Solves the 2×2 system `J·d = g` in closed form.
///
/// This is the inner linear solve of the paper's Newton iteration on the
/// stationarity residuals (step 4 in §2.2).
///
/// # Errors
///
/// Returns [`NumericError::SingularMatrix`] if the determinant underflows
/// relative to the matrix magnitude.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::dense::solve2;
///
/// # fn main() -> Result<(), rlckit_numeric::NumericError> {
/// let d = solve2([[2.0, 0.0], [0.0, 4.0]], [2.0, 8.0])?;
/// assert_eq!(d, [1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve2(j: [[f64; 2]; 2], g: [f64; 2]) -> Result<[f64; 2]> {
    let det = j[0][0] * j[1][1] - j[0][1] * j[1][0];
    let scale = j[0][0]
        .abs()
        .max(j[0][1].abs())
        .max(j[1][0].abs())
        .max(j[1][1].abs());
    if det.abs() <= f64::EPSILON * scale * scale {
        return Err(NumericError::SingularMatrix { pivot: 0 });
    }
    Ok([
        (g[0] * j[1][1] - g[1] * j[0][1]) / det,
        (j[0][0] * g[1] - j[1][0] * g[0]) / det,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_to_rhs() {
        let a = Matrix::identity(4);
        let x = a.solve(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn known_3x3_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            a.lu(),
            Err(NumericError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn non_square_is_dimension_error() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.lu(),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 10.0]]);
        let det = a.lu().unwrap().det();
        assert!((det - -3.0).abs() < 1e-12);
    }

    #[test]
    fn reusing_factors_for_multiple_rhs() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let lu = a.lu().unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [2.0, -5.0]] {
            let x = lu.solve(&b).unwrap();
            let r = a.mul_vec(&x).unwrap();
            assert!((r[0] - b[0]).abs() < 1e-12);
            assert!((r[1] - b[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn mul_mat_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul_mat(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn mul_vec_dimension_mismatch() {
        let a = Matrix::zeros(2, 2);
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn solve2_closed_form() {
        let d = solve2([[1.0, 2.0], [3.0, 4.0]], [5.0, 6.0]).unwrap();
        // x = A⁻¹ b with A⁻¹ = [-2, 1; 1.5, -0.5]
        assert!((d[0] - -4.0).abs() < 1e-12);
        assert!((d[1] - 4.5).abs() < 1e-12);
        assert!(solve2([[1.0, 2.0], [2.0, 4.0]], [1.0, 1.0]).is_err());
    }

    #[test]
    fn random_systems_round_trip() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / f64::from(u32::MAX) * 2.0 - 1.0
        };
        for n in [1usize, 2, 5, 20, 50] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = next();
                }
                a[(i, i)] += 4.0; // diagonally dominant => well conditioned
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = a.solve(&b).unwrap();
            let r = a.mul_vec(&x).unwrap();
            for i in 0..n {
                assert!((r[i] - b[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }
}
