//! Sweep-grid helpers for parameter studies.

/// Returns `n` evenly spaced points from `start` to `end` inclusive.
///
/// Returns an empty vector for `n = 0` and `[start]` for `n = 1`.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::grid::linspace;
///
/// let l = linspace(0.0, 5.0, 6);
/// assert_eq!(l, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
/// ```
#[must_use]
pub fn linspace(start: f64, end: f64, n: usize) -> Vec<f64> {
    match n {
        0 => Vec::new(),
        1 => vec![start],
        _ => {
            let step = (end - start) / (n - 1) as f64;
            (0..n)
                .map(|i| {
                    if i == n - 1 {
                        end
                    } else {
                        start + step * i as f64
                    }
                })
                .collect()
        }
    }
}

/// Returns `n` logarithmically spaced points from `start` to `end`
/// inclusive.
///
/// # Panics
///
/// Panics if `start` or `end` is not strictly positive.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::grid::logspace;
///
/// let l = logspace(1.0, 100.0, 3);
/// assert!((l[1] - 10.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn logspace(start: f64, end: f64, n: usize) -> Vec<f64> {
    assert!(
        start > 0.0 && end > 0.0,
        "logspace endpoints must be positive"
    );
    linspace(start.ln(), end.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_are_exact() {
        let l = linspace(0.1, 0.7, 7);
        assert_eq!(l.len(), 7);
        assert_eq!(l[0], 0.1);
        assert_eq!(l[6], 0.7);
    }

    #[test]
    fn linspace_degenerate_cases() {
        assert!(linspace(0.0, 1.0, 0).is_empty());
        assert_eq!(linspace(2.0, 9.0, 1), vec![2.0]);
    }

    #[test]
    fn logspace_is_geometric() {
        let l = logspace(1e-3, 1e3, 7);
        for w in l.windows(2) {
            assert!((w[1] / w[0] - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn logspace_rejects_nonpositive() {
        let _ = logspace(0.0, 1.0, 3);
    }
}
