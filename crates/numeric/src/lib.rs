//! Numerical kernels for the `rlckit` workspace.
//!
//! Everything the Banerjee–Mehrotra reproduction needs that a general
//! scientific stack would provide is implemented here from scratch:
//!
//! * [`complex`] — a `Complex` type with the transcendental functions used
//!   by transmission-line transfer functions (`exp`, `sqrt`, `cosh`, …).
//! * [`dense`] — dense matrices and LU factorization with partial
//!   pivoting, used by small modified-nodal-analysis systems and the
//!   2×2 Newton steps of the optimizer.
//! * [`sparse`] — a triplet-assembled sparse matrix and a sparse LU solver
//!   with partial pivoting, used by the circuit-simulator substrate.
//! * [`roots`] — scalar root finding (Newton–Raphson, bisection, Brent,
//!   bracket expansion) and damped Newton for nonlinear systems.
//! * [`minimize`] — golden-section search and Nelder–Mead, used as
//!   derivative-free cross-checks of the paper's Newton optimizer.
//! * [`poly`] — dense polynomials with Durand–Kerner complex root finding,
//!   used by the higher-order (AWE-style) reduced models.
//! * [`series`] — truncated Taylor-series algebra in the Laplace variable
//!   `s`, used to extract the transfer-function moments `b₁ … b_N`.
//! * [`ilt`] — numerical inverse Laplace transforms (Abate–Whitt Euler and
//!   fixed Talbot), the oracle for the two-pole Padé approximation.
//! * [`grid`] — `linspace`/`logspace` sweep helpers.
//! * [`rng`] — deterministic xoshiro256++ pseudo-random numbers
//!   (SplitMix64-seeded) for Monte-Carlo studies, bench workloads and the
//!   `rlckit-check` property harness; the workspace has no registry
//!   dependencies, so this replaces `rand`.
//! * [`stats`] — peak/rms/mean of (possibly non-uniformly) sampled
//!   waveforms.
//! * [`fd`] — finite-difference derivative helpers.
//!
//! # Examples
//!
//! Solving a linear system:
//!
//! ```
//! use rlckit_numeric::dense::Matrix;
//!
//! # fn main() -> Result<(), rlckit_numeric::NumericError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let x = a.lu()?.solve(&[1.0, 2.0])?;
//! assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
//! assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod dense;
pub mod fd;
pub mod grid;
pub mod ilt;
pub mod minimize;
pub mod poly;
pub mod rng;
pub mod roots;
pub mod series;
pub mod sparse;
pub mod stats;

mod error;

pub use complex::Complex;
pub use error::{FailureClass, NumericError};

/// Convenient result alias for fallible numeric routines.
pub type Result<T> = core::result::Result<T, NumericError>;

/// Fail-stop guard for solvers whose objective closures may swallow a
/// typed error into a NaN/∞ value (the RLC optimizer's residuals, the
/// planner's delay objective): if the current `rlckit-fault` scope took
/// an injection during this attempt, surface it as a typed
/// [`NumericError::InjectedFault`] instead of letting the solver
/// "recover" onto a perturbed path and accept a silently drifted
/// result. A no-op load when injection is disarmed.
pub(crate) fn injected_abort(site: &'static str) -> Result<()> {
    if rlckit_fault::poisoned() {
        return Err(NumericError::InjectedFault { site });
    }
    Ok(())
}
