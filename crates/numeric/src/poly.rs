//! Dense real-coefficient polynomials with complex root finding.
//!
//! The two-pole model only needs the quadratic formula, but the AWE-style
//! higher-order reduced models (an extension benchmarked against the
//! paper's second-order choice) need the roots of denominators of degree
//! 3–8; those are found with the Durand–Kerner simultaneous iteration.

use crate::complex::Complex;
use crate::{NumericError, Result};

/// A polynomial `p(x) = c₀ + c₁x + … + c_n xⁿ` with real coefficients
/// stored in ascending order.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::poly::Polynomial;
///
/// let p = Polynomial::new(vec![-2.0, 0.0, 1.0]); // x² - 2
/// assert_eq!(p.degree(), 2);
/// assert!((p.eval(2.0_f64.sqrt())).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending coefficients, trimming trailing
    /// zeros (the zero polynomial keeps a single `0.0`).
    #[must_use]
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Self { coeffs }
    }

    /// Returns the coefficients in ascending order.
    #[must_use]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Returns the degree (0 for constants, including the zero polynomial).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates the polynomial at a real abscissa by Horner's rule.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates the polynomial at a complex abscissa by Horner's rule.
    #[must_use]
    pub fn eval_complex(&self, z: Complex) -> Complex {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc * z + c)
    }

    /// Returns the formal derivative.
    #[must_use]
    pub fn derivative(&self) -> Self {
        if self.coeffs.len() <= 1 {
            return Self::new(vec![0.0]);
        }
        Self::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, &c)| c * i as f64)
                .collect(),
        )
    }

    /// Finds all complex roots.
    ///
    /// Degrees 1 and 2 use closed forms; higher degrees use the
    /// Durand–Kerner simultaneous iteration, which converges for
    /// polynomials with simple roots and behaves acceptably for the mildly
    /// clustered pole sets of reduced-order interconnect models.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] for the zero or constant
    /// polynomial, and [`NumericError::NoConvergence`] if the iteration
    /// stalls.
    pub fn roots(&self) -> Result<Vec<Complex>> {
        let n = self.degree();
        if n == 0 {
            return Err(NumericError::InvalidInput(
                "constant polynomial has no roots".to_string(),
            ));
        }
        let lead = *self.coeffs.last().expect("nonempty");
        match n {
            1 => Ok(vec![Complex::from_real(-self.coeffs[0] / lead)]),
            2 => {
                let (c, b, a) = (self.coeffs[0], self.coeffs[1], self.coeffs[2]);
                Ok(quadratic_roots(a, b, c).to_vec())
            }
            _ => self.durand_kerner(),
        }
    }

    fn durand_kerner(&self) -> Result<Vec<Complex>> {
        let n = self.degree();
        let lead = *self.coeffs.last().expect("nonempty");
        // Monic normalization for stability.
        let monic: Vec<f64> = self.coeffs.iter().map(|&c| c / lead).collect();
        let monic_poly = Polynomial {
            coeffs: monic.clone(),
        };

        // Initial guesses on a circle whose radius follows the Cauchy bound.
        let radius = 1.0
            + monic[..n]
                .iter()
                .map(|c| c.abs())
                .fold(0.0f64, f64::max);
        let mut roots: Vec<Complex> = (0..n)
            .map(|k| {
                // Slightly irrational angle offset avoids symmetry stalls.
                Complex::from_polar(
                    radius,
                    2.0 * core::f64::consts::PI * k as f64 / n as f64 + 0.4,
                )
            })
            .collect();

        const MAX_ITERATIONS: usize = 500;
        for _ in 0..MAX_ITERATIONS {
            let mut max_step = 0.0f64;
            for i in 0..n {
                let zi = roots[i];
                let mut denom = Complex::ONE;
                for (j, &zj) in roots.iter().enumerate() {
                    if j != i {
                        denom *= zi - zj;
                    }
                }
                if denom.abs() == 0.0 {
                    // Perturb a collision and retry on the next sweep.
                    roots[i] = zi + Complex::new(1e-8, 1e-8);
                    max_step = f64::INFINITY;
                    continue;
                }
                let step = monic_poly.eval_complex(zi) / denom;
                roots[i] = zi - step;
                max_step = max_step.max(step.abs());
            }
            if max_step < 1e-13 * radius.max(1.0) {
                // Pair up conjugates exactly for real-coefficient inputs.
                return Ok(roots);
            }
        }
        Err(NumericError::NoConvergence {
            iterations: MAX_ITERATIONS,
            residual: f64::NAN,
        })
    }
}

/// Closed-form roots of `a·x² + b·x + c` (complex-capable, stable form).
///
/// # Panics
///
/// Panics if `a == 0` (use [`Polynomial::roots`] for general input).
///
/// # Examples
///
/// ```
/// use rlckit_numeric::poly::quadratic_roots;
///
/// let [r1, r2] = quadratic_roots(1.0, -3.0, 2.0);
/// assert!((r1.re - 2.0).abs() < 1e-12 || (r1.re - 1.0).abs() < 1e-12);
/// assert_eq!(r1.im, 0.0);
/// # let _ = r2;
/// ```
#[must_use]
pub fn quadratic_roots(a: f64, b: f64, c: f64) -> [Complex; 2] {
    assert!(a != 0.0, "leading coefficient must be nonzero");
    let disc = b * b - 4.0 * a * c;
    if disc >= 0.0 {
        // Numerically stable: compute the larger-magnitude root first.
        let sq = disc.sqrt();
        let q = -0.5 * (b + b.signum() * sq);
        let r1 = if b == 0.0 { sq / (2.0 * a) } else { q / a };
        let r2 = if q != 0.0 {
            c / q
        } else {
            // b == 0 and c == 0 ⇒ double root at 0.
            -r1
        };
        [Complex::from_real(r1), Complex::from_real(r2)]
    } else {
        let re = -b / (2.0 * a);
        let im = (-disc).sqrt() / (2.0 * a);
        [Complex::new(re, im), Complex::new(re, -im)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contains_root(roots: &[Complex], target: Complex, tol: f64) -> bool {
        roots.iter().any(|r| (*r - target).abs() < tol)
    }

    #[test]
    fn trims_trailing_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn eval_matches_direct_computation() {
        let p = Polynomial::new(vec![1.0, -2.0, 3.0]); // 1 - 2x + 3x²
        assert!((p.eval(2.0) - 9.0).abs() < 1e-12);
        let z = Complex::new(1.0, 1.0);
        let expected = Complex::ONE - z * 2.0 + z * z * 3.0;
        assert!((p.eval_complex(z) - expected).abs() < 1e-12);
    }

    #[test]
    fn derivative_rules() {
        let p = Polynomial::new(vec![5.0, 1.0, 2.0, 4.0]); // 5 + x + 2x² + 4x³
        let d = p.derivative();
        assert_eq!(d.coeffs(), &[1.0, 4.0, 12.0]);
        assert_eq!(Polynomial::new(vec![7.0]).derivative().coeffs(), &[0.0]);
    }

    #[test]
    fn linear_roots() {
        let p = Polynomial::new(vec![-6.0, 2.0]);
        let r = p.roots().unwrap();
        assert!(contains_root(&r, Complex::from_real(3.0), 1e-12));
    }

    #[test]
    fn quadratic_real_and_complex() {
        let [r1, r2] = quadratic_roots(1.0, -5.0, 6.0);
        assert!((r1.re * r2.re - 6.0).abs() < 1e-12);
        assert!((r1.re + r2.re - 5.0).abs() < 1e-12);

        let [c1, c2] = quadratic_roots(1.0, 0.0, 1.0);
        assert!(contains_root(&[c1, c2], Complex::I, 1e-12));
        assert!(contains_root(&[c1, c2], -Complex::I, 1e-12));
    }

    #[test]
    fn quadratic_avoids_cancellation() {
        // x² - 1e8·x + 1 has roots ~1e8 and ~1e-8; the naive formula loses
        // the small one entirely.
        let [r1, r2] = quadratic_roots(1.0, -1e8, 1.0);
        let small = r1.re.min(r2.re);
        assert!((small - 1e-8).abs() / 1e-8 < 1e-6);
    }

    #[test]
    fn cubic_roots_via_durand_kerner() {
        // (x-1)(x-2)(x-3) = x³ - 6x² + 11x - 6
        let p = Polynomial::new(vec![-6.0, 11.0, -6.0, 1.0]);
        let r = p.roots().unwrap();
        for target in [1.0, 2.0, 3.0] {
            assert!(contains_root(&r, Complex::from_real(target), 1e-8));
        }
    }

    #[test]
    fn quintic_with_complex_pairs() {
        // (x² + 1)(x² + 4)(x - 1)
        // = x⁵ - x⁴ + 5x³ - 5x² + 4x - 4
        let p = Polynomial::new(vec![-4.0, 4.0, -5.0, 5.0, -1.0, 1.0]);
        let r = p.roots().unwrap();
        for target in [
            Complex::I,
            -Complex::I,
            Complex::new(0.0, 2.0),
            Complex::new(0.0, -2.0),
            Complex::from_real(1.0),
        ] {
            assert!(contains_root(&r, target, 1e-7), "missing {target}");
        }
    }

    #[test]
    fn residuals_vanish_at_found_roots() {
        let p = Polynomial::new(vec![2.0, -3.0, 0.5, 1.0, 0.25]);
        let r = p.roots().unwrap();
        assert_eq!(r.len(), 4);
        for z in r {
            assert!(p.eval_complex(z).abs() < 1e-7, "residual at {z}");
        }
    }

    #[test]
    fn constant_has_no_roots() {
        assert!(Polynomial::new(vec![3.0]).roots().is_err());
    }
}
