//! Finite-difference derivative helpers.
//!
//! The optimizer uses analytic derivatives for the residuals themselves
//! (the paper's `∂s₁,₂/∂h,k`) but estimates the outer Jacobian of the
//! stationarity system by central differences, which is robust across the
//! damping-regime boundary. These helpers centralize the step-size
//! heuristics.

/// Central-difference first derivative of `f` at `x`.
///
/// The step is relative (`h = scale · max(|x|, 1)`), which keeps the
/// truncation/round-off balance reasonable across the enormous magnitude
/// range of interconnect quantities.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::fd::central_derivative;
///
/// let d = central_derivative(|x| x * x * x, 2.0, 1e-6);
/// assert!((d - 12.0).abs() < 1e-5);
/// ```
pub fn central_derivative(mut f: impl FnMut(f64) -> f64, x: f64, scale: f64) -> f64 {
    let h = scale * x.abs().max(1.0);
    (f(x + h) - f(x - h)) / (2.0 * h)
}

/// Central-difference gradient of a multivariate `f` at `x`.
pub fn central_gradient(mut f: impl FnMut(&[f64]) -> f64, x: &[f64], scale: f64) -> Vec<f64> {
    let mut xp = x.to_vec();
    let mut grad = vec![0.0; x.len()];
    for i in 0..x.len() {
        let h = scale * x[i].abs().max(1.0);
        let orig = xp[i];
        xp[i] = orig + h;
        let fp = f(&xp);
        xp[i] = orig - h;
        let fm = f(&xp);
        xp[i] = orig;
        grad[i] = (fp - fm) / (2.0 * h);
    }
    grad
}

/// Central-difference Jacobian of a vector function `f: Rⁿ → Rᵐ` at `x`.
///
/// `f(x, out)` writes the `m` residuals into `out`. The Jacobian is
/// returned row-major as a [`crate::dense::Matrix`] with `m` rows and `n`
/// columns.
pub fn central_jacobian(
    mut f: impl FnMut(&[f64], &mut [f64]),
    x: &[f64],
    m: usize,
    scale: f64,
) -> crate::dense::Matrix {
    let n = x.len();
    let mut jac = crate::dense::Matrix::zeros(m, n);
    let mut xp = x.to_vec();
    let mut fp = vec![0.0; m];
    let mut fm = vec![0.0; m];
    for j in 0..n {
        let h = scale * x[j].abs().max(1.0);
        let orig = xp[j];
        xp[j] = orig + h;
        f(&xp, &mut fp);
        xp[j] = orig - h;
        f(&xp, &mut fm);
        xp[j] = orig;
        for i in 0..m {
            jac[(i, j)] = (fp[i] - fm[i]) / (2.0 * h);
        }
    }
    jac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivative_of_exponential() {
        let d = central_derivative(f64::exp, 1.0, 1e-6);
        assert!((d - std::f64::consts::E).abs() < 1e-6);
    }

    #[test]
    fn derivative_with_tiny_abscissa_uses_absolute_step() {
        // At x = 1e-300 a purely relative step would underflow.
        let d = central_derivative(|x| 3.0 * x, 1e-300, 1e-7);
        assert!((d - 3.0).abs() < 1e-9);
    }

    #[test]
    fn gradient_of_quadratic_form() {
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[0] * x[1] + 2.0 * x[1] * x[1];
        let g = central_gradient(f, &[1.0, 2.0], 1e-6);
        assert!((g[0] - 8.0).abs() < 1e-5);
        assert!((g[1] - 11.0).abs() < 1e-5);
    }

    #[test]
    fn jacobian_of_linear_map_is_its_matrix() {
        let f = |x: &[f64], out: &mut [f64]| {
            out[0] = 2.0 * x[0] - x[1];
            out[1] = x[0] + 4.0 * x[1];
        };
        let j = central_jacobian(f, &[0.3, -0.7], 2, 1e-6);
        assert!((j[(0, 0)] - 2.0).abs() < 1e-7);
        assert!((j[(0, 1)] + 1.0).abs() < 1e-7);
        assert!((j[(1, 0)] - 1.0).abs() < 1e-7);
        assert!((j[(1, 1)] - 4.0).abs() < 1e-7);
    }
}
