//! Peak, mean and rms of sampled (possibly non-uniform) waveforms.
//!
//! The reliability analysis of the paper (Fig. 12) needs the peak and rms
//! current through an interconnect over a steady-state oscillation window;
//! the simulator may have taken non-uniform time steps, so the averages
//! here are time-weighted trapezoid integrals.

/// Returns the maximum absolute sample value, or 0 for an empty series.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::stats::peak_abs;
///
/// assert_eq!(peak_abs(&[1.0, -3.0, 2.0]), 3.0);
/// assert_eq!(peak_abs(&[]), 0.0);
/// ```
#[must_use]
pub fn peak_abs(samples: &[f64]) -> f64 {
    samples.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Time-weighted mean of `values(t)` over `[t₀, t_end]` by trapezoid rule.
///
/// Returns 0 for fewer than two samples or a degenerate time span.
///
/// # Panics
///
/// Panics if `times` and `values` have different lengths.
#[must_use]
pub fn trapezoid_mean(times: &[f64], values: &[f64]) -> f64 {
    assert_eq!(times.len(), values.len(), "length mismatch");
    if times.len() < 2 {
        return 0.0;
    }
    let span = times[times.len() - 1] - times[0];
    if span <= 0.0 {
        return 0.0;
    }
    let mut integral = 0.0;
    for i in 1..times.len() {
        let dt = times[i] - times[i - 1];
        integral += 0.5 * (values[i] + values[i - 1]) * dt;
    }
    integral / span
}

/// Time-weighted root-mean-square of `values(t)` by trapezoid rule.
///
/// Returns 0 for fewer than two samples or a degenerate time span.
///
/// # Panics
///
/// Panics if `times` and `values` have different lengths.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::stats::trapezoid_rms;
///
/// // rms of a full-period sine sampled densely approaches 1/√2.
/// let times: Vec<f64> = (0..=1000).map(|i| i as f64 / 1000.0).collect();
/// let values: Vec<f64> = times
///     .iter()
///     .map(|&t| (2.0 * std::f64::consts::PI * t).sin())
///     .collect();
/// let rms = trapezoid_rms(&times, &values);
/// assert!((rms - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-4);
/// ```
#[must_use]
pub fn trapezoid_rms(times: &[f64], values: &[f64]) -> f64 {
    assert_eq!(times.len(), values.len(), "length mismatch");
    if times.len() < 2 {
        return 0.0;
    }
    let span = times[times.len() - 1] - times[0];
    if span <= 0.0 {
        return 0.0;
    }
    let mut integral = 0.0;
    for i in 1..times.len() {
        let dt = times[i] - times[i - 1];
        integral += 0.5 * (values[i] * values[i] + values[i - 1] * values[i - 1]) * dt;
    }
    (integral / span).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_of_constant_series() {
        assert_eq!(peak_abs(&[-2.0, -2.0]), 2.0);
    }

    #[test]
    fn mean_of_linear_ramp() {
        let times = [0.0, 1.0, 2.0];
        let values = [0.0, 1.0, 2.0];
        assert!((trapezoid_mean(&times, &values) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_respects_nonuniform_spacing() {
        // Value 1 for t in [0, 3], value 0 for t in (3, 4]: mean ≈ weighted.
        let times = [0.0, 3.0, 3.0 + 1e-9, 4.0];
        let values = [1.0, 1.0, 0.0, 0.0];
        let m = trapezoid_mean(&times, &values);
        assert!((m - 0.75).abs() < 1e-6);
    }

    #[test]
    fn rms_of_dc_is_its_magnitude() {
        let times = [0.0, 0.5, 1.5, 2.0];
        let values = [-3.0, -3.0, -3.0, -3.0];
        assert!((trapezoid_rms(&times, &values) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_zero() {
        assert_eq!(trapezoid_mean(&[1.0], &[5.0]), 0.0);
        assert_eq!(trapezoid_rms(&[], &[]), 0.0);
        assert_eq!(trapezoid_rms(&[1.0, 1.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = trapezoid_mean(&[0.0, 1.0], &[1.0]);
    }
}
