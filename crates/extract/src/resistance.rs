//! Wire resistance per unit length.

use rlckit_units::OhmsPerMeter;

use crate::geometry::{Material, WireGeometry};

/// Resistance per unit length `r = ρ / (w·t)` at the material's reference
/// temperature.
///
/// # Examples
///
/// ```
/// use rlckit_extract::geometry::{Material, WireGeometry};
/// use rlckit_extract::resistance::resistance_per_length;
/// use rlckit_units::Meters;
///
/// let wire = WireGeometry::new(
///     Meters::from_micro(2.0),
///     Meters::from_micro(2.5),
///     Meters::from_micro(2.0),
///     Meters::from_micro(13.9),
/// );
/// let r = resistance_per_length(&wire, Material::COPPER_INTERCONNECT);
/// assert!((r.to_ohm_per_milli() - 4.4).abs() < 0.01); // Table 1
/// ```
#[must_use]
pub fn resistance_per_length(wire: &WireGeometry, material: Material) -> OhmsPerMeter {
    OhmsPerMeter::new(material.resistivity() / wire.cross_section_area())
}

/// Resistance per unit length at an operating temperature in °C.
///
/// Joule heating raises wire temperature well above ambient in
/// high-current global wires (the reliability concern of the paper's
/// §3.3.2 reference \[28\]); this variant exposes that dependence.
#[must_use]
pub fn resistance_per_length_at(
    wire: &WireGeometry,
    material: Material,
    temperature: f64,
) -> OhmsPerMeter {
    OhmsPerMeter::new(material.resistivity_at(temperature) / wire.cross_section_area())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::Meters;

    fn table1_wire() -> WireGeometry {
        WireGeometry::new(
            Meters::from_micro(2.0),
            Meters::from_micro(2.5),
            Meters::from_micro(2.0),
            Meters::from_micro(13.9),
        )
    }

    #[test]
    fn matches_table1_for_both_nodes() {
        // Both technology nodes share the same top-metal cross-section and
        // therefore the same 4.4 Ω/mm.
        let r = resistance_per_length(&table1_wire(), Material::COPPER_INTERCONNECT);
        assert!((r.to_ohm_per_milli() - 4.4).abs() < 0.01);
    }

    #[test]
    fn aluminum_is_half_again_more_resistive() {
        let cu = resistance_per_length(&table1_wire(), Material::COPPER_INTERCONNECT);
        let al = resistance_per_length(&table1_wire(), Material::ALUMINUM_INTERCONNECT);
        assert!((al.get() / cu.get() - 1.5).abs() < 0.01);
    }

    #[test]
    fn temperature_raises_resistance() {
        let wire = table1_wire();
        let cold = resistance_per_length_at(&wire, Material::COPPER_INTERCONNECT, 25.0);
        let hot = resistance_per_length_at(&wire, Material::COPPER_INTERCONNECT, 105.0);
        assert!(hot.get() > cold.get());
        assert!((hot.get() / cold.get() - 1.312).abs() < 1e-3);
    }

    #[test]
    fn narrower_wire_is_more_resistive() {
        let narrow = WireGeometry::new(
            Meters::from_micro(1.0),
            Meters::from_micro(2.5),
            Meters::from_micro(2.0),
            Meters::from_micro(13.9),
        );
        let r_narrow = resistance_per_length(&narrow, Material::COPPER_INTERCONNECT);
        let r_wide = resistance_per_length(&table1_wire(), Material::COPPER_INTERCONNECT);
        assert!((r_narrow.get() / r_wide.get() - 2.0).abs() < 1e-12);
    }
}
