//! Line inductance models (the field-solver substitution).
//!
//! On-chip inductance is a *loop* quantity: it depends on where the
//! return current flows, which varies with the switching pattern of every
//! neighbour (paper §1.1). The paper therefore treats `l` as a swept
//! parameter bounded by the worst-case return path. This module provides
//! the classical closed forms that produce both the nominal value and the
//! worst-case bound:
//!
//! * [`partial_self_inductance`] — Ruehli/Grover partial self-inductance
//!   of a rectangular bar.
//! * [`mutual_inductance_parallel`] — Grover mutual inductance of two
//!   parallel filaments.
//! * [`microstrip_loop_inductance`] — wire over a nearby return plane
//!   (best case: tight return path).
//! * [`two_wire_loop_inductance`] — signal/return pair at an arbitrary
//!   distance (grows logarithmically — the worst-case knob).
//! * [`worst_case_line_inductance`] — the bound that justifies the
//!   paper's `0 ≤ l < 5 nH/mm` sweep.

use rlckit_units::{Henries, HenriesPerMeter, Meters};

use crate::geometry::WireGeometry;

/// Permeability of free space in H/m.
pub const VACUUM_PERMEABILITY: f64 = 4.0e-7 * core::f64::consts::PI;

/// Geometric-mean-distance equivalent radius of a rectangular cross
/// section: `0.2235·(w + t)` (Grover).
#[must_use]
pub fn rectangular_gmd_radius(wire: &WireGeometry) -> Meters {
    (wire.width() + wire.thickness()) * 0.2235
}

/// Partial self-inductance of a rectangular bar of length `length`
/// (Ruehli 1972 / Grover):
/// `L = (µ₀/2π)·ℓ·[ln(2ℓ/(w+t)) + 1/2 + 0.2235·(w+t)/ℓ]`.
///
/// # Panics
///
/// Panics if `length` is not strictly positive.
///
/// # Examples
///
/// ```
/// use rlckit_extract::geometry::WireGeometry;
/// use rlckit_extract::inductance::partial_self_inductance;
/// use rlckit_units::Meters;
///
/// let wire = WireGeometry::new(
///     Meters::from_micro(2.0),
///     Meters::from_micro(2.5),
///     Meters::from_micro(2.0),
///     Meters::from_micro(13.9),
/// );
/// // A 1 mm top-metal bar has ~1.4 nH of partial self-inductance.
/// let l = partial_self_inductance(&wire, Meters::from_milli(1.0));
/// assert!(l.get() > 1.0e-9 && l.get() < 2.0e-9);
/// ```
#[must_use]
pub fn partial_self_inductance(wire: &WireGeometry, length: Meters) -> Henries {
    let len = length.get();
    assert!(len > 0.0, "length must be positive");
    let wt = wire.width().get() + wire.thickness().get();
    let term = (2.0 * len / wt).ln() + 0.5 + 0.2235 * wt / len;
    Henries::new(VACUUM_PERMEABILITY / (2.0 * core::f64::consts::PI) * len * term)
}

/// Mutual partial inductance of two parallel filaments of length `length`
/// separated by `distance` (Grover):
/// `M = (µ₀/2π)·ℓ·[ln(ℓ/d + √(1 + (ℓ/d)²)) − √(1 + (d/ℓ)²) + d/ℓ]`.
///
/// # Panics
///
/// Panics if `length` or `distance` is not strictly positive.
#[must_use]
pub fn mutual_inductance_parallel(length: Meters, distance: Meters) -> Henries {
    let len = length.get();
    let d = distance.get();
    assert!(len > 0.0, "length must be positive");
    assert!(d > 0.0, "distance must be positive");
    let u = len / d;
    let term = (u + (1.0 + u * u).sqrt()).ln() - (1.0 + 1.0 / (u * u)).sqrt() + 1.0 / u;
    Henries::new(VACUUM_PERMEABILITY / (2.0 * core::f64::consts::PI) * len * term)
}

/// Loop inductance per unit length of a wire over a return plane at the
/// wire's `height_above_plane` (microstrip approximation):
/// `l = (µ₀/2π)·ln(8h/w_eff + w_eff/(4h))`.
///
/// This is the *minimum* practical line inductance — the return current
/// hugs the signal as closely as the stack allows.
#[must_use]
pub fn microstrip_loop_inductance(wire: &WireGeometry) -> HenriesPerMeter {
    let h = wire.height_above_plane().get();
    let w_eff = wire.width().get() + wire.thickness().get();
    let term = (8.0 * h / w_eff + w_eff / (4.0 * h)).ln();
    HenriesPerMeter::new(VACUUM_PERMEABILITY / (2.0 * core::f64::consts::PI) * term)
}

/// Loop inductance per unit length of a signal wire whose return current
/// flows in an identical parallel wire at centre-to-centre `return_distance`:
/// `l = (µ₀/π)·ln(d/r_gmd)`.
///
/// # Panics
///
/// Panics if `return_distance` does not exceed the GMD radius.
#[must_use]
pub fn two_wire_loop_inductance(
    wire: &WireGeometry,
    return_distance: Meters,
) -> HenriesPerMeter {
    let r = rectangular_gmd_radius(wire).get();
    let d = return_distance.get();
    assert!(d > r, "return distance must exceed the GMD radius");
    HenriesPerMeter::new(VACUUM_PERMEABILITY / core::f64::consts::PI * (d / r).ln())
}

/// Worst-case line inductance: the return path is `max_return_distance`
/// away (e.g. the far edge of a power-grid cell, or the substrate for an
/// unshielded top-metal route).
///
/// For the paper's geometry and millimetre-scale return loops this stays
/// below 5 nH/mm, which is exactly the sweep bound used in §3.
///
/// # Examples
///
/// ```
/// use rlckit_extract::geometry::WireGeometry;
/// use rlckit_extract::inductance::worst_case_line_inductance;
/// use rlckit_units::Meters;
///
/// let wire = WireGeometry::new(
///     Meters::from_micro(2.0),
///     Meters::from_micro(2.5),
///     Meters::from_micro(2.0),
///     Meters::from_micro(13.9),
/// );
/// let l = worst_case_line_inductance(&wire, Meters::from_milli(2.0));
/// assert!(l.to_nano_per_milli() < 5.0); // paper's sweep bound
/// ```
#[must_use]
pub fn worst_case_line_inductance(
    wire: &WireGeometry,
    max_return_distance: Meters,
) -> HenriesPerMeter {
    two_wire_loop_inductance(wire, max_return_distance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_wire() -> WireGeometry {
        WireGeometry::new(
            Meters::from_micro(2.0),
            Meters::from_micro(2.5),
            Meters::from_micro(2.0),
            Meters::from_micro(13.9),
        )
    }

    #[test]
    fn self_inductance_grows_superlinearly_with_length() {
        let w = table1_wire();
        let l1 = partial_self_inductance(&w, Meters::from_milli(1.0));
        let l2 = partial_self_inductance(&w, Meters::from_milli(2.0));
        // More than double: the log term grows too.
        assert!(l2.get() > 2.0 * l1.get());
        assert!(l2.get() < 3.0 * l1.get());
    }

    #[test]
    fn mutual_inductance_decays_with_distance() {
        let len = Meters::from_milli(1.0);
        let near = mutual_inductance_parallel(len, Meters::from_micro(4.0));
        let far = mutual_inductance_parallel(len, Meters::from_micro(400.0));
        assert!(near.get() > far.get());
        assert!(far.get() > 0.0);
    }

    #[test]
    fn mutual_is_below_self() {
        let w = table1_wire();
        let len = Meters::from_milli(1.0);
        let lp = partial_self_inductance(&w, len);
        let m = mutual_inductance_parallel(len, Meters::from_micro(4.0));
        assert!(m.get() < lp.get());
    }

    #[test]
    fn loop_inductance_from_partials_matches_two_wire_formula() {
        // L_loop = 2(L_p − M_p) for an identical pair; per unit length this
        // approaches (µ₀/π)·ln(d/r_gmd) as ℓ → ∞.
        let w = table1_wire();
        let len = Meters::from_milli(50.0);
        let d = Meters::from_micro(100.0);
        let lp = partial_self_inductance(&w, len);
        // Approximate the bar-bar mutual by the filament formula at GMD
        // distance d (valid for d >> cross-section).
        let m = mutual_inductance_parallel(len, d);
        let per_len_from_partials = 2.0 * (lp.get() - m.get()) / len.get();
        // Adjust: the partial self uses (w+t) while the loop formula uses
        // the GMD radius 0.2235(w+t); the difference is the +1/2 internal
        // term. Agreement within 10 % is the expected regime.
        let closed = two_wire_loop_inductance(&w, d).get();
        let ratio = per_len_from_partials / closed;
        assert!(
            (0.9..1.1).contains(&ratio),
            "partials {per_len_from_partials:.3e} vs closed {closed:.3e}"
        );
    }

    #[test]
    fn microstrip_is_the_floor() {
        let w = table1_wire();
        let tight = microstrip_loop_inductance(&w);
        let loose = two_wire_loop_inductance(&w, Meters::from_micro(200.0));
        assert!(tight.get() < loose.get());
        // ~0.8 nH/mm for the Table 1 stack.
        assert!(tight.to_nano_per_milli() > 0.5 && tight.to_nano_per_milli() < 1.2);
    }

    #[test]
    fn worst_case_supports_paper_sweep_bound() {
        let w = table1_wire();
        // Even a 10 mm-away return stays under 5 nH/mm…
        let l = worst_case_line_inductance(&w, Meters::from_milli(10.0));
        assert!(l.to_nano_per_milli() < 5.0, "got {}", l.to_nano_per_milli());
        // …and practical sub-millimetre loops are in the 1–3 nH/mm band
        // where the ring-oscillator failures of §3.3 occur.
        let l = worst_case_line_inductance(&w, Meters::from_micro(500.0));
        assert!(l.to_nano_per_milli() > 1.0 && l.to_nano_per_milli() < 3.5);
    }

    #[test]
    #[should_panic(expected = "return distance must exceed")]
    fn overlapping_return_rejected() {
        let w = table1_wire();
        let _ = two_wire_loop_inductance(&w, Meters::from_nano(100.0));
    }
}
