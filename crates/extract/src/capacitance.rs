//! Line capacitance models (the FASTCAP substitution).
//!
//! The paper extracted `c` with a 3-D field solver. Here we provide the
//! standard closed-form 2-D models:
//!
//! * [`parallel_plate`] — the zeroth-order bottom-plate term.
//! * [`sakurai_tamaru_single`] — single line over a plane with fringe
//!   (T. Sakurai and K. Tamaru, "Simple formulas for two- and
//!   three-dimensional capacitances", IEEE T-ED 30(2), 1983).
//! * [`sakurai_tamaru_coupling`] — lateral coupling to one same-layer
//!   neighbour from the same paper's coupled-line fit.
//! * [`total_line_capacitance`] — ground + both neighbours with a Miller
//!   switching factor, the effective-`c` picture of the paper's §3
//!   (which notes up to 4× variation with neighbour activity).
//!
//! The models land within a few tens of percent of the FASTCAP values in
//! Table 1; the methodology consumes `c` as an input, so the experiment
//! harness uses the paper's extracted values and these models serve to
//! show where they come from (and to extrapolate to other geometries).

use rlckit_units::FaradsPerMeter;

use crate::geometry::WireGeometry;

/// Permittivity of free space in F/m.
pub const VACUUM_PERMITTIVITY: f64 = 8.854_187_812_8e-12;

/// Parallel-plate capacitance per unit length `ε·w/h` of a wire to the
/// plane below it.
///
/// # Examples
///
/// ```
/// use rlckit_extract::capacitance::parallel_plate;
/// use rlckit_extract::geometry::WireGeometry;
/// use rlckit_units::Meters;
///
/// let wire = WireGeometry::new(
///     Meters::from_micro(2.0),
///     Meters::from_micro(2.5),
///     Meters::from_micro(2.0),
///     Meters::from_micro(13.9),
/// );
/// let c = parallel_plate(&wire, 3.3);
/// assert!(c.to_pico() > 3.0 && c.to_pico() < 6.0);
/// ```
#[must_use]
pub fn parallel_plate(wire: &WireGeometry, relative_permittivity: f64) -> FaradsPerMeter {
    let eps = relative_permittivity * VACUUM_PERMITTIVITY;
    FaradsPerMeter::new(eps * wire.width().get() / wire.height_above_plane().get())
}

/// Sakurai–Tamaru capacitance of an isolated line over a plane, including
/// fringe: `C/ε = 1.15·(w/h) + 2.80·(t/h)^0.222`.
///
/// Accurate to ~6 % for `0.3 < w/h < 30` and `0.3 < t/h < 30`.
#[must_use]
pub fn sakurai_tamaru_single(wire: &WireGeometry, relative_permittivity: f64) -> FaradsPerMeter {
    let eps = relative_permittivity * VACUUM_PERMITTIVITY;
    let w_h = wire.width() / wire.height_above_plane();
    let t_h = wire.thickness() / wire.height_above_plane();
    FaradsPerMeter::new(eps * (1.15 * w_h + 2.80 * t_h.powf(0.222)))
}

/// Sakurai–Tamaru lateral coupling capacitance to one parallel neighbour
/// at the wire's spacing:
/// `C/ε = [0.03·(w/h) + 0.83·(t/h) − 0.07·(t/h)^0.222]·(s/h)^−1.34`.
#[must_use]
pub fn sakurai_tamaru_coupling(wire: &WireGeometry, relative_permittivity: f64) -> FaradsPerMeter {
    let eps = relative_permittivity * VACUUM_PERMITTIVITY;
    let w_h = wire.width() / wire.height_above_plane();
    let t_h = wire.thickness() / wire.height_above_plane();
    let s_h = wire.spacing() / wire.height_above_plane();
    let coefficient = 0.03 * w_h + 0.83 * t_h - 0.07 * t_h.powf(0.222);
    FaradsPerMeter::new(eps * coefficient * s_h.powf(-1.34))
}

/// Switching activity of the two same-layer neighbours, which sets the
/// Miller factor applied to the lateral coupling capacitance.
///
/// The paper (§3) notes effective line capacitance varies by as much as
/// 4× with neighbour activity, then holds `c` fixed; this enum makes the
/// variants available to users exploring that sensitivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NeighborActivity {
    /// Neighbours switch with the victim: coupling is invisible (factor 0).
    SwitchingWith,
    /// Neighbours are quiet: coupling counts once (factor 1).
    #[default]
    Quiet,
    /// Neighbours switch against the victim: coupling Miller-doubles
    /// (factor 2).
    SwitchingAgainst,
}

impl NeighborActivity {
    /// The Miller multiplication factor for this activity pattern.
    #[must_use]
    pub fn miller_factor(self) -> f64 {
        match self {
            Self::SwitchingWith => 0.0,
            Self::Quiet => 1.0,
            Self::SwitchingAgainst => 2.0,
        }
    }
}

/// Total effective line capacitance: ground term plus both neighbours
/// weighted by the Miller factor of their switching activity.
///
/// # Examples
///
/// ```
/// use rlckit_extract::capacitance::{total_line_capacitance, NeighborActivity};
/// use rlckit_extract::geometry::WireGeometry;
/// use rlckit_units::Meters;
///
/// let wire = WireGeometry::new(
///     Meters::from_micro(2.0),
///     Meters::from_micro(2.5),
///     Meters::from_micro(2.0),
///     Meters::from_micro(13.9),
/// );
/// let quiet = total_line_capacitance(&wire, 3.3, NeighborActivity::Quiet);
/// let worst = total_line_capacitance(&wire, 3.3, NeighborActivity::SwitchingAgainst);
/// assert!(worst.get() > quiet.get());
/// ```
#[must_use]
pub fn total_line_capacitance(
    wire: &WireGeometry,
    relative_permittivity: f64,
    activity: NeighborActivity,
) -> FaradsPerMeter {
    let ground = sakurai_tamaru_single(wire, relative_permittivity);
    let coupling = sakurai_tamaru_coupling(wire, relative_permittivity);
    ground + coupling * (2.0 * activity.miller_factor())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::Meters;

    fn wire(t_ins_um: f64) -> WireGeometry {
        WireGeometry::new(
            Meters::from_micro(2.0),
            Meters::from_micro(2.5),
            Meters::from_micro(2.0),
            Meters::from_micro(t_ins_um),
        )
    }

    #[test]
    fn fringe_dominates_for_narrow_tall_wires() {
        // For w/h << 1 the fringe term must dominate the plate term.
        let w = wire(13.9);
        let plate = parallel_plate(&w, 3.3);
        let single = sakurai_tamaru_single(&w, 3.3);
        assert!(single.get() > 5.0 * plate.get());
    }

    #[test]
    fn capacitance_scales_linearly_with_permittivity() {
        let w = wire(13.9);
        let a = sakurai_tamaru_single(&w, 2.0);
        let b = sakurai_tamaru_single(&w, 4.0);
        assert!((b.get() / a.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn coupling_decreases_with_spacing() {
        let near = WireGeometry::new(
            Meters::from_micro(2.0),
            Meters::from_micro(2.5),
            Meters::from_micro(1.0),
            Meters::from_micro(13.9),
        );
        let far = WireGeometry::new(
            Meters::from_micro(2.0),
            Meters::from_micro(2.5),
            Meters::from_micro(8.0),
            Meters::from_micro(13.9),
        );
        assert!(sakurai_tamaru_coupling(&near, 3.3).get() > sakurai_tamaru_coupling(&far, 3.3).get());
    }

    #[test]
    fn miller_factor_ordering() {
        let w = wire(13.9);
        let with = total_line_capacitance(&w, 3.3, NeighborActivity::SwitchingWith);
        let quiet = total_line_capacitance(&w, 3.3, NeighborActivity::Quiet);
        let against = total_line_capacitance(&w, 3.3, NeighborActivity::SwitchingAgainst);
        assert!(with.get() < quiet.get());
        assert!(quiet.get() < against.get());
        // Ground term is unchanged: against - quiet == quiet - with.
        let delta1 = against.get() - quiet.get();
        let delta2 = quiet.get() - with.get();
        assert!((delta1 - delta2).abs() < 1e-18);
    }

    #[test]
    fn same_order_as_paper_table1() {
        // FASTCAP gave 203.5 pF/m (εr = 3.3, t_ins = 13.9 µm) and
        // 123.33 pF/m (εr = 2.0, t_ins = 15.4 µm). The 2-D models include
        // only two neighbours and one plane, so agreement within ~40 %
        // establishes the substitution is sound; the harness uses the
        // paper's values directly.
        let c250 = total_line_capacitance(&wire(13.9), 3.3, NeighborActivity::Quiet);
        assert!(
            c250.to_pico() > 0.6 * 203.5 && c250.to_pico() < 1.4 * 203.5,
            "got {} pF/m",
            c250.to_pico()
        );
        let c100 = total_line_capacitance(&wire(15.4), 2.0, NeighborActivity::Quiet);
        assert!(
            c100.to_pico() > 0.6 * 123.33 && c100.to_pico() < 1.4 * 123.33,
            "got {} pF/m",
            c100.to_pico()
        );
    }

    #[test]
    fn worst_case_miller_is_far_above_nominal() {
        // The paper notes up to 4× variation in effective c with
        // aspect-ratio > 1 wires at tight pitch. Our top-metal geometry is
        // relatively relaxed (s/h ≈ 0.14) so the swing is smaller, but the
        // against/with ratio must still exceed 2.
        let w = wire(13.9);
        let with = total_line_capacitance(&w, 3.3, NeighborActivity::SwitchingWith);
        let against = total_line_capacitance(&w, 3.3, NeighborActivity::SwitchingAgainst);
        assert!(against.get() / with.get() > 2.0);
    }
}
