//! Closed-form parasitic extraction for on-chip interconnect.
//!
//! The paper obtained line capacitance from the FASTCAP 3-D field solver
//! and bounded the line inductance with field-solver-class estimates. This
//! crate substitutes published closed-form models that consume the same
//! cross-section geometry (paper Table 1) and produce the same
//! per-unit-length `r`, `l`, `c` that the optimization methodology needs:
//!
//! * [`resistance`] — sheet/volume resistivity with temperature scaling.
//! * [`capacitance`] — parallel-plate, Sakurai–Tamaru single-line and
//!   coupled-line fringe models, and the Miller-factor combination the
//!   paper discusses in §3 (effective `c` varying up to 4×).
//! * [`inductance`] — Ruehli/Grover partial self and mutual inductance,
//!   microstrip and two-wire loop inductance, and the worst-case return
//!   path bound that justifies the paper's `l < 5 nH/mm` sweep range.
//! * [`skin`] — frequency-dependent (skin-effect) resistance estimates,
//!   quantifying when the methodology's DC-`r` choice starts to err.
//!
//! # Examples
//!
//! Reproducing the 250 nm top-metal line resistance of Table 1:
//!
//! ```
//! use rlckit_extract::geometry::{Material, WireGeometry};
//! use rlckit_extract::resistance::resistance_per_length;
//! use rlckit_units::Meters;
//!
//! let wire = WireGeometry::new(
//!     Meters::from_micro(2.0),  // width
//!     Meters::from_micro(2.5),  // thickness
//!     Meters::from_micro(2.0),  // spacing to neighbours
//!     Meters::from_micro(13.9), // height above the return plane
//! );
//! let r = resistance_per_length(&wire, Material::COPPER_INTERCONNECT);
//! assert!((r.to_ohm_per_milli() - 4.4).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacitance;
pub mod geometry;
pub mod inductance;
pub mod resistance;
pub mod skin;

pub use geometry::{Material, WireGeometry};
