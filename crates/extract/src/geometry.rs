//! Wire cross-section geometry and conductor materials.

use rlckit_units::Meters;

/// Cross-section geometry of a routed interconnect wire.
///
/// Matches the columns of the paper's Table 1: `width`, `pitch`
/// (`width + spacing`), `height` (metal thickness) and `t_ins` (dielectric
/// height above the current-return plane, the substrate for top-level
/// metal).
///
/// # Examples
///
/// ```
/// use rlckit_extract::geometry::WireGeometry;
/// use rlckit_units::Meters;
///
/// // Table 1 (both nodes share the top-metal cross-section).
/// let wire = WireGeometry::new(
///     Meters::from_micro(2.0),
///     Meters::from_micro(2.5),
///     Meters::from_micro(2.0),
///     Meters::from_micro(13.9),
/// );
/// assert!((wire.pitch().get() - 4.0e-6).abs() < 1e-12);
/// assert!(wire.aspect_ratio() > 1.0); // DSM wires are taller than wide
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireGeometry {
    width: Meters,
    thickness: Meters,
    spacing: Meters,
    height_above_plane: Meters,
}

impl WireGeometry {
    /// Creates a wire cross-section.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is not strictly positive.
    #[must_use]
    pub fn new(
        width: Meters,
        thickness: Meters,
        spacing: Meters,
        height_above_plane: Meters,
    ) -> Self {
        assert!(width.get() > 0.0, "width must be positive");
        assert!(thickness.get() > 0.0, "thickness must be positive");
        assert!(spacing.get() > 0.0, "spacing must be positive");
        assert!(
            height_above_plane.get() > 0.0,
            "height above plane must be positive"
        );
        Self {
            width,
            thickness,
            spacing,
            height_above_plane,
        }
    }

    /// Drawn width of the wire.
    #[must_use]
    pub fn width(&self) -> Meters {
        self.width
    }

    /// Metal thickness (the paper's "height" column).
    #[must_use]
    pub fn thickness(&self) -> Meters {
        self.thickness
    }

    /// Edge-to-edge spacing to the nearest same-layer neighbours.
    #[must_use]
    pub fn spacing(&self) -> Meters {
        self.spacing
    }

    /// Dielectric height between the wire bottom and the return plane
    /// (the paper's `t_ins`).
    #[must_use]
    pub fn height_above_plane(&self) -> Meters {
        self.height_above_plane
    }

    /// Routing pitch `width + spacing`.
    #[must_use]
    pub fn pitch(&self) -> Meters {
        self.width + self.spacing
    }

    /// Aspect ratio `thickness / width`.
    #[must_use]
    pub fn aspect_ratio(&self) -> f64 {
        self.thickness / self.width
    }

    /// Conductor cross-section area in m².
    #[must_use]
    pub fn cross_section_area(&self) -> f64 {
        self.width.get() * self.thickness.get()
    }
}

/// A conductor material: resistivity at the reference temperature plus a
/// linear temperature coefficient.
///
/// # Examples
///
/// ```
/// use rlckit_extract::geometry::Material;
///
/// let cu = Material::COPPER_INTERCONNECT;
/// // Resistivity rises with temperature.
/// assert!(cu.resistivity_at(85.0) > cu.resistivity_at(25.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Resistivity at the reference temperature, in Ω·m.
    resistivity: f64,
    /// Linear temperature coefficient of resistivity, in 1/°C.
    temperature_coefficient: f64,
    /// Reference temperature in °C.
    reference_temperature: f64,
}

impl Material {
    /// Damascene copper interconnect. The effective resistivity
    /// (2.2 µΩ·cm) includes the barrier/liner penalty and is the value
    /// that reproduces the paper's 4.4 Ω/mm for a 2 µm × 2.5 µm wire.
    pub const COPPER_INTERCONNECT: Self = Self {
        resistivity: 2.2e-8,
        temperature_coefficient: 3.9e-3,
        reference_temperature: 25.0,
    };

    /// Aluminium-copper alloy interconnect (3.3 µΩ·cm), the pre-copper
    /// baseline the paper's introduction contrasts against.
    pub const ALUMINUM_INTERCONNECT: Self = Self {
        resistivity: 3.3e-8,
        temperature_coefficient: 4.2e-3,
        reference_temperature: 25.0,
    };

    /// Creates a material from resistivity (Ω·m), its linear temperature
    /// coefficient (1/°C) and the reference temperature (°C).
    ///
    /// # Panics
    ///
    /// Panics if the resistivity is not strictly positive.
    #[must_use]
    pub fn new(
        resistivity: f64,
        temperature_coefficient: f64,
        reference_temperature: f64,
    ) -> Self {
        assert!(resistivity > 0.0, "resistivity must be positive");
        Self {
            resistivity,
            temperature_coefficient,
            reference_temperature,
        }
    }

    /// Resistivity at the reference temperature, in Ω·m.
    #[must_use]
    pub fn resistivity(&self) -> f64 {
        self.resistivity
    }

    /// Resistivity at `temperature` (°C) with the linear model
    /// `ρ(T) = ρ₀·(1 + α·(T − T₀))`.
    #[must_use]
    pub fn resistivity_at(&self, temperature: f64) -> f64 {
        self.resistivity
            * (1.0 + self.temperature_coefficient * (temperature - self.reference_temperature))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_wire() -> WireGeometry {
        WireGeometry::new(
            Meters::from_micro(2.0),
            Meters::from_micro(2.5),
            Meters::from_micro(2.0),
            Meters::from_micro(13.9),
        )
    }

    #[test]
    fn derived_quantities() {
        let w = table1_wire();
        assert!((w.pitch().get() - 4e-6).abs() < 1e-15);
        assert!((w.aspect_ratio() - 1.25).abs() < 1e-12);
        assert!((w.cross_section_area() - 5e-12).abs() < 1e-20);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = WireGeometry::new(
            Meters::ZERO,
            Meters::from_micro(1.0),
            Meters::from_micro(1.0),
            Meters::from_micro(1.0),
        );
    }

    #[test]
    fn copper_beats_aluminum() {
        assert!(
            Material::COPPER_INTERCONNECT.resistivity()
                < Material::ALUMINUM_INTERCONNECT.resistivity()
        );
    }

    #[test]
    fn temperature_scaling_is_linear() {
        let cu = Material::COPPER_INTERCONNECT;
        let base = cu.resistivity_at(25.0);
        assert!((base - cu.resistivity()).abs() < 1e-20);
        let hot = cu.resistivity_at(125.0);
        assert!((hot / base - (1.0 + 0.39)).abs() < 1e-12);
    }
}
