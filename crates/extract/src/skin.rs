//! Skin-effect (frequency-dependent) resistance — an extension.
//!
//! The paper's reference \[11\] (Krauter & Mehrotra, DAC 1998) extracts
//! frequency-dependent resistance and inductance; the optimization
//! methodology itself uses the DC `r`, which is conservative for delay
//! but understates loss at the ringing frequency. This module supplies
//! the classical estimates needed to judge when that matters:
//!
//! * [`skin_depth`] — `δ = √(ρ/(π·f·µ₀))`;
//! * [`ac_resistance_per_length`] — current confined to a `δ`-deep shell
//!   of the rectangular cross-section, with the exact DC limit;
//! * [`skin_onset_frequency`] — where the AC value departs from DC.

use rlckit_units::{Hertz, OhmsPerMeter};

use crate::geometry::{Material, WireGeometry};
use crate::inductance::VACUUM_PERMEABILITY;

/// Skin depth `δ = √(ρ/(π·f·µ₀))` in metres.
///
/// # Panics
///
/// Panics unless the frequency is strictly positive.
///
/// # Examples
///
/// ```
/// use rlckit_extract::geometry::Material;
/// use rlckit_extract::skin::skin_depth;
/// use rlckit_units::Hertz;
///
/// // Copper at 1 GHz: ≈ 2.36 µm (with the 2.2 µΩ·cm damascene value).
/// let d = skin_depth(Material::COPPER_INTERCONNECT, Hertz::from_giga(1.0));
/// assert!((d * 1e6 - 2.36).abs() < 0.05);
/// ```
#[must_use]
pub fn skin_depth(material: Material, frequency: Hertz) -> f64 {
    let f = frequency.get();
    assert!(f > 0.0, "frequency must be positive");
    (material.resistivity() / (core::f64::consts::PI * f * VACUUM_PERMEABILITY)).sqrt()
}

/// AC resistance per unit length of a rectangular conductor: the current
/// is confined to a shell of depth `δ` around the perimeter; when `δ`
/// exceeds half the smaller cross-section dimension the DC value is
/// returned (the shell covers everything).
///
/// # Examples
///
/// ```
/// use rlckit_extract::geometry::{Material, WireGeometry};
/// use rlckit_extract::skin::ac_resistance_per_length;
/// use rlckit_units::{Hertz, Meters};
///
/// let wire = WireGeometry::new(
///     Meters::from_micro(2.0),
///     Meters::from_micro(2.5),
///     Meters::from_micro(2.0),
///     Meters::from_micro(13.9),
/// );
/// let dc = ac_resistance_per_length(&wire, Material::COPPER_INTERCONNECT, Hertz::new(1e6));
/// let ghz10 = ac_resistance_per_length(&wire, Material::COPPER_INTERCONNECT, Hertz::from_giga(10.0));
/// assert!(ghz10.get() > dc.get()); // skin effect bites at 10 GHz
/// ```
#[must_use]
pub fn ac_resistance_per_length(
    wire: &WireGeometry,
    material: Material,
    frequency: Hertz,
) -> OhmsPerMeter {
    let w = wire.width().get();
    let t = wire.thickness().get();
    let delta = skin_depth(material, frequency);
    let full_area = w * t;
    let half_min = 0.5 * w.min(t);
    if delta >= half_min {
        return OhmsPerMeter::new(material.resistivity() / full_area);
    }
    // Conducting shell: full area minus the untouched core.
    let core = (w - 2.0 * delta) * (t - 2.0 * delta);
    let shell = full_area - core;
    OhmsPerMeter::new(material.resistivity() / shell)
}

/// The frequency at which the skin depth equals half the smaller
/// cross-section dimension — below this the wire is effectively DC.
///
/// # Examples
///
/// ```
/// use rlckit_extract::geometry::{Material, WireGeometry};
/// use rlckit_extract::skin::skin_onset_frequency;
/// use rlckit_units::Meters;
///
/// let wire = WireGeometry::new(
///     Meters::from_micro(2.0),
///     Meters::from_micro(2.5),
///     Meters::from_micro(2.0),
///     Meters::from_micro(13.9),
/// );
/// let f = skin_onset_frequency(&wire, Material::COPPER_INTERCONNECT);
/// // Table 1 wires go "AC" around 5–6 GHz.
/// assert!(f.get() > 1e9 && f.get() < 2e10);
/// ```
#[must_use]
pub fn skin_onset_frequency(wire: &WireGeometry, material: Material) -> Hertz {
    let half_min = 0.5 * wire.width().get().min(wire.thickness().get());
    // δ(f) = half_min  ⇒  f = ρ/(π·µ₀·half_min²).
    Hertz::new(
        material.resistivity()
            / (core::f64::consts::PI * VACUUM_PERMEABILITY * half_min * half_min),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::Meters;

    fn table1_wire() -> WireGeometry {
        WireGeometry::new(
            Meters::from_micro(2.0),
            Meters::from_micro(2.5),
            Meters::from_micro(2.0),
            Meters::from_micro(13.9),
        )
    }

    #[test]
    fn skin_depth_scales_as_inverse_sqrt_frequency() {
        let d1 = skin_depth(Material::COPPER_INTERCONNECT, Hertz::from_giga(1.0));
        let d4 = skin_depth(Material::COPPER_INTERCONNECT, Hertz::from_giga(4.0));
        assert!((d1 / d4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dc_limit_matches_dc_extraction() {
        let wire = table1_wire();
        let dc = crate::resistance::resistance_per_length(&wire, Material::COPPER_INTERCONNECT);
        let low_f =
            ac_resistance_per_length(&wire, Material::COPPER_INTERCONNECT, Hertz::new(1e5));
        assert!((low_f.get() - dc.get()).abs() < 1e-12 * dc.get());
    }

    #[test]
    fn ac_resistance_is_monotone_in_frequency() {
        let wire = table1_wire();
        let mut last = 0.0;
        for f_ghz in [0.1, 1.0, 5.0, 10.0, 50.0] {
            let r = ac_resistance_per_length(
                &wire,
                Material::COPPER_INTERCONNECT,
                Hertz::from_giga(f_ghz),
            )
            .get();
            assert!(r >= last, "f={f_ghz} GHz");
            last = r;
        }
    }

    #[test]
    fn onset_is_continuous() {
        // Just below/above the onset frequency the two branches agree.
        let wire = table1_wire();
        let f0 = skin_onset_frequency(&wire, Material::COPPER_INTERCONNECT);
        let below = ac_resistance_per_length(
            &wire,
            Material::COPPER_INTERCONNECT,
            Hertz::new(f0.get() * 0.999),
        );
        let above = ac_resistance_per_length(
            &wire,
            Material::COPPER_INTERCONNECT,
            Hertz::new(f0.get() * 1.001),
        );
        assert!((above.get() / below.get() - 1.0).abs() < 0.01);
    }

    #[test]
    fn ringing_frequency_of_paper_lines_is_near_onset() {
        // The two-pole ringing of an optimally buffered 100 nm segment at
        // l = 2 nH/mm sits at a few GHz — the same order as the skin
        // onset, which is why the paper's DC-r choice is reasonable but
        // not free. (This quantifies the extension's relevance.)
        let wire = table1_wire();
        let onset = skin_onset_frequency(&wire, Material::COPPER_INTERCONNECT);
        assert!(onset.get() > 1e9 && onset.get() < 2e10);
    }
}
