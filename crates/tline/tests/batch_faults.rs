//! Armed-fault differential test for the batched delay solver.
//!
//! Lives in its own integration binary because arming `rlckit-fault` is
//! process-global: unit tests of the library crate must never see
//! injected faults.

use rlckit_numeric::NumericError;
use rlckit_tline::batch::{solve_delays, DelayConfig, DelayOutcome};
use rlckit_tline::TwoPole;

fn scalar(config: &DelayConfig) -> Result<DelayOutcome, NumericError> {
    let (delay, iterations) =
        TwoPole::try_new(config.b1, config.b2)?.delay_with_iterations(config.threshold)?;
    Ok(DelayOutcome { delay, iterations })
}

/// With faults armed, a batch pushed under one scope must reproduce the
/// scalar sequential loop's injection decisions exactly: same lanes
/// fail with `InjectedFault`, same lanes succeed with identical bits.
#[test]
fn armed_batch_reproduces_the_scalar_injection_sequence() {
    let configs: Vec<DelayConfig> = (0..48)
        .map(|i| DelayConfig {
            b1: 1.0,
            b2: 0.02 + 0.09 * f64::from(i),
            threshold: 0.5,
        })
        .collect();

    for seed in [1, 2001, 0xDEAD] {
        for rate in [0.05, 0.5, 1.0] {
            rlckit_fault::arm(seed, rate);
            let scalar_run: Vec<_> = rlckit_fault::with_scope(7, || {
                configs.iter().map(scalar).collect()
            });
            let batched_run = rlckit_fault::with_scope(7, || solve_delays(&configs));
            rlckit_fault::disarm();

            let mut injected = 0;
            for (i, (want, got)) in scalar_run.iter().zip(&batched_run).enumerate() {
                match (want, got) {
                    (Ok(w), Ok(g)) => {
                        assert_eq!(
                            w.delay.get().to_bits(),
                            g.delay.get().to_bits(),
                            "seed={seed} rate={rate} lane {i}"
                        );
                        assert_eq!(w.iterations, g.iterations, "seed={seed} rate={rate} lane {i}");
                    }
                    (Err(w), Err(g)) => {
                        assert_eq!(w, g, "seed={seed} rate={rate} lane {i}");
                        if matches!(w, NumericError::InjectedFault { .. }) {
                            injected += 1;
                        }
                    }
                    other => panic!("seed={seed} rate={rate} lane {i}: kind drifted: {other:?}"),
                }
            }
            if rate >= 1.0 {
                assert!(injected > 0, "seed={seed}: full rate must inject somewhere");
            }
        }
    }
}

/// A poisoned scope (a fault already fired before the batch ran) must
/// suppress further injections in both paths identically.
#[test]
fn batch_respects_an_already_poisoned_scope() {
    let configs: Vec<DelayConfig> = (0..8)
        .map(|i| DelayConfig {
            b1: 1.0,
            b2: 0.05 + 0.1 * f64::from(i),
            threshold: 0.5,
        })
        .collect();
    rlckit_fault::arm(99, 1.0);
    let run = |f: &dyn Fn() -> Vec<Result<DelayOutcome, NumericError>>| {
        rlckit_fault::with_scope(3, || {
            // Burn fault hits until the one-shot injection fires.
            while !rlckit_fault::poisoned() {
                let _ = rlckit_fault::should_inject("warmup");
            }
            f()
        })
    };
    let scalar_run = run(&|| configs.iter().map(scalar).collect());
    let batched_run = run(&|| solve_delays(&configs));
    rlckit_fault::disarm();
    for (want, got) in scalar_run.iter().zip(&batched_run) {
        match (want, got) {
            (Ok(w), Ok(g)) => {
                assert_eq!(w.delay.get().to_bits(), g.delay.get().to_bits());
            }
            other => panic!("poisoned-scope outcome drifted: {other:?}"),
        }
    }
}
