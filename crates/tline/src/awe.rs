//! Higher-order (AWE-style) reduced models — an extension.
//!
//! The paper stops at the second-order Padé reduction. The moment
//! machinery in [`crate::dil`] produces `b₁ … b_N` for any `N`, so this
//! module builds the `[0/N]` Padé model `H(s) ≈ 1/(1 + b₁s + … + b_N sᴺ)`
//! for small `N`, recovers its poles, and synthesizes the step response
//! by partial fractions. The ablation benches compare its delay accuracy
//! (against the exact inversion) with the two-pole model's.
//!
//! Caveat, faithfully reproduced: direct moment matching is famously
//! ill-conditioned and can produce *unstable* poles for some orders and
//! configurations; [`ReducedModel::from_moments`] rejects those instead
//! of silently returning a useless response.

use rlckit_numeric::poly::Polynomial;
use rlckit_numeric::roots::{brent, RootOptions};
use rlckit_numeric::{Complex, NumericError, Result};
use rlckit_units::Seconds;

use crate::dil::DriverInterconnectLoad;

/// A stable all-pole reduced model with its partial-fraction residues.
///
/// # Examples
///
/// ```
/// use rlckit_tline::{awe::ReducedModel, dil::DriverInterconnectLoad, line::LineRlc};
/// use rlckit_units::*;
///
/// # fn main() -> Result<(), rlckit_numeric::NumericError> {
/// let line = LineRlc::new(
///     OhmsPerMeter::from_ohm_per_milli(4.4),
///     HenriesPerMeter::from_nano_per_milli(1.0),
///     FaradsPerMeter::from_pico(203.5),
/// );
/// let dil = DriverInterconnectLoad::new(
///     Ohms::new(20.0),
///     Farads::from_femto(3611.0),
///     line,
///     Meters::from_milli(14.4),
///     Farads::from_femto(943.0),
/// );
/// let model = ReducedModel::from_structure(&dil, 2)?;
/// assert_eq!(model.order(), 2);
/// let v = model.step_response(5.0 * dil.b1());
/// assert!((v - 1.0).abs() < 0.05);
/// // Direct moment matching is ill-conditioned: for this structure the
/// // middle orders produce unstable poles and are rejected.
/// assert!(ReducedModel::from_structure(&dil, 4).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReducedModel {
    poles: Vec<Complex>,
    residues: Vec<Complex>,
}

impl ReducedModel {
    /// Builds an order-`n` model from denominator moments
    /// `[1, b₁, …, b_n]`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] if fewer than `n + 1`
    /// moments are supplied, if the root finder fails, or if any
    /// recovered pole is unstable (`Re ≥ 0`) — the documented failure
    /// mode of direct moment matching.
    pub fn from_moments(moments: &[f64], n: usize) -> Result<Self> {
        if moments.len() < n + 1 || n < 1 {
            return Err(NumericError::InvalidInput(format!(
                "need {} moments for an order-{n} model, got {}",
                n + 1,
                moments.len()
            )));
        }
        let denominator = Polynomial::new(moments[..=n].to_vec());
        if denominator.degree() < n {
            return Err(NumericError::InvalidInput(
                "leading moment vanished; reduce the order".to_string(),
            ));
        }
        let poles = denominator.roots()?;
        if let Some(bad) = poles.iter().find(|p| p.re >= 0.0) {
            return Err(NumericError::InvalidInput(format!(
                "moment matching produced an unstable pole at {bad}"
            )));
        }
        // Residues of 1/(s·D(s)) at each pole: 1/(p·D'(p)).
        let derivative = denominator.derivative();
        let residues = poles
            .iter()
            .map(|&p| (p * derivative.eval_complex(p)).recip())
            .collect();
        Ok(Self { poles, residues })
    }

    /// Builds an order-`n` model directly from a DIL structure.
    ///
    /// # Errors
    ///
    /// See [`ReducedModel::from_moments`].
    pub fn from_structure(dil: &DriverInterconnectLoad, n: usize) -> Result<Self> {
        Self::from_moments(&dil.moments(n), n)
    }

    /// Model order (number of poles).
    #[must_use]
    pub fn order(&self) -> usize {
        self.poles.len()
    }

    /// The recovered poles.
    #[must_use]
    pub fn poles(&self) -> &[Complex] {
        &self.poles
    }

    /// Normalized step response `v(t) = 1 + Σ residueᵢ·e^{pᵢ·t}`
    /// (real by conjugate symmetry; the imaginary residue is discarded).
    ///
    /// Returns 0 for `t ≤ 0`.
    #[must_use]
    pub fn step_response(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let sum: Complex = self
            .poles
            .iter()
            .zip(&self.residues)
            .map(|(&p, &r)| r * (p * t).exp())
            .sum();
        1.0 + sum.re
    }

    /// The `f·100 %` delay of the reduced model: first crossing of `f`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] unless `0 < f < 1`, or
    /// [`NumericError::InvalidBracket`] if the response never reaches `f`
    /// within the scan horizon.
    pub fn delay(&self, f: f64) -> Result<Seconds> {
        if !(0.0 < f && f < 1.0) {
            return Err(NumericError::InvalidInput(format!(
                "delay threshold must lie in (0, 1), got {f}"
            )));
        }
        // Scale from the slowest pole.
        let slowest = self
            .poles
            .iter()
            .map(|p| -1.0 / p.re)
            .fold(0.0f64, f64::max);
        let horizon = 20.0 * slowest;
        let n_scan = 800;
        let dt = horizon / n_scan as f64;
        let mut prev_t = 0.0;
        let mut prev_v = 0.0;
        for i in 1..=n_scan {
            let t = dt * i as f64;
            let v = self.step_response(t);
            if prev_v < f && v >= f {
                let root = brent(
                    |t| self.step_response(t) - f,
                    prev_t,
                    t,
                    RootOptions::default(),
                )?;
                return Ok(Seconds::new(root.x));
            }
            prev_t = t;
            prev_v = v;
        }
        Err(NumericError::InvalidBracket {
            lo: 0.0,
            hi: horizon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use crate::line::LineRlc;
    use rlckit_units::{Farads, FaradsPerMeter, HenriesPerMeter, Meters, Ohms, OhmsPerMeter};

    fn dil_250(l_nh_mm: f64) -> DriverInterconnectLoad {
        let k = 578.0;
        DriverInterconnectLoad::new(
            Ohms::new(11_784.0 / k),
            Farads::new(6.2474e-15 * k),
            LineRlc::new(
                OhmsPerMeter::from_ohm_per_milli(4.4),
                HenriesPerMeter::from_nano_per_milli(l_nh_mm),
                FaradsPerMeter::from_pico(203.5),
            ),
            Meters::from_milli(14.4),
            Farads::new(1.6314e-15 * k),
        )
    }

    #[test]
    fn order_two_matches_two_pole_model() {
        let dil = dil_250(1.0);
        let awe = ReducedModel::from_structure(&dil, 2).unwrap();
        let tp = dil.two_pole();
        for t_rel in [0.3, 1.0, 3.0] {
            let t = t_rel * dil.b1();
            assert!((awe.step_response(t) - tp.response(t)).abs() < 1e-9, "t={t_rel}·b1");
        }
        let d_awe = awe.delay(0.5).unwrap().get();
        let d_tp = tp.delay(0.5).unwrap().get();
        assert!((d_awe - d_tp).abs() / d_tp < 1e-6);
    }

    #[test]
    fn higher_order_tracks_exact_response_better_or_equal() {
        let dil = dil_250(2.0);
        let exact_d = exact::exact_delay(&dil, 0.5).unwrap().get();
        let d2 = ReducedModel::from_structure(&dil, 2)
            .unwrap()
            .delay(0.5)
            .unwrap()
            .get();
        match ReducedModel::from_structure(&dil, 4) {
            Ok(model4) => {
                let d4 = model4.delay(0.5).unwrap().get();
                let err2 = (d2 - exact_d).abs() / exact_d;
                let err4 = (d4 - exact_d).abs() / exact_d;
                // Allow small noise, but order 4 must not be much worse.
                assert!(err4 < err2 + 0.02, "err2={err2:.4}, err4={err4:.4}");
            }
            // Moment matching may legitimately go unstable; that is an
            // accepted outcome (and part of what the ablation reports).
            Err(NumericError::InvalidInput(msg)) => {
                assert!(msg.contains("unstable"), "{msg}");
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn response_settles_to_unity() {
        let dil = dil_250(1.0);
        let model = ReducedModel::from_structure(&dil, 2).unwrap();
        assert!((model.step_response(50.0 * dil.b1()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn insufficient_moments_rejected() {
        assert!(ReducedModel::from_moments(&[1.0, 2.0], 2).is_err());
        assert!(ReducedModel::from_moments(&[1.0], 1).is_err());
    }

    #[test]
    fn unstable_pole_rejected() {
        // 1 - s has a root at +1: unstable.
        let err = ReducedModel::from_moments(&[1.0, -1.0], 1).unwrap_err();
        assert!(matches!(err, NumericError::InvalidInput(_)));
    }

    #[test]
    fn order_one_is_a_single_exponential() {
        let model = ReducedModel::from_moments(&[1.0, 2.0], 1).unwrap();
        // v(t) = 1 − e^{−t/2}
        for t in [0.5, 1.0, 4.0] {
            let want = 1.0 - (-t / 2.0f64).exp();
            assert!((model.step_response(t) - want).abs() < 1e-12);
        }
        let d = model.delay(0.5).unwrap().get();
        assert!((d - 2.0 * core::f64::consts::LN_2).abs() < 1e-6);
    }
}
