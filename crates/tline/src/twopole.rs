//! The second-order Padé model `H(s) ≈ 1/(1 + b₁s + b₂s²)` (paper Eq. 2).
//!
//! Provides the poles, the over-/critically-/under-damped classification
//! of Fig. 2, the closed-form step response, the overshoot/undershoot
//! metrics behind the failure analysis of §3.3, and the rigorous
//! `f·100 %` delay — the numerical solution of Eq. 3 by Newton–Raphson
//! (with a bisection-guarded bracket, converging in a handful of
//! iterations as the paper reports).

use rlckit_numeric::poly::quadratic_roots;
use rlckit_numeric::roots::{newton_bracketed_fdf, RootOptions};
use rlckit_numeric::{Complex, NumericError};
use rlckit_trace::{counter, histogram};
use rlckit_units::Seconds;

/// Damping regime of a second-order system (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Damping {
    /// `b₁² > 4b₂`: two real poles, monotone step response.
    Overdamped,
    /// `b₁² = 4b₂` (within tolerance): double real pole.
    CriticallyDamped,
    /// `b₁² < 4b₂`: complex pole pair, overshoot and undershoot.
    Underdamped,
}

impl core::fmt::Display for Damping {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let text = match self {
            Self::Overdamped => "overdamped",
            Self::CriticallyDamped => "critically damped",
            Self::Underdamped => "underdamped",
        };
        f.write_str(text)
    }
}

/// Relative discriminant tolerance for declaring critical damping; also
/// the switch-over to the cancellation-free critical-form response.
const CRITICAL_TOL: f64 = 1e-9;

/// A normalized two-pole transfer function `1/(1 + b₁s + b₂s²)`.
///
/// # Examples
///
/// ```
/// use rlckit_tline::twopole::{Damping, TwoPole};
///
/// # fn main() -> Result<(), rlckit_numeric::NumericError> {
/// // ζ = 0.25: underdamped, with visible overshoot.
/// let tp = TwoPole::new(0.5e-9, 1e-18);
/// assert_eq!(tp.damping(), Damping::Underdamped);
/// let (peak_time, peak_value) = tp.overshoot().expect("underdamped");
/// assert!(peak_value > 1.0);
/// let delay = tp.delay(0.5)?;
/// assert!(delay.get() < peak_time.get());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPole {
    b1: f64,
    b2: f64,
}

impl TwoPole {
    /// Creates the model from the first two denominator moments.
    ///
    /// # Panics
    ///
    /// Panics unless `b₁ > 0` and `b₂ > 0` (always true for the passive
    /// RLC structures this workspace produces). Campaign code paths,
    /// where a degenerate sweep point or a perturbed optimizer restart
    /// *can* produce non-positive moments, must use [`Self::try_new`]
    /// so the point fails instead of the process.
    #[must_use]
    pub fn new(b1: f64, b2: f64) -> Self {
        Self::try_new(b1, b2).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::new`]: non-positive or non-finite moments become
    /// [`NumericError::InvalidInput`] (classified non-retryable — a
    /// degenerate model does not get better on retry) instead of a
    /// panic, so per-point failures in a campaign stay per-point.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] unless `b₁ > 0`, `b₂ > 0`
    /// and both are finite.
    pub fn try_new(b1: f64, b2: f64) -> Result<Self, NumericError> {
        if !(b1 > 0.0 && b1.is_finite() && b2 > 0.0 && b2.is_finite()) {
            return Err(NumericError::InvalidInput(format!(
                "two-pole moments must be positive and finite, got b1 = {b1:e}, b2 = {b2:e}"
            )));
        }
        Ok(Self { b1, b2 })
    }

    /// First moment `b₁` (the Elmore delay).
    #[must_use]
    pub fn b1(&self) -> f64 {
        self.b1
    }

    /// Second moment `b₂`.
    #[must_use]
    pub fn b2(&self) -> f64 {
        self.b2
    }

    /// Discriminant `b₁² − 4b₂` deciding the damping regime.
    #[must_use]
    pub fn discriminant(&self) -> f64 {
        self.b1 * self.b1 - 4.0 * self.b2
    }

    /// Damping classification with a relative tolerance on the
    /// discriminant.
    #[must_use]
    pub fn damping(&self) -> Damping {
        let disc = self.discriminant();
        if disc.abs() <= CRITICAL_TOL * self.b1 * self.b1 {
            Damping::CriticallyDamped
        } else if disc > 0.0 {
            Damping::Overdamped
        } else {
            Damping::Underdamped
        }
    }

    /// Damping ratio `ζ = b₁/(2√b₂)`.
    #[must_use]
    pub fn damping_ratio(&self) -> f64 {
        self.b1 / (2.0 * self.b2.sqrt())
    }

    /// Natural frequency `ω_n = 1/√b₂` in rad/s.
    #[must_use]
    pub fn natural_frequency(&self) -> f64 {
        1.0 / self.b2.sqrt()
    }

    /// The two poles `s₁,₂ = (−b₁ ± √(b₁²−4b₂))/(2b₂)`.
    #[must_use]
    pub fn poles(&self) -> [Complex; 2] {
        quadratic_roots(self.b2, self.b1, 1.0)
    }

    /// Normalized step response `v(t)/V₀` (Eq. below Fig. 2), with the
    /// cancellation-free critical form near the damping boundary.
    ///
    /// Returns 0 for `t ≤ 0`.
    #[must_use]
    pub fn response(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let disc = self.discriminant();
        if disc.abs() <= CRITICAL_TOL * self.b1 * self.b1 {
            // Double pole at p = −b₁/(2b₂): v = 1 − (1 − p·t)·e^{p·t}.
            let p = -self.b1 / (2.0 * self.b2);
            1.0 - (1.0 - p * t) * (p * t).exp()
        } else if disc > 0.0 {
            let sq = disc.sqrt();
            let s1 = (-self.b1 + sq) / (2.0 * self.b2); // slow pole
            let s2 = (-self.b1 - sq) / (2.0 * self.b2); // fast pole
            1.0 - s2 / (s2 - s1) * (s1 * t).exp() + s1 / (s2 - s1) * (s2 * t).exp()
        } else {
            let alpha = self.b1 / (2.0 * self.b2);
            let omega_d = (-disc).sqrt() / (2.0 * self.b2);
            1.0 - (-alpha * t).exp()
                * ((omega_d * t).cos() + alpha / omega_d * (omega_d * t).sin())
        }
    }

    /// Time derivative of the normalized step response (the impulse
    /// response), used by the Newton delay solve.
    ///
    /// Returns 0 for `t ≤ 0`.
    #[must_use]
    pub fn response_derivative(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let disc = self.discriminant();
        if disc.abs() <= CRITICAL_TOL * self.b1 * self.b1 {
            let p = -self.b1 / (2.0 * self.b2);
            p * p * t * (p * t).exp()
        } else if disc > 0.0 {
            let sq = disc.sqrt();
            let s1 = (-self.b1 + sq) / (2.0 * self.b2);
            let s2 = (-self.b1 - sq) / (2.0 * self.b2);
            // v' = s₁s₂/(s₂−s₁)·(e^{s₂t} − e^{s₁t}); s₁s₂ = 1/b₂.
            ((s2 * t).exp() - (s1 * t).exp()) / (self.b2 * (s2 - s1))
        } else {
            let alpha = self.b1 / (2.0 * self.b2);
            let omega_d = (-disc).sqrt() / (2.0 * self.b2);
            (-alpha * t).exp() * (omega_d * t).sin() / (self.b2 * omega_d)
        }
    }

    /// Both [`Self::response`] and [`Self::response_derivative`] at `t`,
    /// evaluated once. The two share their discriminant, pole and
    /// exponential subexpressions; each component is computed with
    /// exactly the expressions of the standalone methods, so the pair is
    /// bit-identical to calling them separately — the delay solve's
    /// determinism contract depends on this.
    pub(crate) fn response_with_derivative(&self, t: f64) -> (f64, f64) {
        if t <= 0.0 {
            return (0.0, 0.0);
        }
        let disc = self.discriminant();
        if disc.abs() <= CRITICAL_TOL * self.b1 * self.b1 {
            let p = -self.b1 / (2.0 * self.b2);
            let ept = (p * t).exp();
            (1.0 - (1.0 - p * t) * ept, p * p * t * ept)
        } else if disc > 0.0 {
            let sq = disc.sqrt();
            let s1 = (-self.b1 + sq) / (2.0 * self.b2); // slow pole
            let s2 = (-self.b1 - sq) / (2.0 * self.b2); // fast pole
            let e1 = (s1 * t).exp();
            let e2 = (s2 * t).exp();
            (
                1.0 - s2 / (s2 - s1) * e1 + s1 / (s2 - s1) * e2,
                (e2 - e1) / (self.b2 * (s2 - s1)),
            )
        } else {
            let alpha = self.b1 / (2.0 * self.b2);
            let omega_d = (-disc).sqrt() / (2.0 * self.b2);
            let eat = (-alpha * t).exp();
            let wt = omega_d * t;
            (
                1.0 - eat * (wt.cos() + alpha / omega_d * wt.sin()),
                eat * wt.sin() / (self.b2 * omega_d),
            )
        }
    }

    /// The rigorous `f·100 %` delay: the first `t` with `v(t) = f`
    /// (paper Eq. 3), solved by bracketed Newton–Raphson.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] unless `0 < f < 1` (for an
    /// underdamped system the response reaches any `f < 1 + overshoot`,
    /// but the paper's delay definition keeps `f < 1`), and
    /// [`NumericError::NoConvergence`] if the response plateaus below
    /// `f` (degenerate moments far outside the passive range). Physical
    /// configurations trigger neither.
    pub fn delay(&self, f: f64) -> Result<Seconds, NumericError> {
        let (t, _) = self.delay_with_iterations(f)?;
        Ok(t)
    }

    /// Like [`TwoPole::delay`], also reporting the Newton iteration count
    /// (the paper reports ≤ 4 in all cases; the bench suite checks this).
    ///
    /// # Errors
    ///
    /// See [`TwoPole::delay`].
    pub fn delay_with_iterations(&self, f: f64) -> Result<(Seconds, usize), NumericError> {
        if !(0.0 < f && f < 1.0) {
            return Err(NumericError::InvalidInput(format!(
                "delay threshold must lie in (0, 1), got {f}"
            )));
        }
        counter!("twopole.delay.solves").incr();
        if rlckit_fault::faultpoint!("twopole.delay") {
            return Err(NumericError::InjectedFault {
                site: "twopole.delay",
            });
        }
        // The response rises monotonically from 0 towards its first
        // maximum (underdamped) or towards 1 (otherwise), so the first
        // crossing is unique inside the bracket below.
        let damping = self.damping();
        match damping {
            Damping::Overdamped => counter!("twopole.delay.damping.overdamped").incr(),
            Damping::CriticallyDamped => counter!("twopole.delay.damping.critical").incr(),
            Damping::Underdamped => counter!("twopole.delay.damping.underdamped").incr(),
        }
        let (t_hi, f_hi) = match damping {
            Damping::Underdamped => {
                // First peak at t = π/ω_d, where v ≥ 1 > f.
                let omega_d = (-self.discriminant()).sqrt() / (2.0 * self.b2);
                let t = core::f64::consts::PI / omega_d;
                (t, self.response(t) - f)
            }
            _ => {
                // v → 1 monotonically: expand until v(t) > f, with a
                // hard cap on the doublings. Degenerate moments (e.g. a
                // slow pole rounded to exactly zero) make the response
                // plateau below f; uncapped, the loop would spin t to
                // ±∞ and feed NaN into the solver — a parallel sweep
                // must never wedge a worker thread on such a point.
                const MAX_DOUBLINGS: usize = 64;
                let mut t = 2.0 * self.b1;
                let mut v = self.response(t);
                let mut doublings = 0;
                while v < f {
                    if doublings >= MAX_DOUBLINGS || !t.is_finite() {
                        counter!("twopole.delay.failures").incr();
                        return Err(NumericError::NoConvergence {
                            iterations: doublings,
                            residual: f - v,
                        });
                    }
                    t *= 2.0;
                    doublings += 1;
                    v = self.response(t);
                }
                histogram!("twopole.delay.bracket_doublings").observe(doublings as u64);
                // The accepted expansion endpoint doubles as the upper
                // seed residual: the solver used to re-evaluate v(t_hi)
                // immediately after this loop computed it.
                (t, v - f)
            }
        };
        let options = RootOptions {
            x_tol: 1e-12,
            f_tol: 1e-12,
            max_iterations: 200,
            ..RootOptions::default()
        };
        // Seeded endpoints: v(0) = 0 exactly, so the lower residual is
        // 0.0 - f (the identical bits the unfused solver computed), and
        // f_hi comes from the bracket search above. The fused
        // response+derivative evaluation shares the pole/exponential
        // subexpressions per iteration; the iterate sequence is
        // bit-identical to the separate-closure path.
        let root = newton_bracketed_fdf(
            |t| {
                let (v, dv) = self.response_with_derivative(t);
                (v - f, dv)
            },
            0.0,
            t_hi,
            Some((0.0 - f, f_hi)),
            options,
        )
        .inspect_err(|_| counter!("twopole.delay.failures").incr())?;
        histogram!("twopole.delay.iterations").observe(root.iterations as u64);
        Ok((Seconds::new(root.x), root.iterations))
    }

    /// The 10–90 % rise time of the step response: the gap between the
    /// 90 % and 10 % crossings. Together with the clock period this sets
    /// the signal-integrity regime the paper's §1.1 discusses (shorter
    /// rise times make inductance matter more).
    ///
    /// # Errors
    ///
    /// Propagates [`TwoPole::delay`] failures (none for valid models).
    pub fn rise_time(&self) -> Result<Seconds, NumericError> {
        let t10 = self.delay(0.1)?;
        let t90 = self.delay(0.9)?;
        Ok(Seconds::new(t90.get() - t10.get()))
    }

    /// First overshoot `(time, peak value)` of an underdamped response:
    /// `t_p = π/ω_d`, `v(t_p) = 1 + e^{−απ/ω_d}`.
    ///
    /// Returns `None` unless the system is underdamped.
    #[must_use]
    pub fn overshoot(&self) -> Option<(Seconds, f64)> {
        if self.damping() != Damping::Underdamped {
            return None;
        }
        let alpha = self.b1 / (2.0 * self.b2);
        let omega_d = (-self.discriminant()).sqrt() / (2.0 * self.b2);
        let t = core::f64::consts::PI / omega_d;
        Some((Seconds::new(t), 1.0 + (-alpha * t).exp()))
    }

    /// First undershoot `(time, trough value)` of an underdamped
    /// response: `t = 2π/ω_d`, `v = 1 − e^{−2απ/ω_d}`.
    ///
    /// This trough is what falsely switches a downstream inverter when it
    /// dips below the threshold (paper §3.3.1).
    ///
    /// Returns `None` unless the system is underdamped.
    #[must_use]
    pub fn undershoot(&self) -> Option<(Seconds, f64)> {
        if self.damping() != Damping::Underdamped {
            return None;
        }
        let alpha = self.b1 / (2.0 * self.b2);
        let omega_d = (-self.discriminant()).sqrt() / (2.0 * self.b2);
        let t = 2.0 * core::f64::consts::PI / omega_d;
        Some((Seconds::new(t), 1.0 - (-alpha * t).exp()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn damping_classification() {
        assert_eq!(TwoPole::new(1.0, 0.1).damping(), Damping::Overdamped);
        assert_eq!(TwoPole::new(1.0, 0.25).damping(), Damping::CriticallyDamped);
        assert_eq!(TwoPole::new(1.0, 1.0).damping(), Damping::Underdamped);
    }

    #[test]
    fn response_limits() {
        for tp in [
            TwoPole::new(1.0, 0.1),
            TwoPole::new(1.0, 0.25),
            TwoPole::new(1.0, 1.0),
        ] {
            assert_eq!(tp.response(0.0), 0.0);
            assert_eq!(tp.response(-1.0), 0.0);
            assert!((tp.response(100.0) - 1.0).abs() < 1e-6, "{tp:?}");
        }
    }

    #[test]
    fn response_is_continuous_across_critical_boundary() {
        // b₂ slightly above/below b₁²/4 must give nearly identical curves.
        let b1 = 1.0;
        let just_over = TwoPole::new(b1, 0.25 * (1.0 - 1e-10));
        let just_under = TwoPole::new(b1, 0.25 * (1.0 + 1e-10));
        let critical = TwoPole::new(b1, 0.25);
        for t in [0.1, 0.5, 1.0, 2.0, 5.0] {
            let vc = critical.response(t);
            assert!((just_over.response(t) - vc).abs() < 1e-7, "t={t}");
            assert!((just_under.response(t) - vc).abs() < 1e-7, "t={t}");
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        for tp in [
            TwoPole::new(1.0, 0.05),
            TwoPole::new(1.0, 0.25),
            TwoPole::new(1.0, 2.0),
        ] {
            for t in [0.2, 1.0, 3.0] {
                let fd = (tp.response(t + 1e-7) - tp.response(t - 1e-7)) / 2e-7;
                let an = tp.response_derivative(t);
                assert!((fd - an).abs() < 1e-5, "{tp:?} t={t}: {fd} vs {an}");
            }
        }
    }

    #[test]
    fn single_pole_limit_gives_exponential_delay() {
        // b₂ → 0 degenerates to 1/(1+b₁s): v = 1 − e^{−t/b₁},
        // so the 50 % delay is ln(2)·b₁.
        let b1 = 2.0e-10;
        let tp = TwoPole::new(b1, 1e-8 * b1 * b1);
        let d = tp.delay(0.5).unwrap();
        assert!((d.get() / (core::f64::consts::LN_2 * b1) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn underdamped_delay_matches_closed_form_crossing() {
        // ζ = 0.5, ωn = 1: solve by dense sampling as a reference.
        let tp = TwoPole::new(1.0, 1.0);
        let d = tp.delay(0.5).unwrap().get();
        // Reference by fine scan.
        let mut t_ref = 0.0;
        let mut prev = 0.0;
        for i in 1..2_000_000 {
            let t = i as f64 * 2e-6;
            let v = tp.response(t);
            if prev < 0.5 && v >= 0.5 {
                t_ref = t;
                break;
            }
            prev = v;
        }
        assert!((d - t_ref).abs() < 1e-5, "{d} vs {t_ref}");
    }

    #[test]
    fn delay_converges_in_few_iterations() {
        // The paper reports ≤ 4 Newton iterations; with the safeguarded
        // bracket and mid-point start we allow a small margin.
        for (b1, b2) in [(1.0, 0.03), (1.0, 0.2), (1.0, 0.25), (1.0, 0.5), (1.0, 4.0)] {
            let (_, iters) = TwoPole::new(b1, b2).delay_with_iterations(0.5).unwrap();
            assert!(iters <= 8, "b2={b2}: {iters} iterations");
        }
    }

    #[test]
    fn delay_is_monotone_in_threshold() {
        let tp = TwoPole::new(1.0, 0.5);
        let mut last = 0.0;
        for f in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let d = tp.delay(f).unwrap().get();
            assert!(d > last);
            last = d;
        }
    }

    #[test]
    fn degenerate_plateau_fails_fast_instead_of_expanding_to_infinity() {
        // Regression: with b₂ this extreme the slow pole rounds to
        // exactly 0, so the step response evaluates to 0 for every t —
        // a plateau below any threshold. The uncapped bracket expansion
        // used to double t all the way to ∞ (~1070 iterations) and then
        // run the root solver on NaN values for its whole 200-iteration
        // budget. The capped expansion must give up within its 64
        // doublings.
        let tp = TwoPole::new(1.0, 1e-300);
        assert_eq!(tp.response(1e6), 0.0, "precondition: plateau at 0");
        match tp.delay(0.5) {
            Err(NumericError::NoConvergence { iterations, residual }) => {
                assert!(iterations <= 64, "expansion not capped: {iterations}");
                assert!((residual - 0.5).abs() < 1e-12, "residual {residual}");
            }
            other => panic!("plateau must fail with NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn delay_rejects_out_of_range_threshold() {
        let tp = TwoPole::new(1.0, 0.5);
        assert!(tp.delay(0.0).is_err());
        assert!(tp.delay(1.0).is_err());
        assert!(tp.delay(-0.5).is_err());
    }

    #[test]
    fn rise_time_behaviour() {
        // Single-pole limit: 10–90 % rise ≈ 2.197·b₁ (= ln 9).
        let b1 = 1e-10;
        let tp = TwoPole::new(b1, 1e-8 * b1 * b1);
        let tr = tp.rise_time().unwrap().get();
        assert!((tr / (b1 * (9.0f64).ln()) - 1.0).abs() < 1e-3, "tr = {tr:e}");
        // Underdamped systems rise faster than overdamped ones at equal b₁.
        let over = TwoPole::new(1.0, 0.05).rise_time().unwrap().get();
        let under = TwoPole::new(1.0, 1.0).rise_time().unwrap().get();
        assert!(under < over);
    }

    #[test]
    fn overshoot_and_undershoot_formulas() {
        // ζ = 0.2: textbook overshoot exp(−ζπ/√(1−ζ²)).
        let zeta: f64 = 0.2;
        let wn = 1e9;
        let b2 = 1.0 / (wn * wn);
        let b1 = 2.0 * zeta / wn;
        let tp = TwoPole::new(b1, b2);
        let (_, peak) = tp.overshoot().unwrap();
        let want = 1.0 + (-zeta * core::f64::consts::PI / (1.0 - zeta * zeta).sqrt()).exp();
        assert!((peak - want).abs() < 1e-12);
        let (_, trough) = tp.undershoot().unwrap();
        let want = 1.0 - (-2.0 * zeta * core::f64::consts::PI / (1.0 - zeta * zeta).sqrt()).exp();
        assert!((trough - want).abs() < 1e-12);
        // Peak value agrees with the response evaluated at the peak time.
        let (tpk, peak) = tp.overshoot().unwrap();
        assert!((tp.response(tpk.get()) - peak).abs() < 1e-9);
    }

    #[test]
    fn no_overshoot_when_overdamped() {
        let tp = TwoPole::new(1.0, 0.1);
        assert!(tp.overshoot().is_none());
        assert!(tp.undershoot().is_none());
    }

    #[test]
    fn poles_satisfy_characteristic_equation() {
        let tp = TwoPole::new(3e-10, 4e-20);
        for p in tp.poles() {
            let res = Complex::ONE + p * tp.b1() + p * p * tp.b2();
            assert!(res.abs() < 1e-9, "residual {res}");
            assert!(p.re < 0.0, "stable pole");
        }
    }

    #[test]
    fn damping_ratio_and_natural_frequency() {
        let tp = TwoPole::new(1.0, 0.25);
        assert!((tp.damping_ratio() - 1.0).abs() < 1e-12);
        assert!((tp.natural_frequency() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn try_new_rejects_degenerate_moments_without_panicking() {
        // Regression for the campaign-panic bug: degenerate sweep points
        // and perturbed optimizer restarts can produce non-positive
        // moments; `try_new` must surface them as the non-retryable
        // InvalidInput class, never a panic.
        for (b1, b2) in [
            (0.0, 1.0),
            (1.0, 0.0),
            (-1.0, 1.0),
            (1.0, -1e-3),
            (f64::NAN, 1.0),
            (1.0, f64::NAN),
            (f64::INFINITY, 1.0),
            (1.0, f64::INFINITY),
        ] {
            match TwoPole::try_new(b1, b2) {
                Err(NumericError::InvalidInput(msg)) => {
                    assert!(msg.contains("two-pole moments"), "{msg}")
                }
                other => panic!("b1={b1} b2={b2}: expected InvalidInput, got {other:?}"),
            }
        }
        assert!(TwoPole::try_new(1.0, 0.25).is_ok());
    }

    /// The pre-fusion delay path, reconstructed verbatim: uncapped-free
    /// bracket expansion (inputs below are all non-degenerate), separate
    /// response/derivative closures, unseeded endpoints.
    fn reference_delay(tp: &TwoPole, f: f64) -> f64 {
        let t_hi = match tp.damping() {
            Damping::Underdamped => {
                let omega_d = (-tp.discriminant()).sqrt() / (2.0 * tp.b2());
                core::f64::consts::PI / omega_d
            }
            _ => {
                let mut t = 2.0 * tp.b1();
                while tp.response(t) < f {
                    t *= 2.0;
                }
                t
            }
        };
        let options = RootOptions {
            x_tol: 1e-12,
            f_tol: 1e-12,
            max_iterations: 200,
            ..RootOptions::default()
        };
        rlckit_numeric::roots::newton_bracketed(
            |t| tp.response(t) - f,
            |t| tp.response_derivative(t),
            0.0,
            t_hi,
            options,
        )
        .expect("reference solve converges on these inputs")
        .x
    }

    #[test]
    fn fused_delay_is_bit_identical_to_the_unfused_reference() {
        // The fused response+derivative evaluation and the seeded
        // endpoints are pure call-count optimizations: every damping
        // regime, time scale and threshold must reproduce the original
        // iterate sequence bit-for-bit.
        for b1 in [1.0, 2e-10, 7.3e-9] {
            for ratio in [0.01, 0.2, 0.25, 0.25 * (1.0 + 1e-10), 0.3, 1.0, 4.0] {
                let tp = TwoPole::new(b1, ratio * b1 * b1);
                for f in [0.1, 0.5, 0.9] {
                    let got = tp.delay(f).unwrap().get();
                    let want = reference_delay(&tp, f);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "b1={b1} ratio={ratio} f={f}: {got:e} vs {want:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_response_matches_standalone_methods_bitwise() {
        for tp in [
            TwoPole::new(1.0, 0.05),
            TwoPole::new(1.0, 0.25),
            TwoPole::new(1.0, 2.0),
            TwoPole::new(3e-10, 4e-20),
        ] {
            for t in [-1.0, 0.0, 1e-12, 0.2, 1.0, 3.0, 40.0] {
                let t = t * tp.b1(); // scale the probe times to the model's time constant
                let (v, dv) = tp.response_with_derivative(t);
                assert_eq!(v.to_bits(), tp.response(t).to_bits(), "{tp:?} t={t}");
                assert_eq!(dv.to_bits(), tp.response_derivative(t).to_bits(), "{tp:?} t={t}");
            }
        }
    }
}
