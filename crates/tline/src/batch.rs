//! Batched structure-of-arrays two-pole delay solving.
//!
//! [`solve_delays`] computes the rigorous `f·100 %` delay (paper Eq. 3)
//! for a whole batch of two-pole models in one pass. Per element it is
//! **bit-identical** to the scalar sequence
//! `TwoPole::try_new(b1, b2).and_then(|tp| tp.delay_with_iterations(f))`
//! — the same `f64` bits on success, the same error variant on failure,
//! and (with `rlckit-fault` armed) the same injection decisions, because
//! the per-lane prologue runs in input order under the ambient fault
//! scope and the lockstep Newton core replicates the scalar iterate
//! sequence op for op.
//!
//! What the batch buys is instruction-level parallelism: the scalar
//! solver's Newton iterations form one long dependency chain of `exp`
//! (and `sin`/`cos`) evaluations, while the batched solver advances
//! every live lane by one iteration per round, so the transcendental
//! evaluations of independent lanes overlap in the pipeline (~2.8×
//! throughput on the `exp`-bound regimes). Loop-invariant pole
//! combinations (`s₂/(s₂−s₁)`, `α/ω_d`, …) are hoisted once per lane at
//! push time — bit-safe, since each scalar iteration recomputes them
//! from the same inputs to the same bits.
//!
//! The solver state is laid out as structure-of-arrays: one `Vec<f64>`
//! per scalar register of the Newton iteration (`x`, `fx`, `dfx`,
//! bracket endpoints, …) plus an `active` mask, so the evaluation pass
//! is a dense sweep over parallel arrays and lane retirement is a mask
//! flip, never a shuffle.

use rlckit_numeric::NumericError;
use rlckit_trace::{counter, histogram, Histogram};
use rlckit_units::Seconds;

use crate::twopole::{Damping, TwoPole};

/// One delay problem: the two-pole moments and the crossing threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayConfig {
    /// First denominator moment `b₁`.
    pub b1: f64,
    /// Second denominator moment `b₂`.
    pub b2: f64,
    /// Delay threshold `f` in `(0, 1)` (0.5 = the 50 % delay).
    pub threshold: f64,
}

/// A solved delay: the crossing time and the Newton iterations spent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayOutcome {
    /// The `f·100 %` delay.
    pub delay: Seconds,
    /// Newton iterations spent (the paper reports ≤ 4).
    pub iterations: usize,
}

/// Per-lane loop-invariant response constants, hoisted once at push.
///
/// Each variant's `eval` reproduces the corresponding branch of
/// `TwoPole::response_with_derivative` bit for bit: every hoisted
/// constant is a subexpression the scalar code recomputes per call from
/// call-invariant inputs, so folding it once yields the identical bits.
#[derive(Debug, Clone, Copy)]
enum LaneModel {
    /// Double pole at `p = −b₁/(2b₂)`.
    Critical { p: f64, pp: f64 },
    /// Two real poles `s₁` (slow), `s₂` (fast).
    Over { s1: f64, s2: f64, c1: f64, c2: f64, den: f64 },
    /// Complex pole pair: decay `α`, ringing frequency `ω_d`.
    Under { neg_alpha: f64, omega_d: f64, aow: f64, den: f64 },
}

impl LaneModel {
    fn from_two_pole(tp: &TwoPole, damping: Damping) -> Self {
        let (b1, b2) = (tp.b1(), tp.b2());
        let disc = tp.discriminant();
        match damping {
            Damping::CriticallyDamped => {
                let p = -b1 / (2.0 * b2);
                Self::Critical { p, pp: p * p }
            }
            Damping::Overdamped => {
                let sq = disc.sqrt();
                let s1 = (-b1 + sq) / (2.0 * b2);
                let s2 = (-b1 - sq) / (2.0 * b2);
                Self::Over {
                    s1,
                    s2,
                    c1: s2 / (s2 - s1),
                    c2: s1 / (s2 - s1),
                    den: b2 * (s2 - s1),
                }
            }
            Damping::Underdamped => {
                let alpha = b1 / (2.0 * b2);
                let omega_d = (-disc).sqrt() / (2.0 * b2);
                Self::Under {
                    neg_alpha: -alpha,
                    omega_d,
                    aow: alpha / omega_d,
                    den: b2 * omega_d,
                }
            }
        }
    }

    /// `(response(t), response'(t))`, bit-identical to
    /// `TwoPole::response_with_derivative`.
    #[inline]
    fn eval(&self, t: f64) -> (f64, f64) {
        if t <= 0.0 {
            return (0.0, 0.0);
        }
        match *self {
            Self::Critical { p, pp } => {
                let ept = (p * t).exp();
                (1.0 - (1.0 - p * t) * ept, pp * t * ept)
            }
            Self::Over { s1, s2, c1, c2, den } => {
                let e1 = (s1 * t).exp();
                let e2 = (s2 * t).exp();
                (1.0 - c1 * e1 + c2 * e2, (e2 - e1) / den)
            }
            Self::Under { neg_alpha, omega_d, aow, den } => {
                let eat = (neg_alpha * t).exp();
                let wt = omega_d * t;
                let st = wt.sin();
                (1.0 - eat * (wt.cos() + aow * st), eat * st / den)
            }
        }
    }
}

/// Batched tallies for the scalar path's counters and histograms,
/// flushed in bulk at the end of [`DelayBatch::solve`]. Counter totals
/// and histogram contents match a scalar sequential run exactly; only
/// the number of atomic operations shrinks (one `fetch_add` per metric
/// per batch instead of per lane).
#[derive(Debug, Default)]
struct Telemetry {
    delay_solves: u64,
    delay_injected: u64,
    newton_solves: u64,
    newton_injected: u64,
    overdamped: u64,
    critical: u64,
    underdamped: u64,
    failures: u64,
    budget_exhausted: u64,
    bisection_fallbacks: u64,
    bracket_doublings: HistAcc,
    newton_iterations: HistAcc,
    delay_iterations: HistAcc,
    retired_per_round: HistAcc,
}

/// Histogram observations accumulated as `(value, count)` pairs — not
/// per-bucket totals, so flushing through [`Histogram::observe_n`]
/// preserves the exact `sum` even for values beyond the last bucket
/// (bracket doublings can reach 64, past the 33-bucket clamp).
#[derive(Debug, Default)]
struct HistAcc(Vec<(u64, u64)>);

impl HistAcc {
    fn observe(&mut self, value: u64) {
        if let Some(entry) = self.0.iter_mut().find(|(v, _)| *v == value) {
            entry.1 += 1;
        } else {
            self.0.push((value, 1));
        }
    }

    fn flush(&self, histogram: &'static Histogram) {
        for &(value, n) in &self.0 {
            histogram.observe_n(value, n);
        }
    }
}

impl Telemetry {
    /// Zeroes every tally for the next [`DelayBatch::solve_in_place`]
    /// round, keeping the histogram accumulators' capacity.
    fn reset(&mut self) {
        let histograms = [
            &mut self.bracket_doublings,
            &mut self.newton_iterations,
            &mut self.delay_iterations,
            &mut self.retired_per_round,
        ];
        for h in histograms {
            h.0.clear();
        }
        *self = Self {
            bracket_doublings: core::mem::take(&mut self.bracket_doublings),
            newton_iterations: core::mem::take(&mut self.newton_iterations),
            delay_iterations: core::mem::take(&mut self.delay_iterations),
            retired_per_round: core::mem::take(&mut self.retired_per_round),
            ..Self::default()
        };
    }

    fn flush(&self, lanes: u64) {
        // Zero tallies are skipped: `Counter::add` registers the metric
        // even for 0, and a metric this batch never touched must stay
        // unregistered exactly as on the scalar path.
        fn bulk(counter: &'static rlckit_trace::Counter, n: u64) {
            if n > 0 {
                counter.add(n);
            }
        }
        bulk(counter!("twopole.delay.solves"), self.delay_solves);
        bulk(counter!("twopole.delay.injected_faults"), self.delay_injected);
        bulk(counter!("roots.newton_bracketed.solves"), self.newton_solves);
        bulk(
            counter!("roots.newton_bracketed.injected_faults"),
            self.newton_injected,
        );
        bulk(counter!("twopole.delay.damping.overdamped"), self.overdamped);
        bulk(counter!("twopole.delay.damping.critical"), self.critical);
        bulk(counter!("twopole.delay.damping.underdamped"), self.underdamped);
        bulk(counter!("twopole.delay.failures"), self.failures);
        bulk(
            counter!("roots.newton_bracketed.budget_exhausted"),
            self.budget_exhausted,
        );
        bulk(
            counter!("roots.newton_bracketed.bisection_fallbacks"),
            self.bisection_fallbacks,
        );
        counter!("batch.lanes").add(lanes);
        self.bracket_doublings
            .flush(histogram!("twopole.delay.bracket_doublings"));
        self.newton_iterations
            .flush(histogram!("roots.newton_bracketed.iterations"));
        self.delay_iterations
            .flush(histogram!("twopole.delay.iterations"));
        self.retired_per_round
            .flush(histogram!("batch.retired_per_iter"));
    }
}

/// `RootOptions` of the scalar delay solve, inlined.
const X_TOL: f64 = 1e-12;
const F_TOL: f64 = 1e-12;
const MAX_ITERATIONS: usize = 200;

/// A batch of delay problems accumulated lane by lane, then solved in
/// lockstep by [`DelayBatch::solve`].
///
/// `push` runs the scalar solver's whole prologue for that lane —
/// validation, damping classification, bracket expansion, endpoint
/// seeding, and both fault points — under the *current* fault scope, in
/// push order, so a caller that pushes under per-lane scopes (the
/// campaign engine) or under one ambient scope ([`solve_delays`])
/// observes exactly the scalar hit sequence. The lockstep Newton core
/// in `solve` contains no fault points.
#[derive(Debug, Default)]
pub struct DelayBatch {
    /// Per-push results; `None` marks a lane still in flight.
    results: Vec<Option<Result<DelayOutcome, NumericError>>>,
    // Structure-of-arrays solver state, indexed by live-lane number.
    model: Vec<LaneModel>,
    threshold: Vec<f64>,
    slot: Vec<usize>,
    x: Vec<f64>,
    fx: Vec<f64>,
    dfx: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    f_lo: Vec<f64>,
    pending: Vec<f64>,
    fx_scratch: Vec<f64>,
    dfx_scratch: Vec<f64>,
    iteration: Vec<usize>,
    active: Vec<bool>,
    telemetry: Telemetry,
}

impl DelayBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `n` lanes.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            results: Vec::with_capacity(n),
            ..Self::default()
        }
    }

    /// Number of pushed lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True if nothing has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Pushes one delay problem, running the scalar prologue for its
    /// lane under the current fault scope. Lanes that fail validation,
    /// bracket expansion, or fault injection are finished immediately;
    /// the rest enter the lockstep Newton solve.
    pub fn push(&mut self, config: DelayConfig) {
        let result = self.push_inner(config);
        self.results.push(result.err());
    }

    /// `Ok(())` means the lane went live; `Err` carries a finished
    /// result (which can itself be a success, e.g. a zero-residual
    /// endpoint).
    #[allow(clippy::result_large_err)]
    fn push_inner(
        &mut self,
        config: DelayConfig,
    ) -> Result<(), Result<DelayOutcome, NumericError>> {
        let slot = self.results.len();
        let f = config.threshold;
        let tp = TwoPole::try_new(config.b1, config.b2).map_err(Err)?;
        if !(0.0 < f && f < 1.0) {
            return Err(Err(NumericError::InvalidInput(format!(
                "delay threshold must lie in (0, 1), got {f}"
            ))));
        }
        self.telemetry.delay_solves += 1;
        if rlckit_fault::should_inject("twopole.delay") {
            self.telemetry.delay_injected += 1;
            return Err(Err(NumericError::InjectedFault {
                site: "twopole.delay",
            }));
        }
        let damping = tp.damping();
        match damping {
            Damping::Overdamped => self.telemetry.overdamped += 1,
            Damping::CriticallyDamped => self.telemetry.critical += 1,
            Damping::Underdamped => self.telemetry.underdamped += 1,
        }
        let (t_hi, f_hi) = match damping {
            Damping::Underdamped => {
                let omega_d = (-tp.discriminant()).sqrt() / (2.0 * tp.b2());
                let t = core::f64::consts::PI / omega_d;
                (t, tp.response(t) - f)
            }
            _ => {
                const MAX_DOUBLINGS: usize = 64;
                let mut t = 2.0 * tp.b1();
                let mut v = tp.response(t);
                let mut doublings = 0;
                while v < f {
                    if doublings >= MAX_DOUBLINGS || !t.is_finite() {
                        self.telemetry.failures += 1;
                        return Err(Err(NumericError::NoConvergence {
                            iterations: doublings,
                            residual: f - v,
                        }));
                    }
                    t *= 2.0;
                    doublings += 1;
                    v = tp.response(t);
                }
                self.telemetry.bracket_doublings.observe(doublings as u64);
                (t, v - f)
            }
        };
        self.telemetry.newton_solves += 1;
        if rlckit_fault::should_inject("roots.newton_bracketed") {
            self.telemetry.newton_injected += 1;
            return Err(Err(NumericError::InjectedFault {
                site: "roots.newton_bracketed",
            }));
        }
        // Scalar endpoint normalization with lo = 0, hi = t_hi and the
        // seeded residuals (v(0) − f, v(t_hi) − f).
        let (a, b) = (0.0f64.min(t_hi), 0.0f64.max(t_hi));
        let (fa, fb) = if 0.0 <= t_hi { (0.0 - f, f_hi) } else { (f_hi, 0.0 - f) };
        if fa == 0.0 {
            return Err(self.finish_root(a, 0.0, 0));
        }
        if fb == 0.0 {
            return Err(self.finish_root(b, 0.0, 0));
        }
        if fa.signum() == fb.signum() {
            self.telemetry.failures += 1;
            return Err(Err(NumericError::InvalidBracket { lo: a, hi: b }));
        }

        let x = 0.5 * (a + b);
        self.model.push(LaneModel::from_two_pole(&tp, damping));
        self.threshold.push(f);
        self.slot.push(slot);
        self.x.push(x);
        self.fx.push(0.0);
        self.dfx.push(0.0);
        self.lo.push(a);
        self.hi.push(b);
        self.f_lo.push(fa);
        self.pending.push(x);
        self.fx_scratch.push(0.0);
        self.dfx_scratch.push(0.0);
        self.iteration.push(0);
        self.active.push(true);
        Ok(())
    }

    /// Tallies a converged root exactly like the scalar wrapper stack
    /// (`newton_bracketed_fdf` → `delay_with_iterations`).
    #[allow(clippy::result_large_err)]
    fn finish_root(
        &mut self,
        x: f64,
        _residual: f64,
        iterations: usize,
    ) -> Result<DelayOutcome, NumericError> {
        self.telemetry.newton_iterations.observe(iterations as u64);
        self.telemetry.delay_iterations.observe(iterations as u64);
        Ok(DelayOutcome {
            delay: Seconds::new(x),
            iterations,
        })
    }

    /// Runs every live lane to completion in lockstep and returns the
    /// results in push order, flushing the batched telemetry.
    ///
    /// Each round advances every active lane by exactly one Newton
    /// iteration: a bookkeeping pass (convergence test, bracket update,
    /// Newton-vs-bisection candidate), then one dense evaluation sweep
    /// over the structure-of-arrays state — where the independent
    /// per-lane `exp`/`sin`/`cos` calls overlap — then the small-step
    /// acceptance pass. The per-lane iterate sequence is bit-identical
    /// to the scalar bracketed-Newton solve.
    #[must_use]
    pub fn solve(mut self) -> Vec<Result<DelayOutcome, NumericError>> {
        self.solve_in_place()
    }

    /// [`solve`](Self::solve), but leaves the batch empty and reusable:
    /// every structure-of-arrays column keeps its capacity. Wave-loop
    /// callers (the campaign engines solve one small batch per Newton
    /// wave) reuse one `DelayBatch` instead of paying the ~14 heap
    /// allocations a fresh batch costs each wave.
    pub fn solve_in_place(&mut self) -> Vec<Result<DelayOutcome, NumericError>> {
        let lanes = self.results.len() as u64;
        let n = self.model.len();
        let mut live = n;

        // Initial midpoint evaluation (the scalar solve's `fdf(x)`
        // before its loop), batched across lanes.
        self.eval_pending();
        for i in 0..n {
            self.fx[i] = self.fx_pending(i);
            self.dfx[i] = self.dfx_pending(i);
        }

        while live > 0 {
            let mut retired = 0u64;
            // Bookkeeping: one scalar Newton step per active lane.
            for i in 0..n {
                if !self.active[i] {
                    continue;
                }
                let (fx, dfx) = (self.fx[i], self.dfx[i]);
                self.iteration[i] += 1;
                if self.iteration[i] > MAX_ITERATIONS {
                    let result = Err(NumericError::NoConvergence {
                        iterations: MAX_ITERATIONS,
                        residual: fx.abs(),
                    });
                    self.telemetry.budget_exhausted += 1;
                    self.telemetry.failures += 1;
                    self.retire(i, result);
                    retired += 1;
                    continue;
                }
                if fx.abs() <= F_TOL {
                    let root = self.finish_root(self.x[i], fx, self.iteration[i]);
                    self.retire(i, root);
                    retired += 1;
                    continue;
                }
                if fx.signum() == self.f_lo[i].signum() {
                    self.lo[i] = self.x[i];
                    self.f_lo[i] = fx;
                } else {
                    self.hi[i] = self.x[i];
                }
                let newton = if dfx != 0.0 { self.x[i] - fx / dfx } else { f64::NAN };
                self.pending[i] = if newton.is_finite() && newton > self.lo[i] && newton < self.hi[i]
                {
                    newton
                } else {
                    self.telemetry.bisection_fallbacks += 1;
                    0.5 * (self.lo[i] + self.hi[i])
                };
            }
            // Dense evaluation sweep: the only transcendental work of
            // the round, with every lane's calls independent.
            self.eval_pending();
            // Acceptance: small-step convergence or advance.
            for i in 0..n {
                if !self.active[i] {
                    continue;
                }
                let next = self.pending[i];
                let (f_next, df_next) = (self.fx_pending(i), self.dfx_pending(i));
                if (next - self.x[i]).abs() <= X_TOL * self.x[i].abs().max(1.0)
                    && f_next.abs() <= F_TOL
                {
                    let root = self.finish_root(next, f_next, self.iteration[i]);
                    self.retire(i, root);
                    retired += 1;
                    continue;
                }
                self.x[i] = next;
                self.fx[i] = f_next;
                self.dfx[i] = df_next;
            }
            live -= retired as usize;
            self.telemetry.retired_per_round.observe(retired);
        }

        self.telemetry.flush(lanes);
        self.telemetry.reset();
        self.model.clear();
        self.threshold.clear();
        self.slot.clear();
        self.x.clear();
        self.fx.clear();
        self.dfx.clear();
        self.lo.clear();
        self.hi.clear();
        self.f_lo.clear();
        self.pending.clear();
        self.fx_scratch.clear();
        self.dfx_scratch.clear();
        self.iteration.clear();
        self.active.clear();
        self.results
            .drain(..)
            .map(|r| r.expect("every lane retires"))
            .collect()
    }

    /// Evaluates every active lane's pending abscissa, writing
    /// `(response − f, response')` into the scratch columns. Kept as a
    /// single dense loop so the independent transcendental calls of
    /// different lanes pipeline.
    fn eval_pending(&mut self) {
        for i in 0..self.model.len() {
            if !self.active[i] {
                continue;
            }
            let (v, dv) = self.model[i].eval(self.pending[i]);
            // Reuse the fx/dfx columns only after the bookkeeping pass
            // consumed them; between passes the pair lives in scratch.
            self.scratch_write(i, v - self.threshold[i], dv);
        }
    }

    fn scratch_write(&mut self, i: usize, fx: f64, dfx: f64) {
        // The scratch columns piggyback on the pending/derivative pair:
        // `pending` keeps the abscissa, these keep its evaluation.
        self.fx_scratch[i] = fx;
        self.dfx_scratch[i] = dfx;
    }

    fn fx_pending(&self, i: usize) -> f64 {
        self.fx_scratch[i]
    }

    fn dfx_pending(&self, i: usize) -> f64 {
        self.dfx_scratch[i]
    }

    fn retire(&mut self, i: usize, result: Result<DelayOutcome, NumericError>) {
        self.active[i] = false;
        self.results[self.slot[i]] = Some(result);
    }
}

/// Solves a batch of delay problems, returning one result per config in
/// input order — each bit-identical (value, iteration count, and error
/// variant) to the scalar
/// `TwoPole::try_new(b1, b2)?.delay_with_iterations(threshold)` called
/// sequentially under the same fault scope.
///
/// # Examples
///
/// ```
/// use rlckit_tline::batch::{solve_delays, DelayConfig};
/// use rlckit_tline::TwoPole;
///
/// let configs: Vec<DelayConfig> = (1..=8)
///     .map(|i| DelayConfig { b1: 1.0, b2: 0.05 * i as f64, threshold: 0.5 })
///     .collect();
/// let batched = solve_delays(&configs);
/// for (cfg, out) in configs.iter().zip(&batched) {
///     let (scalar, iters) = TwoPole::new(cfg.b1, cfg.b2)
///         .delay_with_iterations(cfg.threshold)
///         .unwrap();
///     let out = out.as_ref().unwrap();
///     assert_eq!(out.delay.get().to_bits(), scalar.get().to_bits());
///     assert_eq!(out.iterations, iters);
/// }
/// ```
#[must_use]
pub fn solve_delays(configs: &[DelayConfig]) -> Vec<Result<DelayOutcome, NumericError>> {
    let mut batch = DelayBatch::with_capacity(configs.len());
    for &config in configs {
        batch.push(config);
    }
    batch.solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scalar reference the batch must reproduce bit for bit.
    fn scalar(config: &DelayConfig) -> Result<DelayOutcome, NumericError> {
        let (delay, iterations) =
            TwoPole::try_new(config.b1, config.b2)?.delay_with_iterations(config.threshold)?;
        Ok(DelayOutcome { delay, iterations })
    }

    #[track_caller]
    fn assert_matches_scalar(configs: &[DelayConfig]) {
        let batched = solve_delays(configs);
        assert_eq!(batched.len(), configs.len());
        for (i, (config, got)) in configs.iter().zip(&batched).enumerate() {
            let want = scalar(config);
            match (&want, got) {
                (Ok(w), Ok(g)) => {
                    assert_eq!(
                        w.delay.get().to_bits(),
                        g.delay.get().to_bits(),
                        "lane {i} ({config:?}): {:e} vs {:e}",
                        w.delay.get(),
                        g.delay.get()
                    );
                    assert_eq!(w.iterations, g.iterations, "lane {i} ({config:?})");
                }
                (Err(w), Err(g)) => assert_eq!(w, g, "lane {i} ({config:?})"),
                other => panic!("lane {i} ({config:?}): outcome kind drifted: {other:?}"),
            }
        }
    }

    fn grid() -> Vec<DelayConfig> {
        let mut configs = Vec::new();
        for b1 in [1.0, 2e-10, 7.3e-9] {
            for ratio in [0.01, 0.2, 0.25, 0.25 * (1.0 + 1e-10), 0.3, 1.0, 4.0] {
                for threshold in [0.1, 0.5, 0.9] {
                    configs.push(DelayConfig {
                        b1,
                        b2: ratio * b1 * b1,
                        threshold,
                    });
                }
            }
        }
        configs
    }

    #[test]
    fn batched_grid_is_bit_identical_to_scalar() {
        // All damping regimes, three decades of time constant, three
        // thresholds — 63 lanes, deliberately not a multiple of any
        // SIMD-ish width.
        assert_matches_scalar(&grid());
    }

    #[test]
    fn degenerate_lanes_fail_with_the_scalar_error_mid_batch() {
        // Bad lanes interleaved with good ones: invalid moments, invalid
        // thresholds, and the plateau case (bracket expansion cap) must
        // produce the scalar error variant without disturbing the
        // neighbouring lanes' bits.
        let configs = vec![
            DelayConfig { b1: 1.0, b2: 0.2, threshold: 0.5 },
            DelayConfig { b1: 0.0, b2: 1.0, threshold: 0.5 },
            DelayConfig { b1: -1.0, b2: 1.0, threshold: 0.5 },
            DelayConfig { b1: f64::NAN, b2: 1.0, threshold: 0.5 },
            DelayConfig { b1: 1.0, b2: f64::INFINITY, threshold: 0.5 },
            DelayConfig { b1: 1.0, b2: 1.0, threshold: 0.5 },
            DelayConfig { b1: 1.0, b2: 0.25, threshold: 0.0 },
            DelayConfig { b1: 1.0, b2: 0.25, threshold: 1.0 },
            DelayConfig { b1: 1.0, b2: 0.25, threshold: -0.5 },
            DelayConfig { b1: 1.0, b2: 1e-300, threshold: 0.5 },
            DelayConfig { b1: 3e-10, b2: 4e-20, threshold: 0.5 },
        ];
        assert_matches_scalar(&configs);
    }

    #[test]
    fn empty_and_single_lane_batches() {
        assert!(solve_delays(&[]).is_empty());
        assert_matches_scalar(&[DelayConfig { b1: 1.0, b2: 0.25, threshold: 0.5 }]);
    }

    #[test]
    fn batch_telemetry_matches_the_scalar_totals() {
        // Counter deltas and histogram counts of a batched solve equal
        // a scalar sequential run's, including the damping-class split;
        // the batch additionally records its lane count.
        let configs = grid();
        let before = rlckit_trace::snapshot();
        for config in &configs {
            let _ = scalar(config);
        }
        let scalar_delta = rlckit_trace::snapshot().since(&before);
        let before = rlckit_trace::snapshot();
        let _ = solve_delays(&configs);
        let batch_delta = rlckit_trace::snapshot().since(&before);
        for name in [
            "twopole.delay.solves",
            "twopole.delay.damping.overdamped",
            "twopole.delay.damping.critical",
            "twopole.delay.damping.underdamped",
            "twopole.delay.failures",
            "roots.newton_bracketed.solves",
            "roots.newton_bracketed.budget_exhausted",
            "roots.newton_bracketed.bisection_fallbacks",
        ] {
            assert_eq!(
                scalar_delta.counter(name),
                batch_delta.counter(name),
                "counter {name} drifted"
            );
        }
        assert_eq!(batch_delta.counter("batch.lanes"), configs.len() as u64);
    }

    #[test]
    fn masked_lane_iteration_counts_stay_scalar() {
        // Lanes retire at different rounds; the masked bookkeeping must
        // not keep counting iterations for retired lanes. Every lane's
        // reported count equals its scalar count, and stays within the
        // paper's ≤ 4 + safeguard margin on physical inputs.
        let configs: Vec<DelayConfig> = (1..=40)
            .map(|i| DelayConfig {
                b1: 1.0,
                b2: 0.01 + 0.1 * f64::from(i),
                threshold: 0.5,
            })
            .collect();
        for (config, out) in configs.iter().zip(solve_delays(&configs)) {
            let want = scalar(config).unwrap();
            let got = out.unwrap();
            assert_eq!(got.iterations, want.iterations, "{config:?}");
            assert!(got.iterations <= 8, "{config:?}: {} iterations", got.iterations);
        }
    }
}
