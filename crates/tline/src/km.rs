//! The Kahng–Muddu approximate delay model (the paper's baseline \[23\]).
//!
//! Kahng and Muddu give closed-form delay approximations that are
//! accurate only when the two-pole system is *strongly* over- or
//! under-damped (`|b₁² − 4b₂| ≫ b₂`); in between they fall back to the
//! critically-damped expression, which depends only on `b₁` — and `b₁`
//! does not depend on the line inductance. The paper's §2.1 observation
//! that this makes the approximation useless for inductance-aware
//! *optimization* is exactly what the `baselines` bench quantifies
//! against the rigorous Newton solve.

use rlckit_numeric::roots::{newton_raphson, RootOptions};
use rlckit_numeric::{NumericError, Result};
use rlckit_units::Seconds;

use crate::twopole::TwoPole;

/// Regime-selection threshold: the approximation is considered valid when
/// `|b₁² − 4b₂| > THRESHOLD · b₂`.
const THRESHOLD: f64 = 3.0;

/// Which closed-form regime [`km_delay`] selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KmRegime {
    /// Strongly overdamped: dominant (slow) pole only.
    DominantPole,
    /// Strongly underdamped: phase-form crossing estimate.
    Oscillatory,
    /// Neither: critically-damped fallback (inductance-independent!).
    CriticalFallback,
}

/// Dominant-pole delay: drop the fast-pole term of the overdamped
/// response, `v(t) ≈ 1 − s₂/(s₂−s₁)·e^{s₁t}`, and solve in closed form.
///
/// Returns `None` if the system is not overdamped.
#[must_use]
pub fn dominant_pole_delay(two_pole: &TwoPole, f: f64) -> Option<Seconds> {
    let disc = two_pole.discriminant();
    if disc <= 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    let s1 = (-two_pole.b1() + sq) / (2.0 * two_pole.b2()); // slow
    let s2 = (-two_pole.b1() - sq) / (2.0 * two_pole.b2()); // fast
    // 1 − f = s₂/(s₂−s₁)·e^{s₁τ}
    let coeff = s2 / (s2 - s1);
    let arg = (1.0 - f) / coeff;
    if arg <= 0.0 {
        return None;
    }
    Some(Seconds::new(arg.ln() / s1))
}

/// Critically-damped delay: solve `(1 + x)·e^{−x} = 1 − f` and scale by
/// the critical time constant `b₁/2` (since at criticality
/// `b₂ = b₁²/4`). **Depends only on `b₁`** — the flaw the paper exploits.
///
/// # Errors
///
/// Returns [`NumericError::InvalidInput`] unless `0 < f < 1`.
pub fn critical_damping_delay(two_pole: &TwoPole, f: f64) -> Result<Seconds> {
    if !(0.0 < f && f < 1.0) {
        return Err(NumericError::InvalidInput(format!(
            "delay threshold must lie in (0, 1), got {f}"
        )));
    }
    // Solve (1 + x)e^{−x} = 1 − f by Newton from a generous start.
    let target = 1.0 - f;
    let root = newton_raphson(
        |x| (1.0 + x) * (-x).exp() - target,
        |x| -x * (-x).exp(),
        1.7,
        RootOptions::default(),
    )?;
    Ok(Seconds::new(root.x * two_pole.b1() / 2.0))
}

/// Oscillatory (strongly underdamped) crossing estimate using the phase
/// form `v(t) = 1 − (ω_n/ω_d)·e^{−αt}·cos(ω_d t − φ)` with two fixed-point
/// refinements of the envelope — the closed-form-with-refinement style of
/// the original approximation.
///
/// Returns `None` if the system is not underdamped.
#[must_use]
pub fn oscillatory_delay(two_pole: &TwoPole, f: f64) -> Option<Seconds> {
    let disc = two_pole.discriminant();
    if disc >= 0.0 {
        return None;
    }
    let alpha = two_pole.b1() / (2.0 * two_pole.b2());
    let omega_d = (-disc).sqrt() / (2.0 * two_pole.b2());
    let omega_n = two_pole.natural_frequency();
    let phi = (alpha / omega_d).atan();
    // Zeroth estimate: ignore the decay envelope.
    let mut t = ((1.0 - f) * omega_d / omega_n).acos() / omega_d + phi / omega_d;
    for _ in 0..2 {
        let envelope = omega_n / omega_d * (-alpha * t).exp();
        let cosine = ((1.0 - f) / envelope).clamp(-1.0, 1.0);
        t = (cosine.acos() + phi) / omega_d;
    }
    Some(Seconds::new(t))
}

/// The full Kahng–Muddu piecewise delay model with its regime report.
///
/// # Errors
///
/// Returns [`NumericError::InvalidInput`] unless `0 < f < 1`.
///
/// # Examples
///
/// ```
/// use rlckit_tline::km::{km_delay, KmRegime};
/// use rlckit_tline::twopole::TwoPole;
///
/// # fn main() -> Result<(), rlckit_numeric::NumericError> {
/// // Near-critical: the model falls back to the b₁-only expression.
/// let tp = TwoPole::new(1.0e-9, 0.26e-18);
/// let (_, regime) = km_delay(&tp, 0.5)?;
/// assert_eq!(regime, KmRegime::CriticalFallback);
/// # Ok(())
/// # }
/// ```
pub fn km_delay(two_pole: &TwoPole, f: f64) -> Result<(Seconds, KmRegime)> {
    if !(0.0 < f && f < 1.0) {
        return Err(NumericError::InvalidInput(format!(
            "delay threshold must lie in (0, 1), got {f}"
        )));
    }
    let disc = two_pole.discriminant();
    if disc > THRESHOLD * two_pole.b2() {
        if let Some(t) = dominant_pole_delay(two_pole, f) {
            return Ok((t, KmRegime::DominantPole));
        }
    } else if disc < -THRESHOLD * two_pole.b2() {
        if let Some(t) = oscillatory_delay(two_pole, f) {
            return Ok((t, KmRegime::Oscillatory));
        }
    }
    Ok((
        critical_damping_delay(two_pole, f)?,
        KmRegime::CriticalFallback,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_pole_is_accurate_when_strongly_overdamped() {
        // b₂ ≪ b₁²: essentially one pole.
        let tp = TwoPole::new(1.0, 1e-4);
        let approx = dominant_pole_delay(&tp, 0.5).unwrap().get();
        let exact = tp.delay(0.5).unwrap().get();
        assert!((approx - exact).abs() / exact < 1e-3);
    }

    #[test]
    fn oscillatory_is_accurate_when_strongly_underdamped() {
        // ζ = 0.1.
        let tp = TwoPole::new(0.2, 1.0);
        let approx = oscillatory_delay(&tp, 0.5).unwrap().get();
        let exact = tp.delay(0.5).unwrap().get();
        assert!(
            (approx - exact).abs() / exact < 0.05,
            "approx {approx}, exact {exact}"
        );
    }

    #[test]
    fn critical_delay_matches_exact_at_criticality() {
        let tp = TwoPole::new(1.0, 0.25);
        let approx = critical_damping_delay(&tp, 0.5).unwrap().get();
        let exact = tp.delay(0.5).unwrap().get();
        assert!((approx - exact).abs() / exact < 1e-9);
    }

    #[test]
    fn fallback_is_blind_to_b2_changes() {
        // The paper's §2.1 criticism: near criticality the KM delay does
        // not move when b₂ (i.e. the line inductance) changes.
        let a = TwoPole::new(1.0, 0.24);
        let b = TwoPole::new(1.0, 0.26);
        let (da, ra) = km_delay(&a, 0.5).unwrap();
        let (db, rb) = km_delay(&b, 0.5).unwrap();
        assert_eq!(ra, KmRegime::CriticalFallback);
        assert_eq!(rb, KmRegime::CriticalFallback);
        assert_eq!(da, db);
        // …while the exact delay does move.
        let ea = a.delay(0.5).unwrap().get();
        let eb = b.delay(0.5).unwrap().get();
        assert!((ea - eb).abs() / ea > 1e-3);
    }

    #[test]
    fn regime_selection_brackets() {
        let strongly_over = TwoPole::new(1.0, 0.01);
        assert_eq!(km_delay(&strongly_over, 0.5).unwrap().1, KmRegime::DominantPole);
        let strongly_under = TwoPole::new(0.1, 1.0);
        assert_eq!(km_delay(&strongly_under, 0.5).unwrap().1, KmRegime::Oscillatory);
        let nearly_critical = TwoPole::new(1.0, 0.25);
        assert_eq!(
            km_delay(&nearly_critical, 0.5).unwrap().1,
            KmRegime::CriticalFallback
        );
    }

    #[test]
    fn invalid_threshold_rejected() {
        let tp = TwoPole::new(1.0, 0.25);
        assert!(km_delay(&tp, 1.5).is_err());
        assert!(critical_damping_delay(&tp, 0.0).is_err());
    }

    #[test]
    fn critical_constant_is_the_textbook_value() {
        // (1+x)e^{-x} = 0.5 has x ≈ 1.67835.
        let tp = TwoPole::new(2.0, 1.0);
        let d = critical_damping_delay(&tp, 0.5).unwrap().get();
        assert!((d - 1.67835).abs() < 1e-4);
    }
}
