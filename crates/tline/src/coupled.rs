//! Coupled-line (crosstalk) analysis — an extension.
//!
//! The paper's introduction motivates RLC modelling by *both* delay and
//! crosstalk errors of RC models, then concentrates on delay with the
//! Miller-factor caveat of §3. This module supplies the missing
//! crosstalk piece for the canonical symmetric two-line system using
//! even/odd mode decomposition:
//!
//! * even mode (lines switch together): `l_e = l + l_m`, `c_e = c`;
//! * odd mode (lines switch oppositely): `l_o = l − l_m`, `c_o = c + 2c_c`.
//!
//! A quiet-victim response to an aggressor step is then
//! `(v_even − v_odd)/2`, evaluated with the same two-pole machinery as
//! everything else, so inductive and capacitive coupling are treated on
//! equal footing.

use rlckit_units::{Farads, FaradsPerMeter, HenriesPerMeter, Meters, Ohms, Seconds};

use crate::dil::DriverInterconnectLoad;
use crate::line::LineRlc;

/// A symmetric pair of coupled RLC lines.
///
/// # Examples
///
/// ```
/// use rlckit_tline::coupled::CoupledRlc;
/// use rlckit_tline::line::LineRlc;
/// use rlckit_units::*;
///
/// let single = LineRlc::new(
///     OhmsPerMeter::from_ohm_per_milli(4.4),
///     HenriesPerMeter::from_nano_per_milli(1.5),
///     FaradsPerMeter::from_pico(123.33),
/// );
/// let pair = CoupledRlc::new(
///     single,
///     HenriesPerMeter::from_nano_per_milli(0.8),
///     FaradsPerMeter::from_pico(40.0),
/// );
/// // Odd mode carries the extra 2·c_c and the reduced l − l_m.
/// assert!(pair.odd_mode().capacitance().get() > single.capacitance().get());
/// assert!(pair.odd_mode().inductance().get() < single.inductance().get());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoupledRlc {
    line: LineRlc,
    mutual_inductance: HenriesPerMeter,
    coupling_capacitance: FaradsPerMeter,
}

impl CoupledRlc {
    /// Creates a coupled pair from the single-line parameters (with `c`
    /// the *ground* capacitance), the mutual inductance `l_m` and the
    /// line-to-line coupling capacitance `c_c`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ l_m < l` (passivity of the inductance matrix)
    /// and `c_c ≥ 0`.
    #[must_use]
    pub fn new(
        line: LineRlc,
        mutual_inductance: HenriesPerMeter,
        coupling_capacitance: FaradsPerMeter,
    ) -> Self {
        assert!(
            mutual_inductance.get() >= 0.0,
            "mutual inductance must be non-negative"
        );
        assert!(
            mutual_inductance.get() < line.inductance().get()
                || line.inductance().get() == 0.0 && mutual_inductance.get() == 0.0,
            "mutual inductance must stay below the self inductance"
        );
        assert!(
            coupling_capacitance.get() >= 0.0,
            "coupling capacitance must be non-negative"
        );
        Self {
            line,
            mutual_inductance,
            coupling_capacitance,
        }
    }

    /// The underlying single-line parameters.
    #[must_use]
    pub fn line(&self) -> LineRlc {
        self.line
    }

    /// Mutual inductance per unit length.
    #[must_use]
    pub fn mutual_inductance(&self) -> HenriesPerMeter {
        self.mutual_inductance
    }

    /// Coupling capacitance per unit length.
    #[must_use]
    pub fn coupling_capacitance(&self) -> FaradsPerMeter {
        self.coupling_capacitance
    }

    /// Even-mode equivalent line (`l + l_m`, `c`).
    #[must_use]
    pub fn even_mode(&self) -> LineRlc {
        LineRlc::new(
            self.line.resistance(),
            self.line.inductance() + self.mutual_inductance,
            self.line.capacitance(),
        )
    }

    /// Odd-mode equivalent line (`l − l_m`, `c + 2c_c`).
    #[must_use]
    pub fn odd_mode(&self) -> LineRlc {
        LineRlc::new(
            self.line.resistance(),
            self.line.inductance() - self.mutual_inductance,
            self.line.capacitance() + self.coupling_capacitance * 2.0,
        )
    }
}

/// A crosstalk analysis of identically driven/loaded coupled lines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrosstalkAnalysis {
    even: DriverInterconnectLoad,
    odd: DriverInterconnectLoad,
}

impl CrosstalkAnalysis {
    /// Sets up the analysis: both lines carry the same driver
    /// (`R_S`, `C_P`), length and load.
    #[must_use]
    pub fn new(
        pair: &CoupledRlc,
        driver_resistance: Ohms,
        driver_parasitic: Farads,
        length: Meters,
        load_capacitance: Farads,
    ) -> Self {
        let build = |line: LineRlc| {
            DriverInterconnectLoad::new(
                driver_resistance,
                driver_parasitic,
                line,
                length,
                load_capacitance,
            )
        };
        Self {
            even: build(pair.even_mode()),
            odd: build(pair.odd_mode()),
        }
    }

    /// Normalized far-end noise on a quiet victim at time `t` after the
    /// aggressor's step: `(v_even(t) − v_odd(t))/2` (two-pole modes).
    #[must_use]
    pub fn victim_noise(&self, t: Seconds) -> f64 {
        0.5 * (self.even.two_pole().response(t.get()) - self.odd.two_pole().response(t.get()))
    }

    /// Peak magnitude and time of the victim noise, by dense scan over
    /// the settling window.
    #[must_use]
    pub fn peak_victim_noise(&self) -> (Seconds, f64) {
        let b1 = self.even.b1().max(self.odd.b1());
        let envelope = (2.0 * self.even.b2() / self.even.b1())
            .max(2.0 * self.odd.b2() / self.odd.b1());
        let horizon = 8.0 * b1 + 10.0 * envelope;
        let mut best = (0.0, 0.0f64);
        let n = 2000;
        for i in 1..=n {
            let t = horizon * i as f64 / n as f64;
            let v = self.victim_noise(Seconds::new(t));
            if v.abs() > best.1.abs() {
                best = (t, v);
            }
        }
        (Seconds::new(best.0), best.1)
    }

    /// The 50 % delays of a victim switching **with** (even) and
    /// **against** (odd) its neighbour — the dynamic delay spread that
    /// the paper's fixed-`c` Miller discussion bounds statically.
    ///
    /// # Errors
    ///
    /// Propagates delay-solver failures.
    pub fn mode_delays(&self) -> rlckit_numeric::Result<(Seconds, Seconds)> {
        Ok((
            self.even.two_pole().delay(0.5)?,
            self.odd.two_pole().delay(0.5)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::OhmsPerMeter;

    fn single() -> LineRlc {
        LineRlc::new(
            OhmsPerMeter::from_ohm_per_milli(4.4),
            HenriesPerMeter::from_nano_per_milli(1.5),
            FaradsPerMeter::from_pico(123.33),
        )
    }

    fn analysis(lm_nh: f64, cc_pf: f64) -> CrosstalkAnalysis {
        let pair = CoupledRlc::new(
            single(),
            HenriesPerMeter::from_nano_per_milli(lm_nh),
            FaradsPerMeter::from_pico(cc_pf),
        );
        CrosstalkAnalysis::new(
            &pair,
            Ohms::new(14.3),
            Farads::from_femto(1943.0),
            Meters::from_milli(11.1),
            Farads::from_femto(400.0),
        )
    }

    #[test]
    fn no_coupling_means_no_crosstalk() {
        let a = analysis(0.0, 0.0);
        let (_, peak) = a.peak_victim_noise();
        assert!(peak.abs() < 1e-12);
        let (even, odd) = a.mode_delays().unwrap();
        assert!((even.get() - odd.get()).abs() < 1e-18);
    }

    #[test]
    fn crosstalk_grows_with_capacitive_coupling() {
        let weak = analysis(0.0, 10.0).peak_victim_noise().1.abs();
        let strong = analysis(0.0, 40.0).peak_victim_noise().1.abs();
        assert!(strong > weak, "{strong} !> {weak}");
        assert!(strong > 0.01, "expected visible noise, got {strong}");
    }

    #[test]
    fn crosstalk_grows_with_inductive_coupling() {
        let weak = analysis(0.3, 0.0).peak_victim_noise().1.abs();
        let strong = analysis(1.2, 0.0).peak_victim_noise().1.abs();
        assert!(strong > weak, "{strong} !> {weak}");
    }

    #[test]
    fn capacitive_coupling_slows_the_odd_mode() {
        // Switching against the neighbour sees c + 2c_c: slower.
        let (even, odd) = analysis(0.0, 40.0).mode_delays().unwrap();
        assert!(odd.get() > even.get());
    }

    #[test]
    fn inductive_coupling_slows_the_even_mode() {
        // Switching with the neighbour sees l + l_m: slower (the opposite
        // polarity from the capacitive Miller effect — the reason RC-only
        // crosstalk models mispredict which pattern is the worst case).
        let (even, odd) = analysis(1.2, 0.0).mode_delays().unwrap();
        assert!(even.get() > odd.get());
    }

    #[test]
    fn mixed_coupling_can_cancel_in_delay_but_not_in_noise() {
        // Scan c_c at fixed l_m until the mode delays nearly coincide;
        // the victim noise must still be nonzero there (delay equality
        // does not mean quiet neighbours).
        let mut best = (f64::MAX, 0.0, 0.0);
        for lm in [0.3, 0.5, 0.7, 0.9] {
            for i in 1..=30 {
                let cc = 2.0 * i as f64;
                let a = analysis(lm, cc);
                let (even, odd) = a.mode_delays().unwrap();
                let spread = (even.get() - odd.get()).abs() / even.get();
                if spread < best.0 {
                    best = (spread, lm, cc);
                }
            }
        }
        assert!(best.0 < 0.1, "no near-cancellation found: best spread {}", best.0);
        let (_, peak) = analysis(best.1, best.2).peak_victim_noise();
        assert!(peak.abs() > 0.005, "noise vanished: {peak}");
    }

    #[test]
    fn victim_noise_settles_to_zero() {
        let a = analysis(0.8, 30.0);
        let b1 = a.even.b1().max(a.odd.b1());
        let envelope = (2.0 * a.even.b2() / a.even.b1()).max(2.0 * a.odd.b2() / a.odd.b1());
        let late = a.victim_noise(Seconds::new(20.0 * b1 + 25.0 * envelope));
        assert!(late.abs() < 1e-5, "late noise {late}");
    }

    #[test]
    #[should_panic(expected = "mutual inductance must stay below")]
    fn passivity_is_enforced() {
        let _ = CoupledRlc::new(
            single(),
            HenriesPerMeter::from_nano_per_milli(2.0),
            FaradsPerMeter::from_pico(10.0),
        );
    }
}
