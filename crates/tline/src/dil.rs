//! The driver–interconnect–load (DIL) structure of the paper's Fig. 1.
//!
//! A repeater with series output resistance `R_S` and output parasitic
//! `C_P` drives a uniform distributed RLC line of length `h` terminated
//! by the next repeater's input capacitance `C_L`. This module provides:
//!
//! * the **exact** transfer function (Eq. 1) evaluated at any complex
//!   frequency,
//! * the Maclaurin **moments** `b₁ … b_N` of the denominator — both the
//!   paper's hand-derived closed forms for `b₁`, `b₂` and an automatic
//!   truncated-series expansion for any order (they must agree, and a
//!   test enforces it),
//! * the **critical inductance** `l_crit` (Eq. 4),
//! * the second-order reduction handed to [`crate::twopole::TwoPole`].

use rlckit_numeric::series::Series;
use rlckit_numeric::{Complex, NumericError};
use rlckit_units::{Farads, HenriesPerMeter, Meters, Ohms, Seconds};

use crate::abcd::Abcd;
use crate::line::LineRlc;
use crate::twopole::TwoPole;

/// A driver–interconnect–load configuration (paper Fig. 1).
///
/// All stored values are the *sized* totals: for a repeater of size `k`
/// in technology terms, `R_S = r_s/k`, `C_P = c_p·k`, `C_L = c_0·k`.
///
/// # Examples
///
/// ```
/// use rlckit_tline::{dil::DriverInterconnectLoad, line::LineRlc};
/// use rlckit_units::*;
///
/// let line = LineRlc::new(
///     OhmsPerMeter::from_ohm_per_milli(4.4),
///     HenriesPerMeter::from_nano_per_milli(0.5),
///     FaradsPerMeter::from_pico(203.5),
/// );
/// let dil = DriverInterconnectLoad::new(
///     Ohms::new(20.0),
///     Farads::from_femto(3600.0),
///     line,
///     Meters::from_milli(14.4),
///     Farads::from_femto(940.0),
/// );
/// // The Elmore delay is the first moment b₁.
/// assert!(dil.elmore_delay().get() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverInterconnectLoad {
    /// Driver series resistance `R_S` (Ω).
    rs: f64,
    /// Driver output parasitic `C_P` (F).
    cp: f64,
    /// Line parameters.
    line: LineRlc,
    /// Segment length `h` (m).
    h: f64,
    /// Load capacitance `C_L` (F).
    cl: f64,
}

impl DriverInterconnectLoad {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `R_S`, `h` or `C_L` is not strictly positive, or `C_P`
    /// is negative.
    #[must_use]
    pub fn new(
        driver_resistance: Ohms,
        driver_parasitic: Farads,
        line: LineRlc,
        length: Meters,
        load_capacitance: Farads,
    ) -> Self {
        assert!(
            driver_resistance.get() > 0.0,
            "driver resistance must be positive"
        );
        assert!(
            driver_parasitic.get() >= 0.0,
            "driver parasitic must be non-negative"
        );
        assert!(length.get() > 0.0, "length must be positive");
        assert!(
            load_capacitance.get() > 0.0,
            "load capacitance must be positive"
        );
        Self {
            rs: driver_resistance.get(),
            cp: driver_parasitic.get(),
            line,
            h: length.get(),
            cl: load_capacitance.get(),
        }
    }

    /// Driver series resistance `R_S`.
    #[must_use]
    pub fn driver_resistance(&self) -> Ohms {
        Ohms::new(self.rs)
    }

    /// Driver output parasitic `C_P`.
    #[must_use]
    pub fn driver_parasitic(&self) -> Farads {
        Farads::new(self.cp)
    }

    /// Line parameters.
    #[must_use]
    pub fn line(&self) -> LineRlc {
        self.line
    }

    /// Segment length `h`.
    #[must_use]
    pub fn length(&self) -> Meters {
        Meters::new(self.h)
    }

    /// Load capacitance `C_L`.
    #[must_use]
    pub fn load_capacitance(&self) -> Farads {
        Farads::new(self.cl)
    }

    /// Exact denominator of Eq. 1 at complex frequency `s`:
    /// `[1 + sR_S(C_P+C_L)]·cosh θh + [R_S/Z₀ + sC_L Z₀ + s²R_S C_P C_L Z₀]·sinh θh`.
    #[must_use]
    pub fn denominator(&self, s: Complex) -> Complex {
        let line_two_port = Abcd::rlc_line(&self.line, Meters::new(self.h), s);
        let chain = Abcd::series_impedance(Complex::from_real(self.rs))
            .cascade(&Abcd::shunt_admittance(s * self.cp))
            .cascade(&line_two_port)
            .cascade(&Abcd::shunt_admittance(s * self.cl));
        chain.a
    }

    /// Exact transfer function `H(s) = V_o/V_i` of Eq. 1.
    ///
    /// Far into the right half-plane `cosh(θh)` overflows `f64`; there
    /// `|H| < 1e−130`, so the overflowed denominator is mapped to
    /// `H = 0`, keeping the numerical inverse-Laplace oracle well-defined
    /// at very small times.
    #[must_use]
    pub fn transfer_function(&self, s: Complex) -> Complex {
        let d = self.denominator(s);
        if d.is_finite() {
            d.recip()
        } else {
            Complex::ZERO
        }
    }

    /// Laplace-domain step response `V_o(s) = H(s)/s` (for the inverse-
    /// Laplace oracle in [`crate::exact`]).
    #[must_use]
    pub fn step_transform(&self, s: Complex) -> Complex {
        let h = self.transfer_function(s);
        if h == Complex::ZERO {
            Complex::ZERO
        } else {
            h / s
        }
    }

    /// Maclaurin moments of the exact denominator: returns
    /// `[b₀ = 1, b₁, …, b_order]` by truncated-series expansion.
    ///
    /// For any truncation order this agrees with the paper's closed-form
    /// `b₁`, `b₂` ([`Self::b1`], [`Self::b2`]); orders ≥ 3 feed the
    /// higher-order reduced models in [`crate::awe`].
    #[must_use]
    pub fn moments(&self, order: usize) -> Vec<f64> {
        let (r, l, c) = (
            self.line.resistance().get(),
            self.line.inductance().get(),
            self.line.capacitance().get(),
        );
        let h = self.h;
        let n = order.max(2);

        // P(s) = (θh)² = s·rch² + s²·lch²
        let mut p_coeffs = vec![0.0; n + 1];
        p_coeffs[1] = r * c * h * h;
        p_coeffs[2] = l * c * h * h;
        let p = Series::from_coeffs(p_coeffs);

        let factorial = |k: usize| -> f64 { (1..=k).map(|i| i as f64).product() };
        let cosh = p
            .compose_entire(|m| 1.0 / factorial(2 * m))
            .expect("P has zero constant term");
        let sinhc = p
            .compose_entire(|m| 1.0 / factorial(2 * m + 1))
            .expect("P has zero constant term");

        // [1 + s·R_S(C_P + C_L)]·cosh
        let mut a_coeffs = vec![0.0; n + 1];
        a_coeffs[0] = 1.0;
        a_coeffs[1] = self.rs * (self.cp + self.cl);
        let term_a = Series::from_coeffs(a_coeffs).mul(&cosh);

        // [s·R_S·c·h + (s·C_L + s²·R_S·C_P·C_L)·(r + s·l)·h]·sinhc
        let mut b_coeffs = vec![0.0; n + 1];
        b_coeffs[1] = self.rs * c * h + self.cl * r * h;
        if n >= 2 {
            b_coeffs[2] = self.cl * l * h + self.rs * self.cp * self.cl * r * h;
        }
        if n >= 3 {
            b_coeffs[3] = self.rs * self.cp * self.cl * l * h;
        }
        let term_b = Series::from_coeffs(b_coeffs).mul(&sinhc);

        let denominator = term_a.add(&term_b);
        denominator.coeffs()[..=order].to_vec()
    }

    /// The paper's closed-form first moment (Eq. 2):
    /// `b₁ = R_S(C_P+C_L) + rch²/2 + R_S·c·h + C_L·r·h`.
    #[must_use]
    pub fn b1(&self) -> f64 {
        let (r, c) = (self.line.resistance().get(), self.line.capacitance().get());
        let h = self.h;
        self.rs * (self.cp + self.cl) + r * c * h * h / 2.0 + self.rs * c * h + self.cl * r * h
    }

    /// The paper's closed-form second moment (Eq. 2):
    /// `b₂ = lch²/2 + r²c²h⁴/24 + R_S(C_P+C_L)·rch²/2
    ///      + (R_S·c·h + C_L·r·h)·rch²/6 + C_L·l·h + R_S·C_P·C_L·r·h`.
    #[must_use]
    pub fn b2(&self) -> f64 {
        let (r, l, c) = (
            self.line.resistance().get(),
            self.line.inductance().get(),
            self.line.capacitance().get(),
        );
        let h = self.h;
        let rch2 = r * c * h * h;
        l * c * h * h / 2.0
            + rch2 * rch2 / 24.0
            + self.rs * (self.cp + self.cl) * rch2 / 2.0
            + (self.rs * c * h + self.cl * r * h) * rch2 / 6.0
            + self.cl * l * h
            + self.rs * self.cp * self.cl * r * h
    }

    /// The Elmore delay of the structure — exactly the first moment `b₁`,
    /// independent of the line inductance.
    #[must_use]
    pub fn elmore_delay(&self) -> Seconds {
        Seconds::new(self.b1())
    }

    /// The second-order Padé reduction (Eq. 2) of the exact transfer
    /// function.
    ///
    /// # Panics
    ///
    /// Panics on degenerate (non-positive/non-finite) moments; campaign
    /// paths must use [`Self::try_two_pole`] so a bad point fails the
    /// point, not the process.
    #[must_use]
    pub fn two_pole(&self) -> TwoPole {
        TwoPole::new(self.b1(), self.b2())
    }

    /// Fallible [`Self::two_pole`]: degenerate moments become
    /// [`NumericError::InvalidInput`] (non-retryable) instead of a
    /// panic.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] if either closed-form
    /// moment is non-positive or non-finite.
    pub fn try_two_pole(&self) -> Result<TwoPole, NumericError> {
        TwoPole::try_new(self.b1(), self.b2())
    }

    /// The critical line inductance `l_crit` (Eq. 4): the value of `l`
    /// that makes the two-pole reduction critically damped for this
    /// `(h, k)` configuration. `b₁` does not depend on `l`, so this is
    /// closed-form.
    ///
    /// A negative result means the configuration is underdamped even at
    /// `l = 0` (cannot happen for physical RC-dominated segments, but the
    /// value is returned as-is so callers can observe the regime).
    #[must_use]
    pub fn critical_inductance(&self) -> HenriesPerMeter {
        let (r, c) = (self.line.resistance().get(), self.line.capacitance().get());
        let h = self.h;
        let b1 = self.b1();
        let rch2 = r * c * h * h;
        let numerator = b1 * b1 / 4.0
            - rch2 * rch2 / 24.0
            - self.rs * (self.cp + self.cl) * rch2 / 2.0
            - (self.rs * c * h + self.cl * r * h) * rch2 / 6.0
            - self.rs * self.cp * self.cl * r * h;
        let denominator = c * h * h / 2.0 + self.cl * h;
        HenriesPerMeter::new(numerator / denominator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::{FaradsPerMeter, OhmsPerMeter};

    /// A 250 nm optimally-buffered segment with k = 578 and l = 1 nH/mm.
    fn dil_250(l_nh_mm: f64) -> DriverInterconnectLoad {
        let k = 578.0;
        DriverInterconnectLoad::new(
            Ohms::new(11_784.0 / k),
            Farads::new(6.2474e-15 * k),
            LineRlc::new(
                OhmsPerMeter::from_ohm_per_milli(4.4),
                HenriesPerMeter::from_nano_per_milli(l_nh_mm),
                FaradsPerMeter::from_pico(203.5),
            ),
            Meters::from_milli(14.4),
            Farads::new(1.6314e-15 * k),
        )
    }

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DriverInterconnectLoad>();
        assert_send_sync::<crate::twopole::TwoPole>();
        assert_send_sync::<crate::line::LineRlc>();
    }

    #[test]
    fn dc_gain_is_unity() {
        let dil = dil_250(1.0);
        let h0 = dil.transfer_function(Complex::from_real(1e-6));
        assert!((h0 - Complex::ONE).abs() < 1e-6);
    }

    #[test]
    fn series_moments_match_paper_closed_forms() {
        for l in [0.0, 0.5, 2.0, 4.9] {
            let dil = dil_250(l);
            let m = dil.moments(4);
            assert!((m[0] - 1.0).abs() < 1e-12);
            assert!(
                (m[1] - dil.b1()).abs() / dil.b1() < 1e-12,
                "b1 mismatch at l={l}: {} vs {}",
                m[1],
                dil.b1()
            );
            assert!(
                (m[2] - dil.b2()).abs() / dil.b2() < 1e-12,
                "b2 mismatch at l={l}: {} vs {}",
                m[2],
                dil.b2()
            );
            // Higher moments exist and are finite.
            assert!(m[3].is_finite() && m[4].is_finite());
        }
    }

    #[test]
    fn moments_match_denominator_derivatives() {
        // Numerically differentiate the exact denominator at s = 0 and
        // compare with the series moments: D(s) ≈ 1 + b₁s + b₂s².
        let dil = dil_250(1.5);
        let b1 = dil.b1();
        // Probe at a frequency scale where s·b1 ~ 1e-3.
        let ds = 1e-3 / b1;
        let d_plus = dil.denominator(Complex::from_real(ds));
        let d_minus = dil.denominator(Complex::from_real(-ds));
        let b1_fd = (d_plus - d_minus).re / (2.0 * ds);
        let b2_fd = (d_plus + d_minus - Complex::from_real(2.0)).re / (2.0 * ds * ds);
        assert!((b1_fd - dil.b1()).abs() / dil.b1() < 1e-5);
        assert!((b2_fd - dil.b2()).abs() / dil.b2() < 1e-3);
    }

    #[test]
    fn two_pole_approximates_exact_transfer_function_at_low_frequency() {
        let dil = dil_250(1.0);
        let tp = dil.two_pole();
        // At |s·b1| = 0.1 the second-order model must track the exact H.
        let s = Complex::new(0.0, 0.1 / dil.b1());
        let exact = dil.transfer_function(s);
        let approx = (Complex::ONE + s * tp.b1() + s * s * tp.b2()).recip();
        assert!((exact - approx).abs() < 0.01 * exact.abs());
    }

    #[test]
    fn elmore_delay_is_independent_of_inductance() {
        let a = dil_250(0.0).elmore_delay();
        let b = dil_250(4.9).elmore_delay();
        assert_eq!(a, b);
    }

    #[test]
    fn b2_grows_linearly_with_inductance() {
        let d0 = dil_250(0.0);
        let d1 = dil_250(1.0);
        let d2 = dil_250(2.0);
        let slope1 = d1.b2() - d0.b2();
        let slope2 = d2.b2() - d1.b2();
        assert!((slope1 - slope2).abs() / slope1 < 1e-12);
        // Slope is (ch²/2 + C_L·h)·Δl per nH/mm.
        let want = (203.5e-12 * 0.0144 * 0.0144 / 2.0 + 1.6314e-15 * 578.0 * 0.0144) * 1e-6;
        assert!((slope1 - want).abs() / want < 1e-12);
    }

    #[test]
    fn critical_inductance_makes_discriminant_vanish() {
        let dil = dil_250(1.0);
        let lc = dil.critical_inductance();
        assert!(lc.get() > 0.0, "physical configs start overdamped");
        let at_crit = DriverInterconnectLoad::new(
            dil.driver_resistance(),
            dil.driver_parasitic(),
            dil.line().with_inductance(lc),
            dil.length(),
            dil.load_capacitance(),
        );
        let disc = at_crit.b1() * at_crit.b1() - 4.0 * at_crit.b2();
        assert!(
            disc.abs() < 1e-10 * at_crit.b1() * at_crit.b1(),
            "disc = {disc:e}"
        );
    }

    #[test]
    fn more_inductance_pushes_towards_underdamping() {
        let dil = dil_250(1.0);
        let lc = dil.critical_inductance().get();
        let below = dil_250((lc * 1e6) * 0.5); // half l_crit in nH/mm
        let above = dil_250((lc * 1e6) * 1.5);
        assert!(below.b1() * below.b1() - 4.0 * below.b2() > 0.0);
        assert!(above.b1() * above.b1() - 4.0 * above.b2() < 0.0);
    }

    #[test]
    fn exact_h_decays_at_high_frequency() {
        let dil = dil_250(1.0);
        let s = Complex::new(0.0, 100.0 / dil.b1());
        assert!(dil.transfer_function(s).abs() < 0.2);
    }
}
