//! Complex ABCD (chain) two-port algebra.
//!
//! The paper composes the driver–interconnect–load transfer function from
//! four cascaded ABCD matrices (series driver resistance, shunt driver
//! parasitic, the distributed line, shunt load). This module provides the
//! primitives and the exact distributed-RLC-line two-port.
//!
//! Branch-cut note: the line two-port involves `cosh(θh)`, `Z₀·sinh(θh)`
//! and `sinh(θh)/Z₀`, all *even* functions of `θ`, so the result is
//! independent of the square-root branch. We evaluate them through
//! `sinhc(z) = sinh(z)/z` to make that manifest and keep `θ → 0` stable.

use rlckit_numeric::Complex;

use crate::line::LineRlc;
use rlckit_units::Meters;

/// A complex ABCD (chain) matrix `[[a, b], [c, d]]`.
///
/// Cascading follows signal flow: `first.cascade(&second)` is the
/// two-port obtained by feeding `first`'s output into `second`'s input.
///
/// # Examples
///
/// ```
/// use rlckit_numeric::Complex;
/// use rlckit_tline::abcd::Abcd;
///
/// let r = Abcd::series_impedance(Complex::from_real(50.0));
/// let c = Abcd::shunt_admittance(Complex::new(0.0, 1e-3));
/// let rc = r.cascade(&c);
/// // Determinant of a reciprocal two-port stays 1.
/// assert!((rc.determinant() - Complex::ONE).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Abcd {
    /// Voltage transfer entry.
    pub a: Complex,
    /// Transfer impedance entry.
    pub b: Complex,
    /// Transfer admittance entry.
    pub c: Complex,
    /// Current transfer entry.
    pub d: Complex,
}

impl Abcd {
    /// The identity two-port (a through connection).
    #[must_use]
    pub fn identity() -> Self {
        Self {
            a: Complex::ONE,
            b: Complex::ZERO,
            c: Complex::ZERO,
            d: Complex::ONE,
        }
    }

    /// A series impedance `z`: `[[1, z], [0, 1]]`.
    #[must_use]
    pub fn series_impedance(z: Complex) -> Self {
        Self {
            a: Complex::ONE,
            b: z,
            c: Complex::ZERO,
            d: Complex::ONE,
        }
    }

    /// A shunt admittance `y`: `[[1, 0], [y, 1]]`.
    #[must_use]
    pub fn shunt_admittance(y: Complex) -> Self {
        Self {
            a: Complex::ONE,
            b: Complex::ZERO,
            c: y,
            d: Complex::ONE,
        }
    }

    /// The exact two-port of a uniform distributed RLC line of length
    /// `length` at complex frequency `s`:
    /// `[[cosh θh, Z₀ sinh θh], [sinh θh / Z₀, cosh θh]]`.
    #[must_use]
    pub fn rlc_line(line: &LineRlc, length: Meters, s: Complex) -> Self {
        let h = length.get();
        let series_z = (s * line.inductance().get() + line.resistance().get()) * h; // (r+sl)h
        let shunt_y = s * (line.capacitance().get() * h); // sch
        let theta_h_sq = series_z * shunt_y; // (θh)²
        let theta_h = theta_h_sq.sqrt();
        let sinhc = theta_h.sinhc();
        Self {
            a: theta_h.cosh(),
            b: series_z * sinhc,
            c: shunt_y * sinhc,
            d: theta_h.cosh(),
        }
    }

    /// Cascades `self` followed by `next` (matrix product `self · next`).
    #[must_use]
    pub fn cascade(&self, next: &Self) -> Self {
        Self {
            a: self.a * next.a + self.b * next.c,
            b: self.a * next.b + self.b * next.d,
            c: self.c * next.a + self.d * next.c,
            d: self.c * next.b + self.d * next.d,
        }
    }

    /// Determinant `a·d − b·c` (1 for reciprocal two-ports).
    #[must_use]
    pub fn determinant(&self) -> Complex {
        self.a * self.d - self.b * self.c
    }

    /// Voltage transfer function into an open output: `V_out/V_in = 1/a`.
    #[must_use]
    pub fn open_circuit_voltage_gain(&self) -> Complex {
        self.a.recip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::{FaradsPerMeter, HenriesPerMeter, OhmsPerMeter};

    fn line() -> LineRlc {
        LineRlc::new(
            OhmsPerMeter::from_ohm_per_milli(4.4),
            HenriesPerMeter::from_nano_per_milli(1.0),
            FaradsPerMeter::from_pico(203.5),
        )
    }

    #[test]
    fn identity_is_neutral() {
        let m = Abcd::series_impedance(Complex::new(10.0, -3.0));
        let left = Abcd::identity().cascade(&m);
        let right = m.cascade(&Abcd::identity());
        assert_eq!(left, m);
        assert_eq!(right, m);
    }

    #[test]
    fn cascade_order_matters() {
        let r = Abcd::series_impedance(Complex::from_real(5.0));
        let y = Abcd::shunt_admittance(Complex::from_real(0.1));
        let ry = r.cascade(&y);
        let yr = y.cascade(&r);
        assert!(ry != yr);
        // Both remain reciprocal.
        assert!((ry.determinant() - Complex::ONE).abs() < 1e-14);
        assert!((yr.determinant() - Complex::ONE).abs() < 1e-14);
    }

    #[test]
    fn line_two_port_is_reciprocal_and_symmetric() {
        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * 2e9);
        let m = Abcd::rlc_line(&line(), Meters::from_milli(10.0), s);
        assert!((m.determinant() - Complex::ONE).abs() < 1e-9);
        assert_eq!(m.a, m.d);
    }

    #[test]
    fn line_two_port_composes_over_length() {
        // A line of length h must equal the cascade of two half-lines.
        let s = Complex::new(1e8, 2.0 * std::f64::consts::PI * 1e9);
        let full = Abcd::rlc_line(&line(), Meters::from_milli(8.0), s);
        let half = Abcd::rlc_line(&line(), Meters::from_milli(4.0), s);
        let composed = half.cascade(&half);
        for (got, want) in [
            (composed.a, full.a),
            (composed.b, full.b),
            (composed.c, full.c),
            (composed.d, full.d),
        ] {
            assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0), "{got} vs {want}");
        }
    }

    #[test]
    fn zero_length_line_is_identity() {
        let s = Complex::new(0.0, 1e10);
        let m = Abcd::rlc_line(&line(), Meters::new(1e-12), s);
        assert!((m.a - Complex::ONE).abs() < 1e-6);
        assert!(m.b.abs() < 1e-6);
    }

    #[test]
    fn dc_line_reduces_to_series_resistance() {
        // At s → 0 the line is just its total resistance.
        let s = Complex::from_real(1e-3);
        let h = Meters::from_milli(10.0);
        let m = Abcd::rlc_line(&line(), h, s);
        let r_total = 4400.0 * 0.010;
        assert!((m.b.re - r_total).abs() / r_total < 1e-3);
        assert!((m.a - Complex::ONE).abs() < 1e-3);
    }

    #[test]
    fn rc_limit_matches_lossless_free_line() {
        // With r ≈ 0 and l > 0 the line at jω has |cosh θh| ≤ cosh of the
        // real part; at a frequency where βh = π the gain magnitude is 1.
        let lossless = LineRlc::new(
            OhmsPerMeter::new(1e-9),
            HenriesPerMeter::from_nano_per_milli(1.0),
            FaradsPerMeter::from_pico(100.0),
        );
        let h = Meters::from_milli(10.0);
        // β = ω√(lc) ⇒ ω = π/(h√(lc))
        let omega = std::f64::consts::PI
            / (h.get() * (1e-6f64 * 100e-12).sqrt());
        let m = Abcd::rlc_line(&lossless, h, Complex::new(0.0, omega));
        // cosh(jπ) = -1
        assert!((m.a - Complex::from_real(-1.0)).abs() < 1e-4);
    }
}
