//! The exact step response, numerically inverted — the oracle.
//!
//! The paper calls the time-domain inversion of the exact `H(s)/s`
//! "analytically intractable" and reduces to two poles. Numerically it is
//! perfectly tractable: all singularities of the passive structure lie in
//! the open left half-plane, so the Abate–Whitt Euler inversion converges.
//! Every reduced model in this workspace (two-pole, higher-order AWE) is
//! validated against this module.

use rlckit_numeric::ilt::EulerInversion;
use rlckit_numeric::roots::{brent, RootOptions};
use rlckit_numeric::{NumericError, Result};
use rlckit_units::Seconds;

use crate::dil::DriverInterconnectLoad;

/// Number of scan points used to bracket the first threshold crossing.
const SCAN_POINTS: usize = 600;
/// Scan horizon in units of the Elmore delay `b₁`.
const SCAN_HORIZON: f64 = 12.0;

/// Evaluates the exact normalized step response `v(t)/V₀` at `t`.
///
/// # Errors
///
/// Returns [`NumericError::InvalidInput`] for `t ≤ 0` or if the transform
/// misbehaves numerically (does not happen for passive configurations).
///
/// # Examples
///
/// ```
/// use rlckit_tline::{dil::DriverInterconnectLoad, exact, line::LineRlc};
/// use rlckit_units::*;
///
/// # fn main() -> Result<(), rlckit_numeric::NumericError> {
/// let line = LineRlc::new(
///     OhmsPerMeter::from_ohm_per_milli(4.4),
///     HenriesPerMeter::from_nano_per_milli(1.0),
///     FaradsPerMeter::from_pico(203.5),
/// );
/// let dil = DriverInterconnectLoad::new(
///     Ohms::new(20.0),
///     Farads::from_femto(3611.0),
///     line,
///     Meters::from_milli(14.4),
///     Farads::from_femto(943.0),
/// );
/// // Settles to 1 long after the Elmore delay.
/// let late = exact::step_response_at(&dil, Seconds::new(20.0 * dil.b1()))?;
/// assert!((late - 1.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn step_response_at(dil: &DriverInterconnectLoad, t: Seconds) -> Result<f64> {
    let euler = EulerInversion::default();
    euler.invert(|s| dil.step_transform(s), t.get())
}

/// Samples the exact normalized step response on a time grid.
///
/// # Errors
///
/// Propagates the first failure of [`step_response_at`].
pub fn step_response_grid(dil: &DriverInterconnectLoad, times: &[f64]) -> Result<Vec<f64>> {
    let euler = EulerInversion::default();
    euler.invert_grid(|s| dil.step_transform(s), times)
}

/// The exact `f·100 %` delay of the structure: first crossing of `f` by
/// the numerically-inverted exact step response.
///
/// # Errors
///
/// Returns [`NumericError::InvalidInput`] unless `0 < f < 1`, and
/// [`NumericError::InvalidBracket`] if no crossing is found within
/// `12·b₁` (which would indicate a non-passive configuration).
pub fn exact_delay(dil: &DriverInterconnectLoad, f: f64) -> Result<Seconds> {
    if !(0.0 < f && f < 1.0) {
        return Err(NumericError::InvalidInput(format!(
            "delay threshold must lie in (0, 1), got {f}"
        )));
    }
    let euler = EulerInversion::default();
    let b1 = dil.b1();
    let v = |t: f64| euler.invert(|s| dil.step_transform(s), t);

    // Coarse scan for the first crossing.
    let dt = SCAN_HORIZON * b1 / SCAN_POINTS as f64;
    let mut prev_t = dt * 1e-3;
    let mut prev_v = v(prev_t)?;
    for i in 1..=SCAN_POINTS {
        let t = dt * i as f64;
        let vt = v(t)?;
        if prev_v < f && vt >= f {
            let root = brent(
                |t| v(t).unwrap_or(f64::NAN) - f,
                prev_t,
                t,
                RootOptions {
                    x_tol: 1e-12,
                    f_tol: 1e-10,
                    max_iterations: 200,
                    ..RootOptions::default()
                },
            )?;
            return Ok(Seconds::new(root.x));
        }
        prev_t = t;
        prev_v = vt;
    }
    Err(NumericError::InvalidBracket {
        lo: 0.0,
        hi: SCAN_HORIZON * b1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LineRlc;
    use rlckit_units::{Farads, FaradsPerMeter, HenriesPerMeter, Meters, Ohms, OhmsPerMeter};

    fn dil_250(l_nh_mm: f64) -> DriverInterconnectLoad {
        let k = 578.0;
        DriverInterconnectLoad::new(
            Ohms::new(11_784.0 / k),
            Farads::new(6.2474e-15 * k),
            LineRlc::new(
                OhmsPerMeter::from_ohm_per_milli(4.4),
                HenriesPerMeter::from_nano_per_milli(l_nh_mm),
                FaradsPerMeter::from_pico(203.5),
            ),
            Meters::from_milli(14.4),
            Farads::new(1.6314e-15 * k),
        )
    }

    #[test]
    fn exact_response_starts_at_zero_and_settles_at_one() {
        let dil = dil_250(1.0);
        let early = step_response_at(&dil, Seconds::new(1e-4 * dil.b1())).unwrap();
        assert!(early.abs() < 1e-2, "early = {early}");
        let late = step_response_at(&dil, Seconds::new(30.0 * dil.b1())).unwrap();
        assert!((late - 1.0).abs() < 1e-4, "late = {late}");
    }

    #[test]
    fn two_pole_delay_tracks_exact_delay_in_rc_regime() {
        // With no inductance the structure is heavily overdamped and the
        // two-pole 50 % delay should be within a few percent of exact.
        let dil = dil_250(0.0);
        let exact = exact_delay(&dil, 0.5).unwrap().get();
        let two_pole = dil.two_pole().delay(0.5).unwrap().get();
        let err = (two_pole - exact).abs() / exact;
        assert!(err < 0.05, "two-pole off by {:.1}%", err * 100.0);
    }

    #[test]
    fn two_pole_delay_tracks_exact_delay_with_inductance() {
        // Near and beyond critical damping the two-pole model remains a
        // usable delay predictor (that is the paper's premise); allow a
        // slightly larger band.
        for l in [1.0, 2.5, 4.5] {
            let dil = dil_250(l);
            let exact = exact_delay(&dil, 0.5).unwrap().get();
            let two_pole = dil.two_pole().delay(0.5).unwrap().get();
            let err = (two_pole - exact).abs() / exact;
            assert!(err < 0.15, "l={l}: two-pole off by {:.1}%", err * 100.0);
        }
    }

    #[test]
    fn exact_delay_increases_with_inductance() {
        let d0 = exact_delay(&dil_250(0.0), 0.5).unwrap().get();
        let d4 = exact_delay(&dil_250(4.0), 0.5).unwrap().get();
        assert!(d4 > d0);
    }

    #[test]
    fn grid_sampling_is_monotone_before_first_peak() {
        let dil = dil_250(2.0);
        let b1 = dil.b1();
        let times: Vec<f64> = (1..=40).map(|i| i as f64 * 0.05 * b1).collect();
        let vs = step_response_grid(&dil, &times).unwrap();
        // Find the first peak; the response must rise monotonically there.
        let mut rising = true;
        for w in vs.windows(2) {
            if w[1] < w[0] {
                rising = false;
            }
            if rising {
                assert!(w[1] >= w[0] - 1e-9);
            }
        }
    }

    #[test]
    fn euler_and_talbot_agree_on_overdamped_configs() {
        // Two unrelated inversion algorithms as mutual checks (Talbot
        // degrades on strong oscillation, so compare where both apply).
        use rlckit_numeric::ilt::TalbotInversion;
        let dil = dil_250(0.0);
        let talbot = TalbotInversion::new(48);
        for frac in [0.5, 1.0, 3.0] {
            let t = frac * dil.b1();
            let via_euler = step_response_at(&dil, Seconds::new(t)).unwrap();
            let via_talbot = talbot.invert(|s| dil.step_transform(s), t).unwrap();
            assert!(
                (via_euler - via_talbot).abs() < 1e-5,
                "t={frac}·b1: euler {via_euler} vs talbot {via_talbot}"
            );
        }
    }

    #[test]
    fn threshold_validation() {
        let dil = dil_250(1.0);
        assert!(exact_delay(&dil, 0.0).is_err());
        assert!(exact_delay(&dil, 1.0).is_err());
    }
}
