//! Per-unit-length line parameters and derived line quantities.

use rlckit_numeric::Complex;
use rlckit_units::{FaradsPerMeter, HenriesPerMeter, Ohms, OhmsPerMeter};

/// Per-unit-length parameters of a uniform distributed RLC line.
///
/// # Examples
///
/// ```
/// use rlckit_tline::line::LineRlc;
/// use rlckit_units::*;
///
/// let line = LineRlc::new(
///     OhmsPerMeter::from_ohm_per_milli(4.4),
///     HenriesPerMeter::from_nano_per_milli(1.0),
///     FaradsPerMeter::from_pico(123.33),
/// );
/// // Lossless characteristic impedance √(l/c) ≈ 90 Ω.
/// assert!((line.lossless_impedance().get() - 90.05).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineRlc {
    resistance: OhmsPerMeter,
    inductance: HenriesPerMeter,
    capacitance: FaradsPerMeter,
}

impl LineRlc {
    /// Creates line parameters.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is not strictly positive, or `l` is negative
    /// (`l = 0` is the RC limit the paper compares against).
    #[must_use]
    pub fn new(r: OhmsPerMeter, l: HenriesPerMeter, c: FaradsPerMeter) -> Self {
        assert!(r.get() > 0.0, "line resistance must be positive");
        assert!(l.get() >= 0.0, "line inductance must be non-negative");
        assert!(c.get() > 0.0, "line capacitance must be positive");
        Self {
            resistance: r,
            inductance: l,
            capacitance: c,
        }
    }

    /// Resistance per unit length.
    #[must_use]
    pub fn resistance(&self) -> OhmsPerMeter {
        self.resistance
    }

    /// Inductance per unit length.
    #[must_use]
    pub fn inductance(&self) -> HenriesPerMeter {
        self.inductance
    }

    /// Capacitance per unit length.
    #[must_use]
    pub fn capacitance(&self) -> FaradsPerMeter {
        self.capacitance
    }

    /// Returns a copy with a different line inductance — the paper's
    /// swept parameter.
    #[must_use]
    pub fn with_inductance(&self, l: HenriesPerMeter) -> Self {
        Self::new(self.resistance, l, self.capacitance)
    }

    /// Lossless characteristic impedance `√(l/c)`.
    #[must_use]
    pub fn lossless_impedance(&self) -> Ohms {
        rlckit_units::lossless_characteristic_impedance(self.inductance, self.capacitance)
    }

    /// Lossy characteristic impedance `Z₀(s) = √((r + s·l)/(s·c))`.
    #[must_use]
    pub fn characteristic_impedance(&self, s: Complex) -> Complex {
        let num = s * self.inductance.get() + self.resistance.get();
        let den = s * self.capacitance.get();
        (num / den).sqrt()
    }

    /// Propagation constant `θ(s) = √((r + s·l)·s·c)` per unit length.
    #[must_use]
    pub fn propagation_constant(&self, s: Complex) -> Complex {
        let zy = (s * self.inductance.get() + self.resistance.get())
            * (s * self.capacitance.get());
        zy.sqrt()
    }

    /// Time of flight per unit length `√(l·c)`, in s/m (0 in the RC limit).
    #[must_use]
    pub fn time_of_flight_per_meter(&self) -> f64 {
        rlckit_units::time_of_flight_per_meter(self.inductance, self.capacitance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> LineRlc {
        LineRlc::new(
            OhmsPerMeter::from_ohm_per_milli(4.4),
            HenriesPerMeter::from_nano_per_milli(1.0),
            FaradsPerMeter::from_pico(203.5),
        )
    }

    #[test]
    fn impedance_times_admittance_is_theta_squared() {
        let l = line();
        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * 1e9);
        let z0 = l.characteristic_impedance(s);
        let theta = l.propagation_constant(s);
        // Z₀·θ = r + s·l and θ/Z₀ = s·c.
        let series = z0 * theta;
        let want = s * 1.0e-6 + 4400.0;
        assert!((series - want).abs() / want.abs() < 1e-10);
        let shunt = theta / z0;
        let want = s * 203.5e-12;
        assert!((shunt - want).abs() / want.abs() < 1e-10);
    }

    #[test]
    fn high_frequency_impedance_approaches_lossless() {
        let l = line();
        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * 1e13);
        let z = l.characteristic_impedance(s);
        assert!((z.abs() - l.lossless_impedance().get()).abs() < 0.5);
    }

    #[test]
    fn rc_limit_has_zero_flight_time() {
        let l = line().with_inductance(HenriesPerMeter::ZERO);
        assert_eq!(l.time_of_flight_per_meter(), 0.0);
    }

    #[test]
    fn with_inductance_preserves_r_and_c() {
        let l = line().with_inductance(HenriesPerMeter::from_nano_per_milli(3.0));
        assert_eq!(l.resistance(), line().resistance());
        assert_eq!(l.capacitance(), line().capacitance());
        assert!((l.inductance().to_nano_per_milli() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inductance must be non-negative")]
    fn negative_inductance_rejected() {
        let _ = LineRlc::new(
            OhmsPerMeter::from_ohm_per_milli(4.4),
            HenriesPerMeter::new(-1e-9),
            FaradsPerMeter::from_pico(203.5),
        );
    }
}
