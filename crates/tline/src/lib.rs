//! Distributed RLC transmission-line analysis.
//!
//! Implements §2.1 of the paper from first principles:
//!
//! * [`abcd`] — complex ABCD two-port algebra, including the exact
//!   distributed RLC line two-port.
//! * [`mod@line`] — per-unit-length line parameters `(r, l, c)` and derived
//!   quantities (characteristic impedance, time of flight).
//! * [`dil`] — the driver–interconnect–load structure of Fig. 1: its
//!   exact transfer function (Eq. 1), its Maclaurin moments `b₁ … b_N`
//!   (both the paper's closed forms and an automatic series expansion),
//!   and the critical inductance `l_crit` (Eq. 4).
//! * [`twopole`] — the second-order Padé model (Eq. 2): poles, damping
//!   classification, step response, overshoot/undershoot metrics, and the
//!   rigorous `f·100 %` delay by Newton–Raphson on Eq. 3.
//! * [`awe`] — higher-order (AWE-style) reduced models, an extension used
//!   to quantify what the paper's second-order choice gives up.
//! * [`coupled`] — even/odd-mode crosstalk analysis of a symmetric
//!   coupled pair, extending the paper's Miller-factor discussion to the
//!   inductively coupled case.
//! * [`exact`] — the numerically-inverted exact step response, the oracle
//!   against which both reduced models are validated.
//! * [`km`] — the Kahng–Muddu approximate delay formulas (the paper's
//!   baseline \[23\]), including the critical-damping fallback whose
//!   inductance-independence motivates the paper's exact solve.
//!
//! # Examples
//!
//! Computing the 50 % delay of an optimally-buffered 250 nm global wire
//! segment with 1 nH/mm of line inductance:
//!
//! ```
//! use rlckit_tline::dil::DriverInterconnectLoad;
//! use rlckit_tline::line::LineRlc;
//! use rlckit_units::*;
//!
//! # fn main() -> Result<(), rlckit_numeric::NumericError> {
//! let line = LineRlc::new(
//!     OhmsPerMeter::from_ohm_per_milli(4.4),
//!     HenriesPerMeter::from_nano_per_milli(1.0),
//!     FaradsPerMeter::from_pico(203.5),
//! );
//! let k = 578.0;
//! let dil = DriverInterconnectLoad::new(
//!     Ohms::new(11_784.0 / k),          // R_S = r_s/k
//!     Farads::new(6.2474e-15 * k),      // C_P = c_p·k
//!     line,
//!     Meters::from_milli(14.4),         // h
//!     Farads::new(1.6314e-15 * k),      // C_L = c_0·k
//! );
//! let delay = dil.two_pole().delay(0.5)?;
//! assert!(delay.get() > 100e-12 && delay.get() < 500e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abcd;
pub mod awe;
pub mod batch;
pub mod coupled;
pub mod dil;
pub mod exact;
pub mod km;
pub mod line;
pub mod twopole;

pub use batch::{solve_delays, DelayBatch, DelayConfig, DelayOutcome};
pub use dil::DriverInterconnectLoad;
pub use line::LineRlc;
pub use twopole::{Damping, TwoPole};
