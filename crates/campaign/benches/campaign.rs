//! Shard-count scaling of the supervised campaign driver.
//!
//! Compares the in-process solo campaign against supervised
//! multi-process runs at increasing shard counts, each iteration on a
//! fresh directory so every sample measures the full compute (not a
//! checkpoint replay). On a single-CPU box the supervised runs mostly
//! measure process and supervision overhead; the `cores` annotation
//! lets readers (and the tier-1 guard) interpret the speedups
//! accordingly.

use std::path::PathBuf;
use std::process::Command;

use rlckit_bench::timer::{BenchOptions, Harness};
use rlckit_campaign::grid::{CampaignNode, CampaignSpec};
use rlckit_campaign::solo_campaign;

fn fresh_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rlckit-bench-campaign-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn supervised(exe: &str, spec: &CampaignSpec, shards: usize, dir: &PathBuf, out: &PathBuf) {
    let status = Command::new(exe)
        .args(["run", "--node", spec.node.name()])
        .args(["--points", &spec.points.to_string()])
        .args(["--shards", &shards.to_string()])
        .arg("--dir")
        .arg(dir)
        .arg("--out")
        .arg(out)
        .env_remove("RLCKIT_SHARD_FAULTS")
        .env_remove("RLCKIT_TRACE")
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn rlckit-campaign");
    assert!(status.success(), "supervised run failed");
}

fn main() {
    let mut h = Harness::from_args("campaign");
    let spec = CampaignSpec {
        node: CampaignNode::Nm100,
        points: 25,
    };
    let exe = env!("CARGO_BIN_EXE_rlckit-campaign");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let opts = BenchOptions::with_samples(5);

    let solo_dir = fresh_dir("solo");
    h.bench_with("solo_100nm_25", &opts, || {
        let _ = std::fs::remove_dir_all(&solo_dir);
        solo_campaign(&spec, &solo_dir).expect("solo campaign")
    });
    h.annotate("solo_100nm_25", &[("points", spec.points as f64)]);

    for shards in [1usize, 2, 3] {
        let name = format!("supervised_{shards}_shards");
        let dir = fresh_dir(&name);
        let out = dir.with_extension("csv");
        h.bench_with(&name, &opts, || {
            let _ = std::fs::remove_dir_all(&dir);
            supervised(exe, &spec, shards, &dir, &out);
        });
        h.annotate(&name, &[("shards", shards as f64), ("cores", cores as f64)]);
        h.record_speedup(
            &format!("shard_scaling_{shards}"),
            "solo_100nm_25",
            &name,
            &[("shards", shards as f64), ("cores", cores as f64)],
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&out);
    }
    let _ = std::fs::remove_dir_all(&solo_dir);
    h.finish();
}
