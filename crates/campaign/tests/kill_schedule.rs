//! Kill-schedule properties of the supervised campaign driver, run
//! against the real `rlckit-campaign` binary.
//!
//! The central claim: a campaign that crashes its way to completion —
//! seeded SIGKILL-equivalent aborts scattered across shards and
//! relaunch generations via `RLCKIT_SHARD_FAULTS` — merges to a CSV
//! **byte-identical** to the single-process run. Replay a failure with
//! `RLCKIT_CHECK_SEED`.

use std::path::PathBuf;
use std::process::Command;

use rlckit_campaign::grid::{CampaignNode, CampaignSpec};
use rlckit_campaign::solo_campaign;

const SHARDS: usize = 3;

fn spec() -> CampaignSpec {
    CampaignSpec {
        node: CampaignNode::Nm100,
        points: 11,
    }
}

/// The in-process reference CSV, computed once per test process.
fn reference_csv() -> &'static str {
    static CSV: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    CSV.get_or_init(|| {
        let mut dir = std::env::temp_dir();
        dir.push(format!("rlckit-kill-schedule-solo-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let csv = solo_campaign(&spec(), &dir).expect("solo campaign");
        let _ = std::fs::remove_dir_all(&dir);
        csv
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rlckit-kill-schedule-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

struct RunResult {
    csv: String,
    stderr: String,
    success: bool,
}

fn supervised_run(tag: &str, faults: &str, extra: &[&str]) -> RunResult {
    let spec = spec();
    let dir = fresh_dir(tag);
    let out = dir.with_extension("csv");
    let _ = std::fs::remove_file(&out);
    let output = Command::new(env!("CARGO_BIN_EXE_rlckit-campaign"))
        .args(["run", "--node", spec.node.name()])
        .args(["--points", &spec.points.to_string()])
        .args(["--shards", &SHARDS.to_string()])
        .args(["--backoff-ms", "2", "--backoff-cap-ms", "20", "--poll-ms", "2"])
        .args(extra)
        .arg("--dir")
        .arg(&dir)
        .arg("--out")
        .arg(&out)
        .env("RLCKIT_SHARD_FAULTS", faults)
        .env_remove("RLCKIT_TRACE")
        .output()
        .expect("spawn rlckit-campaign run");
    let csv = std::fs::read_to_string(&out).unwrap_or_default();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&out);
    RunResult {
        csv,
        stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
        success: output.status.success(),
    }
}

/// Seeded random abort schedules must still merge byte-identical to
/// the single-process campaign (the restart budget is generous enough
/// that no shard degrades at this fault rate).
#[test]
fn seeded_kill_schedules_merge_byte_identical_to_solo() {
    let reference = reference_csv();
    rlckit_check::Check::new().cases(3).seed(0x5EED_C111).run(
        &rlckit_check::gen::usize_range(0, 1 << 48),
        |&fault_seed| {
            let result = supervised_run(
                &format!("aborts-{fault_seed:x}"),
                &format!("{fault_seed}:0.25"),
                &["--restart-budget", "8"],
            );
            assert!(result.success, "run failed:\n{}", result.stderr);
            assert!(
                result.stderr.contains("0 degraded"),
                "seed {fault_seed:#x} degraded a shard:\n{}",
                result.stderr
            );
            assert_eq!(
                result.csv, reference,
                "seed {fault_seed:#x}: merged CSV differs from solo"
            );
        },
    );
}

/// An unsurvivable fault rate (every generation of every shard aborts
/// at its first uncomputed point) must exhaust the restart budget,
/// degrade every shard, and still terminate with a complete CSV of
/// explicit failed rows — graceful degradation, not a hang or a crash.
#[test]
fn certain_death_degrades_gracefully_into_failed_rows() {
    let spec = spec();
    let result = supervised_run("certain-death", "11:1.0", &["--restart-budget", "1"]);
    assert!(result.success, "run failed:\n{}", result.stderr);
    // A shard with no assigned points exits cleanly before its first
    // fault window, so only populated shards can degrade.
    let populated = (0..SHARDS)
        .filter(|&s| !rlckit_campaign::grid::shard_points(&spec, s, SHARDS).is_empty())
        .count();
    assert!(
        result.stderr.contains(&format!("{populated} degraded")),
        "expected every populated shard degraded:\n{}",
        result.stderr
    );
    let lines: Vec<&str> = result.csv.lines().collect();
    assert_eq!(lines.len(), spec.points + 1);
    for line in &lines[1..] {
        assert!(
            line.contains(",failed,"),
            "expected a failed row, got {line:?}"
        );
    }
}

/// Injected hangs (shards that stay alive but stop appending) must be
/// caught by the progress-based stall timeout, killed, and relaunched
/// to the same byte-identical merge.
#[test]
fn hung_shards_are_stalled_out_and_recovered() {
    let reference = reference_csv();
    let result = supervised_run(
        "hangs",
        "4242:0.2:hang",
        &["--restart-budget", "8", "--stall-timeout-ms", "250"],
    );
    assert!(result.success, "run failed:\n{}", result.stderr);
    assert!(result.stderr.contains("0 degraded"), "{}", result.stderr);
    assert_eq!(result.csv, reference, "merged CSV differs from solo");
}
