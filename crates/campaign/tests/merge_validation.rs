//! Merge validation: every way a shard file can deviate from what the
//! shard runner writes must map to a structured [`MergeError`] — and
//! no corruption may ever *silently* change the merged CSV.
//!
//! The seeded multi-shard smudge property extends the single-file
//! checkpoint-mangling fuzz of `rlckit`'s checkpoint tests to the full
//! merge: any byte of any shard file overwritten with any value either
//! leaves the merged bytes identical (the smudge was a no-op) or is
//! refused outright.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use rlckit_campaign::grid::{
    shard_file_name, shard_of_point, CampaignNode, CampaignSpec,
};
use rlckit_campaign::merge::{
    encode_record, merge_shards, read_shard_strict, render_csv, MergeError, OutcomeTag,
    PointRecord,
};
use rlckit_campaign::shard::run_shard;

const OF: usize = 3;

fn spec() -> CampaignSpec {
    CampaignSpec {
        node: CampaignNode::Nm100,
        points: 7,
    }
}

/// Computes the 3-shard campaign once per process (tests run on
/// parallel threads and must not race the shard writes), returning its
/// directory and clean merged CSV.
fn baseline() -> &'static (PathBuf, String) {
    static BASE: std::sync::OnceLock<(PathBuf, String)> = std::sync::OnceLock::new();
    BASE.get_or_init(|| {
        let mut dir = std::env::temp_dir();
        dir.push(format!("rlckit-merge-validation-base-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spec = spec();
        for shard in 0..OF {
            run_shard(&spec, shard, OF, &dir, 0).expect("shard run");
        }
        let merged = merge_shards(&spec, &dir, OF, &BTreeSet::new()).expect("clean merge");
        let csv = render_csv(&spec, &merged);
        (dir, csv)
    })
}

/// Copies the baseline shard files into a fresh directory the test can
/// corrupt freely.
fn scratch_copy(base: &Path, tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "rlckit-merge-validation-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    for shard in 0..OF {
        let name = shard_file_name(shard, OF);
        fs::copy(base.join(&name), dir.join(&name)).expect("copy shard file");
    }
    dir
}

fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(shard_file_name(shard, OF))
}

fn merge(dir: &Path) -> Result<String, MergeError> {
    let spec = spec();
    merge_shards(&spec, dir, OF, &BTreeSet::new()).map(|m| render_csv(&spec, &m))
}

/// A shard index guaranteed to own at least one point (7 points over 3
/// shards: some shard could be empty, so find a populated one).
fn populated_shard(dir: &Path) -> (usize, Vec<String>) {
    for shard in 0..OF {
        let text = fs::read_to_string(shard_path(dir, shard)).expect("read shard");
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        if lines.len() > 1 {
            return (shard, lines);
        }
    }
    panic!("no shard owns any point");
}

#[test]
fn missing_shard_file_is_an_io_error() {
    let (base, _) = baseline();
    let dir = scratch_copy(base, "missing-file");
    fs::remove_file(shard_path(&dir, 1)).unwrap();
    assert!(matches!(merge(&dir), Err(MergeError::Io { shard: 1, .. })));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mangled_header_is_rejected() {
    let (base, _) = baseline();
    let dir = scratch_copy(base, "mangled-header");
    let path = shard_path(&dir, 0);
    let text = fs::read_to_string(&path).unwrap();
    fs::write(&path, text.replacen("\"header\"", "\"headxr\"", 1)).unwrap();
    assert_eq!(merge(&dir), Err(MergeError::MangledHeader { shard: 0 }));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn swapped_shard_files_are_a_fingerprint_mismatch() {
    let (base, _) = baseline();
    let dir = scratch_copy(base, "swapped");
    // Shard 0's file placed in shard 1's slot (and vice versa): same
    // campaign, wrong slot — the shard-identity fingerprint catches it.
    let a = fs::read(shard_path(&dir, 0)).unwrap();
    let b = fs::read(shard_path(&dir, 1)).unwrap();
    fs::write(shard_path(&dir, 0), b).unwrap();
    fs::write(shard_path(&dir, 1), a).unwrap();
    assert!(matches!(
        merge(&dir),
        Err(MergeError::FingerprintMismatch { shard: 0, .. })
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn foreign_campaign_file_is_a_fingerprint_mismatch() {
    let (base, _) = baseline();
    let dir = scratch_copy(base, "foreign-campaign");
    // A shard of a *different* campaign (other grid size) in slot 2.
    let other = CampaignSpec {
        node: CampaignNode::Nm100,
        points: 5,
    };
    let mut other_dir = std::env::temp_dir();
    other_dir.push(format!("rlckit-merge-validation-other-{}", std::process::id()));
    let _ = fs::remove_dir_all(&other_dir);
    run_shard(&other, 2, OF, &other_dir, 0).expect("other campaign shard");
    fs::copy(other_dir.join(shard_file_name(2, OF)), shard_path(&dir, 2)).unwrap();
    assert!(matches!(
        merge(&dir),
        Err(MergeError::FingerprintMismatch { shard: 2, .. })
    ));
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&other_dir);
}

#[test]
fn mangled_point_line_is_rejected_with_its_line_number() {
    let (base, _) = baseline();
    let dir = scratch_copy(base, "mangled-line");
    let (shard, mut lines) = populated_shard(&dir);
    lines[1] = lines[1].replacen("\"point\"", "\"paint\"", 1);
    fs::write(shard_path(&dir, shard), lines.join("\n") + "\n").unwrap();
    assert_eq!(merge(&dir), Err(MergeError::MangledLine { shard, line: 2 }));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn value_preserving_hex_smudge_is_a_corrupt_record() {
    let (base, _) = baseline();
    let dir = scratch_copy(base, "hex-smudge");
    let (shard, mut lines) = populated_shard(&dir);
    // Flip one hex digit inside a words entry: the line still parses
    // as valid checkpoint JSONL, but the record checksum catches it.
    let line = lines[1].clone();
    let hex_pos = line.find("0x").expect("hex word") + 5;
    let mut bytes = line.into_bytes();
    bytes[hex_pos] = if bytes[hex_pos] == b'f' { b'0' } else { b'f' };
    lines[1] = String::from_utf8(bytes).unwrap();
    fs::write(shard_path(&dir, shard), lines.join("\n") + "\n").unwrap();
    assert!(matches!(
        merge(&dir),
        Err(MergeError::CorruptRecord { shard: s, .. }) if s == shard
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn duplicated_point_line_is_rejected() {
    let (base, _) = baseline();
    let dir = scratch_copy(base, "duplicate");
    let (shard, mut lines) = populated_shard(&dir);
    let dup = lines[1].clone();
    lines.push(dup);
    fs::write(shard_path(&dir, shard), lines.join("\n") + "\n").unwrap();
    assert!(matches!(
        merge(&dir),
        Err(MergeError::DuplicatePoint { shard: s, .. }) if s == shard
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checksummed_record_for_someone_elses_point_is_foreign() {
    let (base, _) = baseline();
    let dir = scratch_copy(base, "foreign-point");
    let spec = spec();
    let fp = spec.fingerprint();
    let (shard, mut lines) = populated_shard(&dir);
    let foreign_index = (0..spec.points)
        .find(|&i| shard_of_point(fp, i, OF) != shard)
        .expect("some point belongs elsewhere");
    // A perfectly well-formed, correctly checksummed record — just for
    // a point the split assigns to a different shard.
    let words = encode_record(
        foreign_index,
        &PointRecord {
            tag: OutcomeTag::Failed,
            attempts: 1,
            point: None,
        },
    );
    let mut line = format!("{{\"type\":\"point\",\"index\":{foreign_index},\"words\":[");
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!("\"{w:#018x}\""));
    }
    line.push_str("]}");
    lines.push(line);
    fs::write(shard_path(&dir, shard), lines.join("\n") + "\n").unwrap();
    assert_eq!(
        merge(&dir),
        Err(MergeError::ForeignPoint {
            shard,
            index: foreign_index
        })
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn deleted_point_line_is_a_missing_point() {
    let (base, _) = baseline();
    let dir = scratch_copy(base, "missing-point");
    let (shard, mut lines) = populated_shard(&dir);
    lines.remove(1);
    fs::write(shard_path(&dir, shard), lines.join("\n") + "\n").unwrap();
    assert!(matches!(
        merge(&dir),
        Err(MergeError::MissingPoint { shard: s, .. }) if s == shard
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn read_shard_strict_accepts_exactly_what_the_runner_wrote() {
    let (base, csv) = baseline();
    let spec = spec();
    let mut total = 0;
    for shard in 0..OF {
        total += read_shard_strict(&spec, base, shard, OF)
            .expect("pristine shard")
            .len();
    }
    assert_eq!(total, spec.points);
    assert_eq!(csv.lines().count(), spec.points + 1);
}

/// The multi-shard smudge fuzz: overwrite one random byte of one
/// random shard file with one random value. The strict merge must
/// never panic, and must never *accept* bytes that change the merged
/// CSV — every outcome is either "identical bytes" (the smudge was a
/// no-op, e.g. hit the tolerated trailing newline) or a structured
/// refusal.
#[test]
fn random_single_byte_smudges_never_silently_change_the_merge() {
    let (base, clean) = baseline();
    let dir = scratch_copy(base, "smudge-fuzz");
    rlckit_check::Check::new().cases(120).seed(0x5A5A).run(
        &rlckit_check::gen::tuple3(
            rlckit_check::gen::usize_range(0, OF - 1),
            rlckit_check::gen::usize_range(0, 1 << 20),
            rlckit_check::gen::usize_range(0, 255),
        ),
        |&(shard, offset, byte)| {
            let path = shard_path(&dir, shard);
            let pristine = fs::read(&path).expect("read shard");
            let mut mutated = pristine.clone();
            let at = offset % mutated.len();
            mutated[at] = byte as u8;
            fs::write(&path, &mutated).expect("write smudged shard");
            let verdict = merge(&dir);
            fs::write(&path, &pristine).expect("restore shard");
            if let Ok(csv) = verdict {
                assert_eq!(
                    &csv, clean,
                    "smudge (shard {shard}, offset {at}, byte {byte:#04x}) \
                     changed the merged CSV without being refused"
                );
            }
        },
    );
    let _ = fs::remove_dir_all(&dir);
}
