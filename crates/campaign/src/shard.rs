//! The per-process shard runner.
//!
//! One shard owns a deterministic slice of the campaign grid (see
//! [`crate::grid::shard_of_point`]) and computes it serially, appending
//! one checksummed record per point to its checkpoint file and flushing
//! after each — so the supervisor can use file growth as a heartbeat,
//! and a kill loses at most the in-flight point. On relaunch the
//! checkpoint is reopened, completed points are skipped, and because
//! every point's arithmetic and fault scope depend only on its grid
//! index, the resumed shard's bits are identical to an uninterrupted
//! run.
//!
//! When `RLCKIT_SHARD_FAULTS=<seed>:<rate>[:abort|hang]` is armed, the
//! runner consults the seeded schedule *before computing each
//! not-yet-checkpointed point* and aborts (or hangs) the whole process
//! when it fires — the process-level analogue of `RLCKIT_FAULTS`, used
//! to exercise the supervisor's kill/relaunch/resume machinery
//! deterministically. The schedule is keyed on the relaunch generation,
//! so a relaunched shard eventually draws a clean run.

use std::path::Path;

use rlckit::checkpoint::CheckpointFile;
use rlckit::elmore::rc_optimum;
use rlckit::optimizer::RetryPolicy;
use rlckit::sweeps::sweep_point_outcome;
use rlckit_numeric::Result;
use rlckit_trace::counter;

use crate::grid::{shard_file_name, shard_fingerprint, shard_points, CampaignSpec};
use crate::merge::{decode_record, encode_record, PointRecord};

/// What one shard run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardSummary {
    /// Points computed by this run.
    pub computed: usize,
    /// Points served from the checkpoint of a previous generation.
    pub resumed: usize,
    /// Points (computed this run) that failed their whole retry ladder.
    pub failed: usize,
}

/// Runs shard `shard` of `of` for `spec`, checkpointing into `dir`.
///
/// `generation` is the relaunch count of this shard (0 for the first
/// launch); it keys the `RLCKIT_SHARD_FAULTS` schedule and has **no
/// effect on any computed number**.
///
/// # Errors
///
/// Checkpoint I/O failures. Per-point solver failures are recorded as
/// `failed` rows, not surfaced.
pub fn run_shard(
    spec: &CampaignSpec,
    shard: usize,
    of: usize,
    dir: &Path,
    generation: u32,
) -> Result<ShardSummary> {
    std::fs::create_dir_all(dir).map_err(|e| {
        rlckit_numeric::NumericError::InvalidInput(format!(
            "campaign dir {}: {e}",
            dir.display()
        ))
    })?;
    let fingerprint = shard_fingerprint(spec.fingerprint(), shard, of);
    let path = dir.join(shard_file_name(shard, of));
    let (checkpoint, completed) = CheckpointFile::open(&path, fingerprint)?;

    let tech = spec.node.tech();
    let (line, driver) = (tech.line(), tech.driver());
    let rc = rc_optimum(&line, &driver);
    let policy = RetryPolicy::default();
    let fault = rlckit_fault::shard::env_spec();

    let mut summary = ShardSummary::default();
    for (index, inductance) in shard_points(spec, shard, of) {
        // A checkpointed record only counts as done if it still
        // checksums; anything else is recomputed in place.
        if let Some(words) = completed.get(&index) {
            if decode_record(index, words).is_some() {
                summary.resumed += 1;
                counter!("campaign.points.resumed").incr();
                continue;
            }
        }
        if let Some(fault) = fault {
            if rlckit_fault::shard::should_fault(&fault, generation, index as u64) {
                match fault.mode {
                    rlckit_fault::shard::ShardFaultMode::Abort => {
                        eprintln!(
                            "rlckit-campaign: injected shard abort \
                             (shard {shard}, generation {generation}, point {index})"
                        );
                        std::process::abort();
                    }
                    rlckit_fault::shard::ShardFaultMode::Hang => {
                        eprintln!(
                            "rlckit-campaign: injected shard hang \
                             (shard {shard}, generation {generation}, point {index})"
                        );
                        loop {
                            std::thread::sleep(std::time::Duration::from_secs(3600));
                        }
                    }
                }
            }
        }
        let outcome = sweep_point_outcome(
            &line,
            &driver,
            &rc,
            index,
            inductance,
            CampaignSpec::options(),
            &policy,
        );
        let record = PointRecord::from_outcome(outcome);
        if record.point.is_none() {
            summary.failed += 1;
        }
        checkpoint.append(index, &encode_record(index, &record))?;
        summary.computed += 1;
        counter!("campaign.points.computed").incr();
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::CampaignNode;
    use crate::merge::{merge_shards, read_shard_strict, render_csv};
    use std::collections::BTreeSet;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rlckit-campaign-shard-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn spec() -> CampaignSpec {
        CampaignSpec {
            node: CampaignNode::Nm100,
            points: 9,
        }
    }

    #[test]
    fn sharded_run_merges_byte_identical_to_solo() {
        let spec = spec();
        let solo_dir = temp_dir("solo");
        let sharded_dir = temp_dir("sharded");

        run_shard(&spec, 0, 1, &solo_dir, 0).unwrap();
        let solo = render_csv(
            &spec,
            &merge_shards(&spec, &solo_dir, 1, &BTreeSet::new()).unwrap(),
        );

        for shard in 0..3 {
            run_shard(&spec, shard, 3, &sharded_dir, 0).unwrap();
        }
        let sharded = render_csv(
            &spec,
            &merge_shards(&spec, &sharded_dir, 3, &BTreeSet::new()).unwrap(),
        );

        assert_eq!(solo, sharded);
        assert!(solo.lines().count() == spec.points + 1);
        let _ = std::fs::remove_dir_all(&solo_dir);
        let _ = std::fs::remove_dir_all(&sharded_dir);
    }

    #[test]
    fn rerun_resumes_every_point_without_recomputing() {
        let spec = spec();
        let dir = temp_dir("resume");
        let first = run_shard(&spec, 0, 2, &dir, 0).unwrap();
        assert_eq!(first.resumed, 0);
        let again = run_shard(&spec, 0, 2, &dir, 1).unwrap();
        assert_eq!(again.computed, 0);
        assert_eq!(again.resumed, first.computed);
        read_shard_strict(&spec, &dir, 0, 2).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
