//! Campaign grids and their deterministic split into shards.
//!
//! A campaign is named by `(node, points)` and expands to the paper's
//! standard inductance grid `0 ≤ l < 5 nH/mm`. Everything downstream —
//! which shard owns which point, what fingerprint each shard file
//! carries — is a pure function of the campaign fingerprint, so every
//! process (and every relaunched generation of a crashed shard)
//! computes the same split without coordination.

use rlckit::checkpoint::fingerprint64;
use rlckit::optimizer::OptimizerOptions;
use rlckit::sweeps::campaign_fingerprint;
use rlckit_tech::TechNode;
use rlckit_units::HenriesPerMeter;

/// The technology nodes a campaign can target, i.e. the three columns
/// of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignNode {
    /// 250 nm node.
    Nm250,
    /// 100 nm node.
    Nm100,
    /// 100 nm node with the 250 nm-era dielectric (ε ≈ 3.3).
    Nm100Eps33,
}

impl CampaignNode {
    /// Parses the CLI spelling of a node name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "250nm" => Some(Self::Nm250),
            "100nm" => Some(Self::Nm100),
            "100nm_eps33" => Some(Self::Nm100Eps33),
            _ => None,
        }
    }

    /// The canonical CLI spelling (inverse of [`CampaignNode::parse`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Nm250 => "250nm",
            Self::Nm100 => "100nm",
            Self::Nm100Eps33 => "100nm_eps33",
        }
    }

    /// The technology-node parameters.
    #[must_use]
    pub fn tech(self) -> TechNode {
        match self {
            Self::Nm250 => TechNode::nm250(),
            Self::Nm100 => TechNode::nm100(),
            Self::Nm100Eps33 => TechNode::nm100_with_250nm_dielectric(),
        }
    }
}

/// A named campaign: a technology node swept over the paper's standard
/// inductance range with `points` grid points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Technology node under sweep.
    pub node: CampaignNode,
    /// Number of inductance grid points.
    pub points: usize,
}

impl CampaignSpec {
    /// The optimizer options every campaign point uses.
    #[must_use]
    pub fn options() -> OptimizerOptions {
        OptimizerOptions::default()
    }

    /// The full inductance grid, in index order.
    #[must_use]
    pub fn grid(&self) -> Vec<HenriesPerMeter> {
        rlckit_numeric::grid::linspace(0.0, 4.95, self.points)
            .into_iter()
            .map(HenriesPerMeter::from_nano_per_milli)
            .collect()
    }

    /// The campaign fingerprint: hashes the node parameters, optimizer
    /// options and the exact grid bits, so two campaigns agree on it
    /// iff they would compute identical numbers.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let tech = self.node.tech();
        campaign_fingerprint(&tech.line(), &tech.driver(), &self.grid(), Self::options())
    }
}

/// Which shard (of `of`) owns grid point `index`.
///
/// The assignment hashes `(campaign fingerprint, index)`, so it is a
/// pure function of the campaign identity: every process computes the
/// same split, and points scatter across shards rather than forming
/// contiguous ranges (keeping per-shard work balanced even when solve
/// cost varies along the grid).
#[must_use]
pub fn shard_of_point(campaign_fp: u64, index: usize, of: usize) -> usize {
    assert!(of > 0, "shard count must be positive");
    (fingerprint64([campaign_fp, index as u64]) % of as u64) as usize
}

/// The `(index, inductance)` slice of the grid owned by `shard` of
/// `of`, in index order.
#[must_use]
pub fn shard_points(spec: &CampaignSpec, shard: usize, of: usize) -> Vec<(usize, HenriesPerMeter)> {
    let fp = spec.fingerprint();
    spec.grid()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| shard_of_point(fp, *i, of) == shard)
        .collect()
}

/// The fingerprint a shard's checkpoint file carries: the campaign
/// fingerprint extended with the shard's identity, so a shard file can
/// never be merged into the wrong campaign *or* the wrong slot.
#[must_use]
pub fn shard_fingerprint(campaign_fp: u64, shard: usize, of: usize) -> u64 {
    fingerprint64([campaign_fp, shard as u64, of as u64])
}

/// The on-disk name of a shard's checkpoint file inside the campaign
/// directory.
#[must_use]
pub fn shard_file_name(shard: usize, of: usize) -> String {
    format!("shard-{shard}-of-{of}.partial.jsonl")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            node: CampaignNode::Nm100,
            points: 25,
        }
    }

    #[test]
    fn node_names_round_trip() {
        for node in [
            CampaignNode::Nm250,
            CampaignNode::Nm100,
            CampaignNode::Nm100Eps33,
        ] {
            assert_eq!(CampaignNode::parse(node.name()), Some(node));
        }
        assert_eq!(CampaignNode::parse("90nm"), None);
    }

    #[test]
    fn shard_split_partitions_the_grid() {
        let spec = spec();
        for of in [1usize, 2, 3, 7] {
            let mut seen = vec![false; spec.points];
            for shard in 0..of {
                for (i, _) in shard_points(&spec, shard, of) {
                    assert!(!seen[i], "point {i} assigned twice at of={of}");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "missing points at of={of}");
        }
    }

    #[test]
    fn fingerprints_separate_campaigns_and_shards() {
        let a = spec().fingerprint();
        let b = CampaignSpec {
            node: CampaignNode::Nm250,
            points: 25,
        }
        .fingerprint();
        let c = CampaignSpec {
            node: CampaignNode::Nm100,
            points: 26,
        }
        .fingerprint();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(shard_fingerprint(a, 0, 3), shard_fingerprint(a, 1, 3));
        assert_ne!(shard_fingerprint(a, 0, 3), shard_fingerprint(a, 0, 4));
        assert_ne!(shard_fingerprint(a, 0, 3), shard_fingerprint(b, 0, 3));
    }

    #[test]
    fn shard_split_is_deterministic_across_calls() {
        let spec = spec();
        assert_eq!(shard_points(&spec, 1, 3), shard_points(&spec, 1, 3));
    }
}
