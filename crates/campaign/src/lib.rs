//! `rlckit-campaign` — a supervised multi-process sharded campaign
//! driver with crash recovery and deterministic merge.
//!
//! A campaign (an inductance sweep of Figs. 4–8 at scale) is split into
//! `n` shards by a pure function of the campaign fingerprint
//! ([`grid`]); each shard runs in its own process, checkpointing every
//! point ([`shard`]); a supervisor relaunches crashed shards with a
//! bounded restart budget and kills hung ones on a progress-based
//! stall timeout ([`supervisor`]); and a strict, checksummed merge
//! combines the shard files into a CSV byte-identical to a
//! single-process run ([`merge`]).
//!
//! The determinism story is the whole point: shard assignment, shard
//! fingerprints, per-point arithmetic and the injected kill schedule
//! (`RLCKIT_SHARD_FAULTS=<seed>:<rate>[:abort|hang]`) are all pure
//! functions of stable identities (campaign fingerprint, grid index,
//! relaunch generation) — never of wall-clock time, PID, or execution
//! order. A campaign that crashed its way to completion produces the
//! same bytes as one that sailed through.
//!
//! ```no_run
//! use rlckit_campaign::grid::{CampaignNode, CampaignSpec};
//! use rlckit_campaign::solo_campaign;
//!
//! let spec = CampaignSpec { node: CampaignNode::Nm100, points: 25 };
//! let csv = solo_campaign(&spec, std::path::Path::new("campaign-dir")).unwrap();
//! print!("{csv}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod merge;
pub mod shard;
pub mod supervisor;

use std::collections::BTreeSet;
use std::path::Path;

use grid::CampaignSpec;
use merge::{merge_shards, render_csv, MergeError};

/// Runs the whole campaign in this process as a single shard (0 of 1)
/// and merges it — the reference output every sharded run must match
/// byte for byte. Structurally this *is* the sharded path with `n = 1`,
/// so the byte-identity guarantee is by construction, not coincidence.
///
/// # Errors
///
/// Checkpoint I/O failures from the shard run, or (not in practice) a
/// strict-merge refusal of the file it just wrote.
pub fn solo_campaign(spec: &CampaignSpec, dir: &Path) -> Result<String, SoloError> {
    shard::run_shard(spec, 0, 1, dir, 0).map_err(SoloError::Shard)?;
    let merged = merge_shards(spec, dir, 1, &BTreeSet::new()).map_err(SoloError::Merge)?;
    Ok(render_csv(spec, &merged))
}

/// Why [`solo_campaign`] failed.
#[derive(Debug)]
pub enum SoloError {
    /// The shard run failed (checkpoint I/O).
    Shard(rlckit_numeric::NumericError),
    /// The merge refused the shard file.
    Merge(MergeError),
}

impl std::fmt::Display for SoloError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Shard(e) => write!(f, "solo shard failed: {e}"),
            Self::Merge(e) => write!(f, "solo merge failed: {e}"),
        }
    }
}

impl std::error::Error for SoloError {}
