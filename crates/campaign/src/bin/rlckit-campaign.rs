//! `rlckit-campaign` — shard, merge, and supervise inductance-sweep
//! campaigns across processes.
//!
//! ```text
//! rlckit-campaign shard --dir DIR --index I --of N [--generation G] [--node NAME] [--points N]
//! rlckit-campaign merge --dir DIR --shards N --out CSV [--node NAME] [--points N]
//! rlckit-campaign run   --dir DIR --shards N --out CSV [supervision flags]
//! rlckit-campaign solo  --dir DIR --out CSV [--node NAME] [--points N]
//! ```
//!
//! `run` output is byte-identical to `solo` output for the same
//! campaign — including under injected shard crashes
//! (`RLCKIT_SHARD_FAULTS=<seed>:<rate>[:abort|hang]`), as long as no
//! shard exhausts its restart budget.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use rlckit_campaign::grid::{CampaignNode, CampaignSpec};
use rlckit_campaign::merge::{merge_shards, render_csv};
use rlckit_campaign::shard::run_shard;
use rlckit_campaign::solo_campaign;
use rlckit_campaign::supervisor::{supervise, SupervisorConfig};

const USAGE: &str = "usage: rlckit-campaign <shard|merge|run|solo> [options]

common options:
  --node <250nm|100nm|100nm_eps33>   technology node (default 100nm)
  --points <N>                       grid points (default 25)
  --dir <PATH>                       campaign directory (required)

shard: --index <I> --of <N> [--generation <G>]
merge: --shards <N> --out <CSV> [--degraded <I,J,...>]
run:   --shards <N> --out <CSV> [--restart-budget <B>] [--stall-timeout-ms <MS>]
       [--backoff-ms <MS>] [--backoff-cap-ms <MS>] [--poll-ms <MS>]
solo:  --out <CSV>
";

struct Args(Vec<String>);

impl Args {
    fn value(&mut self, flag: &str) -> Result<Option<String>, String> {
        if let Some(pos) = self.0.iter().position(|a| a == flag) {
            if pos + 1 >= self.0.len() {
                return Err(format!("{flag} needs a value"));
            }
            self.0.remove(pos);
            Ok(Some(self.0.remove(pos)))
        } else {
            Ok(None)
        }
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<Option<T>, String> {
        match self.value(flag)? {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("{flag}: cannot parse {raw:?}")),
        }
    }

    fn required<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        self.parsed(flag)?.ok_or_else(|| format!("{flag} is required"))
    }

    fn finish(self) -> Result<(), String> {
        if let Some(extra) = self.0.first() {
            return Err(format!("unrecognized argument {extra:?}"));
        }
        Ok(())
    }
}

fn campaign_spec(args: &mut Args) -> Result<CampaignSpec, String> {
    let node = match args.value("--node")? {
        None => CampaignNode::Nm100,
        Some(name) => CampaignNode::parse(&name)
            .ok_or_else(|| format!("--node: unknown node {name:?} (want 250nm, 100nm, or 100nm_eps33)"))?,
    };
    let points = args.parsed("--points")?.unwrap_or(25usize);
    if points == 0 {
        return Err("--points must be positive".to_string());
    }
    Ok(CampaignSpec { node, points })
}

fn write_out(path: &PathBuf, csv: &str) -> Result<(), String> {
    std::fs::write(path, csv).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn run() -> Result<(), String> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return Err(USAGE.to_string());
    }
    let command = argv.remove(0);
    let mut args = Args(argv);

    match command.as_str() {
        "shard" => {
            let spec = campaign_spec(&mut args)?;
            let dir: PathBuf = args.required("--dir")?;
            let index: usize = args.required("--index")?;
            let of: usize = args.required("--of")?;
            let generation: u32 = args.parsed("--generation")?.unwrap_or(0);
            if of == 0 || index >= of {
                return Err(format!("--index {index} --of {of}: need 0 <= index < of"));
            }
            args.finish()?;
            let summary = run_shard(&spec, index, of, &dir, generation)
                .map_err(|e| format!("shard {index} of {of} failed: {e}"))?;
            eprintln!(
                "shard {index} of {of} (generation {generation}): \
                 {} computed, {} resumed, {} failed",
                summary.computed, summary.resumed, summary.failed
            );
        }
        "merge" => {
            let spec = campaign_spec(&mut args)?;
            let dir: PathBuf = args.required("--dir")?;
            let shards: usize = args.required("--shards")?;
            let out: PathBuf = args.required("--out")?;
            let degraded: BTreeSet<usize> = match args.value("--degraded")? {
                None => BTreeSet::new(),
                Some(list) => list
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("--degraded: bad index {s:?}")))
                    .collect::<Result<_, _>>()?,
            };
            if shards == 0 {
                return Err("--shards must be positive".to_string());
            }
            args.finish()?;
            let merged = merge_shards(&spec, &dir, shards, &degraded)
                .map_err(|e| format!("merge refused: {e}"))?;
            write_out(&out, &render_csv(&spec, &merged))?;
            eprintln!(
                "merged {shards} shards into {} ({} points, {} unreached)",
                out.display(),
                spec.points,
                merged.unreached
            );
        }
        "run" => {
            let spec = campaign_spec(&mut args)?;
            let dir: PathBuf = args.required("--dir")?;
            let shards: usize = args.required("--shards")?;
            let out: PathBuf = args.required("--out")?;
            if shards == 0 {
                return Err("--shards must be positive".to_string());
            }
            let mut cfg = SupervisorConfig::new(shards);
            if let Some(budget) = args.parsed("--restart-budget")? {
                cfg.restart_budget = budget;
            }
            if let Some(ms) = args.parsed("--stall-timeout-ms")? {
                cfg.stall_timeout = Duration::from_millis(ms);
            }
            if let Some(ms) = args.parsed("--backoff-ms")? {
                cfg.backoff_base = Duration::from_millis(ms);
            }
            if let Some(ms) = args.parsed("--backoff-cap-ms")? {
                cfg.backoff_cap = Duration::from_millis(ms);
            }
            if let Some(ms) = args.parsed("--poll-ms")? {
                cfg.poll_interval = Duration::from_millis(ms);
            }
            args.finish()?;
            let exe = std::env::current_exe()
                .map_err(|e| format!("cannot locate own executable: {e}"))?;
            let outcome =
                supervise(&exe, &spec, &dir, &cfg).map_err(|e| format!("supervision failed: {e}"))?;
            write_out(&out, &outcome.csv)?;
            let relaunches: u32 = outcome.shards.iter().map(|s| s.relaunches).sum();
            let degraded = outcome.shards.iter().filter(|s| s.degraded).count();
            eprintln!(
                "campaign {} x {}: {shards} shards, {relaunches} relaunches, \
                 {degraded} degraded, {} unreached points -> {}",
                spec.node.name(),
                spec.points,
                outcome.unreached,
                out.display()
            );
        }
        "solo" => {
            let spec = campaign_spec(&mut args)?;
            let dir: PathBuf = args.required("--dir")?;
            let out: PathBuf = args.required("--out")?;
            args.finish()?;
            let csv = solo_campaign(&spec, &dir).map_err(|e| e.to_string())?;
            write_out(&out, &csv)?;
            eprintln!(
                "solo campaign {} x {} -> {}",
                spec.node.name(),
                spec.points,
                out.display()
            );
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
        }
        other => return Err(format!("unknown command {other:?}\n{USAGE}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let result = run();
    rlckit_trace::flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("rlckit-campaign: {message}");
            ExitCode::FAILURE
        }
    }
}
