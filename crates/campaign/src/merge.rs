//! Checksummed shard records and the deterministic merge.
//!
//! Each shard checkpoint line carries one grid point's outcome as
//! `[tag, attempts, …payload…, checksum]` words. The checksum word
//! hashes the point index together with every other word, so a smudged
//! byte anywhere in a record — even one that still parses as valid hex
//! and decodes to a plausible value — is detected at merge time instead
//! of silently changing the merged CSV.
//!
//! The merge itself is strict by default: it refuses mismatched
//! fingerprints, mangled lines, duplicate, foreign or missing point
//! indices, each with a structured [`MergeError`]. Shards that the
//! supervisor gave up on (restart budget exhausted) are read
//! *leniently* — whatever well-formed records they managed to write
//! are kept, and their remaining points become explicit `failed` rows.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use rlckit::checkpoint::{fingerprint64, parse_header_line, parse_point_line, CHECKPOINT_VERSION};
use rlckit::sweeps::{decode_sweep_point, encode_sweep_point, SweepPoint};
use rlckit::PointOutcome;

use crate::grid::{shard_file_name, shard_fingerprint, shard_points, CampaignSpec};

/// How a point's solve went, stripped of the value (mirrors the
/// variants of [`PointOutcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeTag {
    /// First attempt converged on the rigorous path.
    Converged,
    /// Converged after retries.
    Retried,
    /// Value came from the derivative-free fallback.
    Degraded,
    /// No value; the whole ladder failed.
    Failed,
}

impl OutcomeTag {
    /// The CSV spelling.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Converged => "converged",
            Self::Retried => "retried",
            Self::Degraded => "degraded",
            Self::Failed => "failed",
        }
    }

    fn to_word(self) -> u64 {
        match self {
            Self::Converged => 0,
            Self::Retried => 1,
            Self::Degraded => 2,
            Self::Failed => 3,
        }
    }

    fn from_word(word: u64) -> Option<Self> {
        match word {
            0 => Some(Self::Converged),
            1 => Some(Self::Retried),
            2 => Some(Self::Degraded),
            3 => Some(Self::Failed),
            _ => None,
        }
    }
}

/// One grid point's recorded outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// How the solve went.
    pub tag: OutcomeTag,
    /// Retries spent (see [`PointOutcome`]).
    pub attempts: u32,
    /// The solved point; `None` iff `tag` is [`OutcomeTag::Failed`].
    pub point: Option<SweepPoint>,
}

impl PointRecord {
    /// Strips a [`PointOutcome`] into its record form.
    #[must_use]
    pub fn from_outcome(outcome: PointOutcome<SweepPoint>) -> Self {
        match outcome {
            PointOutcome::Converged(point) => Self {
                tag: OutcomeTag::Converged,
                attempts: 0,
                point: Some(point),
            },
            PointOutcome::Retried { value, attempts } => Self {
                tag: OutcomeTag::Retried,
                attempts,
                point: Some(value),
            },
            PointOutcome::Degraded { value, attempts } => Self {
                tag: OutcomeTag::Degraded,
                attempts,
                point: Some(value),
            },
            PointOutcome::Failed { attempts, .. } => Self {
                tag: OutcomeTag::Failed,
                attempts,
                point: None,
            },
        }
    }

    /// An explicit failed row for a point a degraded shard never
    /// reached.
    #[must_use]
    pub fn failed_unreached() -> Self {
        Self {
            tag: OutcomeTag::Failed,
            attempts: 0,
            point: None,
        }
    }
}

/// Encodes a record as checkpoint words: `[tag, attempts, …9 point
/// words…, checksum]` (failed points omit the payload). The checksum
/// hashes the grid `index` plus every preceding word.
#[must_use]
pub fn encode_record(index: usize, record: &PointRecord) -> Vec<u64> {
    let mut words = vec![record.tag.to_word(), u64::from(record.attempts)];
    if let Some(point) = &record.point {
        words.extend(encode_sweep_point(point));
    }
    let checksum = fingerprint64(std::iter::once(index as u64).chain(words.iter().copied()));
    words.push(checksum);
    words
}

/// Decodes the words written by [`encode_record`]; `None` for any word
/// count, tag, payload or checksum that the encoder could not have
/// produced for this `index`.
#[must_use]
pub fn decode_record(index: usize, words: &[u64]) -> Option<PointRecord> {
    let (&checksum, body) = words.split_last()?;
    if checksum != fingerprint64(std::iter::once(index as u64).chain(body.iter().copied())) {
        return None;
    }
    let tag = OutcomeTag::from_word(*body.first()?)?;
    let attempts = u32::try_from(*body.get(1)?).ok()?;
    let point = match tag {
        OutcomeTag::Failed => {
            if body.len() != 2 {
                return None;
            }
            None
        }
        _ => Some(decode_sweep_point(body.get(2..)?)?),
    };
    Some(PointRecord {
        tag,
        attempts,
        point,
    })
}

/// Why a merge refused a set of shard files.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// A shard file could not be opened or read.
    Io {
        /// Shard index.
        shard: usize,
        /// Underlying error text.
        detail: String,
    },
    /// The shard's first line is not a well-formed checkpoint header.
    MangledHeader {
        /// Shard index.
        shard: usize,
    },
    /// The shard's header fingerprint (or version) belongs to a
    /// different campaign, shard slot, or shard count.
    FingerprintMismatch {
        /// Shard index.
        shard: usize,
        /// What this campaign expects.
        expected: u64,
        /// What the file carries.
        found: u64,
    },
    /// A non-header line is not a well-formed point line.
    MangledLine {
        /// Shard index.
        shard: usize,
        /// 1-based line number in the file.
        line: usize,
    },
    /// A point line parsed, but its words fail the record checksum or
    /// decode (a smudged byte, truncated payload, bad tag, …).
    CorruptRecord {
        /// Shard index.
        shard: usize,
        /// Grid index of the offending record.
        index: usize,
    },
    /// The shard recorded the same grid point twice.
    DuplicatePoint {
        /// Shard index.
        shard: usize,
        /// Grid index recorded twice.
        index: usize,
    },
    /// The shard recorded a grid point the split does not assign to it.
    ForeignPoint {
        /// Shard index.
        shard: usize,
        /// Grid index that belongs elsewhere.
        index: usize,
    },
    /// The shard is missing one of its assigned grid points (it never
    /// ran to completion).
    MissingPoint {
        /// Shard index.
        shard: usize,
        /// Grid index never recorded.
        index: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { shard, detail } => write!(f, "shard {shard}: io error: {detail}"),
            Self::MangledHeader { shard } => {
                write!(f, "shard {shard}: first line is not a checkpoint header")
            }
            Self::FingerprintMismatch {
                shard,
                expected,
                found,
            } => write!(
                f,
                "shard {shard}: fingerprint {found:#018x} does not match expected {expected:#018x} \
                 (different campaign, shard slot, or shard count)"
            ),
            Self::MangledLine { shard, line } => {
                write!(f, "shard {shard}: line {line} is not a well-formed point line")
            }
            Self::CorruptRecord { shard, index } => write!(
                f,
                "shard {shard}: record for point {index} fails its checksum or decode"
            ),
            Self::DuplicatePoint { shard, index } => {
                write!(f, "shard {shard}: point {index} recorded twice")
            }
            Self::ForeignPoint { shard, index } => write!(
                f,
                "shard {shard}: point {index} is not assigned to this shard"
            ),
            Self::MissingPoint { shard, index } => write!(
                f,
                "shard {shard}: assigned point {index} missing (shard incomplete)"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Reads one shard file strictly: every line must parse, every record
/// must checksum, the point set must be exactly the shard's assigned
/// slice. Returns the records keyed by grid index.
///
/// # Errors
///
/// Every way the file can deviate from what [`crate::shard::run_shard`]
/// writes maps to a distinct [`MergeError`] variant.
pub fn read_shard_strict(
    spec: &CampaignSpec,
    dir: &Path,
    shard: usize,
    of: usize,
) -> Result<BTreeMap<usize, PointRecord>, MergeError> {
    let expected = shard_fingerprint(spec.fingerprint(), shard, of);
    let path = dir.join(shard_file_name(shard, of));
    let file = File::open(&path).map_err(|e| MergeError::Io {
        shard,
        detail: format!("{}: {e}", path.display()),
    })?;
    let mut lines = BufReader::new(file).lines();
    let header = match lines.next() {
        Some(Ok(line)) => line,
        Some(Err(e)) => {
            return Err(MergeError::Io {
                shard,
                detail: e.to_string(),
            })
        }
        None => return Err(MergeError::MangledHeader { shard }),
    };
    match parse_header_line(&header) {
        Some((CHECKPOINT_VERSION, found)) if found == expected => {}
        Some((_, found)) => {
            return Err(MergeError::FingerprintMismatch {
                shard,
                expected,
                found,
            })
        }
        None => return Err(MergeError::MangledHeader { shard }),
    }

    let assigned: BTreeSet<usize> = shard_points(spec, shard, of)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    let mut records = BTreeMap::new();
    for (n, line) in lines.enumerate() {
        let line = line.map_err(|e| MergeError::Io {
            shard,
            detail: e.to_string(),
        })?;
        let Some((index, words)) = parse_point_line(&line) else {
            return Err(MergeError::MangledLine {
                shard,
                line: n + 2,
            });
        };
        if !assigned.contains(&index) {
            return Err(MergeError::ForeignPoint { shard, index });
        }
        let Some(record) = decode_record(index, &words) else {
            return Err(MergeError::CorruptRecord { shard, index });
        };
        if records.insert(index, record).is_some() {
            return Err(MergeError::DuplicatePoint { shard, index });
        }
    }
    if let Some(&index) = assigned.iter().find(|i| !records.contains_key(i)) {
        return Err(MergeError::MissingPoint { shard, index });
    }
    Ok(records)
}

/// Reads one shard file leniently, for shards the supervisor degraded:
/// mangled lines, corrupt records, foreign and duplicate points are
/// dropped (last well-formed write wins), a missing or mismatched file
/// yields no records at all. Never fails.
#[must_use]
pub fn read_shard_lenient(
    spec: &CampaignSpec,
    dir: &Path,
    shard: usize,
    of: usize,
) -> BTreeMap<usize, PointRecord> {
    let expected = shard_fingerprint(spec.fingerprint(), shard, of);
    let path = dir.join(shard_file_name(shard, of));
    let Ok(file) = File::open(&path) else {
        return BTreeMap::new();
    };
    let mut lines = BufReader::new(file).lines();
    match lines.next() {
        Some(Ok(header)) if parse_header_line(&header) == Some((CHECKPOINT_VERSION, expected)) => {}
        _ => return BTreeMap::new(),
    }
    let assigned: BTreeSet<usize> = shard_points(spec, shard, of)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    let mut records = BTreeMap::new();
    for line in lines.map_while(Result::ok) {
        if let Some((index, words)) = parse_point_line(&line) {
            if assigned.contains(&index) {
                if let Some(record) = decode_record(index, &words) {
                    records.insert(index, record);
                }
            }
        }
    }
    records
}

/// A merged campaign: one record per grid point, in index order.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedCampaign {
    /// Per-point records keyed by grid index; complete over the grid.
    pub records: BTreeMap<usize, PointRecord>,
    /// How many rows are `failed` placeholders for points that degraded
    /// shards never reached (0 for a fully healthy campaign).
    pub unreached: usize,
}

/// Merges `of` shard files from `dir` into one complete campaign.
///
/// Shards listed in `degraded` are read leniently and their unreached
/// points become explicit failed rows; every other shard must be
/// complete and pristine. The result is a pure function of the shard
/// file contents — merge order cannot affect it, so the merged CSV is
/// byte-identical to a single-process run of the same campaign.
///
/// # Errors
///
/// Any strict-read violation on a non-degraded shard.
pub fn merge_shards(
    spec: &CampaignSpec,
    dir: &Path,
    of: usize,
    degraded: &BTreeSet<usize>,
) -> Result<MergedCampaign, MergeError> {
    let mut records = BTreeMap::new();
    let mut unreached = 0usize;
    for shard in 0..of {
        if degraded.contains(&shard) {
            let partial = read_shard_lenient(spec, dir, shard, of);
            for (index, _) in shard_points(spec, shard, of) {
                let record = partial
                    .get(&index)
                    .cloned()
                    .unwrap_or_else(PointRecord::failed_unreached);
                if record.point.is_none() && !partial.contains_key(&index) {
                    unreached += 1;
                }
                records.insert(index, record);
            }
        } else {
            records.extend(read_shard_strict(spec, dir, shard, of)?);
        }
    }
    Ok(MergedCampaign { records, unreached })
}

/// Renders a merged campaign as the canonical CSV.
///
/// Float cells use Rust's shortest-round-trip `Display`, so the bytes
/// are an exact function of the solved bits; failed rows leave the
/// value cells empty. This is the byte-identity surface the kill/merge
/// property tests compare.
#[must_use]
pub fn render_csv(spec: &CampaignSpec, merged: &MergedCampaign) -> String {
    let grid = spec.grid();
    let mut out = String::from(
        "index,l_nh_per_mm,h_opt_m,k_opt,delay_s_per_m,h_ratio,k_ratio,l_crit_h_per_m,\
         damping,rc_design_delay_s_per_m,outcome,attempts\n",
    );
    for (index, l) in grid.iter().enumerate() {
        let record = merged
            .records
            .get(&index)
            .expect("merge produces a complete grid");
        let l_label = l.to_nano_per_milli();
        match &record.point {
            Some(p) => {
                let damping = match p.damping {
                    rlckit_tline::Damping::Overdamped => "overdamped",
                    rlckit_tline::Damping::CriticallyDamped => "critical",
                    rlckit_tline::Damping::Underdamped => "underdamped",
                };
                out.push_str(&format!(
                    "{index},{l_label},{},{},{},{},{},{},{damping},{},{},{}\n",
                    p.h_opt,
                    p.k_opt,
                    p.delay_per_length,
                    p.h_ratio,
                    p.k_ratio,
                    p.l_crit,
                    p.rc_design_delay_per_length,
                    record.tag.label(),
                    record.attempts,
                ));
            }
            None => out.push_str(&format!(
                "{index},{l_label},,,,,,,,,{},{}\n",
                record.tag.label(),
                record.attempts,
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_point() -> SweepPoint {
        SweepPoint {
            inductance: rlckit_units::HenriesPerMeter::from_nano_per_milli(1.8),
            h_opt: 1.25e-3,
            k_opt: 52.0,
            delay_per_length: 1.7e-5,
            h_ratio: 1.1,
            k_ratio: 0.9,
            l_crit: 2.1e-6,
            damping: rlckit_tline::Damping::Overdamped,
            rc_design_delay_per_length: 1.9e-5,
        }
    }

    #[test]
    fn record_round_trips_all_tags() {
        for (tag, attempts, point) in [
            (OutcomeTag::Converged, 0, Some(sample_point())),
            (OutcomeTag::Retried, 2, Some(sample_point())),
            (OutcomeTag::Degraded, 5, Some(sample_point())),
            (OutcomeTag::Failed, 3, None),
        ] {
            let record = PointRecord {
                tag,
                attempts,
                point,
            };
            let words = encode_record(7, &record);
            assert_eq!(decode_record(7, &words), Some(record));
        }
    }

    #[test]
    fn record_checksum_binds_the_index() {
        let record = PointRecord {
            tag: OutcomeTag::Converged,
            attempts: 0,
            point: Some(sample_point()),
        };
        let words = encode_record(7, &record);
        assert_eq!(decode_record(8, &words), None);
    }

    #[test]
    fn record_rejects_any_flipped_word_bit() {
        let record = PointRecord {
            tag: OutcomeTag::Retried,
            attempts: 1,
            point: Some(sample_point()),
        };
        let words = encode_record(3, &record);
        for i in 0..words.len() {
            let mut mutated = words.clone();
            mutated[i] ^= 1 << (i % 64);
            assert_eq!(decode_record(3, &mutated), None, "word {i} flip accepted");
        }
    }

    #[test]
    fn record_rejects_truncated_payload() {
        let record = PointRecord {
            tag: OutcomeTag::Converged,
            attempts: 0,
            point: Some(sample_point()),
        };
        let words = encode_record(0, &record);
        assert_eq!(decode_record(0, &words[..words.len() - 1]), None);
        assert_eq!(decode_record(0, &[]), None);
    }
}
