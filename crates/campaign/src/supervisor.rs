//! The multi-process campaign supervisor.
//!
//! `run --shards n` launches one `rlckit-campaign shard` child per
//! shard and babysits them to completion:
//!
//! * **Heartbeats are progress, not liveness.** A shard flushes its
//!   checkpoint after every point, so the supervisor watches the file
//!   for growth. A child that is alive but not appending (an injected
//!   hang, a wedged solve) trips the stall timeout and is killed — a
//!   responsive-looking PID is not evidence of work.
//! * **Crashes are relaunched with backoff.** Each death schedules a
//!   relaunch at `backoff_base × 2^(relaunches−1)` (capped), tracked
//!   per shard as a deadline so one shard's backoff never blocks
//!   polling the others. The relaunch generation is passed to the
//!   child, which keys the `RLCKIT_SHARD_FAULTS` schedule on it — so
//!   an injected crash loop converges instead of re-killing the same
//!   point forever.
//! * **The restart budget bounds the tantrum.** A shard that dies more
//!   than `restart_budget` times is *degraded*: its checkpoint is
//!   merged leniently and its unreached points become explicit
//!   `failed` rows, so the campaign always terminates with a complete
//!   (if honest about its holes) CSV.
//!
//! Every lifecycle step lands in the flight recorder:
//! `campaign.shard.{launched,relaunched,stalled,completed,degraded}`
//! counters plus one [`EventKind::Outcome`] event per step with
//! `trace_id = shard` and `value = generation`.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rlckit_trace::events::EventKind;
use rlckit_trace::{counter, event};

use crate::grid::{shard_file_name, CampaignSpec};
use crate::merge::{merge_shards, render_csv, MergeError};

/// Supervision knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Number of shard processes.
    pub shards: usize,
    /// Relaunches allowed per shard before it is degraded.
    pub restart_budget: u32,
    /// How long a live child may go without growing its checkpoint
    /// before it is declared hung and killed.
    pub stall_timeout: Duration,
    /// First relaunch delay; doubles per relaunch of the same shard.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Supervisor poll cadence.
    pub poll_interval: Duration,
}

impl SupervisorConfig {
    /// Defaults for `shards` shard processes.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            restart_budget: 5,
            stall_timeout: Duration::from_secs(30),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            poll_interval: Duration::from_millis(10),
        }
    }

    fn backoff(&self, relaunches: u32) -> Duration {
        let doublings = relaunches.saturating_sub(1).min(20);
        self.backoff_base
            .saturating_mul(1 << doublings)
            .min(self.backoff_cap)
    }
}

/// One shard's fate, as reported by [`supervise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Relaunches spent (0 = the first launch sufficed).
    pub relaunches: u32,
    /// Whether the shard exhausted its restart budget.
    pub degraded: bool,
}

/// A completed supervised campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRun {
    /// The merged canonical CSV.
    pub csv: String,
    /// Per-shard fates.
    pub shards: Vec<ShardStatus>,
    /// Grid points recorded as failed because a degraded shard never
    /// reached them.
    pub unreached: usize,
}

/// Why a supervised run failed outright (degradation is not failure).
#[derive(Debug)]
pub enum SuperviseError {
    /// A child could not be spawned at all (bad executable path).
    Spawn(String),
    /// The final merge refused the shard files.
    Merge(MergeError),
}

impl std::fmt::Display for SuperviseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Spawn(detail) => write!(f, "cannot spawn shard process: {detail}"),
            Self::Merge(e) => write!(f, "merge after supervision failed: {e}"),
        }
    }
}

impl std::error::Error for SuperviseError {}

impl From<MergeError> for SuperviseError {
    fn from(e: MergeError) -> Self {
        Self::Merge(e)
    }
}

struct Slot {
    shard: usize,
    checkpoint: PathBuf,
    child: Option<Child>,
    relaunches: u32,
    restart_at: Option<Instant>,
    last_len: u64,
    last_progress: Instant,
    done: bool,
    degraded: bool,
}

impl Slot {
    fn finished(&self) -> bool {
        self.done || self.degraded
    }
}

fn spawn_shard(
    exe: &Path,
    spec: &CampaignSpec,
    dir: &Path,
    shard: usize,
    of: usize,
    generation: u32,
) -> Result<Child, SuperviseError> {
    Command::new(exe)
        .arg("shard")
        .args(["--node", spec.node.name()])
        .args(["--points", &spec.points.to_string()])
        .args(["--index", &shard.to_string()])
        .args(["--of", &of.to_string()])
        .args(["--generation", &generation.to_string()])
        .arg("--dir")
        .arg(dir)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| SuperviseError::Spawn(format!("{}: {e}", exe.display())))
}

/// Supervises `cfg.shards` child processes of `exe` (the
/// `rlckit-campaign` binary itself) to a complete merged campaign.
///
/// # Errors
///
/// [`SuperviseError::Spawn`] if children cannot be started at all;
/// [`SuperviseError::Merge`] if a shard that claimed success left a
/// file the strict merge refuses.
pub fn supervise(
    exe: &Path,
    spec: &CampaignSpec,
    dir: &Path,
    cfg: &SupervisorConfig,
) -> Result<CampaignRun, SuperviseError> {
    assert!(cfg.shards > 0, "need at least one shard");
    std::fs::create_dir_all(dir)
        .map_err(|e| SuperviseError::Spawn(format!("campaign dir {}: {e}", dir.display())))?;
    let of = cfg.shards;
    let mut slots: Vec<Slot> = (0..of)
        .map(|shard| Slot {
            shard,
            checkpoint: dir.join(shard_file_name(shard, of)),
            child: None,
            relaunches: 0,
            restart_at: None,
            last_len: 0,
            last_progress: Instant::now(),
            done: false,
            degraded: false,
        })
        .collect();

    for slot in &mut slots {
        let child = spawn_shard(exe, spec, dir, slot.shard, of, 0)?;
        counter!("campaign.shard.launched").incr();
        event!(slot.shard as u64, "campaign.shard.launched", EventKind::Outcome, 0);
        slot.child = Some(child);
        slot.last_progress = Instant::now();
    }

    while slots.iter().any(|s| !s.finished()) {
        for slot in &mut slots {
            if slot.finished() {
                continue;
            }
            let generation = slot.relaunches;
            match &mut slot.child {
                Some(child) => match child.try_wait() {
                    Ok(Some(status)) => {
                        slot.child = None;
                        if status.success() {
                            slot.done = true;
                            counter!("campaign.shard.completed").incr();
                            event!(
                                slot.shard as u64,
                                "campaign.shard.completed",
                                EventKind::Outcome,
                                u64::from(generation)
                            );
                        } else {
                            on_death(slot, cfg);
                        }
                    }
                    Ok(None) => {
                        // Alive: require checkpoint movement within the
                        // stall window. Any size change counts — a
                        // relaunch rewrites (and briefly shrinks) the
                        // file before growing it again.
                        let len = std::fs::metadata(&slot.checkpoint)
                            .map(|m| m.len())
                            .unwrap_or(0);
                        if len != slot.last_len {
                            slot.last_len = len;
                            slot.last_progress = Instant::now();
                        } else if slot.last_progress.elapsed() > cfg.stall_timeout {
                            counter!("campaign.shard.stalled").incr();
                            event!(
                                slot.shard as u64,
                                "campaign.shard.stalled",
                                EventKind::Outcome,
                                u64::from(generation)
                            );
                            let _ = child.kill();
                            let _ = child.wait();
                            slot.child = None;
                            on_death(slot, cfg);
                        }
                    }
                    Err(_) => {
                        let _ = child.kill();
                        let _ = child.wait();
                        slot.child = None;
                        on_death(slot, cfg);
                    }
                },
                None => {
                    if slot.restart_at.is_some_and(|at| Instant::now() >= at) {
                        slot.restart_at = None;
                        match spawn_shard(exe, spec, dir, slot.shard, of, slot.relaunches) {
                            Ok(child) => {
                                counter!("campaign.shard.relaunched").incr();
                                event!(
                                    slot.shard as u64,
                                    "campaign.shard.relaunched",
                                    EventKind::Outcome,
                                    u64::from(slot.relaunches)
                                );
                                slot.child = Some(child);
                                slot.last_progress = Instant::now();
                            }
                            Err(_) => on_death(slot, cfg),
                        }
                    }
                }
            }
        }
        if slots.iter().any(|s| !s.finished()) {
            std::thread::sleep(cfg.poll_interval);
        }
    }

    let degraded: BTreeSet<usize> = slots
        .iter()
        .filter(|s| s.degraded)
        .map(|s| s.shard)
        .collect();
    let merged = merge_shards(spec, dir, of, &degraded)?;
    Ok(CampaignRun {
        csv: render_csv(spec, &merged),
        unreached: merged.unreached,
        shards: slots
            .iter()
            .map(|s| ShardStatus {
                shard: s.shard,
                relaunches: s.relaunches,
                degraded: s.degraded,
            })
            .collect(),
    })
}

fn on_death(slot: &mut Slot, cfg: &SupervisorConfig) {
    if slot.relaunches >= cfg.restart_budget {
        slot.degraded = true;
        counter!("campaign.shard.degraded").incr();
        event!(
            slot.shard as u64,
            "campaign.shard.degraded",
            EventKind::Outcome,
            u64::from(slot.relaunches)
        );
    } else {
        slot.relaunches += 1;
        slot.restart_at = Some(Instant::now() + cfg.backoff(slot.relaunches));
    }
}
