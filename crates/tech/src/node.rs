//! Technology-node definitions (the paper's Table 1).

use rlckit_extract::geometry::WireGeometry;
use rlckit_units::{Farads, FaradsPerMeter, HenriesPerMeter, Meters, Ohms, OhmsPerMeter, Volts};

/// Per-unit-length electrical parameters of a routed line.
///
/// The inductance is *not* part of this struct: the paper treats `l` as a
/// swept, pattern-dependent parameter bounded by
/// [`LineParams::worst_case_inductance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineParams {
    /// Resistance per unit length.
    pub resistance: OhmsPerMeter,
    /// Capacitance per unit length.
    pub capacitance: FaradsPerMeter,
}

impl LineParams {
    /// Creates line parameters from per-unit-length resistance and
    /// capacitance.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive.
    #[must_use]
    pub fn new(resistance: OhmsPerMeter, capacitance: FaradsPerMeter) -> Self {
        assert!(resistance.get() > 0.0, "resistance must be positive");
        assert!(capacitance.get() > 0.0, "capacitance must be positive");
        Self {
            resistance,
            capacitance,
        }
    }

    /// The paper's worst-case line inductance bound (§3.1): both nodes'
    /// top metal stays below 5 nH/mm for all practical return paths.
    #[must_use]
    pub fn worst_case_inductance(&self) -> HenriesPerMeter {
        HenriesPerMeter::from_nano_per_milli(5.0)
    }
}

/// Linearized electrical model of a minimum-sized repeater: output
/// resistance `r_s`, output parasitic capacitance `c_p` and input
/// capacitance `c_0` (paper §2.1).
///
/// A repeater of size `k` has `R_S = r_s/k`, `C_P = c_p·k`, `C_L = c_0·k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverParams {
    /// Output resistance of the minimum-sized repeater.
    pub output_resistance: Ohms,
    /// Output parasitic capacitance of the minimum-sized repeater.
    pub parasitic_capacitance: Farads,
    /// Input capacitance of the minimum-sized repeater.
    pub input_capacitance: Farads,
}

impl DriverParams {
    /// Creates driver parameters.
    ///
    /// # Panics
    ///
    /// Panics if the resistance or input capacitance is not strictly
    /// positive, or the parasitic capacitance is negative.
    #[must_use]
    pub fn new(
        output_resistance: Ohms,
        parasitic_capacitance: Farads,
        input_capacitance: Farads,
    ) -> Self {
        assert!(
            output_resistance.get() > 0.0,
            "output resistance must be positive"
        );
        assert!(
            parasitic_capacitance.get() >= 0.0,
            "parasitic capacitance must be non-negative"
        );
        assert!(
            input_capacitance.get() > 0.0,
            "input capacitance must be positive"
        );
        Self {
            output_resistance,
            parasitic_capacitance,
            input_capacitance,
        }
    }

    /// Output resistance of a `size`-times-minimum repeater (`r_s/k`).
    ///
    /// # Panics
    ///
    /// Panics if `size` is not strictly positive.
    #[must_use]
    pub fn sized_output_resistance(&self, size: f64) -> Ohms {
        assert!(size > 0.0, "repeater size must be positive");
        self.output_resistance / size
    }

    /// Output parasitic capacitance of a `size`-times-minimum repeater
    /// (`c_p·k`).
    #[must_use]
    pub fn sized_parasitic_capacitance(&self, size: f64) -> Farads {
        self.parasitic_capacitance * size
    }

    /// Input capacitance of a `size`-times-minimum repeater (`c_0·k`).
    #[must_use]
    pub fn sized_input_capacitance(&self, size: f64) -> Farads {
        self.input_capacitance * size
    }

    /// Intrinsic delay scale `r_s·(c_0 + c_p)` of the technology — the
    /// quantity whose shrink with scaling the paper identifies as the root
    /// cause of growing inductance susceptibility.
    #[must_use]
    pub fn intrinsic_delay(&self) -> rlckit_units::Seconds {
        self.output_resistance * (self.input_capacitance + self.parasitic_capacitance)
    }
}

/// A technology node: interconnect stack plus the calibrated driver.
///
/// # Examples
///
/// ```
/// use rlckit_tech::TechNode;
///
/// let node = TechNode::nm250();
/// // r_s·(c₀+c_p) shrinks by >3× from 250 nm to 100 nm — the scaling
/// // argument at the heart of the paper.
/// let ratio = node.driver().intrinsic_delay()
///     / TechNode::nm100().driver().intrinsic_delay();
/// assert!(ratio > 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TechNode {
    name: String,
    metal_layer: String,
    line: LineParams,
    driver: DriverParams,
    wire: WireGeometry,
    relative_permittivity: f64,
    supply_voltage: Volts,
}

impl TechNode {
    /// The 250 nm node of Table 1 (metal 6, copper, NTRS 1997).
    #[must_use]
    pub fn nm250() -> Self {
        Self {
            name: "250nm".to_string(),
            metal_layer: "M6".to_string(),
            line: LineParams::new(
                OhmsPerMeter::from_ohm_per_milli(4.4),
                FaradsPerMeter::from_pico(203.50),
            ),
            driver: DriverParams::new(
                Ohms::from_kilo(11.784),
                Farads::from_femto(6.2474),
                Farads::from_femto(1.6314),
            ),
            wire: WireGeometry::new(
                Meters::from_micro(2.0),
                Meters::from_micro(2.5),
                Meters::from_micro(2.0),
                Meters::from_micro(13.9),
            ),
            relative_permittivity: 3.3,
            supply_voltage: Volts::new(2.5),
        }
    }

    /// The 100 nm node of Table 1 (metal 8, copper, NTRS 1997).
    #[must_use]
    pub fn nm100() -> Self {
        Self {
            name: "100nm".to_string(),
            metal_layer: "M8".to_string(),
            line: LineParams::new(
                OhmsPerMeter::from_ohm_per_milli(4.4),
                FaradsPerMeter::from_pico(123.33),
            ),
            driver: DriverParams::new(
                Ohms::from_kilo(7.534),
                Farads::from_femto(3.68),
                Farads::from_femto(0.758),
            ),
            wire: WireGeometry::new(
                Meters::from_micro(2.0),
                Meters::from_micro(2.5),
                Meters::from_micro(2.0),
                Meters::from_micro(15.4),
            ),
            relative_permittivity: 2.0,
            supply_voltage: Volts::new(1.2),
        }
    }

    /// The 100 nm node with the 250 nm node's dielectric, so that `c` is
    /// identical across nodes — the control experiment of Fig. 7 that
    /// isolates driver scaling as the cause of inductance susceptibility.
    #[must_use]
    pub fn nm100_with_250nm_dielectric() -> Self {
        let mut node = Self::nm100();
        node.name = "100nm(εr=3.3)".to_string();
        node.relative_permittivity = 3.3;
        node.line = LineParams::new(
            OhmsPerMeter::from_ohm_per_milli(4.4),
            FaradsPerMeter::from_pico(203.50),
        );
        node
    }

    /// Both Table 1 nodes, in the paper's order.
    #[must_use]
    pub fn table1() -> Vec<Self> {
        vec![Self::nm250(), Self::nm100()]
    }

    /// Creates a custom node (e.g. from [`crate::scaling`] or user data).
    #[must_use]
    pub fn custom(
        name: impl Into<String>,
        metal_layer: impl Into<String>,
        line: LineParams,
        driver: DriverParams,
        wire: WireGeometry,
        relative_permittivity: f64,
        supply_voltage: Volts,
    ) -> Self {
        Self {
            name: name.into(),
            metal_layer: metal_layer.into(),
            line,
            driver,
            wire,
            relative_permittivity,
            supply_voltage,
        }
    }

    /// Node name (e.g. `"250nm"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Top-level metal layer name (e.g. `"M6"`).
    #[must_use]
    pub fn metal_layer(&self) -> &str {
        &self.metal_layer
    }

    /// Per-unit-length line parameters of the top-level metal.
    #[must_use]
    pub fn line(&self) -> LineParams {
        self.line
    }

    /// Calibrated minimum-sized-repeater parameters.
    #[must_use]
    pub fn driver(&self) -> DriverParams {
        self.driver
    }

    /// Top-level-metal wire cross-section geometry.
    #[must_use]
    pub fn wire(&self) -> WireGeometry {
        self.wire
    }

    /// Interlevel-dielectric relative permittivity.
    #[must_use]
    pub fn relative_permittivity(&self) -> f64 {
        self.relative_permittivity
    }

    /// Supply voltage (NTRS 1997 targets: 2.5 V at 250 nm, 1.2 V at
    /// 100 nm).
    #[must_use]
    pub fn supply_voltage(&self) -> Volts {
        self.supply_voltage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_round_trip() {
        let n = TechNode::nm250();
        assert_eq!(n.metal_layer(), "M6");
        assert!((n.driver().output_resistance.get() - 11784.0).abs() < 1e-6);
        assert!((n.driver().input_capacitance.get() - 1.6314e-15).abs() < 1e-21);
        assert!((n.driver().parasitic_capacitance.get() - 6.2474e-15).abs() < 1e-21);
        assert!((n.supply_voltage().get() - 2.5).abs() < 1e-12);

        let n = TechNode::nm100();
        assert_eq!(n.metal_layer(), "M8");
        assert!((n.driver().output_resistance.get() - 7534.0).abs() < 1e-6);
        assert!((n.relative_permittivity() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sized_driver_parameters_scale_correctly() {
        let d = TechNode::nm250().driver();
        let k = 578.0;
        assert!((d.sized_output_resistance(k).get() - 11784.0 / k).abs() < 1e-9);
        assert!((d.sized_input_capacitance(k).get() - 1.6314e-15 * k).abs() < 1e-24);
        assert!((d.sized_parasitic_capacitance(k).get() - 6.2474e-15 * k).abs() < 1e-24);
    }

    #[test]
    fn intrinsic_delay_shrinks_with_scaling() {
        let d250 = TechNode::nm250().driver().intrinsic_delay();
        let d100 = TechNode::nm100().driver().intrinsic_delay();
        // 11.784kΩ·7.8788fF ≈ 92.9 ps vs 7.534kΩ·4.438fF ≈ 33.4 ps.
        assert!((d250.get() - 92.85e-12).abs() < 0.2e-12);
        assert!((d100.get() - 33.43e-12).abs() < 0.2e-12);
    }

    #[test]
    fn identical_c_variant_only_changes_dielectric() {
        let base = TechNode::nm100();
        let ctrl = TechNode::nm100_with_250nm_dielectric();
        assert_eq!(ctrl.driver(), base.driver());
        assert_eq!(ctrl.supply_voltage(), base.supply_voltage());
        assert!((ctrl.line().capacitance.to_pico() - 203.5).abs() < 1e-9);
    }

    #[test]
    fn worst_case_inductance_is_five_nh_per_mm() {
        let n = TechNode::nm250();
        assert!((n.line().worst_case_inductance().to_nano_per_milli() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_rejected() {
        let _ = LineParams::new(OhmsPerMeter::ZERO, FaradsPerMeter::from_pico(100.0));
    }
}
