//! Roadmap interpolation between the paper's two technology nodes.
//!
//! The paper evaluates exactly two nodes (250 nm and 100 nm) and argues
//! that the trend between them — shrinking driver resistance and
//! capacitance with near-constant top-metal geometry — is what makes
//! scaled designs inductance-susceptible. This module interpolates each
//! electrical parameter geometrically in feature size so the examples and
//! benches can sweep the *trajectory*, not just its endpoints.

use rlckit_units::{Farads, FaradsPerMeter, Ohms, OhmsPerMeter, Volts};

use crate::node::{DriverParams, LineParams, TechNode};

/// Log–log interpolation of `value(feature)` between two anchors.
fn geometric_interp(feature: f64, f_a: f64, v_a: f64, f_b: f64, v_b: f64) -> f64 {
    let t = (feature.ln() - f_a.ln()) / (f_b.ln() - f_a.ln());
    (v_a.ln() + t * (v_b.ln() - v_a.ln())).exp()
}

/// Builds an interpolated (or mildly extrapolated) technology node at
/// `feature_nm` nanometres from the Table 1 anchors.
///
/// The top-metal wire geometry is held at the Table 1 cross-section, as
/// in the paper ("the top layer metal geometry is identical for both
/// technologies").
///
/// # Panics
///
/// Panics if `feature_nm` is outside the `[70, 350]` nm range where the
/// NTRS-1997 trend data is meaningful.
///
/// # Examples
///
/// ```
/// use rlckit_tech::scaling::interpolate_node;
///
/// let node = interpolate_node(180.0);
/// let r250 = rlckit_tech::TechNode::nm250().driver().output_resistance.get();
/// let r100 = rlckit_tech::TechNode::nm100().driver().output_resistance.get();
/// let rs = node.driver().output_resistance.get();
/// assert!(rs < r250 && rs > r100);
/// ```
#[must_use]
pub fn interpolate_node(feature_nm: f64) -> TechNode {
    assert!(
        (70.0..=350.0).contains(&feature_nm),
        "feature size outside the supported NTRS-1997 trend range"
    );
    let a = TechNode::nm250();
    let b = TechNode::nm100();
    let interp = |va: f64, vb: f64| geometric_interp(feature_nm, 250.0, va, 100.0, vb);

    let line = LineParams::new(
        OhmsPerMeter::new(interp(
            a.line().resistance.get(),
            b.line().resistance.get(),
        )),
        FaradsPerMeter::new(interp(
            a.line().capacitance.get(),
            b.line().capacitance.get(),
        )),
    );
    let driver = DriverParams::new(
        Ohms::new(interp(
            a.driver().output_resistance.get(),
            b.driver().output_resistance.get(),
        )),
        Farads::new(interp(
            a.driver().parasitic_capacitance.get(),
            b.driver().parasitic_capacitance.get(),
        )),
        Farads::new(interp(
            a.driver().input_capacitance.get(),
            b.driver().input_capacitance.get(),
        )),
    );
    let eps = interp(a.relative_permittivity(), b.relative_permittivity());
    let vdd = Volts::new(interp(
        a.supply_voltage().get(),
        b.supply_voltage().get(),
    ));
    TechNode::custom(
        format!("{feature_nm:.0}nm(interp)"),
        "top",
        line,
        driver,
        a.wire(),
        eps,
        vdd,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_reproduce_anchors() {
        let n = interpolate_node(250.0);
        let a = TechNode::nm250();
        assert!(
            (n.driver().output_resistance.get() - a.driver().output_resistance.get()).abs()
                < 1e-6
        );
        assert!((n.supply_voltage().get() - 2.5).abs() < 1e-9);

        let n = interpolate_node(100.0);
        let b = TechNode::nm100();
        assert!(
            (n.driver().input_capacitance.get() - b.driver().input_capacitance.get()).abs()
                < 1e-21
        );
    }

    #[test]
    fn interpolation_is_monotone_in_feature_size() {
        let mut last_rs = f64::INFINITY;
        let mut last_c0 = f64::INFINITY;
        for f in [250.0, 220.0, 180.0, 150.0, 130.0, 100.0] {
            let n = interpolate_node(f);
            let rs = n.driver().output_resistance.get();
            let c0 = n.driver().input_capacitance.get();
            assert!(rs <= last_rs, "rs not monotone at {f}");
            assert!(c0 <= last_c0, "c0 not monotone at {f}");
            last_rs = rs;
            last_c0 = c0;
        }
    }

    #[test]
    fn intrinsic_delay_shrinks_along_trajectory() {
        let d180 = interpolate_node(180.0).driver().intrinsic_delay();
        let d130 = interpolate_node(130.0).driver().intrinsic_delay();
        assert!(d130.get() < d180.get());
    }

    #[test]
    #[should_panic(expected = "feature size outside")]
    fn out_of_range_rejected() {
        let _ = interpolate_node(45.0);
    }
}
