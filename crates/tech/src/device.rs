//! Level-1 MOSFET parameters derived from the linearized driver model.
//!
//! The paper's analysis assumes the repeater is linear: output resistance
//! `r_s/k`, output parasitic `c_p·k`, input capacitance `c_0·k` (§2.1).
//! The circuit-simulator substrate needs nonlinear devices (the
//! ring-oscillator failure study hinges on the inverter *threshold*), so
//! this module constructs Shichman–Hodges (SPICE level-1) parameters whose
//! *linearized* behaviour matches the calibrated driver:
//!
//! * the equivalent switching resistance `R_eq ≈ 0.75·V_DD/I_dsat` of the
//!   minimum device equals `r_s`;
//! * the gate capacitance equals `c_0`, the drain junction capacitance
//!   equals `c_p`;
//! * the threshold sits at `vt_fraction·V_DD` (default 0.25, the NTRS
//!   ballpark) — the knob that decides when an undershoot falsely
//!   switches a gate (§3.3.1).

use rlckit_units::{Farads, Ohms, Volts};

use crate::node::{DriverParams, TechNode};

/// Shichman–Hodges parameters of the *minimum-sized* device pair of an
/// inverter (NMOS and PMOS are taken symmetric so the switching threshold
/// is `V_DD/2`).
///
/// # Examples
///
/// ```
/// use rlckit_tech::device::MosParams;
/// use rlckit_tech::TechNode;
///
/// let node = TechNode::nm100();
/// let mos = MosParams::for_node(&node);
/// // The linearization must reproduce the calibrated r_s.
/// let r_eq = mos.equivalent_resistance(node.supply_voltage());
/// assert!((r_eq.get() / node.driver().output_resistance.get() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// Threshold voltage magnitude (shared by NMOS/PMOS).
    threshold: Volts,
    /// Transconductance `β = k'·W/L` of the minimum device, in A/V².
    beta: f64,
    /// Channel-length modulation, in 1/V.
    lambda: f64,
    /// Gate capacitance of the minimum inverter (`c_0`).
    gate_capacitance: Farads,
    /// Drain/output parasitic capacitance of the minimum inverter (`c_p`).
    drain_capacitance: Farads,
}

impl MosParams {
    /// Default threshold as a fraction of the supply.
    pub const DEFAULT_VT_FRACTION: f64 = 0.25;

    /// Builds parameters for a technology node with the default
    /// threshold fraction.
    #[must_use]
    pub fn for_node(node: &TechNode) -> Self {
        Self::from_driver(
            node.driver(),
            node.supply_voltage(),
            Self::DEFAULT_VT_FRACTION,
        )
    }

    /// Builds parameters from a driver model, supply voltage and a
    /// threshold fraction `vt_fraction ∈ (0, 0.5)`.
    ///
    /// # Panics
    ///
    /// Panics if `vt_fraction` is outside `(0, 0.5)`.
    #[must_use]
    pub fn from_driver(driver: DriverParams, vdd: Volts, vt_fraction: f64) -> Self {
        assert!(
            vt_fraction > 0.0 && vt_fraction < 0.5,
            "threshold fraction must be in (0, 0.5)"
        );
        let vt = vdd.get() * vt_fraction;
        let overdrive = vdd.get() - vt;
        // R_eq = 0.75·V_DD/I_dsat with I_dsat = (β/2)·(V_DD − V_T)² ⇒
        // β = 1.5·V_DD / (r_s·(V_DD − V_T)²).
        let beta = 1.5 * vdd.get() / (driver.output_resistance.get() * overdrive * overdrive);
        Self {
            threshold: Volts::new(vt),
            beta,
            lambda: 0.05,
            gate_capacitance: driver.input_capacitance,
            drain_capacitance: driver.parasitic_capacitance,
        }
    }

    /// Threshold voltage magnitude.
    #[must_use]
    pub fn threshold(&self) -> Volts {
        self.threshold
    }

    /// Minimum-device transconductance `β` in A/V².
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Channel-length modulation in 1/V.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Gate capacitance of the minimum inverter.
    #[must_use]
    pub fn gate_capacitance(&self) -> Farads {
        self.gate_capacitance
    }

    /// Drain parasitic capacitance of the minimum inverter.
    #[must_use]
    pub fn drain_capacitance(&self) -> Farads {
        self.drain_capacitance
    }

    /// Saturation current of the minimum device at full gate drive.
    #[must_use]
    pub fn saturation_current(&self, vdd: Volts) -> f64 {
        let ov = vdd.get() - self.threshold.get();
        0.5 * self.beta * ov * ov
    }

    /// Equivalent switching resistance `0.75·V_DD/I_dsat` of the minimum
    /// device — matches the calibrated `r_s` by construction.
    #[must_use]
    pub fn equivalent_resistance(&self, vdd: Volts) -> Ohms {
        Ohms::new(0.75 * vdd.get() / self.saturation_current(vdd))
    }

    /// Shichman–Hodges drain current of an NMOS of `size` × minimum, with
    /// channel-length modulation. `vgs`/`vds` in volts, result in amperes
    /// (non-negative; reverse conduction is handled by the caller via
    /// source/drain swap).
    #[must_use]
    pub fn nmos_current(&self, size: f64, vgs: f64, vds: f64) -> f64 {
        debug_assert!(vds >= 0.0, "caller must orient vds >= 0");
        let vov = vgs - self.threshold.get();
        if vov <= 0.0 {
            return 0.0;
        }
        let beta = self.beta * size;
        let clm = 1.0 + self.lambda * vds;
        if vds < vov {
            beta * (vov - 0.5 * vds) * vds * clm
        } else {
            0.5 * beta * vov * vov * clm
        }
    }

    /// Derivatives `(dI/dVgs, dI/dVds)` of [`MosParams::nmos_current`],
    /// needed by the simulator's Newton iteration.
    #[must_use]
    pub fn nmos_derivatives(&self, size: f64, vgs: f64, vds: f64) -> (f64, f64) {
        debug_assert!(vds >= 0.0, "caller must orient vds >= 0");
        let vov = vgs - self.threshold.get();
        if vov <= 0.0 {
            return (0.0, 0.0);
        }
        let beta = self.beta * size;
        let clm = 1.0 + self.lambda * vds;
        if vds < vov {
            let gm = beta * vds * clm;
            let gds = beta * ((vov - vds) * clm + (vov - 0.5 * vds) * vds * self.lambda);
            (gm, gds)
        } else {
            let gm = beta * vov * clm;
            let gds = 0.5 * beta * vov * vov * self.lambda;
            (gm, gds)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> (MosParams, Volts) {
        let node = TechNode::nm250();
        (MosParams::for_node(&node), node.supply_voltage())
    }

    #[test]
    fn equivalent_resistance_matches_calibrated_rs() {
        for node in [TechNode::nm250(), TechNode::nm100()] {
            let mos = MosParams::for_node(&node);
            let r = mos.equivalent_resistance(node.supply_voltage());
            assert!(
                (r.get() / node.driver().output_resistance.get() - 1.0).abs() < 1e-12,
                "{}",
                node.name()
            );
        }
    }

    #[test]
    fn cutoff_below_threshold() {
        let (mos, _) = params();
        assert_eq!(mos.nmos_current(1.0, mos.threshold().get() - 0.01, 1.0), 0.0);
        assert_eq!(mos.nmos_derivatives(1.0, 0.0, 1.0), (0.0, 0.0));
    }

    #[test]
    fn current_is_continuous_at_saturation_boundary() {
        let (mos, vdd) = params();
        let vgs = vdd.get();
        let vov = vgs - mos.threshold().get();
        let below = mos.nmos_current(1.0, vgs, vov - 1e-9);
        let above = mos.nmos_current(1.0, vgs, vov + 1e-9);
        assert!((below - above).abs() / above < 1e-6);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let (mos, vdd) = params();
        let cases = [
            (vdd.get(), 0.3),          // triode
            (vdd.get(), vdd.get()),    // saturation
            (0.8 * vdd.get(), 0.1),    // shallow triode
        ];
        for (vgs, vds) in cases {
            let (gm, gds) = mos.nmos_derivatives(37.0, vgs, vds);
            let eps = 1e-7;
            let gm_fd = (mos.nmos_current(37.0, vgs + eps, vds)
                - mos.nmos_current(37.0, vgs - eps, vds))
                / (2.0 * eps);
            let gds_fd = (mos.nmos_current(37.0, vgs, vds + eps)
                - mos.nmos_current(37.0, vgs, vds - eps))
                / (2.0 * eps);
            assert!((gm - gm_fd).abs() <= 1e-4 * gm_fd.abs().max(1e-12), "gm at {vgs},{vds}");
            assert!(
                (gds - gds_fd).abs() <= 1e-4 * gds_fd.abs().max(1e-12),
                "gds at {vgs},{vds}"
            );
        }
    }

    #[test]
    fn current_scales_linearly_with_size() {
        let (mos, vdd) = params();
        let i1 = mos.nmos_current(1.0, vdd.get(), vdd.get());
        let i100 = mos.nmos_current(100.0, vdd.get(), vdd.get());
        assert!((i100 / i1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_node_has_faster_device() {
        // 100 nm: lower r_s means higher saturation current per volt.
        let m250 = MosParams::for_node(&TechNode::nm250());
        let m100 = MosParams::for_node(&TechNode::nm100());
        assert!(m100.beta() > m250.beta());
    }

    #[test]
    #[should_panic(expected = "threshold fraction")]
    fn silly_threshold_rejected() {
        let node = TechNode::nm250();
        let _ = MosParams::from_driver(node.driver(), node.supply_voltage(), 0.7);
    }
}
