//! Driver calibration: recovering `r_s`, `c_0`, `c_p` from an RC-optimum.
//!
//! The paper (§3.1) notes that `r_s`, `c_p`, `c_0` "cannot be easily
//! determined" directly, so it measures the Elmore-optimal repeater
//! insertion (`h_optRC`, `k_optRC`, `τ_optRC`) with SPICE and inverts the
//! closed-form optimum conditions:
//!
//! ```text
//! h_optRC = √(2·r_s·(c₀+c_p)/(r·c))       k_optRC = √(r_s·c/(r·c₀))
//! τ_optRC = 2·r_s·(c₀+c_p)·(1 + √(2c₀/(c₀+c_p)))
//! ```
//!
//! Defining `g = τ/(h²·r·c) − 1 = √(2c₀/(c₀+c_p))`, the inversion is
//! closed-form:
//!
//! ```text
//! c₀  = g·h·c / (2k)
//! r_s = k·r·g·h / 2
//! c_p = c₀·(2/g² − 1)
//! ```

use rlckit_units::{FaradsPerMeter, Meters, OhmsPerMeter, Seconds};

use crate::node::DriverParams;
use core::fmt;

/// Error returned when an RC-optimum triple is inconsistent with the
/// Elmore optimum conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrateDriverError {
    g: f64,
}

impl fmt::Display for CalibrateDriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inconsistent rc optimum: g = τ/(h²rc) − 1 = {:.4} outside (0, √2)",
            self.g
        )
    }
}

impl std::error::Error for CalibrateDriverError {}

/// Recovers the minimum-sized-driver parameters from a measured Elmore
/// optimum.
///
/// # Errors
///
/// Returns [`CalibrateDriverError`] if `g = τ/(h²rc) − 1` falls outside
/// `(0, √2)`: `g ≤ 0` means the measured delay is less than the pure-wire
/// floor, `g ≥ √2` would require a negative parasitic capacitance.
///
/// # Examples
///
/// Round-tripping the paper's 250 nm row of Table 1:
///
/// ```
/// use rlckit_tech::calibration::calibrate_driver;
/// use rlckit_units::{FaradsPerMeter, Meters, OhmsPerMeter, Seconds};
///
/// # fn main() -> Result<(), rlckit_tech::calibration::CalibrateDriverError> {
/// let driver = calibrate_driver(
///     OhmsPerMeter::from_ohm_per_milli(4.4),
///     FaradsPerMeter::from_pico(203.50),
///     Meters::from_milli(14.4),
///     578.0,
///     Seconds::from_pico(305.17),
/// )?;
/// assert!((driver.output_resistance.get() - 11_784.0).abs() < 20.0);
/// assert!((driver.input_capacitance.get() - 1.6314e-15).abs() < 5e-18);
/// assert!((driver.parasitic_capacitance.get() - 6.2474e-15).abs() < 2e-17);
/// # Ok(())
/// # }
/// ```
pub fn calibrate_driver(
    r: OhmsPerMeter,
    c: FaradsPerMeter,
    h_opt: Meters,
    k_opt: f64,
    tau_opt: Seconds,
) -> Result<DriverParams, CalibrateDriverError> {
    let h = h_opt.get();
    let wire_delay = h * h * r.get() * c.get();
    let g = tau_opt.get() / wire_delay - 1.0;
    if !(g > 0.0 && g < core::f64::consts::SQRT_2) {
        return Err(CalibrateDriverError { g });
    }
    let c0 = g * h * c.get() / (2.0 * k_opt);
    let rs = k_opt * r.get() * g * h / 2.0;
    let cp = c0 * (2.0 / (g * g) - 1.0);
    Ok(DriverParams::new(
        rlckit_units::Ohms::new(rs),
        rlckit_units::Farads::new(cp),
        rlckit_units::Farads::new(c0),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TechNode;

    #[test]
    fn calibrates_250nm_row_of_table1() {
        let d = calibrate_driver(
            OhmsPerMeter::from_ohm_per_milli(4.4),
            FaradsPerMeter::from_pico(203.50),
            Meters::from_milli(14.4),
            578.0,
            Seconds::from_pico(305.17),
        )
        .unwrap();
        let want = TechNode::nm250().driver();
        assert!((d.output_resistance / want.output_resistance - 1.0).abs() < 2e-3);
        assert!((d.input_capacitance / want.input_capacitance - 1.0).abs() < 2e-3);
        assert!((d.parasitic_capacitance / want.parasitic_capacitance - 1.0).abs() < 3e-3);
    }

    #[test]
    fn calibrates_100nm_row_of_table1() {
        let d = calibrate_driver(
            OhmsPerMeter::from_ohm_per_milli(4.4),
            FaradsPerMeter::from_pico(123.33),
            Meters::from_milli(11.1),
            528.0,
            Seconds::from_pico(105.94),
        )
        .unwrap();
        let want = TechNode::nm100().driver();
        assert!((d.output_resistance / want.output_resistance - 1.0).abs() < 5e-3);
        assert!((d.input_capacitance / want.input_capacitance - 1.0).abs() < 5e-3);
        assert!((d.parasitic_capacitance / want.parasitic_capacitance - 1.0).abs() < 1e-2);
    }

    #[test]
    fn forward_backward_round_trip() {
        // Start from arbitrary driver parameters, compute the RC optimum
        // with the closed forms, and calibrate back.
        let r = OhmsPerMeter::from_ohm_per_milli(6.0);
        let c = FaradsPerMeter::from_pico(150.0);
        let (rs, c0, cp) = (9000.0, 1.1e-15, 4.0e-15);
        let h = (2.0 * rs * (c0 + cp) / (r.get() * c.get())).sqrt();
        let k = (rs * c.get() / (r.get() * c0)).sqrt();
        let tau = 2.0 * rs * (c0 + cp) * (1.0 + (2.0 * c0 / (c0 + cp)).sqrt());
        let d = calibrate_driver(r, c, Meters::new(h), k, Seconds::new(tau)).unwrap();
        assert!((d.output_resistance.get() - rs).abs() / rs < 1e-12);
        assert!((d.input_capacitance.get() - c0).abs() / c0 < 1e-12);
        assert!((d.parasitic_capacitance.get() - cp).abs() / cp < 1e-10);
    }

    #[test]
    fn rejects_delay_below_wire_floor() {
        // τ so small that g ≤ 0.
        let err = calibrate_driver(
            OhmsPerMeter::from_ohm_per_milli(4.4),
            FaradsPerMeter::from_pico(203.50),
            Meters::from_milli(14.4),
            578.0,
            Seconds::from_pico(100.0),
        )
        .unwrap_err();
        assert!(format!("{err}").contains("inconsistent"));
    }

    #[test]
    fn rejects_delay_requiring_negative_cp() {
        // τ so large that g ≥ √2.
        let err = calibrate_driver(
            OhmsPerMeter::from_ohm_per_milli(4.4),
            FaradsPerMeter::from_pico(203.50),
            Meters::from_milli(14.4),
            578.0,
            Seconds::from_pico(460.0),
        );
        assert!(err.is_err());
    }
}
