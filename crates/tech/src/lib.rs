//! NTRS-derived technology library for the `rlckit` workspace.
//!
//! Encodes the paper's Table 1 — the 250 nm and 100 nm technology nodes
//! with their top-level-metal interconnect parameters and the calibrated
//! minimum-sized-repeater parameters `r_s`, `c_0`, `c_p` — plus:
//!
//! * [`calibration`] — the closed-form inversion of the RC-optimum
//!   formulas that the paper uses (§3.1) to recover `r_s`, `c_0`, `c_p`
//!   from a simulated `(h_optRC, k_optRC, τ_optRC)` triple.
//! * [`device`] — level-1 MOSFET parameters derived from the linearized
//!   driver model, used by the circuit-simulator substrate so that a
//!   `k`-sized inverter reproduces `r_s/k`, `c_p·k` and `c_0·k`.
//! * [`scaling`] — constant-field scaling helpers for exploring
//!   hypothetical nodes beyond the two the paper evaluates.
//!
//! # Examples
//!
//! ```
//! use rlckit_tech::TechNode;
//!
//! let node = TechNode::nm100();
//! assert_eq!(node.name(), "100nm");
//! // Table 1: 4.4 Ω/mm and 123.33 pF/m on metal 8.
//! assert!((node.line().resistance.to_ohm_per_milli() - 4.4).abs() < 1e-12);
//! assert!((node.line().capacitance.to_pico() - 123.33).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod device;
pub mod node;
pub mod scaling;

pub use node::{DriverParams, LineParams, TechNode};
