//! Property tests for the quantity newtypes, on the in-tree
//! `rlckit-check` harness (seeded, deterministic, replayable via
//! `RLCKIT_CHECK_SEED`).

use rlckit_check::{gen, Check};
use rlckit_units::{Farads, HenriesPerMeter, Meters, Ohms, OhmsPerMeter, Seconds};

/// Addition is commutative and associative within a dimension.
#[test]
fn addition_laws() {
    Check::new().cases(64).run(
        &gen::tuple3(gen::range(-1e3, 1e3), gen::range(-1e3, 1e3), gen::range(-1e3, 1e3)),
        |&(a, b, c)| {
            let (qa, qb, qc) = (Ohms::new(a), Ohms::new(b), Ohms::new(c));
            assert!(((qa + qb) - (qb + qa)).get().abs() < 1e-9);
            let assoc = ((qa + qb) + qc) - (qa + (qb + qc));
            assert!(assoc.get().abs() < 1e-9);
        },
    );
}

/// Scaling distributes over addition.
#[test]
fn scaling_distributes() {
    Check::new().cases(64).run(
        &gen::tuple3(gen::range(-1e3, 1e3), gen::range(-1e3, 1e3), gen::range(-10.0, 10.0)),
        |&(a, b, k)| {
            let lhs = (Seconds::new(a) + Seconds::new(b)) * k;
            let rhs = Seconds::new(a) * k + Seconds::new(b) * k;
            assert!((lhs - rhs).get().abs() < 1e-6);
        },
    );
}

/// Density × length followed by ÷ length round-trips.
#[test]
fn per_length_round_trip() {
    Check::new().cases(64).run(
        &gen::tuple2(gen::range(0.1, 100.0), gen::range(1e-6, 1.0)),
        |&(r, len)| {
            let density = OhmsPerMeter::from_ohm_per_milli(r);
            let total = density * Meters::new(len);
            let back = total / Meters::new(len);
            assert!((back.get() - density.get()).abs() < 1e-6 * density.get());
        },
    );
}

/// An RC product is invariant under compensating rescaling.
#[test]
fn rc_product_is_scale_invariant() {
    Check::new().cases(64).run(
        &gen::tuple2(gen::range(1.0, 1e5), gen::range(1e-16, 1e-9)),
        |&(r, c)| {
            let tau1 = Ohms::new(r) * Farads::new(c);
            let tau2 = Ohms::new(2.0 * r) * Farads::new(c / 2.0);
            assert!((tau1 - tau2).get().abs() < 1e-12 * tau1.get().abs().max(1e-300));
        },
    );
}

/// The paper-unit conversions are exact inverses.
#[test]
fn paper_unit_conversions() {
    Check::new().cases(64).run(&gen::range(0.0, 10.0), |&l| {
        let q = HenriesPerMeter::from_nano_per_milli(l);
        assert!((q.to_nano_per_milli() - l).abs() < 1e-12 * l.max(1.0));
    });
}

/// Engineering display always ends with the unit symbol.
#[test]
fn display_is_well_formed() {
    Check::new().cases(64).run(&gen::range(-1e12, 1e12), |&v| {
        let text = format!("{}", Seconds::new(v));
        assert!(text.ends_with('s'));
        assert!(!text.is_empty());
    });
}
