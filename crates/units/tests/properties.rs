//! Property tests for the quantity newtypes.

use proptest::prelude::*;
use rlckit_units::{Farads, HenriesPerMeter, Meters, Ohms, OhmsPerMeter, Seconds};

proptest! {
    /// Addition is commutative and associative within a dimension.
    #[test]
    fn addition_laws(a in -1e3f64..1e3, b in -1e3f64..1e3, c in -1e3f64..1e3) {
        let (qa, qb, qc) = (Ohms::new(a), Ohms::new(b), Ohms::new(c));
        prop_assert!(((qa + qb) - (qb + qa)).get().abs() < 1e-9);
        let assoc = ((qa + qb) + qc) - (qa + (qb + qc));
        prop_assert!(assoc.get().abs() < 1e-9);
    }

    /// Scaling distributes over addition.
    #[test]
    fn scaling_distributes(a in -1e3f64..1e3, b in -1e3f64..1e3, k in -10.0f64..10.0) {
        let lhs = (Seconds::new(a) + Seconds::new(b)) * k;
        let rhs = Seconds::new(a) * k + Seconds::new(b) * k;
        prop_assert!((lhs - rhs).get().abs() < 1e-6);
    }

    /// Density × length followed by ÷ length round-trips.
    #[test]
    fn per_length_round_trip(r in 0.1f64..100.0, len in 1e-6f64..1.0) {
        let density = OhmsPerMeter::from_ohm_per_milli(r);
        let total = density * Meters::new(len);
        let back = total / Meters::new(len);
        prop_assert!((back.get() - density.get()).abs() < 1e-6 * density.get());
    }

    /// An RC product is invariant under compensating rescaling.
    #[test]
    fn rc_product_is_scale_invariant(r in 1.0f64..1e5, c in 1e-16f64..1e-9) {
        let tau1 = Ohms::new(r) * Farads::new(c);
        let tau2 = Ohms::new(2.0 * r) * Farads::new(c / 2.0);
        prop_assert!((tau1 - tau2).get().abs() < 1e-12 * tau1.get().abs().max(1e-300));
    }

    /// The paper-unit conversions are exact inverses.
    #[test]
    fn paper_unit_conversions(l in 0.0f64..10.0) {
        let q = HenriesPerMeter::from_nano_per_milli(l);
        prop_assert!((q.to_nano_per_milli() - l).abs() < 1e-12 * l.max(1.0));
    }

    /// Engineering display always ends with the unit symbol.
    #[test]
    fn display_is_well_formed(v in -1e12f64..1e12) {
        let text = format!("{}", Seconds::new(v));
        prop_assert!(text.ends_with('s'));
        prop_assert!(!text.is_empty());
    }
}
