//! Unit-safe physical quantities for on-chip interconnect analysis.
//!
//! The interconnect-optimization literature mixes quantities whose raw
//! numeric values differ by fifteen orders of magnitude (femtofarad device
//! capacitances against millimetre wire lengths). This crate provides thin
//! `f64` newtypes for the handful of dimensions that appear in the
//! Banerjee–Mehrotra methodology so that public APIs cannot confuse, say, a
//! total capacitance with a capacitance per unit length
//! ([C-NEWTYPE]).
//!
//! All values are stored in SI base units; convenience constructors accept
//! the prefixed units common in the domain (`Ohms::from_kilo`,
//! `Farads::from_femto`, `HenriesPerMeter::from_nano_per_milli`, …) and the
//! [`core::fmt::Display`] impls render with engineering prefixes.
//!
//! # Examples
//!
//! ```
//! use rlckit_units::{FaradsPerMeter, Meters, OhmsPerMeter};
//!
//! // Table 1 of the paper: 250 nm node top-level metal.
//! let r = OhmsPerMeter::from_ohm_per_milli(4.4);
//! let c = FaradsPerMeter::from_pico(203.50);
//! let h = Meters::from_milli(14.4);
//!
//! let total_resistance = r * h; // Ohms
//! let total_capacitance = c * h; // Farads
//! let tau = total_resistance * total_capacitance; // Seconds
//! assert!((tau.get() - 1.8567e-10).abs() < 1e-13);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fmt;
mod ops;
mod per_length;
mod scalar;

pub use per_length::{FaradsPerMeter, HenriesPerMeter, OhmsPerMeter};
pub use scalar::{Amperes, Farads, Henries, Hertz, Meters, Ohms, Seconds, Volts, Watts};

/// Computes the lossless characteristic impedance `Z₀ = √(l/c)` of a line.
///
/// This is the high-frequency asymptote of the lossy characteristic
/// impedance `√((r + sl)/(sc))` used throughout the paper; the RLC repeater
/// size `k_opt` asymptotes to the value matching the driver output
/// resistance to this impedance (paper §3.1, Fig. 6).
///
/// # Examples
///
/// ```
/// use rlckit_units::{lossless_characteristic_impedance, FaradsPerMeter, HenriesPerMeter};
///
/// let l = HenriesPerMeter::from_nano_per_milli(1.0); // 1 nH/mm
/// let c = FaradsPerMeter::from_pico(123.33); // 123.33 pF/m
/// let z0 = lossless_characteristic_impedance(l, c);
/// assert!((z0.get() - 90.05).abs() < 0.1);
/// ```
#[must_use]
pub fn lossless_characteristic_impedance(l: HenriesPerMeter, c: FaradsPerMeter) -> Ohms {
    Ohms::new((l.get() / c.get()).sqrt())
}

/// Computes the time-of-flight per unit length `√(l·c)` of a lossless line,
/// in seconds per metre.
///
/// # Examples
///
/// ```
/// use rlckit_units::{time_of_flight_per_meter, FaradsPerMeter, HenriesPerMeter};
///
/// let l = HenriesPerMeter::from_nano_per_milli(1.0);
/// let c = FaradsPerMeter::from_pico(123.33);
/// let tof = time_of_flight_per_meter(l, c);
/// // ~11.1 ps/mm
/// assert!((tof * 1e-3 - 11.1e-12).abs() < 0.1e-12);
/// ```
#[must_use]
pub fn time_of_flight_per_meter(l: HenriesPerMeter, c: FaradsPerMeter) -> f64 {
    (l.get() * c.get()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characteristic_impedance_of_known_line() {
        let l = HenriesPerMeter::new(5e-6); // 5 nH/mm
        let c = FaradsPerMeter::new(203.5e-12);
        let z0 = lossless_characteristic_impedance(l, c);
        assert!((z0.get() - (5e-6f64 / 203.5e-12).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn quantities_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Seconds>();
        assert_send_sync::<Ohms>();
        assert_send_sync::<HenriesPerMeter>();
    }

    #[test]
    fn time_of_flight_is_speed_of_light_for_vacuum_like_line() {
        // l·c = µ₀ε₀ gives exactly 1/c₀ per metre.
        let mu0 = 4.0e-7 * std::f64::consts::PI;
        let eps0 = 8.8541878128e-12;
        let tof = time_of_flight_per_meter(HenriesPerMeter::new(mu0), FaradsPerMeter::new(eps0));
        assert!((1.0 / tof - 2.99792458e8).abs() < 1e3);
    }
}
