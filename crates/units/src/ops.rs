//! Cross-dimension operator implementations.
//!
//! Only the physically meaningful products and quotients that the
//! methodology actually uses are provided ([C-OVERLOAD]): per-length
//! densities times length, Ohm's law, RC/LC time constants, and power.
//!
//! [C-OVERLOAD]: https://rust-lang.github.io/api-guidelines/predictability.html

use core::ops::{Div, Mul};

use crate::per_length::{FaradsPerMeter, HenriesPerMeter, OhmsPerMeter};
use crate::scalar::{Amperes, Farads, Henries, Meters, Ohms, Seconds, Volts, Watts};

/// Implements a commutative product `$a * $b = $out`.
macro_rules! product {
    ($a:ty, $b:ty, $out:ty) => {
        impl Mul<$b> for $a {
            type Output = $out;
            fn mul(self, rhs: $b) -> $out {
                <$out>::new(self.get() * rhs.get())
            }
        }
        impl Mul<$a> for $b {
            type Output = $out;
            fn mul(self, rhs: $a) -> $out {
                <$out>::new(self.get() * rhs.get())
            }
        }
    };
}

/// Implements a quotient `$a / $b = $out`.
macro_rules! quotient {
    ($a:ty, $b:ty, $out:ty) => {
        impl Div<$b> for $a {
            type Output = $out;
            fn div(self, rhs: $b) -> $out {
                <$out>::new(self.get() / rhs.get())
            }
        }
    };
}

// Line densities integrated over a length.
product!(OhmsPerMeter, Meters, Ohms);
product!(FaradsPerMeter, Meters, Farads);
product!(HenriesPerMeter, Meters, Henries);

// Totals back to densities.
quotient!(Ohms, Meters, OhmsPerMeter);
quotient!(Farads, Meters, FaradsPerMeter);
quotient!(Henries, Meters, HenriesPerMeter);

// Time constants.
product!(Ohms, Farads, Seconds);
quotient!(Henries, Ohms, Seconds);
quotient!(Seconds, Ohms, Farads);
quotient!(Seconds, Farads, Ohms);

// Ohm's law and power.
quotient!(Volts, Ohms, Amperes);
quotient!(Volts, Amperes, Ohms);
product!(Ohms, Amperes, Volts);
product!(Volts, Amperes, Watts);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_density_times_length() {
        let r = OhmsPerMeter::from_ohm_per_milli(4.4);
        let h = Meters::from_milli(10.0);
        let total: Ohms = r * h;
        assert!((total.get() - 44.0).abs() < 1e-12);
        let total2: Ohms = h * r;
        assert!((total2.get() - 44.0).abs() < 1e-12);
        let back: OhmsPerMeter = total / h;
        assert!((back.get() - 4400.0).abs() < 1e-9);
    }

    #[test]
    fn rc_time_constant() {
        let tau: Seconds = Ohms::from_kilo(10.0) * Farads::from_femto(10.0);
        assert!((tau.get() - 1e-10).abs() < 1e-22);
    }

    #[test]
    fn l_over_r_time_constant() {
        let tau: Seconds = Henries::from_nano(5.0) / Ohms::new(50.0);
        assert!((tau.get() - 1e-10).abs() < 1e-22);
    }

    #[test]
    fn ohms_law_and_power() {
        let i: Amperes = Volts::new(2.5) / Ohms::new(50.0);
        assert!((i.get() - 0.05).abs() < 1e-15);
        let v: Volts = Ohms::new(50.0) * i;
        assert!((v.get() - 2.5).abs() < 1e-12);
        let p: Watts = v * i;
        assert!((p.get() - 0.125).abs() < 1e-12);
        let r: Ohms = v / i;
        assert!((r.get() - 50.0).abs() < 1e-9);
    }
}
