//! Engineering-notation formatting shared by all quantity types.

use core::fmt;

/// SI prefixes covering the range used on chip (yocto… is unnecessary).
const PREFIXES: &[(f64, &str)] = &[
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "µ"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
];

/// Writes `value` with the closest engineering prefix and the given unit.
///
/// Values are rendered with up to five significant digits, which is enough
/// to round-trip every constant in the paper's Table 1.
pub(crate) fn engineering(f: &mut fmt::Formatter<'_>, value: f64, unit: &str) -> fmt::Result {
    if value == 0.0 {
        return write!(f, "0 {unit}");
    }
    if !value.is_finite() {
        return write!(f, "{value} {unit}");
    }
    let magnitude = value.abs();
    let (scale, prefix) = PREFIXES
        .iter()
        .find(|(s, _)| magnitude >= *s)
        .copied()
        .unwrap_or((1e-18, "a"));
    let scaled = value / scale;
    // Trim trailing zeros that `{:.5}` style formatting would leave behind.
    let mut text = format!("{scaled:.5}");
    while text.contains('.') && (text.ends_with('0') || text.ends_with('.')) {
        text.pop();
    }
    write!(f, "{text} {prefix}{unit}")
}

#[cfg(test)]
mod tests {
    use crate::{Farads, Henries, Meters, Ohms, Seconds};

    #[test]
    fn formats_with_engineering_prefixes() {
        assert_eq!(format!("{}", Seconds::from_pico(305.17)), "305.17 ps");
        assert_eq!(format!("{}", Ohms::from_kilo(11.784)), "11.784 kΩ");
        assert_eq!(format!("{}", Farads::from_femto(1.6314)), "1.6314 fF");
        assert_eq!(format!("{}", Henries::from_nano(5.0)), "5 nH");
        assert_eq!(format!("{}", Meters::from_milli(14.4)), "14.4 mm");
    }

    #[test]
    fn formats_zero_and_negatives() {
        assert_eq!(format!("{}", Seconds::ZERO), "0 s");
        assert_eq!(format!("{}", Seconds::from_nano(-1.5)), "-1.5 ns");
    }

    #[test]
    fn formats_non_finite() {
        assert_eq!(format!("{}", Seconds::new(f64::INFINITY)), "inf s");
    }
}
