//! Base scalar quantities stored in SI units.

/// Defines an `f64` newtype quantity with SI-unit storage, the common trait
/// set, arithmetic within the dimension, and scaling by dimensionless
/// factors.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a value in SI base units.
            #[must_use]
            pub const fn new(si_value: f64) -> Self {
                Self(si_value)
            }

            /// Returns the value in SI base units.
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` if the stored value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Dividing two like quantities yields a dimensionless ratio.
        impl core::ops::Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                crate::fmt::engineering(f, self.0, $unit)
            }
        }
    };
}

pub(crate) use quantity;

quantity! {
    /// A time interval in seconds.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlckit_units::Seconds;
    /// let tau = Seconds::from_pico(305.17);
    /// assert_eq!(format!("{tau}"), "305.17 ps");
    /// ```
    Seconds, "s"
}

quantity! {
    /// A length in metres.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlckit_units::Meters;
    /// let h = Meters::from_milli(14.4);
    /// assert!((h.get() - 0.0144).abs() < 1e-12);
    /// ```
    Meters, "m"
}

quantity! {
    /// A resistance in ohms.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlckit_units::Ohms;
    /// let rs = Ohms::from_kilo(11.784);
    /// assert!((rs.get() - 11784.0).abs() < 1e-9);
    /// ```
    Ohms, "Ω"
}

quantity! {
    /// A capacitance in farads.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlckit_units::Farads;
    /// let c0 = Farads::from_femto(1.6314);
    /// assert!((c0.get() - 1.6314e-15).abs() < 1e-24);
    /// ```
    Farads, "F"
}

quantity! {
    /// An inductance in henries.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlckit_units::Henries;
    /// let lw = Henries::from_nano(22.2);
    /// assert!((lw.get() - 22.2e-9).abs() < 1e-18);
    /// ```
    Henries, "H"
}

quantity! {
    /// An electric potential in volts.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlckit_units::Volts;
    /// let vdd = Volts::new(1.2);
    /// assert_eq!(vdd.get(), 1.2);
    /// ```
    Volts, "V"
}

quantity! {
    /// An electric current in amperes.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlckit_units::{Amperes, Ohms, Volts};
    /// let i = Volts::new(1.2) / Ohms::new(60.0);
    /// assert!((i.get() - 0.02).abs() < 1e-15);
    /// # let _: Amperes = i;
    /// ```
    Amperes, "A"
}

quantity! {
    /// A frequency in hertz.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlckit_units::{Hertz, Seconds};
    /// let f = Seconds::from_nano(1.0).recip();
    /// assert!((f.get() - 1e9).abs() < 1.0);
    /// # let _: Hertz = f;
    /// ```
    Hertz, "Hz"
}

quantity! {
    /// A power in watts.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlckit_units::{Amperes, Volts, Watts};
    /// let p = Volts::new(1.2) * Amperes::new(0.02);
    /// assert!((p.get() - 0.024).abs() < 1e-15);
    /// # let _: Watts = p;
    /// ```
    Watts, "W"
}

impl Seconds {
    /// Creates a time from a value in milliseconds.
    #[must_use]
    pub const fn from_milli(ms: f64) -> Self {
        Self(ms * 1e-3)
    }

    /// Creates a time from a value in microseconds.
    #[must_use]
    pub const fn from_micro(us: f64) -> Self {
        Self(us * 1e-6)
    }

    /// Creates a time from a value in nanoseconds.
    #[must_use]
    pub const fn from_nano(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// Creates a time from a value in picoseconds.
    #[must_use]
    pub const fn from_pico(ps: f64) -> Self {
        Self(ps * 1e-12)
    }

    /// Returns the reciprocal of this period as a frequency.
    #[must_use]
    pub fn recip(self) -> Hertz {
        Hertz::new(1.0 / self.0)
    }
}

impl Meters {
    /// Creates a length from a value in millimetres.
    #[must_use]
    pub const fn from_milli(mm: f64) -> Self {
        Self(mm * 1e-3)
    }

    /// Creates a length from a value in micrometres.
    #[must_use]
    pub const fn from_micro(um: f64) -> Self {
        Self(um * 1e-6)
    }

    /// Creates a length from a value in nanometres.
    #[must_use]
    pub const fn from_nano(nm: f64) -> Self {
        Self(nm * 1e-9)
    }
}

impl Ohms {
    /// Creates a resistance from a value in kilo-ohms.
    #[must_use]
    pub const fn from_kilo(kohm: f64) -> Self {
        Self(kohm * 1e3)
    }

    /// Creates a resistance from a value in milliohms.
    #[must_use]
    pub const fn from_milli(mohm: f64) -> Self {
        Self(mohm * 1e-3)
    }
}

impl Farads {
    /// Creates a capacitance from a value in picofarads.
    #[must_use]
    pub const fn from_pico(pf: f64) -> Self {
        Self(pf * 1e-12)
    }

    /// Creates a capacitance from a value in femtofarads.
    #[must_use]
    pub const fn from_femto(ff: f64) -> Self {
        Self(ff * 1e-15)
    }
}

impl Henries {
    /// Creates an inductance from a value in nanohenries.
    #[must_use]
    pub const fn from_nano(nh: f64) -> Self {
        Self(nh * 1e-9)
    }

    /// Creates an inductance from a value in picohenries.
    #[must_use]
    pub const fn from_pico(ph: f64) -> Self {
        Self(ph * 1e-12)
    }
}

impl Hertz {
    /// Creates a frequency from a value in gigahertz.
    #[must_use]
    pub const fn from_giga(ghz: f64) -> Self {
        Self(ghz * 1e9)
    }

    /// Returns the reciprocal of this frequency as a period.
    #[must_use]
    pub fn recip(self) -> Seconds {
        Seconds::new(1.0 / self.0)
    }
}

impl Amperes {
    /// Creates a current from a value in milliamperes.
    #[must_use]
    pub const fn from_milli(ma: f64) -> Self {
        Self(ma * 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_within_a_dimension() {
        let a = Ohms::new(10.0);
        let b = Ohms::new(2.5);
        assert_eq!((a + b).get(), 12.5);
        assert_eq!((a - b).get(), 7.5);
        assert_eq!((-b).get(), -2.5);
        assert_eq!((a * 2.0).get(), 20.0);
        assert_eq!((3.0 * a).get(), 30.0);
        assert_eq!((a / 4.0).get(), 2.5);
        assert_eq!(a / b, 4.0);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Farads = (1..=4).map(|i| Farads::from_femto(f64::from(i))).sum();
        assert!((total.get() - 10e-15).abs() < 1e-27);
    }

    #[test]
    fn prefixed_constructors_round_trip() {
        assert!((Seconds::from_pico(305.17).get() - 305.17e-12).abs() < 1e-21);
        assert!((Meters::from_micro(2.0).get() - 2e-6).abs() < 1e-18);
        assert!((Ohms::from_kilo(7.534).get() - 7534.0).abs() < 1e-9);
        assert!((Henries::from_nano(5.0).get() - 5e-9).abs() < 1e-20);
    }

    #[test]
    fn min_max_abs() {
        let a = Seconds::new(-2.0);
        let b = Seconds::new(1.0);
        assert_eq!(a.abs().get(), 2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(a.is_finite());
        assert!(!Seconds::new(f64::NAN).is_finite());
    }

    #[test]
    fn frequency_period_round_trip() {
        let f = Hertz::from_giga(2.0);
        let t = f.recip();
        assert!((t.get() - 0.5e-9).abs() < 1e-20);
        assert!((t.recip().get() - 2e9).abs() < 1e-3);
    }
}
