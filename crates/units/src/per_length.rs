//! Per-unit-length line densities (`r`, `l`, `c` of a distributed line).

use crate::scalar::quantity;

quantity! {
    /// A resistance per unit length in ohms per metre.
    ///
    /// The paper quotes line resistance in Ω/mm; use
    /// [`OhmsPerMeter::from_ohm_per_milli`] for those values.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlckit_units::OhmsPerMeter;
    /// let r = OhmsPerMeter::from_ohm_per_milli(4.4);
    /// assert!((r.get() - 4400.0).abs() < 1e-9);
    /// ```
    OhmsPerMeter, "Ω/m"
}

quantity! {
    /// A capacitance per unit length in farads per metre.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlckit_units::FaradsPerMeter;
    /// let c = FaradsPerMeter::from_pico(203.50);
    /// assert!((c.get() - 203.5e-12).abs() < 1e-21);
    /// ```
    FaradsPerMeter, "F/m"
}

quantity! {
    /// An inductance per unit length in henries per metre.
    ///
    /// The paper sweeps `l` in nH/mm (= µH/m); use
    /// [`HenriesPerMeter::from_nano_per_milli`] for those values.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlckit_units::HenriesPerMeter;
    /// let l = HenriesPerMeter::from_nano_per_milli(2.2);
    /// assert!((l.get() - 2.2e-6).abs() < 1e-15);
    /// ```
    HenriesPerMeter, "H/m"
}

impl OhmsPerMeter {
    /// Creates a line resistance from a value in Ω/mm (the paper's unit).
    #[must_use]
    pub const fn from_ohm_per_milli(ohm_per_mm: f64) -> Self {
        Self::new(ohm_per_mm * 1e3)
    }

    /// Returns the value in Ω/mm (the paper's unit).
    #[must_use]
    pub fn to_ohm_per_milli(self) -> f64 {
        self.get() * 1e-3
    }
}

impl FaradsPerMeter {
    /// Creates a line capacitance from a value in pF/m (the paper's unit).
    #[must_use]
    pub const fn from_pico(pf_per_m: f64) -> Self {
        Self::new(pf_per_m * 1e-12)
    }

    /// Returns the value in pF/m (the paper's unit).
    #[must_use]
    pub fn to_pico(self) -> f64 {
        self.get() * 1e12
    }

    /// Creates a line capacitance from a value in fF/µm (a common
    /// extraction unit; 1 fF/µm = 1 nF/m).
    #[must_use]
    pub const fn from_femto_per_micro(ff_per_um: f64) -> Self {
        Self::new(ff_per_um * 1e-9)
    }
}

impl HenriesPerMeter {
    /// Creates a line inductance from a value in nH/mm (the paper's unit).
    #[must_use]
    pub const fn from_nano_per_milli(nh_per_mm: f64) -> Self {
        Self::new(nh_per_mm * 1e-6)
    }

    /// Returns the value in nH/mm (the paper's unit).
    #[must_use]
    pub fn to_nano_per_milli(self) -> f64 {
        self.get() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_unit_round_trips() {
        let r = OhmsPerMeter::from_ohm_per_milli(4.4);
        assert!((r.to_ohm_per_milli() - 4.4).abs() < 1e-12);

        let c = FaradsPerMeter::from_pico(123.33);
        assert!((c.to_pico() - 123.33).abs() < 1e-9);

        let l = HenriesPerMeter::from_nano_per_milli(5.0);
        assert!((l.to_nano_per_milli() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn extraction_unit_conversion() {
        // 0.2 fF/µm == 200 pF/m
        let c = FaradsPerMeter::from_femto_per_micro(0.2);
        assert!((c.to_pico() - 200.0).abs() < 1e-9);
    }
}
