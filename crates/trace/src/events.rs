//! The flight recorder: bounded, lock-free, per-request structured
//! events.
//!
//! The metric layer in the crate root answers "how much, in aggregate"
//! — counters and histograms have no notion of *which* request paid a
//! cost. This module records the per-request story: fixed-size
//! structured events `{trace_id, scope, kind, value, t_ns}` written
//! into **per-thread ring buffers** and drained into one
//! causally-ordered JSONL stream on flush.
//!
//! # Design
//!
//! * **Always available, always bounded.** Every thread that records
//!   owns one fixed-capacity ring ([`RING_CAPACITY`] slots); when it
//!   wraps, the oldest events are overwritten — a flight recorder keeps
//!   the recent past, it never grows without bound and never blocks the
//!   hot path on a full buffer.
//! * **Lock-free to record.** A slot is four relaxed atomic stores plus
//!   one release bump of the ring head, all on thread-local storage.
//!   The only lock is taken once per `(thread, process)` (ring
//!   registration) and once per scope *call site* (name interning).
//!   When tracing is disabled ([`crate::enabled`] is false) recording
//!   is a single relaxed load and an early return — the
//!   `trace_overhead` bench guards this path's budget in tier-1.
//! * **Causally ordered on drain.** [`EventKind`] discriminants follow
//!   the serving pipeline (parse → route → dequeue → probe → solve →
//!   write → outcome), and [`collect`] sorts by
//!   `(trace_id, kind, scope, value)` — *not* by timestamp — so the
//!   drained stream is a pure function of the workload: two seeded runs
//!   produce byte-identical event streams once the `t_ns` values are
//!   stripped. That is the determinism contract the tier-1 serve smoke
//!   `cmp`s.
//!
//! # Determinism contract
//!
//! In an event line every field except `t_ns` — `trace_id`, `scope`,
//! `kind`, `value`, and the line order itself — is seed-deterministic.
//! Wall clock appears only under the `t_ns` key, honouring the crate's
//! `*_ns`-only wall-clock rule.
//!
//! # Example
//!
//! ```
//! use rlckit_trace::events::{self, EventKind};
//!
//! rlckit_trace::set_enabled(true);
//! rlckit_trace::event!(17, "doc.example", EventKind::Solve, 3);
//! let drained = events::collect();
//! let mine: Vec<_> = drained
//!     .events
//!     .iter()
//!     .filter(|e| e.scope == "doc.example")
//!     .collect();
//! assert_eq!(mine.len(), 1);
//! assert_eq!(mine[0].trace_id, 17);
//! assert_eq!(mine[0].value, 3);
//! ```

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Events retained per recording thread before the oldest are
/// overwritten. 4096 × 32 bytes = 128 KiB per thread — large enough to
/// hold several thousand requests' worth of pipeline events, small
/// enough to forget about.
pub const RING_CAPACITY: usize = 4096;

/// What pipeline stage an event marks. The discriminants are ordered
/// along the serving pipeline so that sorting a request's events by
/// kind reconstructs its span tree without consulting wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Request line parsed (router thread). Value: protocol op code.
    Parse = 0,
    /// Request routed to a pool shard (router thread). Value: shard.
    Route = 1,
    /// Request picked up by its shard's worker. Value: shard — the
    /// worker attribution, since workers are pinned to shards.
    Dequeue = 2,
    /// Memo probed (worker thread). Value: 1 = hit, 0 = miss.
    Probe = 3,
    /// Answer computed (worker thread). Value: 0 = served, 1 = error.
    Solve = 4,
    /// Response written in order (writer thread). Value: response
    /// bytes.
    Write = 5,
    /// Campaign point outcome. Value: attempts spent.
    Outcome = 6,
}

impl EventKind {
    /// The wire name of this kind in the JSONL stream.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Parse => "parse",
            Self::Route => "route",
            Self::Dequeue => "dequeue",
            Self::Probe => "probe",
            Self::Solve => "solve",
            Self::Write => "write",
            Self::Outcome => "outcome",
        }
    }

    fn from_u8(byte: u8) -> Option<Self> {
        Some(match byte {
            0 => Self::Parse,
            1 => Self::Route,
            2 => Self::Dequeue,
            3 => Self::Probe,
            4 => Self::Solve,
            5 => Self::Write,
            6 => Self::Outcome,
            _ => return None,
        })
    }
}

/// Interned scope names, indexed by the id packed into ring slots.
static SCOPES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

fn scope_name(id: u32) -> &'static str {
    SCOPES
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(id as usize)
        .copied()
        .unwrap_or("?")
}

/// A per-call-site scope handle: interns its name once and caches the
/// id in a static, so the steady-state record path never touches the
/// intern table. Declared for you by [`crate::event!`].
pub struct EventScope {
    name: &'static str,
    /// Cached interned id + 1; 0 means "not yet interned".
    cached: AtomicU32,
}

impl EventScope {
    /// Creates an uninterned scope (const: usable in `static`s).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cached: AtomicU32::new(0),
        }
    }

    fn id(&self) -> u32 {
        let cached = self.cached.load(Ordering::Relaxed);
        if cached != 0 {
            return cached - 1;
        }
        let mut scopes = SCOPES.lock().unwrap_or_else(PoisonError::into_inner);
        let id = scopes
            .iter()
            .position(|n| *n == self.name)
            .unwrap_or_else(|| {
                scopes.push(self.name);
                scopes.len() - 1
            });
        let id = u32::try_from(id).expect("fewer than 2^32 scope call sites");
        self.cached.store(id + 1, Ordering::Relaxed);
        id
    }
}

/// One ring slot. `meta` packs `scope_id << 32 | kind << 1 | occupied`;
/// the occupied bit distinguishes never-written slots from real events.
struct Slot {
    trace_id: AtomicU64,
    meta: AtomicU64,
    value: AtomicU64,
    t_ns: AtomicU64,
}

impl Slot {
    const fn empty() -> Self {
        Self {
            trace_id: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            value: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
        }
    }
}

/// One thread's flight-recorder ring. Only the owning thread stores;
/// any thread may read (a drain racing a wrapping writer can observe a
/// torn slot, which [`collect`] tolerates — serving drains after the
/// pipeline quiesces, where no race exists).
struct Ring {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl Ring {
    fn new() -> Self {
        Self {
            slots: (0..RING_CAPACITY).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn push(&self, trace_id: u64, scope_id: u32, kind: EventKind, value: u64, t_ns: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        slot.trace_id.store(trace_id, Ordering::Relaxed);
        slot.meta.store(
            (u64::from(scope_id) << 32) | (kind as u64) << 1 | 1,
            Ordering::Relaxed,
        );
        slot.value.store(value, Ordering::Relaxed);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        self.head.store(head + 1, Ordering::Release);
    }

    fn read_into(&self, out: &mut Vec<EventRecord>, dropped: &mut u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let kept = head.min(cap);
        *dropped += head - kept;
        for i in (head - kept)..head {
            let slot = &self.slots[(i % cap) as usize];
            let meta = slot.meta.load(Ordering::Relaxed);
            if meta & 1 == 0 {
                continue;
            }
            let Some(kind) = EventKind::from_u8(((meta >> 1) & 0xff) as u8) else {
                continue;
            };
            out.push(EventRecord {
                trace_id: slot.trace_id.load(Ordering::Relaxed),
                scope: scope_name((meta >> 32) as u32),
                kind,
                value: slot.value.load(Ordering::Relaxed),
                t_ns: slot.t_ns.load(Ordering::Relaxed),
            });
        }
    }
}

/// Every ring ever registered (threads never unregister; a ring is
/// ~128 KiB and thread counts here are single digits).
static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

thread_local! {
    static RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
}

/// Nanoseconds since the first event of the process — a monotonic
/// epoch, so `t_ns` values within one run are comparable.
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Records one event into the calling thread's ring. Gated on
/// [`crate::enabled`]: the disabled path is one relaxed load. Use
/// through [`crate::event!`], which owns the per-call-site
/// [`EventScope`].
pub fn record(scope: &'static EventScope, trace_id: u64, kind: EventKind, value: u64) {
    if !crate::enabled() {
        return;
    }
    let t_ns = now_ns();
    let scope_id = scope.id();
    RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(Ring::new());
            RINGS
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(&ring));
            ring
        });
        ring.push(trace_id, scope_id, kind, value, t_ns);
    });
}

/// One drained event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// The request / campaign-point this event belongs to.
    pub trace_id: u64,
    /// The interned call-site scope name.
    pub scope: &'static str,
    /// Pipeline stage.
    pub kind: EventKind,
    /// Stage-specific deterministic payload (see [`EventKind`]).
    pub value: u64,
    /// Nanoseconds since the process's first event — the only
    /// non-deterministic field.
    pub t_ns: u64,
}

/// The result of draining every ring.
#[derive(Debug, Clone, Default)]
pub struct DrainedEvents {
    /// All retained events, causally ordered (see [`collect`]).
    pub events: Vec<EventRecord>,
    /// Events overwritten before this drain (ring wrap).
    pub dropped: u64,
}

/// Drains every thread's ring into one causally-ordered stream: sorted
/// by `(trace_id, kind, scope, value)` so the order — like every field
/// but `t_ns` — is deterministic. Rings are *not* cleared: a flight
/// recorder's contents survive until overwritten, so a later drain
/// re-reads retained events.
#[must_use]
pub fn collect() -> DrainedEvents {
    let rings: Vec<Arc<Ring>> = RINGS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let mut drained = DrainedEvents::default();
    for ring in rings {
        ring.read_into(&mut drained.events, &mut drained.dropped);
    }
    drained
        .events
        .sort_by(|a, b| {
            (a.trace_id, a.kind, a.scope, a.value).cmp(&(b.trace_id, b.kind, b.scope, b.value))
        });
    drained
}

/// Renders drained events as JSON lines, one
/// `{"type":"event","trace_id":…,"scope":…,"kind":…,"value":…,"t_ns":…}`
/// object per event, with a final `{"type":"events_dropped",…}` marker
/// when the rings wrapped. Scope names come from `&'static str`
/// call-site literals, so they never need escaping beyond
/// [`crate::jsonl_of`]'s rules — but they get the same escaping anyway.
#[must_use]
pub fn jsonl_of(drained: &DrainedEvents) -> String {
    let mut out = String::with_capacity(drained.events.len() * 96);
    for e in &drained.events {
        out.push_str(&format!(
            "{{\"type\":\"event\",\"trace_id\":{},\"scope\":{},\"kind\":\"{}\",\
             \"value\":{},\"t_ns\":{}}}\n",
            e.trace_id,
            crate::json_escape(e.scope),
            e.kind.label(),
            e.value,
            e.t_ns,
        ));
    }
    if drained.dropped > 0 {
        out.push_str(&format!(
            "{{\"type\":\"events_dropped\",\"value\":{}}}\n",
            drained.dropped
        ));
    }
    out
}

/// Drains every ring and writes the JSONL stream to `path`
/// (truncating). Returns the number of events written.
///
/// # Errors
///
/// Propagates the underlying write failure.
pub fn write_jsonl(path: &std::path::Path) -> std::io::Result<usize> {
    let drained = collect();
    std::fs::write(path, jsonl_of(&drained))?;
    Ok(drained.events.len())
}

/// Declares a `static` [`EventScope`] at the call site and records one
/// flight-recorder event: `event!(trace_id, "scope.name", kind, value)`.
/// The scope must be a `&'static str` literal; interning happens once
/// per call site.
#[macro_export]
macro_rules! event {
    ($trace_id:expr, $scope:expr, $kind:expr, $value:expr) => {{
        static __RLCKIT_TRACE_EVENT_SCOPE: $crate::events::EventScope =
            $crate::events::EventScope::new($scope);
        $crate::events::record(&__RLCKIT_TRACE_EVENT_SCOPE, $trace_id, $kind, $value)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mine(scope: &str) -> Vec<EventRecord> {
        collect()
            .events
            .into_iter()
            .filter(|e| e.scope == scope)
            .collect()
    }

    #[test]
    fn recorded_events_come_back_with_all_fields() {
        crate::set_enabled(true);
        crate::event!(7, "test.events.fields", EventKind::Probe, 1);
        crate::event!(7, "test.events.fields", EventKind::Solve, 0);
        let got = mine("test.events.fields");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].trace_id, 7);
        assert_eq!(got[0].kind, EventKind::Probe);
        assert_eq!(got[0].value, 1);
        assert_eq!(got[1].kind, EventKind::Solve);
        // Probe precedes Solve causally *and* temporally on one thread.
        assert!(got[0].t_ns <= got[1].t_ns);
    }

    #[test]
    fn drain_order_is_trace_then_pipeline_not_timestamp() {
        crate::set_enabled(true);
        // Record out of pipeline order, across two traces, interleaved.
        crate::event!(22, "test.events.order", EventKind::Write, 0);
        crate::event!(21, "test.events.order", EventKind::Solve, 0);
        crate::event!(22, "test.events.order", EventKind::Parse, 0);
        crate::event!(21, "test.events.order", EventKind::Parse, 0);
        let got = mine("test.events.order");
        let keys: Vec<(u64, EventKind)> = got.iter().map(|e| (e.trace_id, e.kind)).collect();
        assert_eq!(
            keys,
            vec![
                (21, EventKind::Parse),
                (21, EventKind::Solve),
                (22, EventKind::Parse),
                (22, EventKind::Write),
            ]
        );
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        crate::set_enabled(false);
        crate::event!(1, "test.events.disabled", EventKind::Parse, 0);
        crate::set_enabled(true);
        assert!(mine("test.events.disabled").is_empty());
    }

    #[test]
    fn ring_wrap_keeps_the_newest_events_and_counts_drops() {
        crate::set_enabled(true);
        // A dedicated thread owns a fresh ring, so the wrap arithmetic
        // is exact rather than entangled with sibling tests' events.
        std::thread::spawn(|| {
            for i in 0..(RING_CAPACITY as u64 + 10) {
                crate::event!(i, "test.events.wrap", EventKind::Outcome, i);
            }
        })
        .join()
        .unwrap();
        let drained = collect();
        let wrap: Vec<&EventRecord> = drained
            .events
            .iter()
            .filter(|e| e.scope == "test.events.wrap")
            .collect();
        assert_eq!(wrap.len(), RING_CAPACITY);
        assert!(drained.dropped >= 10, "wrapping must count drops");
        // The oldest 10 were overwritten: the retained set starts at 10.
        assert_eq!(wrap[0].trace_id, 10);
        assert_eq!(wrap.last().unwrap().trace_id, RING_CAPACITY as u64 + 9);
    }

    #[test]
    fn events_from_multiple_threads_merge_into_one_stream() {
        crate::set_enabled(true);
        std::thread::scope(|s| {
            for t in 0..3u64 {
                s.spawn(move || {
                    crate::event!(100 + t, "test.events.merge", EventKind::Dequeue, t);
                });
            }
        });
        let got = mine("test.events.merge");
        let ids: Vec<u64> = got.iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![100, 101, 102], "sorted across rings");
    }

    #[test]
    fn jsonl_confines_wall_clock_to_t_ns() {
        let drained = DrainedEvents {
            events: vec![EventRecord {
                trace_id: 3,
                scope: "a.b",
                kind: EventKind::Route,
                value: 2,
                t_ns: 55,
            }],
            dropped: 1,
        };
        let text = jsonl_of(&drained);
        assert_eq!(
            text,
            "{\"type\":\"event\",\"trace_id\":3,\"scope\":\"a.b\",\"kind\":\"route\",\
             \"value\":2,\"t_ns\":55}\n{\"type\":\"events_dropped\",\"value\":1}\n"
        );
    }

    #[test]
    fn kind_labels_round_trip_the_discriminants() {
        for k in [
            EventKind::Parse,
            EventKind::Route,
            EventKind::Dequeue,
            EventKind::Probe,
            EventKind::Solve,
            EventKind::Write,
            EventKind::Outcome,
        ] {
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
            assert!(!k.label().is_empty());
        }
        assert_eq!(EventKind::from_u8(200), None);
    }
}
