//! `rlckit-trace` — zero-dependency solver/campaign telemetry.
//!
//! Every performance rung on the ROADMAP (hot-path profiling of the
//! two-pole delay solve, work-stealing for the planner's uneven
//! golden-section calls, a sharded campaign driver) needs to know where
//! iterations and wall-clock actually go. This crate is that
//! instrumentation layer: process-wide **counters** and **iteration
//! histograms** backed by relaxed atomics, lightweight RAII **span
//! timers**, and an opt-in end-of-run **sink** selected by the
//! `RLCKIT_TRACE` environment variable.
//!
//! # Cost model
//!
//! * A counter increment or histogram observation is one relaxed
//!   `fetch_add` on a `static` atomic — no allocation, no branch on a
//!   global flag, safe to leave in the hottest solver loops. The only
//!   allocation a metric ever performs is its one-time registration
//!   (a `Vec` push) the first time it is touched in a process.
//! * Span timers *are* gated: when tracing is disabled
//!   ([`enabled`] returns `false`) [`SpanTimer::start`] returns an
//!   inert guard without reading the clock, so the disabled path costs
//!   one relaxed load and allocates nothing. The `trace_overhead`
//!   bench group quantifies both paths against a bare arithmetic op.
//!
//! # Determinism contract
//!
//! Counters and histograms record *algorithmic* quantities (iterations,
//! bracket doublings, fallback tallies): for every metric **except the
//! `par.*` family** they are a pure function of the computation's
//! inputs — re-running the same campaign yields bit-identical values,
//! regardless of thread count. The `par.*` metrics intentionally record
//! scheduling (tasks per worker, chunks claimed) and vary run to run.
//! Wall-clock quantities appear **only** under JSON keys ending in
//! `_ns` (and the derived `mean_ns`), so a determinism check can parse
//! the JSONL sink and ignore exactly the `*_ns` keys.
//!
//! # Sink selection
//!
//! | `RLCKIT_TRACE` | behaviour of [`flush`] |
//! |---|---|
//! | unset, empty, `0`, `off` | nothing (tracing disabled) |
//! | `summary` | aligned text summary to stderr |
//! | `jsonl` | JSON lines to stderr |
//! | `jsonl:<path>` | JSON lines written to `<path>` (truncate: last flush wins) |
//! | `jsonl+:<path>` | JSON lines **appended** to `<path>`, one marker-delimited snapshot per flush |
//!
//! Any other value behaves like `summary` (fail open: asking for
//! telemetry should never silence it).
//!
//! `jsonl:` truncation is the right semantics for one-shot campaign
//! bins — the final flush is the complete report. A long-running daemon
//! flushing periodically needs `jsonl+:`: every flush appends a
//! `{"type":"flush","value":<seq>}` marker line followed by the full
//! metric snapshot, so the file preserves the whole history instead of
//! only the last flush.
//!
//! # Examples
//!
//! ```
//! use rlckit_trace::{counter, histogram, span};
//!
//! rlckit_trace::set_enabled(true);
//! {
//!     let _guard = span!("example.work");
//!     counter!("example.calls").incr();
//!     histogram!("example.iterations").observe(3);
//! }
//! let snap = rlckit_trace::snapshot();
//! assert_eq!(snap.counter("example.calls"), 1);
//! assert!(snap.histograms["example.iterations"].mean() >= 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of exact histogram buckets: values `0..BUCKETS-1` count into
/// their own bucket, anything `>= BUCKETS-1` lands in the last
/// (overflow) bucket. Iteration counts in this workspace are single
/// digits, so the exact range is generous.
pub const BUCKETS: usize = 33;

/// One registered metric (all three kinds live in the same registry so
/// a snapshot is a single lock + walk).
enum Metric {
    Counter(&'static Counter),
    Histogram(&'static Histogram),
    Span(&'static SpanTimer),
}

/// The process-wide metric registry. Metrics self-register on first
/// touch; the vector only ever grows (bounded by the number of metric
/// *call sites*, not calls).
static REGISTRY: Mutex<Vec<Metric>> = Mutex::new(Vec::new());

/// A monotonically increasing event counter.
///
/// Declare one per call site with [`counter!`]; the `static` storage is
/// what makes increments allocation-free.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Creates an unregistered counter (const: usable in `static`s).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds `n` to the counter (relaxed; safe from any thread).
    pub fn add(&'static self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::SeqCst)
        {
            REGISTRY.lock().expect("registry lock").push(Metric::Counter(self));
        }
    }

    /// Increments the counter by one.
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A histogram of small non-negative integer observations (iteration
/// counts, tasks per worker, …) with exact buckets plus running
/// count/sum/min/max.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// Creates an unregistered histogram (const: usable in `static`s).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            name,
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one observation (relaxed; safe from any thread).
    pub fn observe(&'static self, value: u64) {
        let bucket = (value as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::SeqCst)
        {
            REGISTRY.lock().expect("registry lock").push(Metric::Histogram(self));
        }
    }

    /// Records `n` identical observations in one pass (relaxed; safe
    /// from any thread). Equivalent to calling [`Histogram::observe`]
    /// `n` times with the same `value`; batch engines use it to flush
    /// locally-accumulated per-round tallies without one RMW per event.
    pub fn observe_n(&'static self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let bucket = (value as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.wrapping_mul(n), Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::SeqCst)
        {
            REGISTRY.lock().expect("registry lock").push(Metric::Histogram(self));
        }
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Metric name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Aggregated wall-clock timings for one span label: count, total,
/// min and max, all in nanoseconds.
pub struct SpanTimer {
    name: &'static str,
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    registered: AtomicBool,
}

impl SpanTimer {
    /// Creates an unregistered span timer (const: usable in `static`s).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Starts a span. When tracing is disabled the returned guard is
    /// inert — no clock read, no allocation, nothing recorded on drop.
    #[must_use]
    pub fn start(&'static self) -> SpanGuard {
        if enabled() {
            SpanGuard(Some((self, Instant::now())))
        } else {
            SpanGuard(None)
        }
    }

    /// Records a completed span of `ns` nanoseconds directly.
    pub fn record_ns(&'static self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::SeqCst)
        {
            REGISTRY.lock().expect("registry lock").push(Metric::Span(self));
        }
    }

    /// Metric name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// RAII guard returned by [`SpanTimer::start`]; records the elapsed
/// time on drop (or nothing, if tracing was disabled at start).
pub struct SpanGuard(Option<(&'static SpanTimer, Instant)>);

impl SpanGuard {
    /// True if this guard is actually timing (tracing was enabled).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((timer, start)) = self.0.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            timer.record_ns(ns);
        }
    }
}

/// Declares a `static` [`Counter`] at the call site and yields a
/// `&'static Counter` handle.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __RLCKIT_TRACE_COUNTER: $crate::Counter = $crate::Counter::new($name);
        &__RLCKIT_TRACE_COUNTER
    }};
}

/// Declares a `static` [`Histogram`] at the call site and yields a
/// `&'static Histogram` handle.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __RLCKIT_TRACE_HISTOGRAM: $crate::Histogram = $crate::Histogram::new($name);
        &__RLCKIT_TRACE_HISTOGRAM
    }};
}

/// Declares a `static` [`SpanTimer`] at the call site and starts a
/// span, yielding the [`SpanGuard`]. Bind it (`let _guard = span!(…);`)
/// so it lives to the end of the scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __RLCKIT_TRACE_SPAN: $crate::SpanTimer = $crate::SpanTimer::new($name);
        __RLCKIT_TRACE_SPAN.start()
    }};
}

// ---------------------------------------------------------------------------
// Enablement and sink configuration
// ---------------------------------------------------------------------------

/// Where [`flush`] sends the end-of-run report.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Sink {
    Disabled,
    Summary,
    Jsonl(Option<PathBuf>),
    JsonlAppend(PathBuf),
}

impl Sink {
    /// Parses an `RLCKIT_TRACE` value. Unknown non-empty values fail
    /// open to `Summary`.
    fn parse(raw: &str) -> Self {
        let v = raw.trim();
        match v {
            "" | "0" | "off" => Self::Disabled,
            "summary" | "1" => Self::Summary,
            "jsonl" => Self::Jsonl(None),
            _ => {
                if let Some(path) = v.strip_prefix("jsonl+:") {
                    Self::JsonlAppend(PathBuf::from(path))
                } else if let Some(path) = v.strip_prefix("jsonl:") {
                    Self::Jsonl(Some(PathBuf::from(path)))
                } else {
                    Self::Summary
                }
            }
        }
    }
}

/// The parsed `RLCKIT_TRACE` value, read once per process.
fn env_sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(|| {
        Sink::parse(&std::env::var("RLCKIT_TRACE").unwrap_or_default())
    })
}

/// Programmatic enablement override: 0 = follow the environment,
/// 1 = forced on, 2 = forced off.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// True when tracing is on: either [`set_enabled`] forced it, or
/// `RLCKIT_TRACE` selects a sink. Counters and histograms record
/// regardless (they are effectively free); this flag gates the span
/// timers and is what makes the disabled path clock-free.
#[must_use]
pub fn enabled() -> bool {
    match FORCED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => *env_sink() != Sink::Disabled,
    }
}

/// Forces tracing on or off for this process, overriding `RLCKIT_TRACE`
/// (used by tests and the bench harness; campaigns normally rely on the
/// environment variable alone).
pub fn set_enabled(on: bool) {
    FORCED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Point-in-time value of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observation (`None` when empty). After
    /// [`Snapshot::since`] this is the *process-lifetime* minimum, not
    /// the interval's — exact bucket/count/sum deltas are what interval
    /// arithmetic should use.
    pub min: Option<u64>,
    /// Largest observation (`None` when empty); same caveat as `min`.
    pub max: Option<u64>,
    /// Exact buckets: index = observed value, last bucket = overflow.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty). A pure function of count and
    /// sum, so deterministic whenever they are.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest bucket index with a nonzero count, capped at the
    /// overflow bucket (`None` when empty). Unlike `max` this *is*
    /// interval-exact after [`Snapshot::since`] (for values below the
    /// overflow bucket).
    #[must_use]
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// The `q`-quantile of the observations (`q` in `[0, 1]`), with
    /// linear interpolation *within* the containing bucket: bucket `i`
    /// holds observations of exact value `i`, modelled as uniformly
    /// spread over `[i, i+1)`, so e.g. the median of 100 observations
    /// of `3` is `3.5` rather than a bare bucket index. `None` when the
    /// histogram is empty or `q` is out of range / non-finite.
    ///
    /// The last bucket is the overflow bucket (observations `>=
    /// BUCKETS-1`): a quantile landing there interpolates between the
    /// bucket's lower bound and the recorded `max` instead of
    /// pretending the bucket is one unit wide — including the
    /// all-overflow case where *every* observation saturated. (After
    /// [`Snapshot::since`] the `max` is process-lifetime, not
    /// interval-exact — see [`HistogramSnapshot::min`] — so overflow
    /// interpolation on a delta is an upper-bound estimate.)
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !q.is_finite() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let last = self.buckets.len().checked_sub(1)?;
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            if bucket == 0 {
                continue;
            }
            let before = cumulative as f64;
            cumulative += bucket;
            if cumulative as f64 >= rank {
                let fraction = ((rank - before) / bucket as f64).clamp(0.0, 1.0);
                let (lo, hi) = if index == last {
                    let bound = self.max.map_or(last as f64, |m| m as f64).max(last as f64);
                    (last as f64, bound)
                } else {
                    (index as f64, index as f64 + 1.0)
                };
                return Some(lo + fraction * (hi - lo));
            }
        }
        // Floating-point slack consumed every bucket: the answer is the
        // top of the populated range.
        Some(self.max.map_or(last as f64, |m| m as f64))
    }
}

/// Point-in-time value of one span timer. All fields are wall-clock
/// derived and therefore non-deterministic; they serialize only under
/// `*_ns` keys.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanSnapshot {
    /// Number of completed spans.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub total_ns: u64,
    /// Shortest span (`u64::MAX` when empty).
    pub min_ns: u64,
    /// Longest span.
    pub max_ns: u64,
}

/// A consistent-enough copy of every registered metric (individual
/// loads are relaxed; concurrent increments may straddle the walk,
/// which telemetry tolerates by design).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span timer states by name.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl Snapshot {
    /// A counter's value, 0 when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of all counters whose name ends with `suffix` (e.g.
    /// `".no_convergence"` for the campaign failure tally).
    #[must_use]
    pub fn counters_ending_with(&self, suffix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| name.ends_with(suffix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// The change since an `earlier` snapshot: counters, histogram
    /// counts/sums/buckets and span counts/totals subtract
    /// (saturating); histogram and span min/max keep this snapshot's
    /// process-lifetime values (see [`HistogramSnapshot::min`]).
    #[must_use]
    pub fn since(&self, earlier: &Self) -> Self {
        let counters = self
            .counters
            .iter()
            .map(|(name, &v)| (name.clone(), v.saturating_sub(earlier.counter(name))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let old = earlier.histograms.get(name);
                let mut d = h.clone();
                if let Some(old) = old {
                    d.count = d.count.saturating_sub(old.count);
                    d.sum = d.sum.saturating_sub(old.sum);
                    for (b, ob) in d.buckets.iter_mut().zip(&old.buckets) {
                        *b = b.saturating_sub(*ob);
                    }
                }
                (name.clone(), d)
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|(name, s)| {
                let old = earlier.spans.get(name);
                let mut d = s.clone();
                if let Some(old) = old {
                    d.count = d.count.saturating_sub(old.count);
                    d.total_ns = d.total_ns.saturating_sub(old.total_ns);
                }
                (name.clone(), d)
            })
            .collect();
        Self {
            counters,
            histograms,
            spans,
        }
    }
}

/// Captures the current value of every registered metric.
#[must_use]
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    let registry = REGISTRY.lock().expect("registry lock");
    for metric in registry.iter() {
        match metric {
            Metric::Counter(c) => {
                *snap.counters.entry(c.name.to_string()).or_insert(0) += c.value();
            }
            Metric::Histogram(h) => {
                let entry = snap
                    .histograms
                    .entry(h.name.to_string())
                    .or_default();
                let count = h.count.load(Ordering::Relaxed);
                entry.count += count;
                entry.sum += h.sum.load(Ordering::Relaxed);
                if count > 0 {
                    let min = h.min.load(Ordering::Relaxed);
                    let max = h.max.load(Ordering::Relaxed);
                    entry.min = Some(entry.min.map_or(min, |m| m.min(min)));
                    entry.max = Some(entry.max.map_or(max, |m| m.max(max)));
                }
                if entry.buckets.is_empty() {
                    entry.buckets = vec![0; BUCKETS];
                }
                for (dst, src) in entry.buckets.iter_mut().zip(&h.buckets) {
                    *dst += src.load(Ordering::Relaxed);
                }
            }
            Metric::Span(s) => {
                let entry = snap.spans.entry(s.name.to_string()).or_default();
                let count = s.count.load(Ordering::Relaxed);
                entry.count += count;
                entry.total_ns += s.total_ns.load(Ordering::Relaxed);
                if count > 0 {
                    entry.min_ns = entry.min_ns.min(s.min_ns.load(Ordering::Relaxed));
                }
                if entry.count == 0 {
                    entry.min_ns = u64::MAX;
                }
                entry.max_ns = entry.max_ns.max(s.max_ns.load(Ordering::Relaxed));
            }
        }
    }
    // Normalize empty span minima so Default (0) doesn't masquerade as
    // a measured 0 ns span.
    for s in snap.spans.values_mut() {
        if s.count == 0 {
            s.min_ns = u64::MAX;
        }
    }
    snap
}

// ---------------------------------------------------------------------------
// Sinks: text summary and JSONL
// ---------------------------------------------------------------------------

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Renders the aligned text summary of a snapshot. Zero-valued metrics
/// are omitted — a grep for a counter name in the summary is therefore
/// a nonzero check (the tier-1 gate relies on this for
/// `*.no_convergence`).
#[must_use]
pub fn summary_of(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        if *value > 0 {
            out.push_str(&format!("  counter   {name:<48} {value}\n"));
        }
    }
    for (name, h) in &snap.histograms {
        if h.count > 0 {
            out.push_str(&format!(
                "  histogram {name:<48} count {}  mean {:.3}  min {}  max {}\n",
                h.count,
                h.mean(),
                h.min.unwrap_or(0),
                h.max.unwrap_or(0),
            ));
        }
    }
    for (name, s) in &snap.spans {
        if s.count > 0 {
            out.push_str(&format!(
                "  span      {name:<48} count {}  total {}  mean {}\n",
                s.count,
                format_ns(s.total_ns as f64),
                format_ns(s.total_ns as f64 / s.count as f64),
            ));
        }
    }
    if out.is_empty() {
        out.push_str("  (no metrics recorded)\n");
    }
    out
}

/// Renders the current metrics as an aligned text summary.
#[must_use]
pub fn summary_string() -> String {
    summary_of(&snapshot())
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a snapshot as JSON lines: one object per metric, sorted by
/// kind then name. Deterministic fields only, except values under keys
/// ending in `_ns` (span wall-clock) — the documented escape hatch the
/// JSONL guard test checks.
#[must_use]
pub fn jsonl_of(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":{},\"value\":{value}}}\n",
            json_escape(name)
        ));
    }
    for (name, h) in &snap.histograms {
        let buckets: Vec<String> = {
            let last = h.max_bucket().map_or(0, |i| i + 1);
            h.buckets[..last].iter().map(u64::to_string).collect()
        };
        out.push_str(&format!(
            "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\
             \"min\":{},\"max\":{},\"buckets\":[{}]}}\n",
            json_escape(name),
            h.count,
            h.sum,
            h.min.unwrap_or(0),
            h.max.unwrap_or(0),
            buckets.join(","),
        ));
    }
    for (name, s) in &snap.spans {
        let min_ns = if s.count == 0 { 0 } else { s.min_ns };
        out.push_str(&format!(
            "{{\"type\":\"span\",\"name\":{},\"count\":{},\"total_ns\":{},\
             \"min_ns\":{min_ns},\"max_ns\":{}}}\n",
            json_escape(name),
            s.count,
            s.total_ns,
            s.max_ns,
        ));
    }
    out
}

/// Renders the current metrics as JSON lines.
#[must_use]
pub fn jsonl_string() -> String {
    jsonl_of(&snapshot())
}

/// Per-process sequence number stamped into `jsonl+:` flush markers.
static FLUSH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Serializes concurrent flushes so each appended block is one
/// contiguous byte range with an in-order marker (see
/// [`append_jsonl_snapshot`]).
static FLUSH_LOCK: Mutex<()> = Mutex::new(());

/// Appends one marker-delimited snapshot of the current metrics to
/// `path`: a `{"type":"flush","value":<seq>}` marker line (`seq` is a
/// per-process counter starting at 0) followed by the full
/// [`jsonl_string`] rendering. This is the `jsonl+:<path>` sink body —
/// the history-preserving flush a periodically-flushing daemon needs,
/// where the truncating `jsonl:<path>` sink would leave only the last
/// flush on disk. The file is created if absent.
///
/// Flushes are atomic with respect to each other: the marker's
/// sequence number is claimed and the whole block written as a single
/// `write_all` under one process-wide lock, so a reader never sees a
/// torn block and marker values appear in strictly increasing file
/// order even when a background flusher races an exit flush.
///
/// # Errors
///
/// Propagates the underlying open/write failure.
pub fn append_jsonl_snapshot(path: &std::path::Path) -> std::io::Result<()> {
    let _guard = FLUSH_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let seq = FLUSH_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut block = format!("{{\"type\":\"flush\",\"value\":{seq}}}\n");
    block.push_str(&jsonl_string());
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    file.write_all(block.as_bytes())
}

/// Writes the end-of-run report to the sink `RLCKIT_TRACE` selects
/// (nothing when tracing is disabled). One-shot campaign binaries and
/// the bench harness call it once at the end; with the truncating
/// `jsonl:<path>` sink a later flush overwrites an earlier one (last
/// flush wins — the final flush is the complete report). Long-running
/// processes that flush periodically should run under `jsonl+:<path>`,
/// where every flush appends a marker-delimited snapshot instead (see
/// [`append_jsonl_snapshot`]).
pub fn flush() {
    match env_sink() {
        Sink::Disabled => {}
        Sink::Summary => {
            let _ = writeln!(std::io::stderr(), "trace summary:\n{}", summary_string());
        }
        Sink::Jsonl(None) => {
            let _ = write!(std::io::stderr(), "{}", jsonl_string());
        }
        Sink::Jsonl(Some(path)) => {
            if let Err(e) = std::fs::write(path, jsonl_string()) {
                eprintln!("warning: could not write trace jsonl {}: {e}", path.display());
            }
        }
        Sink::JsonlAppend(path) => {
            if let Err(e) = append_jsonl_snapshot(path) {
                eprintln!("warning: could not append trace jsonl {}: {e}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = counter!("test.counters_accumulate");
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(snapshot().counter("test.counters_accumulate"), 5);
        assert_eq!(snapshot().counter("test.never_touched"), 0);
    }

    #[test]
    fn histograms_track_buckets_and_extremes() {
        let h = histogram!("test.histogram_buckets");
        for v in [2u64, 2, 7, 40] {
            h.observe(v);
        }
        let snap = snapshot();
        let hs = &snap.histograms["test.histogram_buckets"];
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 51);
        assert_eq!(hs.min, Some(2));
        assert_eq!(hs.max, Some(40));
        assert_eq!(hs.buckets[2], 2);
        assert_eq!(hs.buckets[7], 1);
        assert_eq!(hs.buckets[BUCKETS - 1], 1, "40 overflows the exact range");
        assert!((hs.mean() - 12.75).abs() < 1e-12);
        assert_eq!(hs.max_bucket(), Some(BUCKETS - 1));
    }

    #[test]
    fn observe_n_matches_repeated_observe() {
        let bulk = histogram!("test.observe_n_bulk");
        let loop_h = histogram!("test.observe_n_loop");
        bulk.observe_n(3, 5);
        bulk.observe_n(40, 2);
        bulk.observe_n(7, 0); // zero repeats must not register min/max
        for _ in 0..5 {
            loop_h.observe(3);
        }
        for _ in 0..2 {
            loop_h.observe(40);
        }
        let snap = snapshot();
        let b = &snap.histograms["test.observe_n_bulk"];
        let l = &snap.histograms["test.observe_n_loop"];
        assert_eq!(b.count, l.count);
        assert_eq!(b.sum, l.sum);
        assert_eq!(b.min, l.min);
        assert_eq!(b.max, l.max);
        assert_eq!(b.buckets, l.buckets);
    }

    #[test]
    fn snapshot_delta_subtracts_counts_and_buckets() {
        let c = counter!("test.delta_counter");
        let h = histogram!("test.delta_histogram");
        c.add(2);
        h.observe(3);
        let before = snapshot();
        c.add(5);
        h.observe(3);
        h.observe(9);
        let delta = snapshot().since(&before);
        assert_eq!(delta.counter("test.delta_counter"), 5);
        let hd = &delta.histograms["test.delta_histogram"];
        assert_eq!(hd.count, 2);
        assert_eq!(hd.sum, 12);
        assert_eq!(hd.buckets[3], 1);
        assert_eq!(hd.buckets[9], 1);
    }

    #[test]
    fn span_guards_record_only_when_enabled() {
        // One test owns both states: parallel tests must not fight over
        // the global flag mid-assertion.
        set_enabled(false);
        {
            let guard = span!("test.span_disabled");
            assert!(!guard.is_active(), "disabled tracing must yield inert guards");
        }
        assert_eq!(snapshot().spans.get("test.span_disabled").map_or(0, |s| s.count), 0);

        set_enabled(true);
        {
            let guard = span!("test.span_enabled");
            assert!(guard.is_active());
            std::hint::black_box(3u64.pow(7));
        }
        let snap = snapshot();
        let s = &snap.spans["test.span_enabled"];
        assert_eq!(s.count, 1);
        assert!(s.min_ns <= s.max_ns);
        assert!(s.total_ns >= s.max_ns);
        set_enabled(true);
    }

    #[test]
    fn sink_parsing_covers_the_documented_grammar() {
        assert_eq!(Sink::parse(""), Sink::Disabled);
        assert_eq!(Sink::parse("0"), Sink::Disabled);
        assert_eq!(Sink::parse("off"), Sink::Disabled);
        assert_eq!(Sink::parse("summary"), Sink::Summary);
        assert_eq!(Sink::parse("1"), Sink::Summary);
        assert_eq!(Sink::parse("jsonl"), Sink::Jsonl(None));
        assert_eq!(
            Sink::parse("jsonl:/tmp/trace.jsonl"),
            Sink::Jsonl(Some(PathBuf::from("/tmp/trace.jsonl")))
        );
        // Pre-fix regression: `jsonl+:` used to fall through to the
        // summary sink, so a daemon asking for append-mode history got
        // no file at all.
        assert_eq!(
            Sink::parse("jsonl+:/tmp/trace.jsonl"),
            Sink::JsonlAppend(PathBuf::from("/tmp/trace.jsonl"))
        );
        // Unknown values fail open to summary.
        assert_eq!(Sink::parse("weird"), Sink::Summary);
    }

    /// Pre-fix regression for the truncate-on-flush sink: periodic
    /// flushes through the append sink must *accumulate* — two flushes
    /// yield two marker-delimited snapshots, not one surviving "last
    /// flush wins" image.
    #[test]
    fn two_append_flushes_preserve_two_snapshots() {
        let path = std::env::temp_dir().join(format!(
            "rlckit_trace_append_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        counter!("test.append_flush_counter").incr();
        append_jsonl_snapshot(&path).expect("first append");
        counter!("test.append_flush_counter").incr();
        append_jsonl_snapshot(&path).expect("second append");

        let text = std::fs::read_to_string(&path).expect("read back");
        let markers: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("{\"type\":\"flush\""))
            .collect();
        assert_eq!(markers.len(), 2, "each flush must leave its marker: {text}");
        // Marker sequence numbers are distinct and increasing.
        assert_ne!(markers[0], markers[1]);
        let counter_lines = text
            .lines()
            .filter(|l| l.contains("\"name\":\"test.append_flush_counter\""))
            .count();
        assert_eq!(counter_lines, 2, "both snapshots must carry the counter");
        // Every line is still a standalone JSON object.
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Pre-fix regression for flush atomicity: the marker's sequence
    /// number used to be claimed outside any lock and the block written
    /// through `write!` (multiple underlying writes), so two racing
    /// flushes could interleave their bytes — torn lines — or land
    /// their markers out of order. Post-fix each flush is one
    /// `write_all` under a lock that also claims the sequence number.
    #[test]
    fn interleaved_append_flushes_never_tear_blocks() {
        let path = std::env::temp_dir().join(format!(
            "rlckit_trace_interleave_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        const THREADS: u64 = 8;
        const FLUSHES: u64 = 5;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let path = &path;
                scope.spawn(move || {
                    for i in 0..FLUSHES {
                        // Grow the snapshot between flushes so blocks are
                        // big enough that an unserialized writer would
                        // interleave.
                        histogram!("test.interleave_flush_load").observe(t * FLUSHES + i);
                        append_jsonl_snapshot(path).expect("append");
                    }
                });
            }
        });

        let text = std::fs::read_to_string(&path).expect("read back");
        let mut markers = Vec::new();
        for line in text.lines() {
            // No torn lines: every line is a standalone JSON object.
            assert!(line.starts_with('{') && line.ends_with('}'), "torn line: {line:?}");
            if let Some(rest) = line.strip_prefix("{\"type\":\"flush\",\"value\":") {
                let seq: u64 = rest.trim_end_matches('}').parse().expect(line);
                markers.push(seq);
            }
        }
        assert_eq!(markers.len() as u64, THREADS * FLUSHES);
        // Markers appear in strictly increasing file order: the claim
        // and the write happened under one lock.
        for pair in markers.windows(2) {
            assert!(pair[0] < pair[1], "markers out of order: {markers:?}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn percentile_interpolates_within_buckets() {
        // 100 observations uniformly over values 0..10: the exact
        // distribution's quantile function is q -> 10q.
        let mut h = HistogramSnapshot {
            count: 100,
            sum: 450,
            min: Some(0),
            max: Some(9),
            buckets: vec![0; BUCKETS],
        };
        for b in 0..10 {
            h.buckets[b] = 10;
        }
        assert!((h.percentile(0.5).unwrap() - 5.0).abs() < 1e-12);
        assert!((h.percentile(0.95).unwrap() - 9.5).abs() < 1e-12);
        assert!((h.percentile(1.0).unwrap() - 10.0).abs() < 1e-12);
        assert!((h.percentile(0.0).unwrap() - 0.0).abs() < 1e-12);

        // A point mass at 3 spreads over [3, 4): the median is 3.5, not
        // the bare bucket index.
        let point = HistogramSnapshot {
            count: 100,
            sum: 300,
            min: Some(3),
            max: Some(3),
            buckets: {
                let mut b = vec![0; BUCKETS];
                b[3] = 100;
                b
            },
        };
        assert!((point.percentile(0.5).unwrap() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_handles_overflow_and_degenerate_inputs() {
        // All-overflow: every observation saturated into the last
        // bucket. Interpolation runs between the bucket's lower bound
        // and the recorded max instead of a fictitious +1 width.
        let mut all_over = HistogramSnapshot {
            count: 10,
            sum: 400,
            min: Some(40),
            max: Some(40),
            buckets: vec![0; BUCKETS],
        };
        all_over.buckets[BUCKETS - 1] = 10;
        let lo = (BUCKETS - 1) as f64;
        let p50 = all_over.percentile(0.5).unwrap();
        assert!((p50 - (lo + 0.5 * (40.0 - lo))).abs() < 1e-12, "{p50}");
        assert!((all_over.percentile(1.0).unwrap() - 40.0).abs() < 1e-12);

        // Mixed: half exact, half overflow — p25 is exact-range, p75
        // overflow-range.
        let mut mixed = all_over.clone();
        mixed.count = 20;
        mixed.buckets[2] = 10;
        mixed.min = Some(2);
        assert!(mixed.percentile(0.25).unwrap() < 3.0);
        assert!(mixed.percentile(0.75).unwrap() > lo);

        // Empty and out-of-range inputs answer None, never panic.
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.percentile(0.5), None);
        assert_eq!(all_over.percentile(-0.1), None);
        assert_eq!(all_over.percentile(1.5), None);
        assert_eq!(all_over.percentile(f64::NAN), None);
    }

    #[test]
    fn summary_omits_zero_valued_metrics() {
        let mut snap = Snapshot::default();
        snap.counters.insert("zeros.are.hidden".into(), 0);
        snap.counters.insert("ones.are.shown".into(), 1);
        let text = summary_of(&snap);
        assert!(!text.contains("zeros.are.hidden"));
        assert!(text.contains("ones.are.shown"));
    }

    #[test]
    fn jsonl_lines_are_wellformed_objects() {
        let c = counter!("test.jsonl_counter");
        c.incr();
        let h = histogram!("test.jsonl_histogram");
        h.observe(4);
        let text = jsonl_string();
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"type\":\"counter\""));
        assert!(text.contains("\"type\":\"histogram\""));
        assert!(text.contains("\"name\":\"test.jsonl_counter\""));
    }

    #[test]
    fn counters_ending_with_sums_the_family() {
        let mut snap = Snapshot::default();
        snap.counters.insert("a.no_convergence".into(), 2);
        snap.counters.insert("b.c.no_convergence".into(), 3);
        snap.counters.insert("b.converged".into(), 100);
        assert_eq!(snap.counters_ending_with(".no_convergence"), 5);
    }
}
