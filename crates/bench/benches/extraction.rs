//! Benchmarks the parasitic-extraction substrate (the FASTCAP/FASTHENRY
//! substitution): closed-form capacitance and inductance models are
//! nanosecond-cheap, which is what makes exploring the paper's `l`
//! uncertainty band interactive.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rlckit_extract::capacitance::{total_line_capacitance, NeighborActivity};
use rlckit_extract::geometry::{Material, WireGeometry};
use rlckit_extract::inductance::{
    microstrip_loop_inductance, partial_self_inductance, two_wire_loop_inductance,
};
use rlckit_extract::resistance::resistance_per_length;
use rlckit_units::Meters;

fn table1_wire() -> WireGeometry {
    WireGeometry::new(
        Meters::from_micro(2.0),
        Meters::from_micro(2.5),
        Meters::from_micro(2.0),
        Meters::from_micro(13.9),
    )
}

fn bench_extraction_models(c: &mut Criterion) {
    let wire = table1_wire();
    let mut group = c.benchmark_group("extraction");
    group.bench_function("resistance", |b| {
        b.iter(|| black_box(resistance_per_length(&wire, Material::COPPER_INTERCONNECT)));
    });
    group.bench_function("capacitance_total", |b| {
        b.iter(|| {
            black_box(total_line_capacitance(
                &wire,
                black_box(3.3),
                NeighborActivity::Quiet,
            ))
        });
    });
    group.bench_function("partial_self_inductance", |b| {
        b.iter(|| black_box(partial_self_inductance(&wire, Meters::from_milli(10.0))));
    });
    group.bench_function("loop_inductance_microstrip", |b| {
        b.iter(|| black_box(microstrip_loop_inductance(&wire)));
    });
    group.bench_function("loop_inductance_two_wire", |b| {
        b.iter(|| black_box(two_wire_loop_inductance(&wire, Meters::from_micro(500.0))));
    });
    group.finish();
}

fn bench_full_corner_scan(c: &mut Criterion) {
    // A realistic use: scan 1000 return-path distances to build the
    // l-uncertainty band that the optimizer then sweeps.
    let wire = table1_wire();
    c.bench_function("extraction/return_path_scan_1000", |b| {
        b.iter(|| {
            let mut worst: f64 = 0.0;
            for i in 1..=1000 {
                let d = Meters::from_micro(5.0 + i as f64 * 10.0);
                worst = worst.max(two_wire_loop_inductance(&wire, d).get());
            }
            black_box(worst)
        });
    });
}

criterion_group!(benches, bench_extraction_models, bench_full_corner_scan);
criterion_main!(benches);
