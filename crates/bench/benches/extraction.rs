//! Benchmarks the parasitic-extraction substrate (the FASTCAP/FASTHENRY
//! substitution): closed-form capacitance and inductance models are
//! nanosecond-cheap, which is what makes exploring the paper's `l`
//! uncertainty band interactive.

use std::hint::black_box;

use rlckit_bench::timer::Harness;
use rlckit_extract::capacitance::{total_line_capacitance, NeighborActivity};
use rlckit_extract::geometry::{Material, WireGeometry};
use rlckit_extract::inductance::{
    microstrip_loop_inductance, partial_self_inductance, two_wire_loop_inductance,
};
use rlckit_extract::resistance::resistance_per_length;
use rlckit_units::Meters;

fn table1_wire() -> WireGeometry {
    WireGeometry::new(
        Meters::from_micro(2.0),
        Meters::from_micro(2.5),
        Meters::from_micro(2.0),
        Meters::from_micro(13.9),
    )
}

fn bench_extraction_models(h: &mut Harness) {
    let wire = table1_wire();
    h.bench("resistance", || {
        black_box(resistance_per_length(&wire, Material::COPPER_INTERCONNECT))
    });
    h.bench("capacitance_total", || {
        black_box(total_line_capacitance(
            &wire,
            black_box(3.3),
            NeighborActivity::Quiet,
        ))
    });
    h.bench("partial_self_inductance", || {
        black_box(partial_self_inductance(&wire, Meters::from_milli(10.0)))
    });
    h.bench("loop_inductance_microstrip", || {
        black_box(microstrip_loop_inductance(&wire))
    });
    h.bench("loop_inductance_two_wire", || {
        black_box(two_wire_loop_inductance(&wire, Meters::from_micro(500.0)))
    });
}

fn bench_full_corner_scan(h: &mut Harness) {
    // A realistic use: scan 1000 return-path distances to build the
    // l-uncertainty band that the optimizer then sweeps.
    let wire = table1_wire();
    h.bench("return_path_scan_1000", || {
        let mut worst: f64 = 0.0;
        for i in 1..=1000 {
            let d = Meters::from_micro(5.0 + i as f64 * 10.0);
            worst = worst.max(two_wire_loop_inductance(&wire, d).get());
        }
        black_box(worst)
    });
}

fn main() {
    let mut h = Harness::from_args("extraction");
    bench_extraction_models(&mut h);
    bench_full_corner_scan(&mut h);
    h.finish();
}
