//! Quantifies the cost of the `rlckit-trace` instrumentation itself —
//! the "zero-cost-when-disabled" claim that justifies leaving counters
//! in the hottest solver loops.
//!
//! Three rungs are measured against a bare arithmetic baseline:
//!
//! * a counter increment / histogram observation (one relaxed
//!   `fetch_add`; *not* gated on the enabled flag);
//! * a span guard with tracing **disabled** (one relaxed load, no clock
//!   read, no allocation);
//! * a span guard with tracing **enabled** (two `Instant::now()` calls
//!   plus four relaxed RMWs on drop);
//! * a flight-recorder `event!` with tracing disabled (one relaxed
//!   load — the tier-1 `trace_overhead` guard pins this budget) and
//!   enabled (one clock read plus four relaxed ring stores).
//!
//! The smoke pass exercises all paths; the measured run writes the
//! comparison into `results/BENCH_trace_overhead.json`. A real-world
//! check rides along: the full delay solve is timed with tracing off
//! and on, and the enabled/disabled ratio is recorded — it should be
//! indistinguishable from 1 since the solver's counters are unguarded
//! either way and a solve does no span work.

use std::hint::black_box;

use rlckit::optimizer::segment_structure;
use rlckit_bench::timer::Harness;
use rlckit_tech::TechNode;
use rlckit_tline::{LineRlc, TwoPole};
use rlckit_trace::events::EventKind;
use rlckit_trace::{counter, event, histogram, span};
use rlckit_units::{HenriesPerMeter, Meters};

fn two_pole() -> TwoPole {
    let node = TechNode::nm100();
    let line = LineRlc::new(
        node.line().resistance,
        HenriesPerMeter::from_nano_per_milli(1.0),
        node.line().capacitance,
    );
    segment_structure(&line, &node.driver(), Meters::from_milli(11.1), 528.0).two_pole()
}

fn bench_primitives(h: &mut Harness) {
    let mut x = 0u64;
    h.bench("baseline_arith", move || {
        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        black_box(x)
    });
    h.bench("counter_incr", || counter!("bench.overhead.counter").incr());
    h.bench("histogram_observe", || {
        histogram!("bench.overhead.histogram").observe(3);
    });

    rlckit_trace::set_enabled(false);
    h.bench("span_disabled", || black_box(span!("bench.overhead.span_off")));
    rlckit_trace::set_enabled(true);
    h.bench("span_enabled", || black_box(span!("bench.overhead.span_on")));

    // Flight-recorder rungs: disabled is the claim that matters (one
    // relaxed load — the tier-1 `trace_overhead` guard pins it);
    // enabled is one clock read plus four relaxed stores into the
    // thread's ring.
    rlckit_trace::set_enabled(false);
    let mut id = 0u64;
    h.bench("event_record_disabled", move || {
        id = id.wrapping_add(1);
        event!(id, "bench.overhead.event_off", EventKind::Solve, 1);
        black_box(id)
    });
    rlckit_trace::set_enabled(true);
    let mut id = 0u64;
    h.bench("event_record_enabled", move || {
        id = id.wrapping_add(1);
        event!(id, "bench.overhead.event_on", EventKind::Solve, 1);
        black_box(id)
    });
    rlckit_trace::set_enabled(false);
}

fn bench_solver_with_tracing_toggled(h: &mut Harness) {
    let tp = two_pole();
    rlckit_trace::set_enabled(false);
    h.bench("delay_solve_trace_off", || {
        black_box(tp.delay(black_box(0.5)).expect("delay"))
    });
    rlckit_trace::set_enabled(true);
    h.bench("delay_solve_trace_on", || {
        black_box(tp.delay(black_box(0.5)).expect("delay"))
    });
    rlckit_trace::set_enabled(false);
    // ~1.0x: the solver's counters are unguarded relaxed atomics in
    // both states and the delay path starts no spans.
    h.record_speedup(
        "delay_solve_trace_ratio",
        "delay_solve_trace_off",
        "delay_solve_trace_on",
        &[],
    );
}

fn main() {
    let mut h = Harness::from_args("trace_overhead");
    bench_primitives(&mut h);
    bench_solver_with_tracing_toggled(&mut h);
    h.finish();
}
