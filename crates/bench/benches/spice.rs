//! Benchmarks the circuit-simulator substrate: transient cost of the
//! structures behind Figs. 9–12 (RLC ladder steps, ring-oscillator
//! revolution) and the sparse-LU kernel underneath.

use std::hint::black_box;

use rlckit_bench::timer::{BenchOptions, Harness};
use rlckit_numeric::sparse::TripletMatrix;
use rlckit_spice::builders::{ring_oscillator, rlc_ladder, LadderLine};
use rlckit_spice::transient::{simulate, TransientOptions};
use rlckit_spice::waveform::Waveform;
use rlckit_spice::Circuit;
use rlckit_tech::TechNode;
use rlckit_units::Meters;

fn bench_ladder_transient(h: &mut Harness) {
    let opts = BenchOptions::with_samples(20);
    for segments in [8usize, 32] {
        h.bench_with(&format!("ladder_transient_{segments}"), &opts, || {
            let mut ckt = Circuit::new();
            let src = ckt.add_node("src");
            let drv = ckt.add_node("drv");
            let far = ckt.add_node("far");
            ckt.voltage_source(
                src,
                Circuit::GROUND,
                Waveform::step(0.0, 1.2, 10e-12, 1e-12),
            );
            ckt.resistor(src, drv, 14.3);
            rlc_ladder(
                &mut ckt,
                drv,
                far,
                LadderLine {
                    r_per_m: 4400.0,
                    l_per_m: 1.8e-6,
                    c_per_m: 123.33e-12,
                },
                Meters::from_milli(11.1),
                segments,
            );
            ckt.capacitor(far, Circuit::GROUND, 400e-15);
            black_box(simulate(&ckt, &TransientOptions::new(1e-9, 1e-12)).expect("transient"))
        });
    }
}

fn bench_ring_oscillator_revolution(h: &mut Harness) {
    let node = TechNode::nm100();
    let ro = ring_oscillator(&node, 1.8e-6, 528.0, Meters::from_milli(11.1), 5, 8);
    let period0 = 2.0 * 5.0 * 105.94e-12;
    let opts = TransientOptions::new(period0, period0 / 600.0)
        .with_initial_voltage(ro.stage_inputs[0], 0.0);
    h.bench_with(
        "ring_oscillator_one_revolution",
        &BenchOptions::with_samples(10),
        || black_box(simulate(&ro.circuit, &opts).expect("transient")),
    );
}

fn bench_sparse_lu_kernel(h: &mut Harness) {
    // The inner kernel: factor + solve of an MNA-shaped matrix.
    let n = 200;
    let mut t = TripletMatrix::new(n);
    for i in 0..n {
        t.push(i, i, 4.0);
        if i + 1 < n {
            t.push(i, i + 1, -1.0);
            t.push(i + 1, i, -1.0);
        }
    }
    t.push(0, n - 1, -0.5);
    t.push(n - 1, 0, -0.5);
    let csr = t.to_csr();
    let rhs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    h.bench("sparse_lu_200", || {
        let lu = csr.lu().expect("factor");
        black_box(lu.solve(&rhs).expect("solve"))
    });
}

fn main() {
    let mut h = Harness::from_args("spice");
    bench_ladder_transient(&mut h);
    bench_ring_oscillator_revolution(&mut h);
    bench_sparse_lu_kernel(&mut h);
    h.finish();
}
