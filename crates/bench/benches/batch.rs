//! Benchmarks the batched structure-of-arrays solver core against the
//! scalar per-point path on the identical workload — the
//! `standard_100nm_25` campaign grid of the sweeps group — in the same
//! run, so the recorded speedup entries are in-run ratios, not
//! cross-machine wall-clock comparisons.
//!
//! Three pairs: the optimizer core and the sweep engine both serial
//! (isolating the lockstep-batching win — independent `exp` chains
//! overlapping in the CPU's out-of-order window), then the engine as
//! shipped (batched columns under guided threads) against the scalar
//! serial path the committed PR 5 baseline recorded. Every speedup
//! entry records `threads` and `cores` so a reader — and the tier-1
//! perf guard — can tell a single-CPU recording from a real one.

use std::hint::black_box;

use rlckit::batch::{optimize_batch, RlcPoint};
use rlckit::elmore::rc_optimum;
use rlckit::optimizer::{
    optimize_rlc_with_retry, segment_delay, OptimizerOptions, RetryPolicy,
};
use rlckit::outcome::{run_point, Solved};
use rlckit::sweeps::inductance_sweep_with;
use rlckit_bench::timer::{BenchOptions, Harness};
use rlckit_par::{available_threads, Parallelism};
use rlckit_tech::TechNode;
use rlckit_tline::LineRlc;
use rlckit_units::HenriesPerMeter;

/// Grid size of the reference workload (`sweeps standard_100nm_25`).
const SWEEP_POINTS: usize = 25;

/// Physical core count, for the JSON record's context fields.
fn cores() -> f64 {
    std::thread::available_parallelism().map_or(1.0, |n| n.get() as f64)
}

fn grid_points(node: &TechNode, n: usize) -> Vec<RlcPoint> {
    rlckit_numeric::grid::linspace(0.0, 4.95, n)
        .into_iter()
        .enumerate()
        .map(|(i, l)| RlcPoint {
            line: LineRlc::new(
                node.line().resistance,
                HenriesPerMeter::from_nano_per_milli(l),
                node.line().capacitance,
            ),
            scope: i as u64,
        })
        .collect()
}

/// The optimizer core head-to-head: a scalar point-at-a-time campaign
/// loop against `optimize_batch` on the same grid.
fn bench_optimizer_core(h: &mut Harness) {
    let opts = BenchOptions::with_samples(20);
    let node = TechNode::nm100();
    let driver = node.driver();
    let points = grid_points(&node, SWEEP_POINTS);
    let options = OptimizerOptions::default();
    let policy = RetryPolicy::default();

    h.bench_with("optimize_scalar_100nm_25", &opts, || {
        black_box(
            points
                .iter()
                .map(|p| {
                    run_point(p.scope, &policy, || {
                        optimize_rlc_with_retry(&p.line, &driver, options, &policy).map(|opt| {
                            Solved {
                                restarts: opt.restarts,
                                degraded: opt.used_fallback,
                                value: opt,
                            }
                        })
                    })
                })
                .collect::<Vec<_>>(),
        )
    });
    h.bench_profiled(
        "optimize_batch_100nm_25",
        &opts,
        || black_box(optimize_batch(&points, &driver, options, &policy)),
        |delta| {
            let solves = delta.counter("optimizer.solves").max(1) as f64;
            vec![
                (
                    "delay_lanes_per_solve".to_string(),
                    delta.counter("batch.lanes") as f64 / solves,
                ),
                (
                    "retired_per_iter".to_string(),
                    delta.histograms["batch.retired_per_iter"].mean(),
                ),
            ]
        },
    );
    h.record_speedup(
        "optimize_batch_speedup",
        "optimize_scalar_100nm_25",
        "optimize_batch_100nm_25",
        &[("threads", 1.0), ("cores", cores())],
    );
}

/// The pre-batching sweep semantics, replicated point-at-a-time from
/// the public API: optimize, then probe the RC design point — exactly
/// the work one batched sweep column now runs in lockstep.
fn sweep_scalar(node: &TechNode, n: usize) -> Vec<f64> {
    let line = node.line();
    let driver = node.driver();
    let options = OptimizerOptions::default();
    let policy = RetryPolicy::default();
    let rc = rc_optimum(&line, &driver);
    rlckit_numeric::grid::linspace(0.0, 4.95, n)
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            let rlc = LineRlc::new(
                line.resistance,
                HenriesPerMeter::from_nano_per_milli(l),
                line.capacitance,
            );
            let outcome = run_point(i as u64, &policy, || {
                let opt = optimize_rlc_with_retry(&rlc, &driver, options, &policy)?;
                let rc_delay = segment_delay(
                    &rlc,
                    &driver,
                    rc.segment_length,
                    rc.repeater_size,
                    options.threshold,
                )?;
                Ok(Solved {
                    restarts: opt.restarts,
                    degraded: opt.used_fallback,
                    value: opt.delay_per_length() + rc_delay.get(),
                })
            });
            outcome.value().copied().unwrap_or(f64::NAN)
        })
        .collect()
}

/// The headline number the tier-1 gate guards: the full
/// `standard_100nm_25` sweep through the batched column engine vs the
/// scalar per-point path, both serial.
fn bench_sweep_column(h: &mut Harness) {
    let opts = BenchOptions::with_samples(20);
    let node = TechNode::nm100();
    let grid: Vec<HenriesPerMeter> = rlckit_numeric::grid::linspace(0.0, 4.95, SWEEP_POINTS)
        .into_iter()
        .map(HenriesPerMeter::from_nano_per_milli)
        .collect();

    h.bench_with("sweep_scalar_100nm_25", &opts, || {
        black_box(sweep_scalar(&node, SWEEP_POINTS))
    });
    h.bench_with("sweep_batch_100nm_25", &opts, || {
        black_box(
            inductance_sweep_with(
                &node.line(),
                &node.driver(),
                grid.iter().copied(),
                OptimizerOptions::default(),
                Parallelism::Serial,
            )
            .expect("sweep"),
        )
    });
    h.record_speedup(
        "sweep_batch_speedup",
        "sweep_scalar_100nm_25",
        "sweep_batch_100nm_25",
        &[("threads", 1.0), ("cores", cores())],
    );

    // The headline campaign entry: the full batched engine as shipped
    // (columns under guided threads) against the scalar serial path the
    // PR 5 baseline recorded. This is the ≥2× target; it needs ≥2 CPUs
    // (the lockstep ILP win alone is ~1.2–1.3×, see the serial pair
    // above), which is why the JSON records `cores` and the tier-1
    // guard skips the 2× assertion on single-CPU hosts.
    h.bench_with("sweep_campaign_parallel_100nm_25", &opts, || {
        black_box(
            inductance_sweep_with(
                &node.line(),
                &node.driver(),
                grid.iter().copied(),
                OptimizerOptions::default(),
                Parallelism::Auto,
            )
            .expect("sweep"),
        )
    });
    h.record_speedup(
        "sweep_campaign_speedup",
        "sweep_scalar_100nm_25",
        "sweep_campaign_parallel_100nm_25",
        &[("threads", available_threads() as f64), ("cores", cores())],
    );
}

fn main() {
    let mut h = Harness::from_args("batch");
    bench_optimizer_core(&mut h);
    bench_sweep_column(&mut h);
    h.finish();
}
