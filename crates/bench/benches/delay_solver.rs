//! Benchmarks the rigorous delay solve (paper Eq. 3) — the paper claims
//! Newton–Raphson convergence "in less than four iterations in all
//! cases", making the exact numerical solution "extremely efficient".
//! These benches quantify that: sub-microsecond cost per delay across
//! all damping regimes and thresholds.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlckit::optimizer::segment_structure;
use rlckit_tech::TechNode;
use rlckit_tline::{LineRlc, TwoPole};
use rlckit_units::{HenriesPerMeter, Meters};

fn two_pole_for(l_nh: f64) -> TwoPole {
    let node = TechNode::nm100();
    let line = LineRlc::new(
        node.line().resistance,
        HenriesPerMeter::from_nano_per_milli(l_nh),
        node.line().capacitance,
    );
    segment_structure(&line, &node.driver(), Meters::from_milli(11.1), 528.0).two_pole()
}

fn bench_delay_regimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("delay_solver");
    for (name, l) in [("overdamped", 0.0), ("near_critical", 0.45), ("underdamped", 3.0)] {
        let tp = two_pole_for(l);
        group.bench_function(format!("fifty_percent_{name}"), |b| {
            b.iter(|| black_box(tp.delay(black_box(0.5)).expect("delay")));
        });
    }
    let tp = two_pole_for(1.0);
    for f in [0.1, 0.9] {
        group.bench_function(format!("threshold_{f}"), |b| {
            b.iter(|| black_box(tp.delay(black_box(f)).expect("delay")));
        });
    }
    group.finish();
}

fn bench_delay_random_configs(c: &mut Criterion) {
    // The paper's "all cases" claim: random (h, k, l) draws.
    let node = TechNode::nm100();
    let mut rng = StdRng::seed_from_u64(0x5eed);
    c.bench_function("delay_solver/random_configs", |b| {
        b.iter_batched(
            || {
                let l = rng.gen_range(0.0..5.0);
                let h = rng.gen_range(3.0..30.0);
                let k = rng.gen_range(50.0..1500.0);
                let line = LineRlc::new(
                    node.line().resistance,
                    HenriesPerMeter::from_nano_per_milli(l),
                    node.line().capacitance,
                );
                segment_structure(&line, &node.driver(), Meters::from_milli(h), k).two_pole()
            },
            |tp| black_box(tp.delay(0.5).expect("delay")),
            BatchSize::SmallInput,
        );
    });
}

fn bench_iteration_counts(c: &mut Criterion) {
    // Not only a timing bench: assert the paper's iteration claim holds
    // over a broad sample while measuring the combined cost.
    let node = TechNode::nm250();
    let samples: Vec<TwoPole> = (0..64)
        .map(|i| {
            let l = 5.0 * i as f64 / 64.0;
            let line = LineRlc::new(
                node.line().resistance,
                HenriesPerMeter::from_nano_per_milli(l),
                node.line().capacitance,
            );
            segment_structure(&line, &node.driver(), Meters::from_milli(14.4), 578.0).two_pole()
        })
        .collect();
    for tp in &samples {
        let (_, iterations) = tp.delay_with_iterations(0.5).expect("delay");
        assert!(iterations <= 8, "delay took {iterations} iterations");
    }
    c.bench_function("delay_solver/sweep_64_configs", |b| {
        b.iter(|| {
            for tp in &samples {
                black_box(tp.delay(0.5).expect("delay"));
            }
        });
    });
}

criterion_group!(
    benches,
    bench_delay_regimes,
    bench_delay_random_configs,
    bench_iteration_counts
);
criterion_main!(benches);
