//! Benchmarks the rigorous delay solve (paper Eq. 3) — the paper claims
//! Newton–Raphson convergence "in less than four iterations in all
//! cases", making the exact numerical solution "extremely efficient".
//! These benches quantify that: sub-microsecond cost per delay across
//! all damping regimes and thresholds.

use std::hint::black_box;

use rlckit::optimizer::segment_structure;
use rlckit_bench::timer::{BenchOptions, Harness};
use rlckit_numeric::rng::Rng;
use rlckit_tech::TechNode;
use rlckit_tline::{LineRlc, TwoPole};
use rlckit_units::{HenriesPerMeter, Meters};

fn two_pole_for(l_nh: f64) -> TwoPole {
    let node = TechNode::nm100();
    let line = LineRlc::new(
        node.line().resistance,
        HenriesPerMeter::from_nano_per_milli(l_nh),
        node.line().capacitance,
    );
    segment_structure(&line, &node.driver(), Meters::from_milli(11.1), 528.0).two_pole()
}

fn bench_delay_regimes(h: &mut Harness) {
    for (name, l) in [("overdamped", 0.0), ("near_critical", 0.45), ("underdamped", 3.0)] {
        let tp = two_pole_for(l);
        h.bench(&format!("fifty_percent_{name}"), || {
            black_box(tp.delay(black_box(0.5)).expect("delay"))
        });
    }
    let tp = two_pole_for(1.0);
    for f in [0.1, 0.9] {
        h.bench(&format!("threshold_{f}"), || {
            black_box(tp.delay(black_box(f)).expect("delay"))
        });
    }
}

fn bench_delay_random_configs(h: &mut Harness) {
    // The paper's "all cases" claim: random (h, k, l) draws, generated
    // once up front so the timed loop measures only the solve.
    let node = TechNode::nm100();
    let mut rng = Rng::new(0x5eed);
    let pool: Vec<TwoPole> = (0..256)
        .map(|_| {
            let l = rng.uniform(0.0, 5.0);
            let h_mm = rng.uniform(3.0, 30.0);
            let k = rng.uniform(50.0, 1500.0);
            let line = LineRlc::new(
                node.line().resistance,
                HenriesPerMeter::from_nano_per_milli(l),
                node.line().capacitance,
            );
            segment_structure(&line, &node.driver(), Meters::from_milli(h_mm), k).two_pole()
        })
        .collect();
    let mut i = 0usize;
    h.bench_profiled(
        "random_configs",
        &BenchOptions::default(),
        move || {
            i = (i + 1) % pool.len();
            black_box(pool[i].delay(0.5).expect("delay"))
        },
        |delta| {
            let iters = &delta.histograms["twopole.delay.iterations"];
            vec![
                ("iterations_per_solve".to_string(), iters.mean()),
                (
                    "bracket_doublings_per_solve".to_string(),
                    delta
                        .histograms
                        .get("twopole.delay.bracket_doublings")
                        .map_or(0.0, rlckit_trace::HistogramSnapshot::mean),
                ),
            ]
        },
    );
}

fn bench_iteration_counts(h: &mut Harness) {
    // Not only a timing bench: assert the paper's iteration claim holds
    // over a broad sample while measuring the combined cost.
    let node = TechNode::nm250();
    let samples: Vec<TwoPole> = (0..64)
        .map(|i| {
            let l = 5.0 * i as f64 / 64.0;
            let line = LineRlc::new(
                node.line().resistance,
                HenriesPerMeter::from_nano_per_milli(l),
                node.line().capacitance,
            );
            segment_structure(&line, &node.driver(), Meters::from_milli(14.4), 578.0).two_pole()
        })
        .collect();
    for tp in &samples {
        let (_, iterations) = tp.delay_with_iterations(0.5).expect("delay");
        assert!(iterations <= 8, "delay took {iterations} iterations");
    }
    h.bench_profiled(
        "sweep_64_configs",
        &BenchOptions::default(),
        || {
            for tp in &samples {
                black_box(tp.delay(0.5).expect("delay"));
            }
        },
        |delta| {
            vec![(
                "iterations_per_solve".to_string(),
                delta.histograms["twopole.delay.iterations"].mean(),
            )]
        },
    );
}

fn main() {
    let mut h = Harness::from_args("delay_solver");
    bench_delay_regimes(&mut h);
    bench_delay_random_configs(&mut h);
    bench_iteration_counts(&mut h);
    h.finish();
}
