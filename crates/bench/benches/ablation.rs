//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * two-pole vs. higher-order (AWE) reduced models vs. the exact
//!   inverse-Laplace oracle — accuracy audited, cost measured;
//! * analytic-residual Newton vs. fully finite-difference objective
//!   minimization;
//! * RLC-ladder section count (simulator fidelity knob);
//! * transient integration method (trapezoidal vs. backward Euler).

use std::hint::black_box;

use rlckit::optimizer::{optimize_rlc, optimize_rlc_direct, segment_structure, OptimizerOptions};
use rlckit_bench::timer::{BenchOptions, Harness};
use rlckit_spice::builders::{rlc_ladder, LadderLine};
use rlckit_spice::transient::{simulate, AdaptiveOptions, Method, TransientOptions};
use rlckit_spice::waveform::Waveform;
use rlckit_spice::Circuit;
use rlckit_tech::TechNode;
use rlckit_tline::awe::ReducedModel;
use rlckit_tline::exact::exact_delay;
use rlckit_tline::LineRlc;
use rlckit_units::{HenriesPerMeter, Meters};

fn dil_100(l_nh: f64) -> rlckit_tline::DriverInterconnectLoad {
    let node = TechNode::nm100();
    let line = LineRlc::new(
        node.line().resistance,
        HenriesPerMeter::from_nano_per_milli(l_nh),
        node.line().capacitance,
    );
    segment_structure(&line, &node.driver(), Meters::from_milli(11.1), 528.0)
}

fn bench_model_order(h: &mut Harness) {
    let dil = dil_100(1.5);
    // Accuracy audit against the exact oracle.
    let exact = exact_delay(&dil, 0.5).expect("oracle").get();
    let two_pole = dil.two_pole().delay(0.5).expect("two-pole").get();
    let err2 = (two_pole - exact).abs() / exact;
    assert!(err2 < 0.15, "two-pole error {err2}");

    h.bench("model_two_pole_delay", || {
        black_box(dil.two_pole().delay(0.5).expect("delay"))
    });
    h.bench("model_awe_order2_delay", || {
        let model = ReducedModel::from_structure(&dil, 2).expect("stable at order 2");
        black_box(model.delay(0.5).expect("delay"))
    });
    h.bench_with("model_exact_ilt_delay", &BenchOptions::with_samples(20), || {
        black_box(exact_delay(&dil, 0.5).expect("oracle"))
    });
}

fn bench_newton_vs_derivative_free(h: &mut Harness) {
    let node = TechNode::nm250();
    let line = LineRlc::new(
        node.line().resistance,
        HenriesPerMeter::from_nano_per_milli(1.5),
        node.line().capacitance,
    );
    h.bench("optimizer_analytic_newton", || {
        black_box(optimize_rlc(&line, &node.driver(), OptimizerOptions::default()).expect("opt"))
    });
    h.bench("optimizer_derivative_free", || {
        black_box(
            optimize_rlc_direct(&line, &node.driver(), OptimizerOptions::default()).expect("opt"),
        )
    });
}

fn ladder_step_response(segments: usize, method: Method) -> f64 {
    let mut ckt = Circuit::new();
    let src = ckt.add_node("src");
    let drv = ckt.add_node("drv");
    let far = ckt.add_node("far");
    ckt.voltage_source(src, Circuit::GROUND, Waveform::step(0.0, 1.2, 10e-12, 1e-12));
    ckt.resistor(src, drv, 14.3);
    rlc_ladder(
        &mut ckt,
        drv,
        far,
        LadderLine {
            r_per_m: 4400.0,
            l_per_m: 1.8e-6,
            c_per_m: 123.33e-12,
        },
        Meters::from_milli(11.1),
        segments,
    );
    ckt.capacitor(far, Circuit::GROUND, 400e-15);
    let res = simulate(
        &ckt,
        &TransientOptions::new(1e-9, 1e-12).with_method(method),
    )
    .expect("transient");
    *res.voltage(far).last().expect("samples")
}

fn bench_ladder_fidelity(h: &mut Harness) {
    let opts = BenchOptions::with_samples(15);
    for segments in [4usize, 8, 16, 32] {
        h.bench_with(&format!("ladder_segments_{segments}"), &opts, || {
            black_box(ladder_step_response(segments, Method::Trapezoidal))
        });
    }
}

fn bench_integration_method(h: &mut Harness) {
    let opts = BenchOptions::with_samples(15);
    h.bench_with("integration_trapezoidal", &opts, || {
        black_box(ladder_step_response(8, Method::Trapezoidal))
    });
    h.bench_with("integration_backward_euler", &opts, || {
        black_box(ladder_step_response(8, Method::BackwardEuler))
    });
}

fn bench_adaptive_stepping(h: &mut Harness) {
    // Fixed vs LTE-controlled stepping on the same ladder transient:
    // the controller should win wall-clock on the long quiet tail.
    let build = || {
        let mut ckt = Circuit::new();
        let src = ckt.add_node("src");
        let drv = ckt.add_node("drv");
        let far = ckt.add_node("far");
        ckt.voltage_source(src, Circuit::GROUND, Waveform::step(0.0, 1.2, 10e-12, 1e-12));
        ckt.resistor(src, drv, 14.3);
        rlc_ladder(
            &mut ckt,
            drv,
            far,
            LadderLine {
                r_per_m: 4400.0,
                l_per_m: 1.8e-6,
                c_per_m: 123.33e-12,
            },
            Meters::from_milli(11.1),
            8,
        );
        ckt.capacitor(far, Circuit::GROUND, 400e-15);
        ckt
    };
    let opts = BenchOptions::with_samples(15);
    {
        let ckt = build();
        let topts = TransientOptions::new(4e-9, 1e-12);
        h.bench_with("stepping_fixed", &opts, || {
            black_box(simulate(&ckt, &topts).expect("transient"))
        });
    }
    {
        let ckt = build();
        let topts = TransientOptions::new(4e-9, 1e-12).with_adaptive(AdaptiveOptions::around(1e-12));
        h.bench_with("stepping_adaptive", &opts, || {
            black_box(simulate(&ckt, &topts).expect("transient"))
        });
    }
}

fn main() {
    let mut h = Harness::from_args("ablation");
    bench_model_order(&mut h);
    bench_newton_vs_derivative_free(&mut h);
    bench_ladder_fidelity(&mut h);
    bench_integration_method(&mut h);
    bench_adaptive_stepping(&mut h);
    h.finish();
}
