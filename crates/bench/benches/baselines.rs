//! Benchmarks the baseline models against the paper's rigorous solve —
//! both speed (the fits are cheaper, as expected) and accuracy (where
//! they break, which is the paper's argument). The accuracy assertions
//! run once before timing.

use std::hint::black_box;

use rlckit::baselines::{ismail_friedman_optimum, km_delay};
use rlckit::optimizer::{optimize_rlc, segment_delay, OptimizerOptions};
use rlckit_bench::timer::Harness;
use rlckit_tech::TechNode;
use rlckit_tline::LineRlc;
use rlckit_units::{HenriesPerMeter, Meters};

fn line_for(node: &TechNode, l_nh: f64) -> LineRlc {
    LineRlc::new(
        node.line().resistance,
        HenriesPerMeter::from_nano_per_milli(l_nh),
        node.line().capacitance,
    )
}

fn bench_km_vs_exact(h: &mut Harness) {
    let node = TechNode::nm100();
    // Accuracy audit: near the critical inductance the KM fallback is
    // blind to l; the exact solve is not.
    let line_a = line_for(&node, 0.40);
    let line_b = line_for(&node, 0.55);
    let tp_a = rlckit::optimizer::segment_structure(&line_a, &node.driver(), Meters::from_milli(11.1), 528.0).two_pole();
    let tp_b = rlckit::optimizer::segment_structure(&line_b, &node.driver(), Meters::from_milli(11.1), 528.0).two_pole();
    let (km_a, _) = km_delay(&tp_a, 0.5).expect("km");
    let (km_b, _) = km_delay(&tp_b, 0.5).expect("km");
    let exact_a = tp_a.delay(0.5).expect("delay");
    let exact_b = tp_b.delay(0.5).expect("delay");
    let km_moves = (km_b.get() - km_a.get()).abs() / exact_a.get();
    let exact_moves = (exact_b.get() - exact_a.get()).abs() / exact_a.get();
    assert!(
        km_moves < 0.5 * exact_moves,
        "km sensitivity {km_moves} should be far below exact {exact_moves} near criticality"
    );

    h.bench("km_delay", || black_box(km_delay(&tp_a, 0.5).expect("km")));
    h.bench("exact_two_pole_delay", || {
        black_box(tp_a.delay(0.5).expect("delay"))
    });
}

fn bench_if_fit_vs_newton(h: &mut Harness) {
    let node = TechNode::nm100();
    let line = line_for(&node, 2.0);

    // Accuracy audit: the fit's (h, k) costs measurably more delay per
    // unit length than the rigorous optimum.
    let fit = ismail_friedman_optimum(&line, &node.driver());
    let rigorous = optimize_rlc(&line, &node.driver(), OptimizerOptions::default()).expect("opt");
    let fit_cost = segment_delay(&line, &node.driver(), fit.segment_length, fit.repeater_size, 0.5)
        .expect("delay")
        .get()
        / fit.segment_length.get();
    assert!(
        fit_cost >= rigorous.delay_per_length() * 0.999,
        "the fit cannot beat the optimum"
    );

    h.bench("ismail_friedman_fit", || {
        black_box(ismail_friedman_optimum(&line, &node.driver()))
    });
    h.bench("rigorous_newton_optimum", || {
        black_box(optimize_rlc(&line, &node.driver(), OptimizerOptions::default()).expect("opt"))
    });
}

fn main() {
    let mut h = Harness::from_args("baselines");
    bench_km_vs_exact(&mut h);
    bench_if_fit_vs_newton(&mut h);
    h.finish();
}
