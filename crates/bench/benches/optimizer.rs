//! Benchmarks the repeater-insertion optimizer (paper §2.2) — the Newton
//! solve of the stationarity system that the paper reports converging
//! "in less than six iterations in all cases", against the
//! derivative-free Nelder–Mead reference.

use std::hint::black_box;

use rlckit::optimizer::{optimize_rlc, optimize_rlc_direct, OptimizerOptions};
use rlckit_bench::timer::{BenchOptions, Harness};
use rlckit_tech::TechNode;
use rlckit_tline::LineRlc;
use rlckit_units::HenriesPerMeter;

fn line_for(node: &TechNode, l_nh: f64) -> LineRlc {
    LineRlc::new(
        node.line().resistance,
        HenriesPerMeter::from_nano_per_milli(l_nh),
        node.line().capacitance,
    )
}

fn bench_newton_vs_direct(h: &mut Harness) {
    let node = TechNode::nm100();
    for l in [0.0, 1.0, 3.0] {
        let line = line_for(&node, l);
        h.bench(&format!("newton_l{l}"), || {
            black_box(
                optimize_rlc(&line, &node.driver(), OptimizerOptions::default())
                    .expect("optimum"),
            )
        });
        h.bench(&format!("nelder_mead_l{l}"), || {
            black_box(
                optimize_rlc_direct(&line, &node.driver(), OptimizerOptions::default())
                    .expect("optimum"),
            )
        });
    }
}

fn bench_iteration_claim(h: &mut Harness) {
    // The paper's ≤6-iterations claim across the full sweep (we allow a
    // small damping margin).
    let node = TechNode::nm250();
    for i in 0..25 {
        let l = 4.95 * i as f64 / 24.0;
        let opt = optimize_rlc(&line_for(&node, l), &node.driver(), OptimizerOptions::default())
            .expect("optimum");
        assert!(!opt.used_fallback, "fallback at l={l}");
        assert!(opt.iterations <= 15, "l={l}: {} iterations", opt.iterations);
    }
    let line = line_for(&node, 2.0);
    h.bench_profiled(
        "single_point_250nm",
        &BenchOptions::default(),
        || {
            black_box(
                optimize_rlc(&line, &node.driver(), OptimizerOptions::default())
                    .expect("optimum"),
            )
        },
        |delta| {
            let solves = delta.counter("optimizer.solves").max(1) as f64;
            vec![
                (
                    "newton_iterations_per_solve".to_string(),
                    delta.histograms["optimizer.newton.iterations"].mean(),
                ),
                (
                    "delay_iterations_per_solve".to_string(),
                    delta.histograms["twopole.delay.iterations"].mean(),
                ),
                (
                    "fallbacks_per_solve".to_string(),
                    delta.counter("optimizer.fallbacks") as f64 / solves,
                ),
                (
                    "cache_hits_per_solve".to_string(),
                    delta.counter("optimizer.cache.hits") as f64 / solves,
                ),
                (
                    "cache_misses_per_solve".to_string(),
                    delta.counter("optimizer.cache.misses") as f64 / solves,
                ),
            ]
        },
    );
}

fn main() {
    let mut h = Harness::from_args("optimizer");
    bench_newton_vs_direct(&mut h);
    bench_iteration_claim(&mut h);
    h.finish();
}
