//! Benchmarks the repeater-insertion optimizer (paper §2.2) — the Newton
//! solve of the stationarity system that the paper reports converging
//! "in less than six iterations in all cases", against the
//! derivative-free Nelder–Mead reference.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rlckit::optimizer::{optimize_rlc, optimize_rlc_direct, OptimizerOptions};
use rlckit_tech::TechNode;
use rlckit_tline::LineRlc;
use rlckit_units::HenriesPerMeter;

fn line_for(node: &TechNode, l_nh: f64) -> LineRlc {
    LineRlc::new(
        node.line().resistance,
        HenriesPerMeter::from_nano_per_milli(l_nh),
        node.line().capacitance,
    )
}

fn bench_newton_vs_direct(c: &mut Criterion) {
    let node = TechNode::nm100();
    let mut group = c.benchmark_group("optimizer");
    for l in [0.0, 1.0, 3.0] {
        let line = line_for(&node, l);
        group.bench_function(format!("newton_l{l}"), |b| {
            b.iter(|| {
                black_box(
                    optimize_rlc(&line, &node.driver(), OptimizerOptions::default())
                        .expect("optimum"),
                )
            });
        });
        group.bench_function(format!("nelder_mead_l{l}"), |b| {
            b.iter(|| {
                black_box(
                    optimize_rlc_direct(&line, &node.driver(), OptimizerOptions::default())
                        .expect("optimum"),
                )
            });
        });
    }
    group.finish();
}

fn bench_iteration_claim(c: &mut Criterion) {
    // The paper's ≤6-iterations claim across the full sweep (we allow a
    // small damping margin).
    let node = TechNode::nm250();
    for i in 0..25 {
        let l = 4.95 * i as f64 / 24.0;
        let opt = optimize_rlc(&line_for(&node, l), &node.driver(), OptimizerOptions::default())
            .expect("optimum");
        assert!(!opt.used_fallback, "fallback at l={l}");
        assert!(opt.iterations <= 15, "l={l}: {} iterations", opt.iterations);
    }
    let line = line_for(&node, 2.0);
    c.bench_function("optimizer/single_point_250nm", |b| {
        b.iter(|| {
            black_box(
                optimize_rlc(&line, &node.driver(), OptimizerOptions::default())
                    .expect("optimum"),
            )
        });
    });
}

criterion_group!(benches, bench_newton_vs_direct, bench_iteration_claim);
criterion_main!(benches);
