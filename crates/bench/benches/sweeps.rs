//! Benchmarks the figure-generation sweeps (Figs. 4–8): the full
//! per-point optimization pipeline that regenerates the paper's
//! evaluation curves, plus the serial-vs-parallel campaign baseline
//! (`rlckit-par`). Speedup entries record the thread count they ran
//! with, so results from differently-sized hosts stay comparable.

use std::hint::black_box;

use rlckit::optimizer::OptimizerOptions;
use rlckit::sweeps::{delay_ratio_series, inductance_sweep_with, standard_node_sweep};
use rlckit_bench::timer::{BenchOptions, Harness};
use rlckit_bench::variation::{run_variation_study_with, VariationConfig};
use rlckit_par::{available_threads, Parallelism};
use rlckit_tech::TechNode;
use rlckit_units::HenriesPerMeter;

/// Inductance-grid size for the serial-vs-parallel campaign baseline.
const CAMPAIGN_POINTS: usize = 200;

/// Physical core count. Recorded next to `threads` in every speedup
/// entry so a ~1× ratio from a single-CPU recording is legible as such
/// (and so `tier1.sh` can skip its parallel-speedup assertion there).
fn cores() -> f64 {
    std::thread::available_parallelism().map_or(1.0, |n| n.get() as f64)
}

fn bench_standard_sweep(h: &mut Harness) {
    let opts = BenchOptions::with_samples(20);
    for points in [5usize, 25] {
        let node = TechNode::nm100();
        h.bench_profiled(
            &format!("standard_100nm_{points}"),
            &opts,
            || black_box(standard_node_sweep(&node, points).expect("sweep")),
            |delta| {
                let points = delta.counter("sweeps.points").max(1) as f64;
                vec![
                    (
                        "optimizer_newton_iterations_per_solve".to_string(),
                        delta.histograms["optimizer.newton.iterations"].mean(),
                    ),
                    (
                        "delay_iterations_per_solve".to_string(),
                        delta.histograms["twopole.delay.iterations"].mean(),
                    ),
                    (
                        "no_convergence_per_point".to_string(),
                        delta.counters_ending_with(".no_convergence") as f64 / points,
                    ),
                    (
                        "optimizer_cache_hits_per_point".to_string(),
                        delta.counter("optimizer.cache.hits") as f64 / points,
                    ),
                ]
            },
        );
    }
}

fn bench_figure_series(h: &mut Harness) {
    let node = TechNode::nm250();
    let sweep = standard_node_sweep(&node, 25).expect("sweep");
    h.bench("fig7_series_from_sweep", || {
        black_box(delay_ratio_series(black_box(&sweep)))
    });
}

fn bench_campaign_parallelism(h: &mut Harness) {
    let opts = BenchOptions::with_samples(10);
    let node = TechNode::nm100();
    let grid: Vec<HenriesPerMeter> = rlckit_numeric::grid::linspace(0.0, 4.95, CAMPAIGN_POINTS)
        .into_iter()
        .map(HenriesPerMeter::from_nano_per_milli)
        .collect();
    for (name, policy) in [
        ("campaign_sweep_serial", Parallelism::Serial),
        ("campaign_sweep_parallel", Parallelism::Auto),
    ] {
        h.bench_with(name, &opts, || {
            black_box(
                inductance_sweep_with(
                    &node.line(),
                    &node.driver(),
                    grid.iter().copied(),
                    OptimizerOptions::default(),
                    policy,
                )
                .expect("sweep"),
            )
        });
    }
    h.record_speedup(
        "campaign_sweep_speedup",
        "campaign_sweep_serial",
        "campaign_sweep_parallel",
        &[("threads", available_threads() as f64), ("cores", cores())],
    );

    let cfg = VariationConfig {
        samples: 512,
        ..VariationConfig::default()
    };
    for (name, policy) in [
        ("monte_carlo_serial", Parallelism::Serial),
        ("monte_carlo_parallel", Parallelism::Auto),
    ] {
        h.bench_with(name, &opts, || {
            black_box(run_variation_study_with(&node, &cfg, policy))
        });
    }
    h.record_speedup(
        "monte_carlo_speedup",
        "monte_carlo_serial",
        "monte_carlo_parallel",
        &[("threads", available_threads() as f64), ("cores", cores())],
    );
}

fn main() {
    let mut h = Harness::from_args("sweeps");
    bench_standard_sweep(&mut h);
    bench_figure_series(&mut h);
    bench_campaign_parallelism(&mut h);
    h.finish();
}
