//! Benchmarks the figure-generation sweeps (Figs. 4–8): the full
//! per-point optimization pipeline that regenerates the paper's
//! evaluation curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rlckit::sweeps::{delay_ratio_series, standard_node_sweep};
use rlckit_tech::TechNode;

fn bench_standard_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweeps");
    group.sample_size(20);
    for points in [5usize, 25] {
        group.bench_with_input(
            BenchmarkId::new("standard_100nm", points),
            &points,
            |b, &points| {
                let node = TechNode::nm100();
                b.iter(|| black_box(standard_node_sweep(&node, points).expect("sweep")));
            },
        );
    }
    group.finish();
}

fn bench_figure_series(c: &mut Criterion) {
    let node = TechNode::nm250();
    let sweep = standard_node_sweep(&node, 25).expect("sweep");
    c.bench_function("sweeps/fig7_series_from_sweep", |b| {
        b.iter(|| black_box(delay_ratio_series(black_box(&sweep))));
    });
}

criterion_group!(benches, bench_standard_sweep, bench_figure_series);
criterion_main!(benches);
