//! Benchmarks the figure-generation sweeps (Figs. 4–8): the full
//! per-point optimization pipeline that regenerates the paper's
//! evaluation curves.

use std::hint::black_box;

use rlckit::sweeps::{delay_ratio_series, standard_node_sweep};
use rlckit_bench::timer::{BenchOptions, Harness};
use rlckit_tech::TechNode;

fn bench_standard_sweep(h: &mut Harness) {
    let opts = BenchOptions::with_samples(20);
    for points in [5usize, 25] {
        let node = TechNode::nm100();
        h.bench_with(&format!("standard_100nm_{points}"), &opts, || {
            black_box(standard_node_sweep(&node, points).expect("sweep"))
        });
    }
}

fn bench_figure_series(h: &mut Harness) {
    let node = TechNode::nm250();
    let sweep = standard_node_sweep(&node, 25).expect("sweep");
    h.bench("fig7_series_from_sweep", || {
        black_box(delay_ratio_series(black_box(&sweep)))
    });
}

fn main() {
    let mut h = Harness::from_args("sweeps");
    bench_standard_sweep(&mut h);
    bench_figure_series(&mut h);
    h.finish();
}
