//! The Monte-Carlo variation flow must be a pure function of its seed:
//! equal seeds give bit-identical draws and summary statistics, and a
//! different seed actually changes the draws. This is what makes every
//! measured distribution in the paper reproduction replayable.

use rlckit_bench::variation::{run_variation_study, run_variation_study_with, VariationConfig};
use rlckit_par::Parallelism;
use rlckit_tech::TechNode;

fn small_config(seed: u64) -> VariationConfig {
    VariationConfig {
        samples: 256,
        seed,
        ..VariationConfig::default()
    }
}

#[test]
fn same_seed_gives_bit_identical_statistics() {
    let node = TechNode::nm100();
    let a = run_variation_study(&node, &small_config(0xd1a1));
    let b = run_variation_study(&node, &small_config(0xd1a1));

    assert_eq!(a.draws.len(), b.draws.len());
    for (x, y) in a.draws.iter().zip(&b.draws) {
        assert_eq!(x.to_bits(), y.to_bits(), "draws must replay bit-for-bit");
    }
    assert_eq!(a.designs.len(), b.designs.len());
    for (da, db) in a.designs.iter().zip(&b.designs) {
        assert_eq!(da.name, db.name);
        assert_eq!(da.mean.to_bits(), db.mean.to_bits(), "{}: mean", da.name);
        assert_eq!(da.std.to_bits(), db.std.to_bits(), "{}: std", da.name);
        assert_eq!(da.p95.to_bits(), db.p95.to_bits(), "{}: p95", da.name);
    }
}

#[test]
fn parallel_study_is_bit_identical_to_serial() {
    let node = TechNode::nm100();
    let cfg = small_config(0xd1a1);
    let serial = run_variation_study_with(&node, &cfg, Parallelism::Serial);
    for policy in [Parallelism::Threads(2), Parallelism::Threads(5), Parallelism::Auto] {
        let par = run_variation_study_with(&node, &cfg, policy);
        assert_eq!(serial.draws.len(), par.draws.len());
        for (x, y) in serial.draws.iter().zip(&par.draws) {
            assert_eq!(x.to_bits(), y.to_bits(), "{policy:?}: draws must match serial");
        }
        for (ds, dp) in serial.designs.iter().zip(&par.designs) {
            assert_eq!(ds.name, dp.name);
            assert_eq!(ds.mean.to_bits(), dp.mean.to_bits(), "{policy:?} {}: mean", ds.name);
            assert_eq!(ds.std.to_bits(), dp.std.to_bits(), "{policy:?} {}: std", ds.name);
            assert_eq!(ds.p95.to_bits(), dp.p95.to_bits(), "{policy:?} {}: p95", ds.name);
        }
    }
}

#[test]
fn different_seed_gives_different_draws() {
    let node = TechNode::nm100();
    let a = run_variation_study(&node, &small_config(1));
    let b = run_variation_study(&node, &small_config(2));
    let identical = a
        .draws
        .iter()
        .zip(&b.draws)
        .filter(|(x, y)| x.to_bits() == y.to_bits())
        .count();
    assert_eq!(identical, 0, "independent seeds must not replay each other");
}

#[test]
fn draws_stay_inside_the_configured_band() {
    let node = TechNode::nm100();
    let cfg = small_config(7);
    let study = run_variation_study(&node, &cfg);
    assert_eq!(study.draws.len(), cfg.samples);
    assert!(study
        .draws
        .iter()
        .all(|&l| (cfg.band_lo..=cfg.band_hi).contains(&l)));
    // The RLC designs must report physically positive spreads.
    for d in &study.designs {
        assert!(d.mean > 0.0 && d.std >= 0.0 && d.p95 >= d.mean * 0.5, "{d:?}");
    }
}
