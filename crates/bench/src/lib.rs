//! Shared plumbing for the experiment binaries that regenerate every
//! table and figure of the paper.
//!
//! Each binary prints the paper's rows/series as an aligned text table
//! and writes the same data as CSV under `results/` (next to the
//! workspace root) for plotting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timer;
pub mod traceview;
pub mod variation;

use std::fs;
use std::path::PathBuf;

use rlckit::report::Table;

/// Returns the output directory for experiment CSVs, creating it if
/// needed (`$RLCKIT_RESULTS_DIR` or `results/` under the current
/// directory).
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("RLCKIT_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Prints a table to stdout under a heading and writes it as
/// `results/<name>.csv`. IO errors are reported but non-fatal — the
/// printed table is the primary deliverable.
pub fn emit(name: &str, heading: &str, table: &Table) {
    println!("## {heading}\n");
    println!("{}", table.to_text());
    let path = results_dir().join(format!("{name}.csv"));
    match fs::write(&path, table.to_csv()) {
        Ok(()) => println!("(csv written to {})\n", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Prints the one-line campaign trace summary for a fig/table binary to
/// stderr and flushes the `RLCKIT_TRACE` sink (a no-op when tracing is
/// disabled). Call at the end of every experiment binary's `main` so
/// CSV regeneration logs record points solved, `NoConvergence` tallies
/// and relaxed-tolerance accepts.
pub fn trace_footer(bin: &str) {
    eprintln!("{bin}: {}", rlckit::report::campaign_trace_summary());
    rlckit_trace::flush();
}

/// The paper's standard inductance grid: `0 ≤ l < 5 nH/mm`.
#[must_use]
pub fn paper_inductance_grid(points: usize) -> Vec<f64> {
    rlckit_numeric::grid::linspace(0.0, 4.95, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_paper_range() {
        let g = paper_inductance_grid(12);
        assert_eq!(g.len(), 12);
        assert_eq!(g[0], 0.0);
        assert!(*g.last().unwrap() < 5.0);
    }

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.exists());
    }
}
