//! A lightweight bench timer: the workspace's replacement for Criterion.
//!
//! Each measurement runs a warmup, then collects timed samples of a
//! calibrated iteration batch and reports min / median / p95 / mean
//! nanoseconds per iteration. Results are printed as aligned text and
//! written as JSON lines to `results/BENCH_<group>.json` (one object per
//! benchmark) so future runs can be diffed mechanically.
//!
//! Bench targets are `harness = false` binaries:
//!
//! ```no_run
//! use rlckit_bench::timer::Harness;
//!
//! fn main() {
//!     let mut h = Harness::from_args("my_group");
//!     h.bench("fast_thing", || 2 + 2);
//!     h.finish();
//! }
//! ```
//!
//! Under `cargo bench` the full measurement runs; when the binary is
//! invoked with `--test` (as `cargo test --benches` does) or with
//! `RLCKIT_BENCH_SMOKE=1`, every benchmark body runs exactly once as a
//! smoke check and nothing is measured. Positional command-line
//! arguments act as substring filters on benchmark names, mirroring
//! `cargo bench -- <filter>`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-benchmark measurement knobs.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// How long to spin the body before sampling begins.
    pub warmup: Duration,
    /// Number of timed samples to collect.
    pub samples: usize,
    /// Target wall-clock duration of one sample; the iteration batch is
    /// calibrated so one sample takes roughly this long.
    pub target_sample: Duration,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(100),
            samples: 30,
            target_sample: Duration::from_millis(5),
        }
    }
}

impl BenchOptions {
    /// A reduced-sample configuration for expensive bodies (the
    /// `sample_size(n)` idiom).
    #[must_use]
    pub fn with_samples(samples: usize) -> Self {
        Self {
            samples,
            ..Self::default()
        }
    }
}

/// Summary statistics for one benchmark.
///
/// For measured benchmarks the four summary fields are nanoseconds per
/// iteration (`unit == "ns_per_iter"`); for entries derived with
/// [`Harness::record_speedup`] they are dimensionless baseline/contender
/// ratios (`unit == "speedup_x"`) and the `_ns` suffix is historical.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Benchmark name (unique within its group).
    pub name: String,
    /// Unit of the four summary fields.
    pub unit: &'static str,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// Mean over all samples.
    pub mean_ns: f64,
    /// Iterations per timed sample after calibration.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Extra context fields emitted verbatim into the JSON record
    /// (e.g. `("threads", 4.0)`).
    pub extra: Vec<(String, f64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    Smoke,
}

/// A group of benchmarks sharing one results file.
#[derive(Debug)]
pub struct Harness {
    group: String,
    mode: Mode,
    filters: Vec<String>,
    results: Vec<Stats>,
}

impl Harness {
    /// Creates a harness, inspecting the process arguments the way a
    /// `harness = false` target must: `--test` (or
    /// `RLCKIT_BENCH_SMOKE=1`) selects smoke mode, `--bench` and other
    /// flags are ignored, and positional arguments become name filters.
    #[must_use]
    pub fn from_args(group: &str) -> Self {
        let mut mode = Mode::Measure;
        if std::env::var_os("RLCKIT_BENCH_SMOKE").is_some_and(|v| v != "0") {
            mode = Mode::Smoke;
        }
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                mode = Mode::Smoke;
            } else if !arg.starts_with('-') {
                filters.push(arg);
            }
        }
        Self {
            group: group.to_string(),
            mode,
            filters,
            results: Vec::new(),
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty()
            || self
                .filters
                .iter()
                .any(|f| name.contains(f.as_str()) || self.group.contains(f.as_str()))
    }

    /// Measures `body` with default options.
    pub fn bench<T>(&mut self, name: &str, body: impl FnMut() -> T) {
        self.bench_with(name, &BenchOptions::default(), body);
    }

    /// Measures `body` with explicit options.
    pub fn bench_with<T>(&mut self, name: &str, opts: &BenchOptions, mut body: impl FnMut() -> T) {
        if !self.selected(name) {
            return;
        }
        if self.mode == Mode::Smoke {
            black_box(body());
            println!("smoke {}/{name}: ok", self.group);
            return;
        }

        // Calibrate the batch size on a single run.
        let once = {
            let t0 = Instant::now();
            black_box(body());
            t0.elapsed().max(Duration::from_nanos(1))
        };
        let iters = (opts.target_sample.as_nanos() / once.as_nanos()).clamp(1, 50_000_000) as u64;

        // Warmup.
        let warm_until = Instant::now() + opts.warmup;
        while Instant::now() < warm_until {
            black_box(body());
        }

        // Timed samples.
        let mut samples_ns: Vec<f64> = Vec::with_capacity(opts.samples);
        for _ in 0..opts.samples.max(1) {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));

        let stats = Stats {
            name: name.to_string(),
            unit: "ns_per_iter",
            min_ns: samples_ns[0],
            median_ns: percentile(&samples_ns, 0.50),
            p95_ns: percentile(&samples_ns, 0.95),
            mean_ns: samples_ns.iter().sum::<f64>() / samples_ns.len() as f64,
            iters_per_sample: iters,
            samples: samples_ns.len(),
            extra: Vec::new(),
        };
        println!(
            "bench {:<44} min {:>10}  median {:>10}  p95 {:>10}",
            format!("{}/{}", self.group, stats.name),
            format_ns(stats.min_ns),
            format_ns(stats.median_ns),
            format_ns(stats.p95_ns),
        );
        self.results.push(stats);
    }

    /// Measures `body` like [`Harness::bench_with`], snapshotting the
    /// process-wide trace metrics around the whole measurement and
    /// handing the **delta** to `derive`, whose `(key, value)` pairs
    /// are appended to the JSON record's extra fields.
    ///
    /// The delta covers calibration and warmup runs too, so derive
    /// ratios *within* the snapshot (e.g. a histogram's
    /// `mean()` = iterations per solve) rather than dividing by the
    /// timed iteration count — ratios are insensitive to the extra
    /// runs. A no-op beyond the plain measurement in smoke mode.
    pub fn bench_profiled<T>(
        &mut self,
        name: &str,
        opts: &BenchOptions,
        body: impl FnMut() -> T,
        derive: impl FnOnce(&rlckit_trace::Snapshot) -> Vec<(String, f64)>,
    ) {
        if !self.selected(name) {
            return;
        }
        let before = rlckit_trace::snapshot();
        self.bench_with(name, opts, body);
        if self.mode == Mode::Smoke {
            return;
        }
        let delta = rlckit_trace::snapshot().since(&before);
        let extras = derive(&delta);
        if let Some(s) = self.results.last_mut() {
            if s.name == name {
                s.extra.extend(extras);
            }
        }
    }

    /// Looks up an already-recorded benchmark by exact name.
    #[must_use]
    pub fn stats(&self, name: &str) -> Option<&Stats> {
        self.results.iter().find(|s| s.name == name)
    }

    /// Appends extra `(key, value)` context fields to an
    /// already-recorded benchmark's JSON record — for quantities
    /// computed *from* the measurement after the fact (a replay bench's
    /// queries-per-second derives from its own median, which no closure
    /// passed into the measurement can see). A no-op in smoke mode or
    /// when `name` was filtered out, like the other derived entries.
    pub fn annotate(&mut self, name: &str, extra: &[(&str, f64)]) {
        if let Some(s) = self.results.iter_mut().find(|s| s.name == name) {
            s.extra
                .extend(extra.iter().map(|&(k, v)| (k.to_string(), v)));
        }
    }

    /// Records a derived `baseline / contender` speedup entry computed
    /// from two previously-measured benchmarks in this group, ratioed
    /// statistic by statistic (min/min, median/median, …). `extra`
    /// carries context fields such as the thread count into the JSON
    /// record. A no-op in smoke mode or when either side was filtered
    /// out (so bench filters keep working).
    pub fn record_speedup(
        &mut self,
        name: &str,
        baseline: &str,
        contender: &str,
        extra: &[(&str, f64)],
    ) {
        if self.mode == Mode::Smoke {
            return;
        }
        let (Some(b), Some(c)) = (self.stats(baseline).cloned(), self.stats(contender).cloned())
        else {
            return;
        };
        let stats = Stats {
            name: name.to_string(),
            unit: "speedup_x",
            min_ns: b.min_ns / c.min_ns,
            median_ns: b.median_ns / c.median_ns,
            p95_ns: b.p95_ns / c.p95_ns,
            mean_ns: b.mean_ns / c.mean_ns,
            iters_per_sample: c.iters_per_sample,
            samples: c.samples,
            extra: extra.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        };
        println!(
            "bench {:<44} min {:>9.3}x  median {:>6.3}x  p95 {:>9.3}x",
            format!("{}/{}", self.group, stats.name),
            stats.min_ns,
            stats.median_ns,
            stats.p95_ns,
        );
        self.results.push(stats);
    }

    /// Writes the JSON-lines results file and consumes the harness. In
    /// smoke mode (or when every benchmark was filtered out) nothing is
    /// written. When `RLCKIT_TRACE` selects a sink, the group's counter
    /// summary is printed to stderr in *both* modes — this is how the
    /// tier-1 smoke pass audits `*.no_convergence` counters.
    pub fn finish(self) {
        if rlckit_trace::enabled() {
            eprint!(
                "trace[{}]:\n{}",
                self.group,
                rlckit_trace::summary_string()
            );
        }
        if self.mode == Mode::Smoke || self.results.is_empty() {
            return;
        }
        let mut out = String::new();
        for s in &self.results {
            let mut extra = String::new();
            for (k, v) in &s.extra {
                extra.push_str(&format!(",{}:{v:.3}", json_string(k)));
            }
            out.push_str(&format!(
                "{{\"group\":{},\"name\":{},\"unit\":{},\
                 \"min\":{:.3},\"median\":{:.3},\"p95\":{:.3},\"mean\":{:.3},\
                 \"samples\":{},\"iters_per_sample\":{}{extra}}}\n",
                json_string(&self.group),
                json_string(&s.name),
                json_string(s.unit),
                s.min_ns,
                s.median_ns,
                s.p95_ns,
                s.mean_ns,
                s.samples,
                s.iters_per_sample,
            ));
        }
        let path = crate::results_dir().join(format!("BENCH_{}.json", self.group));
        match std::fs::write(&path, out) {
            Ok(()) => println!("(bench json written to {})", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_expected_samples() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }

    #[test]
    fn ns_formatting_scales_units() {
        assert_eq!(format_ns(512.0), "512.0 ns");
        assert_eq!(format_ns(2_500.0), "2.50 µs");
        assert_eq!(format_ns(7_300_000.0), "7.30 ms");
        assert_eq!(format_ns(1.2e9), "1.200 s");
    }

    #[test]
    fn json_strings_escape_quotes() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }

    #[test]
    fn smoke_mode_runs_body_once_and_records_nothing() {
        let mut h = Harness {
            group: "t".into(),
            mode: Mode::Smoke,
            filters: Vec::new(),
            results: Vec::new(),
        };
        let mut runs = 0;
        h.bench("x", || runs += 1);
        assert_eq!(runs, 1);
        assert!(h.results.is_empty());
    }

    #[test]
    fn filters_skip_unmatched_names() {
        let mut h = Harness {
            group: "grp".into(),
            mode: Mode::Smoke,
            filters: vec!["wanted".into()],
            results: Vec::new(),
        };
        let mut runs = 0;
        h.bench("other", || runs += 1);
        assert_eq!(runs, 0);
        h.bench("wanted_thing", || runs += 1);
        assert_eq!(runs, 1);
    }

    #[test]
    fn measurement_produces_ordered_stats() {
        let mut h = Harness {
            group: "t".into(),
            mode: Mode::Measure,
            filters: Vec::new(),
            results: Vec::new(),
        };
        let opts = BenchOptions {
            warmup: Duration::from_millis(1),
            samples: 5,
            target_sample: Duration::from_micros(200),
        };
        h.bench_with("spin", &opts, || std::hint::black_box(3u64.pow(7)));
        let s = &h.results[0];
        assert!(s.min_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p95_ns);
        assert_eq!(s.samples, 5);
        assert_eq!(s.unit, "ns_per_iter");
    }

    fn canned(name: &str, scale: f64) -> Stats {
        Stats {
            name: name.into(),
            unit: "ns_per_iter",
            min_ns: 100.0 * scale,
            median_ns: 120.0 * scale,
            p95_ns: 150.0 * scale,
            mean_ns: 125.0 * scale,
            iters_per_sample: 10,
            samples: 5,
            extra: Vec::new(),
        }
    }

    #[test]
    fn speedup_ratios_each_statistic_and_keeps_context() {
        let mut h = Harness {
            group: "t".into(),
            mode: Mode::Measure,
            filters: Vec::new(),
            results: vec![canned("serial", 4.0), canned("parallel", 1.0)],
        };
        h.record_speedup("speedup", "serial", "parallel", &[("threads", 8.0)]);
        let s = h.stats("speedup").expect("recorded");
        assert_eq!(s.unit, "speedup_x");
        assert!((s.min_ns - 4.0).abs() < 1e-12);
        assert!((s.median_ns - 4.0).abs() < 1e-12);
        assert!((s.p95_ns - 4.0).abs() < 1e-12);
        assert_eq!(s.extra, vec![("threads".to_string(), 8.0)]);
    }

    #[test]
    fn speedup_is_a_noop_when_a_side_is_missing_or_in_smoke_mode() {
        let mut h = Harness {
            group: "t".into(),
            mode: Mode::Measure,
            filters: Vec::new(),
            results: vec![canned("serial", 1.0)],
        };
        h.record_speedup("speedup", "serial", "absent", &[]);
        assert!(h.stats("speedup").is_none());

        let mut smoke = Harness {
            group: "t".into(),
            mode: Mode::Smoke,
            filters: Vec::new(),
            results: vec![canned("serial", 2.0), canned("parallel", 1.0)],
        };
        smoke.record_speedup("speedup", "serial", "parallel", &[]);
        assert!(smoke.stats("speedup").is_none());
    }
}
