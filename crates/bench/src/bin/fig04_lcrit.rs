//! Regenerates the paper's **Fig. 4**: critical inductance `l_crit`
//! (evaluated at the RLC-optimal `(h, k)`) as a function of the line
//! inductance `l`, for both technology nodes.

use rlckit::report::Table;
use rlckit::sweeps::standard_node_sweep;
use rlckit_bench::emit;
use rlckit_tech::TechNode;

fn main() {
    let n = 25;
    let s250 = standard_node_sweep(&TechNode::nm250(), n).expect("sweep 250nm");
    let s100 = standard_node_sweep(&TechNode::nm100(), n).expect("sweep 100nm");

    let mut table = Table::new(&[
        "l (nH/mm)",
        "l_crit 250nm (nH/mm)",
        "l_crit 100nm (nH/mm)",
    ]);
    for (a, b) in s250.iter().zip(&s100) {
        table.row_values(
            &[
                a.inductance.to_nano_per_milli(),
                a.l_crit * 1e6,
                b.l_crit * 1e6,
            ],
            4,
        );
    }
    emit(
        "fig04_lcrit",
        "Fig. 4 — critical inductance l_crit vs line inductance l",
        &table,
    );
    println!(
        "paper's observations: l and l_crit share an order of magnitude over the practical\n\
         range, and the 100 nm values sit below the 250 nm values (lines become\n\
         underdamped for a wider range of l as technology scales).\n"
    );
    rlckit_bench::trace_footer("fig04_lcrit");
}
