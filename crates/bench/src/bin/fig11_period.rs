//! Regenerates the paper's **Fig. 11**: the five-stage ring-oscillator
//! period as a function of line inductance — flat-to-gently-rising in
//! the clean regime, then a sharp collapse to below half at the
//! false-switching onset (around 2 nH/mm in the paper's setup). Also
//! runs the 250 nm control, which stays clean much further, and the
//! square-wave-driven buffered-line cross-check.

use rlckit::failure::{
    buffered_line_check, failure_onset, period_vs_inductance, RingOscillatorOptions,
};
use rlckit::report::Table;
use rlckit_bench::{emit, paper_inductance_grid};
use rlckit_tech::TechNode;
use rlckit_units::HenriesPerMeter;

fn main() {
    let options = RingOscillatorOptions::default();
    let grid: Vec<HenriesPerMeter> = paper_inductance_grid(18)
        .into_iter()
        .map(HenriesPerMeter::from_nano_per_milli)
        .collect();

    let s100 = period_vs_inductance(&TechNode::nm100(), grid.iter().copied(), &options)
        .expect("100nm sweep");
    let s250 = period_vs_inductance(&TechNode::nm250(), grid.iter().copied(), &options)
        .expect("250nm sweep");

    let mut table = Table::new(&["l (nH/mm)", "period 100nm (ps)", "period 250nm (ps)"]);
    let fmt = |p: &Option<rlckit_units::Seconds>| {
        p.map_or_else(|| "-".to_string(), |s| format!("{:.1}", s.get() * 1e12))
    };
    for (a, b) in s100.iter().zip(&s250) {
        table.row(&[
            &format!("{:.2}", a.0.to_nano_per_milli()),
            &fmt(&a.1),
            &fmt(&b.1),
        ]);
    }
    emit(
        "fig11_period",
        "Fig. 11 — ring-oscillator period vs line inductance",
        &table,
    );

    match failure_onset(&s100, 0.6) {
        Some(l) => println!(
            "100 nm false-switching onset: l ≈ {:.2} nH/mm (paper: ≈2 nH/mm)",
            l.to_nano_per_milli()
        ),
        None => println!("100 nm: no onset detected in range"),
    }
    match failure_onset(&s250, 0.6) {
        Some(l) => println!(
            "250 nm onset: l ≈ {:.2} nH/mm (paper: none below 5 nH/mm)",
            l.to_nano_per_milli()
        ),
        None => println!("250 nm: no onset below 5 nH/mm (matches the paper)"),
    }

    // Cross-check: the square-wave-driven buffered line corrupts too.
    let clean = buffered_line_check(
        &TechNode::nm100(),
        HenriesPerMeter::from_nano_per_milli(0.5),
        &options,
    )
    .expect("buffered line");
    let failing = buffered_line_check(
        &TechNode::nm100(),
        HenriesPerMeter::from_nano_per_milli(2.2),
        &options,
    )
    .expect("buffered line");
    println!(
        "buffered-line cross-check at the far tap (swing/VDD, edges per source edge):\n\
         l = 0.5 nH/mm: swing {:.2}, edges {:.2}\n\
         l = 2.2 nH/mm: swing {:.2}, edges {:.2}\n\
         the same inductive corruption appears without the ring's feedback —\n\
         not a ring-oscillator artifact\n",
        clean.swing_ratio, clean.edge_ratio, failing.swing_ratio, failing.edge_ratio
    );
    rlckit_bench::trace_footer("fig11_period");
}
