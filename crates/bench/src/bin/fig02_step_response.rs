//! Regenerates the paper's **Fig. 2**: normalized step response of a
//! second-order system in the overdamped, critically damped and
//! underdamped regimes.

use rlckit::report::Table;
use rlckit_bench::emit;
use rlckit_numeric::grid::linspace;
use rlckit_tline::TwoPole;

fn main() {
    // Normalized time base b₁ = 1; b₂ picks the regime.
    let cases = [
        ("overdamped (ζ=1.6)", TwoPole::new(1.0, 0.25 / (1.6 * 1.6))),
        ("critical (ζ=1)", TwoPole::new(1.0, 0.25)),
        ("underdamped (ζ=0.4)", TwoPole::new(1.0, 0.25 / (0.4 * 0.4))),
    ];

    let mut table = Table::new(&["t/b1", cases[0].0, cases[1].0, cases[2].0]);
    for t in linspace(0.0, 12.0, 121) {
        let row: Vec<f64> = std::iter::once(t)
            .chain(cases.iter().map(|(_, tp)| tp.response(t)))
            .collect();
        table.row_values(&row, 4);
    }
    emit(
        "fig02_step_response",
        "Fig. 2 — step response of a second-order (RLC) system",
        &table,
    );

    // The qualitative annotations of the figure.
    let (_, under) = (&cases[2].0, cases[2].1);
    if let (Some((tp, peak)), Some((tu, trough))) = (under.overshoot(), under.undershoot()) {
        println!(
            "underdamped overshoot: {:.3} at t = {:.2}·b1; undershoot {:.3} at t = {:.2}·b1\n",
            peak,
            tp.get(),
            trough,
            tu.get()
        );
    }
    rlckit_bench::trace_footer("fig02_step_response");
}
