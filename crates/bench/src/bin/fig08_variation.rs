//! Regenerates the paper's **Fig. 8**: the delay penalty of designing at
//! the Elmore optimum `(h_optRC, k_optRC)` when the line actually has
//! inductance `l` — the ratio of that configuration's RLC delay per unit
//! length to the true RLC optimum's.

use rlckit::report::Table;
use rlckit::sweeps::{standard_node_sweep, SweepPoint};
use rlckit_bench::emit;
use rlckit_tech::TechNode;

fn main() {
    let n = 25;
    let s250 = standard_node_sweep(&TechNode::nm250(), n).expect("sweep 250nm");
    let s100 = standard_node_sweep(&TechNode::nm100(), n).expect("sweep 100nm");

    let mut table = Table::new(&["l (nH/mm)", "penalty 250nm", "penalty 100nm"]);
    for (a, b) in s250.iter().zip(&s100) {
        table.row_values(
            &[
                a.inductance.to_nano_per_milli(),
                a.variation_penalty(),
                b.variation_penalty(),
            ],
            4,
        );
    }
    emit(
        "fig08_variation",
        "Fig. 8 — (τ/h at RC design point) / (τ/h at RLC optimum) vs l",
        &table,
    );

    let worst = |s: &[SweepPoint]| {
        s.iter()
            .map(SweepPoint::variation_penalty)
            .fold(0.0f64, f64::max)
    };
    println!(
        "worst-case penalty: {:.1}% at 250 nm, {:.1}% at 100 nm (paper: 6% and 12%)\n",
        (worst(&s250) - 1.0) * 100.0,
        (worst(&s100) - 1.0) * 100.0,
    );
    rlckit_bench::trace_footer("fig08_variation");
}
