//! Seeded load generator and throughput baseline for `rlckit-serve`.
//!
//! Builds a deterministic query mix of the three shapes an interactive
//! serving workload exhibits:
//!
//! * **hot repeats** — exact re-asks of a small set of on-grid keys
//!   (always memo hits once warm);
//! * **noisy neighbours** — hot keys with the inductance perturbed by a
//!   few ulps, inside one `QUANT_BITS` quantization bucket (hits via
//!   key rounding — the case the round-to-nearest quantizer exists
//!   for);
//! * **cold misses** — full-precision random inductances that land in
//!   fresh buckets and pay a real solve.
//!
//! In bench mode the mix is replayed through an in-process
//! [`rlckit_serve::Server`] and the result is the `results/
//! BENCH_serve.json` baseline: replay time plus derived
//! queries-per-second, hit rate, and the interpolated p95 end-to-end
//! latency in nanoseconds — the numbers the tier-1 perf guard checks. With `--emit=N` the mix
//! (plus a trailing `stats` barrier) is printed to stdout instead, for
//! the tier-1 smoke that pipes the same seeded mix through the daemon
//! binary twice and `cmp`s the responses byte for byte.
//!
//! ```text
//! loadgen [--emit=N] [--seed=S] [bench-name filters...]
//! ```

#![forbid(unsafe_code)]

use rlckit::memo::QUANT_BITS;
use rlckit_bench::timer::{BenchOptions, Harness};
use rlckit_numeric::rng::Rng;
use rlckit_serve::{ServeConfig, Server};

/// One hot key: a named node and an on-grid inductance.
const NODES: [&str; 3] = ["250nm", "100nm", "100nm_eps33"];

/// Number of grid points per node the hot set (and the server warm-up)
/// uses.
const WARM_POINTS: usize = 5;

fn grid_l(index: usize) -> f64 {
    4.95 * index as f64 / (WARM_POINTS - 1) as f64
}

/// Perturbs `l` by up to a quarter of a quantization bucket — the
/// "measurement noise" a noisy neighbour carries. Round-to-nearest
/// keying collapses it onto the hot key's bucket (up to the rare
/// boundary straddle, which just becomes one extra cold solve).
fn noisy(l: f64, rng: &mut Rng) -> f64 {
    if l == 0.0 {
        return 0.0;
    }
    let quarter_bucket = 1u64 << (QUANT_BITS - 2);
    let offset = rng.next_u64() % quarter_bucket;
    f64::from_bits(l.to_bits() + offset)
}

fn query_line(id: usize, op: &str, node: &str, l_nh_mm: f64) -> String {
    let length = if op == "route_delay" {
        ",\"length_mm\":20"
    } else {
        ""
    };
    format!("{{\"id\":{id},\"op\":\"{op}\",\"node\":\"{node}\",\"l_nh_mm\":{l_nh_mm}{length}}}")
}

/// The seeded mix: ~64 % hot repeats, ~30 % noisy neighbours, ~6 % cold
/// misses, ops rotating through `optimum` / `route_delay` / `lcrit`.
fn build_mix(seed: u64, requests: usize) -> Vec<String> {
    let mut rng = Rng::new(seed);
    let ops = ["optimum", "route_delay", "lcrit"];
    let mut out = Vec::with_capacity(requests);
    for id in 1..=requests {
        let op = ops[id % ops.len()];
        let node = NODES[rng.index(NODES.len())];
        let draw = rng.next_f64();
        let l = if draw < 0.64 {
            grid_l(rng.index(WARM_POINTS))
        } else if draw < 0.94 {
            noisy(grid_l(rng.index(WARM_POINTS)), &mut rng)
        } else {
            rng.uniform(0.01, 4.9)
        };
        out.push(query_line(id, op, node, l));
    }
    out
}

fn main() {
    let mut emit: Option<usize> = None;
    let mut seed = 0x4c4f_4144_4745_4e21; // "LOADGEN!"
    for arg in std::env::args().skip(1) {
        if let Some(n) = arg.strip_prefix("--emit=") {
            emit = Some(n.parse().expect("--emit=N needs an integer"));
        } else if let Some(s) = arg.strip_prefix("--seed=") {
            seed = s.parse().expect("--seed=S needs an integer");
        }
    }

    if let Some(requests) = emit {
        for line in build_mix(seed, requests) {
            println!("{line}");
        }
        // Trailing barrier: the daemon answers it only after every mix
        // response is on the wire, so the smoke can read hit counts off
        // the final line.
        println!("{{\"id\":{},\"op\":\"stats\"}}", requests + 1);
        return;
    }

    // Bench mode: latency histograms only record while tracing is on.
    rlckit_trace::set_enabled(true);
    let mut h = Harness::from_args("serve");

    let mix = build_mix(seed, 240);
    let requests = mix.len();
    let input = mix.join("\n") + "\n";

    let server = Server::new(ServeConfig {
        workers: 4,
        queue_depth: 64,
        ..ServeConfig::default()
    });
    let warmed = server.warm_grid(WARM_POINTS);
    // One priming replay pays the mix's cold solves, so the measured
    // replays see the steady serving state a long-running daemon is in.
    let mut out = Vec::with_capacity(64 * requests);
    let primed = server
        .serve(input.as_bytes(), &mut out)
        .expect("in-memory replay cannot fail on I/O");

    let mut last = primed;
    h.bench_profiled(
        "hot_mix_replay",
        &BenchOptions::with_samples(10),
        || {
            let mut out = Vec::with_capacity(64 * requests);
            last = server
                .serve(input.as_bytes(), &mut out)
                .expect("in-memory replay cannot fail on I/O");
            out.len()
        },
        |delta| {
            let mut extras = Vec::new();
            if let Some(hist) = delta.histograms.get("serve.latency_log2_ns") {
                if let Some(p95) = hist.percentile(0.95) {
                    // The headline number: the interpolated log₂-bucket
                    // p95 converted back to nanoseconds.
                    extras.push(("p95_latency_ns".to_string(), 2f64.powf(p95).round()));
                }
            }
            extras
        },
    );
    let hit_rate = last.hits as f64 / last.requests.max(1) as f64;
    let qps = h
        .stats("hot_mix_replay")
        .map(|s| 1e9 * requests as f64 / s.median_ns);
    let mut extras = vec![
        ("requests", requests as f64),
        ("warm_entries", warmed as f64),
        ("hit_rate", hit_rate),
        ("errors", last.errors as f64),
    ];
    if let Some(qps) = qps {
        extras.push(("qps", qps));
    }
    h.annotate("hot_mix_replay", &extras);
    println!(
        "loadgen: {requests} requests, hit rate {hit_rate:.3}, {} errors",
        last.errors
    );

    // Reference: what one un-memoized ask costs, for eyeballing the
    // serving win in the same results file.
    let node = rlckit_tech::TechNode::nm100();
    let line = rlckit_tline::LineRlc::new(
        node.line().resistance,
        rlckit_units::HenriesPerMeter::from_nano_per_milli(1.83),
        node.line().capacitance,
    );
    h.bench_with(
        "cold_solve",
        &BenchOptions::with_samples(10),
        || {
            rlckit::optimizer::optimize_rlc(
                &line,
                &node.driver(),
                rlckit::optimizer::OptimizerOptions::default(),
            )
            .expect("table 1 point converges")
        },
    );

    h.finish();
    rlckit_bench::trace_footer("loadgen");
}
