//! Seeded load generator and throughput baseline for `rlckit-serve`.
//!
//! Builds a deterministic query mix of the three shapes an interactive
//! serving workload exhibits:
//!
//! * **hot repeats** — exact re-asks of a small set of on-grid keys
//!   (always memo hits once warm);
//! * **noisy neighbours** — hot keys with the inductance perturbed by a
//!   few ulps, inside one `QUANT_BITS` quantization bucket (hits via
//!   key rounding — the case the round-to-nearest quantizer exists
//!   for);
//! * **cold misses** — full-precision random inductances that land in
//!   fresh buckets and pay a real solve.
//!
//! In bench mode the mix is replayed through an in-process
//! [`rlckit_serve::Server`] and the result is the `results/
//! BENCH_serve.json` baseline: replay time plus derived
//! queries-per-second, hit rate, and the interpolated p95 end-to-end
//! latency in nanoseconds — the numbers the tier-1 perf guard checks;
//! plus a `concurrent_replay` entry (the same mix replayed by several
//! sessions at once over the one shared pool) and an `eviction_churn`
//! entry comparing LRU and FIFO warm-grid hit rates under a
//! multi-connection hot + cold-churn mix against a small memo. With
//! `--emit=N` the mix (plus a trailing `stats` barrier) is printed to
//! stdout instead, for the tier-1 smoke that pipes the same seeded mix
//! through the daemon binary twice and `cmp`s the responses byte for
//! byte; `--hot-only` restricts the emitted mix to strictly on-grid
//! keys (pure hits against a `--warm-grid 5` daemon — the
//! parallel-clients cmp smoke needs every session's response stream,
//! stats lines included, to be independent of its concurrent
//! neighbours). With `--connect=ADDR` the same mix is instead played
//! as a **live TCP client**: written to the daemon at `ADDR`, write
//! half shut down, responses streamed to stdout.
//!
//! ```text
//! loadgen [--emit=N] [--seed=S] [--hot-only] [--connect=ADDR]
//!         [bench-name filters...]
//! ```

#![forbid(unsafe_code)]

use rlckit::memo::{Eviction, QUANT_BITS};
use rlckit_bench::timer::{BenchOptions, Harness};
use rlckit_numeric::rng::Rng;
use rlckit_serve::{ServeConfig, Server};

/// One hot key: a named node and an on-grid inductance.
const NODES: [&str; 3] = ["250nm", "100nm", "100nm_eps33"];

/// Number of grid points per node the hot set (and the server warm-up)
/// uses.
const WARM_POINTS: usize = 5;

fn grid_l(index: usize) -> f64 {
    4.95 * index as f64 / (WARM_POINTS - 1) as f64
}

/// Perturbs `l` by up to a quarter of a quantization bucket — the
/// "measurement noise" a noisy neighbour carries. Round-to-nearest
/// keying collapses it onto the hot key's bucket (up to the rare
/// boundary straddle, which just becomes one extra cold solve).
fn noisy(l: f64, rng: &mut Rng) -> f64 {
    if l == 0.0 {
        return 0.0;
    }
    let quarter_bucket = 1u64 << (QUANT_BITS - 2);
    let offset = rng.next_u64() % quarter_bucket;
    f64::from_bits(l.to_bits() + offset)
}

fn query_line(id: usize, op: &str, node: &str, l_nh_mm: f64) -> String {
    let length = if op == "route_delay" {
        ",\"length_mm\":20"
    } else {
        ""
    };
    format!("{{\"id\":{id},\"op\":\"{op}\",\"node\":\"{node}\",\"l_nh_mm\":{l_nh_mm}{length}}}")
}

/// The seeded mix: ~64 % hot repeats, ~30 % noisy neighbours, ~6 % cold
/// misses, ops rotating through `optimum` / `route_delay` / `lcrit`.
/// With `hot_only`, every draw is an exact on-grid hot repeat.
fn build_mix(seed: u64, requests: usize, hot_only: bool) -> Vec<String> {
    let mut rng = Rng::new(seed);
    let ops = ["optimum", "route_delay", "lcrit"];
    let mut out = Vec::with_capacity(requests);
    for id in 1..=requests {
        let op = ops[id % ops.len()];
        let node = NODES[rng.index(NODES.len())];
        let draw = rng.next_f64();
        let l = if hot_only || draw < 0.64 {
            grid_l(rng.index(WARM_POINTS))
        } else if draw < 0.94 {
            noisy(grid_l(rng.index(WARM_POINTS)), &mut rng)
        } else {
            rng.uniform(0.01, 4.9)
        };
        out.push(query_line(id, op, node, l));
    }
    out
}

/// The eviction-pressure mix: ~60 % hot on-grid repeats and ~40 %
/// unique full-precision cold keys (asked once, never again). Returns
/// the lines plus the hot-request count, so the caller can compute the
/// **warm-grid hit rate** — every hit in this mix is a hot-request hit,
/// since cold keys are one-shot. This is the mix where FIFO eviction
/// visibly eats the warm grid (preloaded entries are the oldest
/// inserts, so cold churn evicts exactly them) while LRU's
/// promote-on-hit keeps the one-shot cold keys as victims instead.
fn build_churn_mix(seed: u64, requests: usize) -> (Vec<String>, usize) {
    let mut rng = Rng::new(seed);
    let ops = ["optimum", "route_delay", "lcrit"];
    let mut out = Vec::with_capacity(requests);
    let mut hot = 0;
    for id in 1..=requests {
        let op = ops[id % ops.len()];
        let node = NODES[rng.index(NODES.len())];
        let l = if rng.next_f64() < 0.6 {
            hot += 1;
            grid_l(rng.index(WARM_POINTS))
        } else {
            rng.uniform(0.01, 4.9)
        };
        out.push(query_line(id, op, node, l));
    }
    (out, hot)
}

/// Emit-shaped payload: the mix plus the trailing `stats` barrier the
/// daemon answers only after every mix response is on the wire.
fn payload(seed: u64, requests: usize, hot_only: bool) -> String {
    let mut text = build_mix(seed, requests, hot_only).join("\n");
    text.push('\n');
    text.push_str(&format!("{{\"id\":{},\"op\":\"stats\"}}\n", requests + 1));
    text
}

/// Plays `text` against a live daemon at `addr` as one TCP session:
/// write everything, shut the write half down, stream the response
/// bytes to stdout.
fn connect_and_replay(addr: &str, text: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.write_all(text.as_bytes())?;
    stream.flush()?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut stdout = std::io::stdout().lock();
    std::io::copy(&mut stream, &mut stdout)?;
    Ok(())
}

/// Replays per-session churn mixes concurrently against a small memo
/// under `eviction`, returning the aggregate warm-grid hit rate
/// (hits / hot requests across all sessions).
fn churn_hit_rate(eviction: Eviction, connections: usize, shard_capacity: usize) -> f64 {
    let server = Server::new(ServeConfig {
        workers: 4,
        queue_depth: 64,
        shard_capacity,
        eviction,
    });
    server.warm_grid(WARM_POINTS);
    let mixes: Vec<(String, usize)> = (0..connections)
        .map(|i| {
            let (lines, hot) = build_churn_mix(0xE71C_7104 + i as u64, 240);
            (lines.join("\n") + "\n", hot)
        })
        .collect();
    let summaries: Vec<rlckit_serve::ServeSummary> = std::thread::scope(|scope| {
        let handles: Vec<_> = mixes
            .iter()
            .map(|(input, _)| {
                let server = &server;
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(64 * 240);
                    server
                        .serve(input.as_bytes(), &mut out)
                        .expect("in-memory replay cannot fail on I/O")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let hot_total: usize = mixes.iter().map(|(_, hot)| hot).sum();
    let hits: u64 = summaries.iter().map(|s| s.hits).sum();
    hits as f64 / hot_total.max(1) as f64
}

fn main() {
    let mut emit: Option<usize> = None;
    let mut seed = 0x4c4f_4144_4745_4e21; // "LOADGEN!"
    let mut hot_only = false;
    let mut connect: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if let Some(n) = arg.strip_prefix("--emit=") {
            emit = Some(n.parse().expect("--emit=N needs an integer"));
        } else if let Some(s) = arg.strip_prefix("--seed=") {
            seed = s.parse().expect("--seed=S needs an integer");
        } else if arg == "--hot-only" {
            hot_only = true;
        } else if let Some(addr) = arg.strip_prefix("--connect=") {
            connect = Some(addr.to_string());
        }
    }

    if let Some(addr) = connect {
        let requests = emit.unwrap_or(60);
        if let Err(e) = connect_and_replay(&addr, &payload(seed, requests, hot_only)) {
            eprintln!("loadgen: client session against {addr} failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    if let Some(requests) = emit {
        print!("{}", payload(seed, requests, hot_only));
        return;
    }

    // Bench mode: latency histograms only record while tracing is on.
    rlckit_trace::set_enabled(true);
    let mut h = Harness::from_args("serve");

    let mix = build_mix(seed, 240, false);
    let requests = mix.len();
    let input = mix.join("\n") + "\n";

    let server = Server::new(ServeConfig {
        workers: 4,
        queue_depth: 64,
        ..ServeConfig::default()
    });
    let warmed = server.warm_grid(WARM_POINTS);
    // One priming replay pays the mix's cold solves, so the measured
    // replays see the steady serving state a long-running daemon is in.
    let mut out = Vec::with_capacity(64 * requests);
    let primed = server
        .serve(input.as_bytes(), &mut out)
        .expect("in-memory replay cannot fail on I/O");

    let mut last = primed;
    h.bench_profiled(
        "hot_mix_replay",
        &BenchOptions::with_samples(10),
        || {
            let mut out = Vec::with_capacity(64 * requests);
            last = server
                .serve(input.as_bytes(), &mut out)
                .expect("in-memory replay cannot fail on I/O");
            out.len()
        },
        |delta| {
            let mut extras = Vec::new();
            if let Some(hist) = delta.histograms.get("serve.latency_log2_ns") {
                if let Some(p95) = hist.percentile(0.95) {
                    // The headline number: the interpolated log₂-bucket
                    // p95 converted back to nanoseconds.
                    extras.push(("p95_latency_ns".to_string(), 2f64.powf(p95).round()));
                }
            }
            extras
        },
    );
    let hit_rate = last.hits as f64 / last.requests.max(1) as f64;
    let qps = h
        .stats("hot_mix_replay")
        .map(|s| 1e9 * requests as f64 / s.median_ns);
    let mut extras = vec![
        ("requests", requests as f64),
        ("warm_entries", warmed as f64),
        ("hit_rate", hit_rate),
        ("errors", last.errors as f64),
    ];
    if let Some(qps) = qps {
        extras.push(("qps", qps));
    }
    h.annotate("hot_mix_replay", &extras);
    println!(
        "loadgen: {requests} requests, hit rate {hit_rate:.3}, {} errors",
        last.errors
    );

    // Multi-connection replay: the same mix replayed by several
    // concurrent sessions over the one shared pool — the serving shape
    // the concurrent daemon runs. qps counts all sessions' requests;
    // `cores` lets the tier-1 scaling guard gate on the hardware.
    let connections = 4usize;
    h.bench_with("concurrent_replay", &BenchOptions::with_samples(10), || {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..connections)
                .map(|_| {
                    let server = &server;
                    let input = input.as_str();
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(64 * requests);
                        server
                            .serve(input.as_bytes(), &mut out)
                            .expect("in-memory replay cannot fail on I/O");
                        out.len()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
        })
    });
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut extras = vec![
        ("connections", connections as f64),
        ("requests_per_connection", requests as f64),
        ("cores", cores as f64),
    ];
    if let Some(s) = h.stats("concurrent_replay") {
        extras.push(("qps", 1e9 * (connections * requests) as f64 / s.median_ns));
    }
    h.annotate("concurrent_replay", &extras);

    // Eviction face-off: hot + one-shot-cold churn from 3 concurrent
    // sessions against a deliberately small memo. LRU must hold the
    // warm grid (> 0.9 hit rate guarded in tier1); FIFO, which evicts
    // its oldest — i.e. precisely the preloaded warm entries — must
    // measurably degrade on the same byte-identical workload.
    let shard_capacity = 12usize;
    let lru_rate = churn_hit_rate(Eviction::Lru, 3, shard_capacity);
    let fifo_rate = churn_hit_rate(Eviction::Fifo, 3, shard_capacity);
    h.bench_with("eviction_churn", &BenchOptions::with_samples(3), || {
        // The timed body replays the LRU face-off; the headline
        // metrics are the pre-computed aggregate hit rates.
        churn_hit_rate(Eviction::Lru, 3, shard_capacity)
    });
    h.annotate(
        "eviction_churn",
        &[
            ("lru_warm_hit_rate", lru_rate),
            ("fifo_warm_hit_rate", fifo_rate),
            ("connections", 3.0),
            ("shard_capacity", shard_capacity as f64),
        ],
    );
    println!(
        "loadgen: eviction churn warm-grid hit rate — lru {lru_rate:.3}, fifo {fifo_rate:.3}"
    );

    // Reference: what one un-memoized ask costs, for eyeballing the
    // serving win in the same results file.
    let node = rlckit_tech::TechNode::nm100();
    let line = rlckit_tline::LineRlc::new(
        node.line().resistance,
        rlckit_units::HenriesPerMeter::from_nano_per_milli(1.83),
        node.line().capacitance,
    );
    h.bench_with(
        "cold_solve",
        &BenchOptions::with_samples(10),
        || {
            rlckit::optimizer::optimize_rlc(
                &line,
                &node.driver(),
                rlckit::optimizer::OptimizerOptions::default(),
            )
            .expect("table 1 point converges")
        },
    );

    h.finish();
    rlckit_bench::trace_footer("loadgen");
}
