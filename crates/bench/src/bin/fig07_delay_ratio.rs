//! Regenerates the paper's **Fig. 7**: ratio of the optimized delay per
//! unit length with and without considering line inductance, for 250 nm,
//! 100 nm, and the control case of 100 nm with the 250 nm dielectric
//! (identical `c`) that isolates driver scaling as the cause.

use rlckit::report::Table;
use rlckit::sweeps::{delay_ratio_series, standard_node_sweep};
use rlckit_bench::emit;
use rlckit_tech::TechNode;

fn main() {
    let n = 25;
    let nodes = [
        TechNode::nm250(),
        TechNode::nm100(),
        TechNode::nm100_with_250nm_dielectric(),
    ];
    let series: Vec<Vec<(f64, f64)>> = nodes
        .iter()
        .map(|node| delay_ratio_series(&standard_node_sweep(node, n).expect("sweep")))
        .collect();

    let mut table = Table::new(&[
        "l (nH/mm)",
        "ratio 250nm",
        "ratio 100nm",
        "ratio 100nm (εr=3.3, identical c)",
    ]);
    for ((a, b), c) in series[0].iter().zip(&series[1]).zip(&series[2]) {
        table.row_values(&[a.0, a.1, b.1, c.1], 4);
    }
    emit(
        "fig07_delay_ratio",
        "Fig. 7 — optimized (τ/h)_RLC / (τ/h)_RC vs line inductance",
        &table,
    );
    println!(
        "paper: ≈2× at 250 nm and ≈3.5× at 100 nm by l = 5 nH/mm; the identical-c control\n\
         still rises steeply, so the susceptibility comes from the shrinking driver\n\
         resistance and capacitance, not from the wiring.\n\n\
         note: within the two-pole framework the control column is *exactly* the 100 nm\n\
         column — b₁ and b₂ are invariant under c→αc, h→h/√α, k→k·√α at fixed l, so the\n\
         normalized susceptibility curve does not depend on c at all. The paper's claim\n\
         is an identity here, not merely an observation.\n"
    );
    rlckit_bench::trace_footer("fig07_delay_ratio");
}
