//! Monte-Carlo version of the paper's §3.2 variation study — see
//! `rlckit_bench::variation` for the seeded, reusable flow; this binary
//! formats its outcome as the usual table/CSV pair.

use rlckit::report::Table;
use rlckit_bench::emit;
use rlckit_bench::variation::{run_variation_study, VariationConfig};
use rlckit_tech::TechNode;

fn main() {
    let node = TechNode::nm100();
    let cfg = VariationConfig::default();
    let study = run_variation_study(&node, &cfg);

    let mut table = Table::new(&[
        "design",
        "mean τ/h (ps/mm)",
        "std (ps/mm)",
        "p95 (ps/mm)",
        "p95/mean spread",
    ]);
    for d in &study.designs {
        table.row(&[
            d.name,
            &format!("{:.2}", d.mean * 1e9),
            &format!("{:.2}", d.std * 1e9),
            &format!("{:.2}", d.p95 * 1e9),
            &format!("{:.3}", d.p95 / d.mean),
        ]);
    }
    emit(
        "variation_monte_carlo",
        &format!(
            "§3.2 as a distribution — delay per unit length under random l (100 nm, {} draws, seed {:#x})",
            cfg.samples, cfg.seed
        ),
        &table,
    );
    println!(
        "the RLC designs do not only have lower mean delay; their spread under\n\
         inductance uncertainty is what the paper's Fig. 8 bounds deterministically.\n"
    );
    rlckit_bench::trace_footer("variation_monte_carlo");
}
