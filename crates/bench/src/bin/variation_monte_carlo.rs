//! Monte-Carlo version of the paper's §3.2 variation study: the line
//! inductance is *pattern-dependent* and effectively random per switching
//! event, so a fixed design faces a delay **distribution**, not a point.
//!
//! For each candidate design (RC optimum, RLC optimum at the band
//! midpoint, RLC optimum at the worst case) we sample `l` from a
//! triangular distribution over the practical band and report the delay
//! spread — the jitter a clock/bus designer must margin for.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlckit::elmore::rc_optimum;
use rlckit::optimizer::{optimize_rlc, segment_delay, OptimizerOptions};
use rlckit::report::Table;
use rlckit_bench::emit;
use rlckit_tech::TechNode;
use rlckit_tline::LineRlc;
use rlckit_units::{HenriesPerMeter, Meters};

/// Triangular sample on `[lo, hi]` with mode at `mode`.
fn triangular(rng: &mut StdRng, lo: f64, hi: f64, mode: f64) -> f64 {
    let u: f64 = rng.gen();
    let cut = (mode - lo) / (hi - lo);
    if u < cut {
        lo + ((hi - lo) * (mode - lo) * u).sqrt()
    } else {
        hi - ((hi - lo) * (hi - mode) * (1.0 - u)).sqrt()
    }
}

struct Design {
    name: &'static str,
    h: Meters,
    k: f64,
}

fn main() {
    let node = TechNode::nm100();
    let (lo, hi, mode) = (0.4, 3.0, 1.2); // nH/mm: the practical band
    let line_at = |l_nh: f64| {
        LineRlc::new(
            node.line().resistance,
            HenriesPerMeter::from_nano_per_milli(l_nh),
            node.line().capacitance,
        )
    };

    let rc = rc_optimum(&node.line(), &node.driver());
    let mid = optimize_rlc(&line_at(mode), &node.driver(), OptimizerOptions::default())
        .expect("mid optimum");
    let worst = optimize_rlc(&line_at(hi), &node.driver(), OptimizerOptions::default())
        .expect("worst-case optimum");
    let designs = [
        Design {
            name: "RC optimum (l ignored)",
            h: rc.segment_length,
            k: rc.repeater_size,
        },
        Design {
            name: "RLC @ band mode",
            h: mid.segment_length,
            k: mid.repeater_size,
        },
        Design {
            name: "RLC @ band max",
            h: worst.segment_length,
            k: worst.repeater_size,
        },
    ];

    let samples = 4000;
    let mut rng = StdRng::seed_from_u64(0xd1a1);
    let draws: Vec<f64> = (0..samples)
        .map(|_| triangular(&mut rng, lo, hi, mode))
        .collect();

    let mut table = Table::new(&[
        "design",
        "mean τ/h (ps/mm)",
        "std (ps/mm)",
        "p95 (ps/mm)",
        "p95/mean spread",
    ]);
    for d in &designs {
        let mut per_len: Vec<f64> = draws
            .iter()
            .map(|&l| {
                segment_delay(&line_at(l), &node.driver(), d.h, d.k, 0.5)
                    .expect("delay")
                    .get()
                    / d.h.get()
            })
            .collect();
        per_len.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = per_len.iter().sum::<f64>() / per_len.len() as f64;
        let var = per_len.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / per_len.len() as f64;
        let p95 = per_len[(0.95 * per_len.len() as f64) as usize];
        table.row(&[
            d.name,
            &format!("{:.2}", mean * 1e9),
            &format!("{:.2}", var.sqrt() * 1e9),
            &format!("{:.2}", p95 * 1e9),
            &format!("{:.3}", p95 / mean),
        ]);
    }
    emit(
        "variation_monte_carlo",
        "§3.2 as a distribution — delay per unit length under random l (100 nm, 4000 draws)",
        &table,
    );
    println!(
        "the RLC designs do not only have lower mean delay; their spread under\n\
         inductance uncertainty is what the paper's Fig. 8 bounds deterministically.\n"
    );
}
