//! The paper's actual §3.1 calibration procedure, end to end:
//!
//! 1. simulate a repeater chain (real level-1 MOSFET inverters driving
//!    RC lines) in the in-workspace simulator,
//! 2. numerically find the `(h, k)` that minimize the measured 50 %
//!    delay per unit length,
//! 3. invert the closed-form optimum conditions to recover
//!    `(r_s, c₀, c_p)`,
//! 4. compare with the embedded Table 1 values.
//!
//! Agreement here means the device models, the simulator, the Elmore
//! closed forms and the calibration inversion are all mutually
//! consistent — the full §3.1 loop, with no step assumed.

use rlckit::report::Table;
use rlckit_bench::emit;
use rlckit_numeric::minimize::golden_section;
use rlckit_spice::builders::{inverter, rlc_ladder, LadderLine};
use rlckit_spice::measure::{delay_between, Edge};
use rlckit_spice::transient::{simulate, TransientOptions};
use rlckit_spice::waveform::Waveform;
use rlckit_spice::Circuit;
use rlckit_tech::calibration::calibrate_driver;
use rlckit_tech::device::MosParams;
use rlckit_tech::TechNode;
use rlckit_units::{Meters, Seconds};

/// Measures the 50 % delay of one repeater stage inside a three-stage
/// chain (interior stage, so both edges are realistic device edges).
fn simulated_stage_delay(node: &TechNode, h_m: f64, k: f64) -> f64 {
    let params = MosParams::for_node(node);
    let vdd_value = node.supply_voltage().get();
    let line = LadderLine {
        r_per_m: node.line().resistance.get(),
        l_per_m: 0.0,
        c_per_m: node.line().capacitance.get(),
    };

    let mut ckt = Circuit::new();
    let vdd = ckt.add_node("vdd");
    ckt.voltage_source(vdd, Circuit::GROUND, Waveform::Dc(vdd_value));
    let src = ckt.add_node("src");
    // An inverter-shaped drive edge into the first stage.
    ckt.voltage_source(
        src,
        Circuit::GROUND,
        Waveform::step(vdd_value, 0.0, 20e-12, 20e-12),
    );

    let mut input = src;
    let mut taps = vec![src];
    for i in 0..3 {
        let out = ckt.add_node(format!("o{i}"));
        inverter(&mut ckt, input, out, vdd, params, k);
        let next = ckt.add_node(format!("t{i}"));
        rlc_ladder(&mut ckt, out, next, line, Meters::new(h_m), 10);
        taps.push(next);
        input = next;
    }
    // Terminating receiver.
    let sink = ckt.add_node("sink");
    inverter(&mut ckt, input, sink, vdd, params, k);

    // Horizon from the Elmore scale of one stage.
    let r = node.line().resistance.get();
    let c = node.line().capacitance.get();
    let d = node.driver();
    let b1_estimate = d.output_resistance.get() / k * (d.parasitic_capacitance.get() * k + d.input_capacitance.get() * k)
        + r * c * h_m * h_m / 2.0
        + d.output_resistance.get() / k * c * h_m
        + d.input_capacitance.get() * k * r * h_m;
    let t_stop = 20e-12 + 8.0 * b1_estimate * 3.0;
    let dt = b1_estimate / 150.0;
    let res = simulate(&ckt, &TransientOptions::new(t_stop, dt)).expect("transient");

    // Falling edge at tap 1 → rising at tap 2 (one interior stage).
    let half = vdd_value / 2.0;
    delay_between(
        res.times(),
        res.voltage(taps[1]),
        res.voltage(taps[2]),
        half,
        Edge::Falling,
        Edge::Rising,
    )
    .or_else(|| {
        delay_between(
            res.times(),
            res.voltage(taps[1]),
            res.voltage(taps[2]),
            half,
            Edge::Rising,
            Edge::Falling,
        )
    })
    .expect("stage delay measurable")
}

fn main() {
    let mut table = Table::new(&[
        "tech",
        "h (mm) sim/paper",
        "k sim/paper",
        "τ (ps) sim/paper",
        "r_s (kΩ) recal/paper",
        "c₀ (fF) recal/paper",
        "c_p (fF) recal/paper",
    ]);

    for node in TechNode::table1() {
        // Nested golden-section minimization of measured τ/h over (h, k),
        // as the paper did with SPICE sweeps.
        let paper = rlckit::elmore::rc_optimum(&node.line(), &node.driver());
        let h0 = paper.segment_length.get();
        let k0 = paper.repeater_size;

        let best_k_for = |h: f64| {
            golden_section(
                |ln_k| simulated_stage_delay(&node, h, ln_k.exp()),
                (0.3 * k0).ln(),
                (3.0 * k0).ln(),
                1e-3,
                24,
            )
            .expect("k search")
            .x[0]
                .exp()
        };
        let h_opt = golden_section(
            |ln_h| {
                let h = ln_h.exp();
                let k = best_k_for(h);
                simulated_stage_delay(&node, h, k) / h
            },
            (0.4 * h0).ln(),
            (2.5 * h0).ln(),
            1e-3,
            20,
        )
        .expect("h search")
        .x[0]
            .exp();
        let k_opt = best_k_for(h_opt);
        let tau_opt = simulated_stage_delay(&node, h_opt, k_opt);

        let recal = calibrate_driver(
            node.line().resistance,
            node.line().capacitance,
            Meters::new(h_opt),
            k_opt,
            Seconds::new(tau_opt),
        );

        let driver = node.driver();
        let (rs, c0, cp) = match &recal {
            Ok(d) => (
                format!("{:.2}", d.output_resistance.get() / 1e3),
                format!("{:.2}", d.input_capacitance.get() * 1e15),
                format!("{:.2}", d.parasitic_capacitance.get() * 1e15),
            ),
            Err(e) => (format!("{e}"), "-".into(), "-".into()),
        };
        table.row(&[
            node.name(),
            &format!("{:.1} / {:.1}", h_opt * 1e3, h0 * 1e3),
            &format!("{:.0} / {:.0}", k_opt, k0),
            &format!("{:.0} / {:.0}", tau_opt * 1e12, paper.segment_delay.get() * 1e12),
            &format!("{rs} / {:.3}", driver.output_resistance.get() / 1e3),
            &format!("{c0} / {:.4}", driver.input_capacitance.get() * 1e15),
            &format!("{cp} / {:.4}", driver.parasitic_capacitance.get() * 1e15),
        ]);
    }

    emit(
        "table1_spice_calibration",
        "Table 1 via the paper's §3.1 procedure: simulate → optimize → calibrate",
        &table,
    );
    println!(
        "the simulated optimum uses nonlinear level-1 inverters, so a modest offset from\n\
         the linearized closed forms is expected; landing in the same neighbourhood closes\n\
         the paper's calibration loop end to end.\n"
    );
    rlckit_bench::trace_footer("table1_spice_calibration");
}
