//! Regenerates the paper's **Fig. 9**: voltage waveforms at the input
//! and output of one inverter of the five-stage 100 nm ring oscillator
//! with `l = 1.8 nH/mm` — ringing visible at the input, output still
//! "relatively clean" in the paper's device setup (our level-1 devices
//! reach the false-switching regime slightly earlier; see
//! EXPERIMENTS.md).

use rlckit::failure::{ring_waveforms, RingOscillatorOptions};
use rlckit::report::Table;
use rlckit_bench::emit;
use rlckit_tech::TechNode;
use rlckit_units::HenriesPerMeter;

fn main() {
    emit_waveform(1.8, "fig09_waveform_1p8", "Fig. 9");
    rlckit_bench::trace_footer("fig09_waveform_1p8");
}

/// Emits the waveform table for one inductance value.
fn emit_waveform(l_nh_mm: f64, name: &str, figure: &str) {
    let node = TechNode::nm100();
    let options = RingOscillatorOptions::default();
    let w = ring_waveforms(
        &node,
        HenriesPerMeter::from_nano_per_milli(l_nh_mm),
        &options,
    )
    .expect("ring simulation");

    let mut table = Table::new(&["t (ps)", "inverter input (V)", "inverter output (V)"]);
    // Thin the samples to keep the printed table readable; the CSV gets
    // every fourth point, plenty for plotting.
    for i in (0..w.times.len()).step_by(4) {
        table.row_values(&[w.times[i] * 1e12, w.input[i], w.output[i]], 4);
    }
    emit(
        name,
        &format!(
            "{figure} — ring-oscillator inverter input/output, 100 nm, l = {l_nh_mm} nH/mm"
        ),
        &table,
    );
    let vdd = node.supply_voltage().get();
    println!(
        "input overshoot above VDD: {:.3} V; input undershoot below ground: {:.3} V\n",
        w.input_overshoot(vdd),
        w.input_undershoot()
    );
}
