//! Regenerates the paper's **Fig. 5**: `h_optRLC / h_optRC` versus line
//! inductance, for both technology nodes. Includes the Ismail–Friedman
//! curve-fit baseline so the `l = 0` difference (our ratio starts below
//! 1; the fit cannot) is visible.

use rlckit::baselines::ismail_friedman_optimum;
use rlckit::elmore::rc_optimum;
use rlckit::report::Table;
use rlckit::sweeps::standard_node_sweep;
use rlckit_bench::{emit, paper_inductance_grid};
use rlckit_tech::TechNode;
use rlckit_tline::LineRlc;
use rlckit_units::HenriesPerMeter;

fn main() {
    let n = 25;
    let s250 = standard_node_sweep(&TechNode::nm250(), n).expect("sweep 250nm");
    let s100 = standard_node_sweep(&TechNode::nm100(), n).expect("sweep 100nm");

    let if_ratio = |node: &TechNode, l_nh: f64| {
        let line = LineRlc::new(
            node.line().resistance,
            HenriesPerMeter::from_nano_per_milli(l_nh),
            node.line().capacitance,
        );
        let fit = ismail_friedman_optimum(&line, &node.driver());
        let rc = rc_optimum(&node.line(), &node.driver());
        fit.segment_length.get() / rc.segment_length.get()
    };

    let mut table = Table::new(&[
        "l (nH/mm)",
        "h ratio 250nm",
        "h ratio 100nm",
        "IF fit 250nm",
        "IF fit 100nm",
    ]);
    let grid = paper_inductance_grid(n);
    for ((a, b), &l) in s250.iter().zip(&s100).zip(&grid) {
        table.row_values(
            &[
                l,
                a.h_ratio,
                b.h_ratio,
                if_ratio(&TechNode::nm250(), l),
                if_ratio(&TechNode::nm100(), l),
            ],
            4,
        );
    }
    emit(
        "fig05_hopt_ratio",
        "Fig. 5 — h_optRLC / h_optRC vs line inductance",
        &table,
    );
    rlckit_bench::trace_footer("fig05_hopt_ratio");
}
