//! Regenerates the paper's **Fig. 10**: the same ring-oscillator
//! waveforms as Fig. 9 but with `l = 2.2 nH/mm` — deep in the
//! false-switching regime, where the undershoot flips downstream
//! inverters and the oscillation period collapses.

use rlckit::failure::{ring_waveforms, RingOscillatorOptions};
use rlckit::report::Table;
use rlckit_bench::emit;
use rlckit_tech::TechNode;
use rlckit_units::HenriesPerMeter;

fn main() {
    let l_nh_mm = 2.2;
    let node = TechNode::nm100();
    let options = RingOscillatorOptions::default();
    let w = ring_waveforms(
        &node,
        HenriesPerMeter::from_nano_per_milli(l_nh_mm),
        &options,
    )
    .expect("ring simulation");

    let mut table = Table::new(&["t (ps)", "inverter input (V)", "inverter output (V)"]);
    for i in (0..w.times.len()).step_by(4) {
        table.row_values(&[w.times[i] * 1e12, w.input[i], w.output[i]], 4);
    }
    emit(
        "fig10_waveform_2p2",
        "Fig. 10 — ring-oscillator inverter input/output, 100 nm, l = 2.2 nH/mm",
        &table,
    );
    let vdd = node.supply_voltage().get();
    println!(
        "input overshoot above VDD: {:.3} V; input undershoot below ground: {:.3} V\n\
         (compare with the l = 1.8 nH/mm run of fig09: the extra ringing injects\n\
         additional edges and the period is less than half)\n",
        w.input_overshoot(vdd),
        w.input_undershoot()
    );
    rlckit_bench::trace_footer("fig10_waveform_2p2");
}
