//! Regenerates the paper's **Fig. 12**: peak and rms interconnect
//! current densities in the 100 nm ring oscillator versus line
//! inductance. The paper's conclusion — the densities do not change
//! appreciably with `l`, so inductance does not create an
//! electromigration/Joule-heating hazard — is checked quantitatively.

use rlckit::failure::RingOscillatorOptions;
use rlckit::reliability::current_density_vs_inductance;
use rlckit::report::Table;
use rlckit_bench::{emit, paper_inductance_grid};
use rlckit_tech::TechNode;
use rlckit_units::HenriesPerMeter;

fn main() {
    let node = TechNode::nm100();
    let options = RingOscillatorOptions::default();
    let grid: Vec<HenriesPerMeter> = paper_inductance_grid(12)
        .into_iter()
        .skip(1) // l = 0 has no steady ring current scale change of interest
        .map(HenriesPerMeter::from_nano_per_milli)
        .collect();

    let points =
        current_density_vs_inductance(&node, grid, &options).expect("current-density sweep");

    let mut table = Table::new(&[
        "l (nH/mm)",
        "peak current (mA)",
        "rms current (mA)",
        "peak density (MA/cm²)",
        "rms density (MA/cm²)",
    ]);
    for p in &points {
        table.row_values(
            &[
                p.inductance.to_nano_per_milli(),
                p.peak_current * 1e3,
                p.rms_current * 1e3,
                p.peak_density / 1e6,
                p.rms_density / 1e6,
            ],
            3,
        );
    }
    emit(
        "fig12_current_density",
        "Fig. 12 — peak and rms interconnect current densities vs line inductance (100 nm)",
        &table,
    );

    let rms_min = points.iter().map(|p| p.rms_density).fold(f64::MAX, f64::min);
    let rms_max = points.iter().map(|p| p.rms_density).fold(0.0f64, f64::max);
    println!(
        "rms density varies only {:.2}× across the sweep — interconnect reliability is\n\
         not degraded by inductance variation (the paper's §3.3.2 conclusion)\n",
        rms_max / rms_min
    );
    rlckit_bench::trace_footer("fig12_current_density");
}
