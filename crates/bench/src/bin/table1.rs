//! Regenerates the paper's **Table 1**: interconnect technology
//! parameters and the derived RC-optimum columns.
//!
//! The paper measured `(h_optRC, k_optRC, τ_optRC)` with SPICE and
//! inverted them into `(r_s, c₀, c_p)`. Here we show the loop closes in
//! both directions: the embedded `(r_s, c₀, c_p)` reproduce the paper's
//! derived columns through the closed forms, the calibration inversion
//! recovers them, and the extraction substrate reproduces `r` (and `c`
//! to closed-form-model accuracy) from the cross-section geometry.

use rlckit::elmore::rc_optimum;
use rlckit::report::Table;
use rlckit_bench::emit;
use rlckit_extract::capacitance::{total_line_capacitance, NeighborActivity};
use rlckit_extract::geometry::Material;
use rlckit_extract::resistance::resistance_per_length;
use rlckit_tech::calibration::calibrate_driver;
use rlckit_tech::TechNode;

fn main() {
    let mut table = Table::new(&[
        "tech",
        "r (Ω/mm)",
        "c (pF/m)",
        "εr",
        "h_optRC (mm)",
        "k_optRC",
        "τ_optRC (ps)",
        "r_s (kΩ)",
        "c₀ (fF)",
        "c_p (fF)",
    ]);
    let mut check = Table::new(&[
        "tech",
        "r extract (Ω/mm)",
        "c extract (pF/m)",
        "c paper (pF/m)",
        "r_s recal (kΩ)",
        "c₀ recal (fF)",
        "c_p recal (fF)",
    ]);

    for node in TechNode::table1() {
        let line = node.line();
        let driver = node.driver();
        let opt = rc_optimum(&line, &driver);
        table.row(&[
            node.name(),
            &format!("{:.1}", line.resistance.to_ohm_per_milli()),
            &format!("{:.2}", line.capacitance.to_pico()),
            &format!("{:.1}", node.relative_permittivity()),
            &format!("{:.1}", opt.segment_length.get() * 1e3),
            &format!("{:.0}", opt.repeater_size),
            &format!("{:.2}", opt.segment_delay.get() * 1e12),
            &format!("{:.3}", driver.output_resistance.get() / 1e3),
            &format!("{:.4}", driver.input_capacitance.get() * 1e15),
            &format!("{:.4}", driver.parasitic_capacitance.get() * 1e15),
        ]);

        // Extraction substrate: recompute r and c from geometry.
        let r_x = resistance_per_length(&node.wire(), Material::COPPER_INTERCONNECT);
        let c_x = total_line_capacitance(
            &node.wire(),
            node.relative_permittivity(),
            NeighborActivity::Quiet,
        );
        // Calibration inversion: recover the driver from the optimum.
        let recal = calibrate_driver(
            line.resistance,
            line.capacitance,
            opt.segment_length,
            opt.repeater_size,
            opt.segment_delay,
        )
        .expect("self-consistent optimum");
        check.row(&[
            node.name(),
            &format!("{:.2}", r_x.to_ohm_per_milli()),
            &format!("{:.1}", c_x.to_pico()),
            &format!("{:.2}", line.capacitance.to_pico()),
            &format!("{:.3}", recal.output_resistance.get() / 1e3),
            &format!("{:.4}", recal.input_capacitance.get() * 1e15),
            &format!("{:.4}", recal.parasitic_capacitance.get() * 1e15),
        ]);
    }

    emit(
        "table1",
        "Table 1 — interconnect technology parameters (derived columns recomputed)",
        &table,
    );
    emit(
        "table1_check",
        "Table 1 cross-checks — extraction substrate and calibration inversion",
        &check,
    );
    rlckit_bench::trace_footer("table1");
}
