//! Regenerates the paper's **Fig. 6**: `k_optRLC / k_optRC` versus line
//! inductance, for both technology nodes, with the Ismail–Friedman fit
//! alongside.

use rlckit::baselines::ismail_friedman_optimum;
use rlckit::elmore::rc_optimum;
use rlckit::report::Table;
use rlckit::sweeps::standard_node_sweep;
use rlckit_bench::{emit, paper_inductance_grid};
use rlckit_tech::TechNode;
use rlckit_tline::LineRlc;
use rlckit_units::HenriesPerMeter;

fn main() {
    let n = 25;
    let s250 = standard_node_sweep(&TechNode::nm250(), n).expect("sweep 250nm");
    let s100 = standard_node_sweep(&TechNode::nm100(), n).expect("sweep 100nm");

    let if_ratio = |node: &TechNode, l_nh: f64| {
        let line = LineRlc::new(
            node.line().resistance,
            HenriesPerMeter::from_nano_per_milli(l_nh),
            node.line().capacitance,
        );
        let fit = ismail_friedman_optimum(&line, &node.driver());
        let rc = rc_optimum(&node.line(), &node.driver());
        fit.repeater_size / rc.repeater_size
    };

    let mut table = Table::new(&[
        "l (nH/mm)",
        "k ratio 250nm",
        "k ratio 100nm",
        "IF fit 250nm",
        "IF fit 100nm",
    ]);
    let grid = paper_inductance_grid(n);
    for ((a, b), &l) in s250.iter().zip(&s100).zip(&grid) {
        table.row_values(
            &[
                l,
                a.k_ratio,
                b.k_ratio,
                if_ratio(&TechNode::nm250(), l),
                if_ratio(&TechNode::nm100(), l),
            ],
            4,
        );
    }
    emit(
        "fig06_kopt_ratio",
        "Fig. 6 — k_optRLC / k_optRC vs line inductance",
        &table,
    );
    println!(
        "the repeaters shrink with l as the line behaves increasingly like an LC\n\
         transmission line and raw drive strength stops paying for itself.\n"
    );
    rlckit_bench::trace_footer("fig06_kopt_ratio");
}
