//! `rlckit-traceview`: offline analyzer for flight-recorder captures.
//!
//! ```text
//! rlckit-traceview EVENTS.jsonl [--compare OLD.jsonl] [--threshold PCT]
//! ```
//!
//! Reads the event JSONL a serve run drained (`rlckit-serve
//! --trace-events PATH`, or any file containing
//! [`rlckit_trace::events`] lines) and prints the per-phase latency
//! breakdown (parse / queue / solve / write / total) plus the
//! slowest-requests table.
//!
//! With `--compare OLD.jsonl` it additionally diffs the capture against
//! a baseline capture and **exits 2** if any phase's median latency
//! grew by more than `--threshold` percent (default 25) — the CI
//! regression gate. Exit 1 is reserved for usage and I/O errors, so a
//! gate script can tell "regressed" from "broken".

#![forbid(unsafe_code)]

use std::process::ExitCode;

use rlckit_bench::traceview::{compare, parse_events, render_report, Event};

/// Default `--threshold` in percent.
const DEFAULT_THRESHOLD_PCT: f64 = 25.0;

fn usage() -> &'static str {
    "usage: rlckit-traceview EVENTS.jsonl [--compare OLD.jsonl] [--threshold PCT]"
}

fn load(path: &str) -> Result<(Vec<Event>, u64), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Ok(parse_events(&text))
}

fn run() -> Result<ExitCode, String> {
    let mut capture: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--compare" => {
                baseline = Some(it.next().ok_or("--compare needs a path")?);
            }
            "--threshold" => {
                threshold = it
                    .next()
                    .ok_or("--threshold needs a percentage")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other if capture.is_none() && !other.starts_with('-') => {
                capture = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    let capture = capture.ok_or_else(|| usage().to_string())?;
    let (events, dropped) = load(&capture)?;
    if events.is_empty() {
        return Err(format!("{capture}: no flight-recorder events found"));
    }
    print!("{}", render_report(&events, dropped));

    if let Some(baseline) = baseline {
        let (old, _) = load(&baseline)?;
        let regressions = compare(&old, &events, threshold);
        if regressions.is_empty() {
            println!("\ncompare vs {baseline}: no phase regressed past {threshold}%");
        } else {
            println!("\ncompare vs {baseline}: REGRESSED (threshold {threshold}%)");
            for r in &regressions {
                println!(
                    "  {}: p50 {} ns -> {} ns (+{:.1}%)",
                    r.phase, r.old_p50_ns, r.new_p50_ns, r.growth_pct
                );
            }
            return Ok(ExitCode::from(2));
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("rlckit-traceview: {message}");
            ExitCode::FAILURE
        }
    }
}
