//! Offline analysis of flight-recorder event streams
//! (`rlckit-traceview`'s engine).
//!
//! The serve daemon's `--trace-events PATH` drains the per-request
//! span trees of [`rlckit_trace::events`] to a JSONL file; this module
//! reads that file back and answers the questions an operator actually
//! asks of it:
//!
//! * **Where does the time go?** Each request's events carry the same
//!   `trace_id`, and the pipeline stages have a fixed causal order
//!   (`parse → route → dequeue → probe → solve → write`), so adjacent
//!   `t_ns` differences are per-phase latencies: *parse* (parse→route),
//!   *queue* (route→dequeue, the time spent waiting in the shard's
//!   bounded queue), *solve* (dequeue→solve, memo probe included) and
//!   *write* (solve→write, reorder-buffer wait included).
//! * **Which requests were slow?** A per-trace total (parse→write)
//!   ranks the worst offenders.
//! * **Did a change make it worse?** [`compare`] diffs two captures
//!   phase by phase and reports every phase whose median regressed past
//!   a threshold — the CI regression gate behind
//!   `rlckit-traceview --compare`.
//!
//! Only `"type":"event"` lines are consumed; metrics-snapshot lines
//! (from the `jsonl`/`jsonl+:` sinks) and the `events_dropped` footer
//! are skipped, so one combined capture file works too. Parsing is the
//! same zero-dependency field scanning the serve protocol uses.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One flight-recorder event, as read back from JSONL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The request's flight-recorder id.
    pub trace_id: u64,
    /// Call-site scope name (e.g. `serve.parse`).
    pub scope: String,
    /// Pipeline stage label (e.g. `parse`, `dequeue`).
    pub kind: String,
    /// Stage payload (op code, shard, hit flag, bytes, ...).
    pub value: u64,
    /// Wall-clock nanoseconds since the recording process's epoch.
    pub t_ns: u64,
}

/// The pipeline phases a span tree decomposes into, in causal order:
/// `(phase name, from kind, to kind)`.
pub const PHASES: [(&str, &str, &str); 5] = [
    ("parse", "parse", "route"),
    ("queue", "route", "dequeue"),
    ("solve", "dequeue", "solve"),
    ("write", "solve", "write"),
    ("total", "parse", "write"),
];

/// Latency statistics of one pipeline phase over a capture.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Phase name (one of the [`PHASES`] names).
    pub name: &'static str,
    /// Traces that contributed a sample (had both endpoint events).
    pub count: usize,
    /// Mean latency in ns.
    pub mean_ns: f64,
    /// Median (nearest-rank p50) latency in ns.
    pub p50_ns: u64,
    /// Nearest-rank p95 latency in ns.
    pub p95_ns: u64,
    /// Worst sample in ns.
    pub max_ns: u64,
}

/// One phase whose median regressed between two captures.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The regressed phase.
    pub phase: &'static str,
    /// Baseline median ns.
    pub old_p50_ns: u64,
    /// Current median ns.
    pub new_p50_ns: u64,
    /// Relative growth in percent (`100 * (new - old) / old`).
    pub growth_pct: f64,
}

/// Extracts `"key":<digits>` from a JSON line (first occurrence).
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &line[line.find(&needle)? + needle.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key":"value"` from a JSON line (first occurrence; event
/// scope/kind names never contain escapes).
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let rest = &line[line.find(&needle)? + needle.len()..];
    Some(&rest[..rest.find('"')?])
}

/// Parses every `"type":"event"` line of a capture; all other lines
/// (metrics snapshots, flush markers, the dropped-events footer) are
/// skipped. Returns the events plus the total dropped count, if the
/// capture recorded one.
#[must_use]
pub fn parse_events(text: &str) -> (Vec<Event>, u64) {
    let mut events = Vec::new();
    let mut dropped = 0;
    for line in text.lines() {
        if line.contains("\"type\":\"events_dropped\"") {
            dropped += field_u64(line, "value").unwrap_or(0);
            continue;
        }
        if !line.contains("\"type\":\"event\"") {
            continue;
        }
        let parsed = (|| {
            Some(Event {
                trace_id: field_u64(line, "trace_id")?,
                scope: field_str(line, "scope")?.to_string(),
                kind: field_str(line, "kind")?.to_string(),
                value: field_u64(line, "value")?,
                t_ns: field_u64(line, "t_ns")?,
            })
        })();
        if let Some(event) = parsed {
            events.push(event);
        }
    }
    (events, dropped)
}

/// Groups a capture by trace, keeping each trace's **first** timestamp
/// per kind (a trace records each pipeline kind at most once; first
/// wins if a damaged capture repeats one).
#[must_use]
pub fn kind_times(events: &[Event]) -> BTreeMap<u64, BTreeMap<String, u64>> {
    let mut by_trace: BTreeMap<u64, BTreeMap<String, u64>> = BTreeMap::new();
    for e in events {
        by_trace
            .entry(e.trace_id)
            .or_default()
            .entry(e.kind.clone())
            .or_insert(e.t_ns);
    }
    by_trace
}

fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-phase latency samples of a capture: for each [`PHASES`] entry,
/// the `to − from` timestamp difference of every trace that has both
/// endpoints (in trace-id order). Phases with a negative difference
/// (impossible in a healthy capture) are dropped rather than wrapped.
#[must_use]
pub fn phase_samples(events: &[Event]) -> BTreeMap<&'static str, Vec<u64>> {
    let by_trace = kind_times(events);
    let mut samples: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    for (phase, from, to) in PHASES {
        let entry = samples.entry(phase).or_default();
        for times in by_trace.values() {
            if let (Some(&a), Some(&b)) = (times.get(from), times.get(to)) {
                if b >= a {
                    entry.push(b - a);
                }
            }
        }
    }
    samples
}

/// The per-phase latency breakdown of a capture, in [`PHASES`] order.
/// Phases with no samples (e.g. a capture of outcome events only) are
/// omitted.
#[must_use]
pub fn phase_breakdown(events: &[Event]) -> Vec<PhaseStats> {
    let samples = phase_samples(events);
    PHASES
        .iter()
        .filter_map(|&(phase, _, _)| {
            let mut s = samples.get(phase)?.clone();
            if s.is_empty() {
                return None;
            }
            s.sort_unstable();
            let sum: u64 = s.iter().sum();
            Some(PhaseStats {
                name: phase,
                count: s.len(),
                mean_ns: sum as f64 / s.len() as f64,
                p50_ns: nearest_rank(&s, 0.50),
                p95_ns: nearest_rank(&s, 0.95),
                max_ns: *s.last().unwrap_or(&0),
            })
        })
        .collect()
}

/// The `n` slowest traces by total (parse→write) latency, worst first,
/// ties broken toward the earlier trace id.
#[must_use]
pub fn slowest(events: &[Event], n: usize) -> Vec<(u64, u64)> {
    let by_trace = kind_times(events);
    let mut totals: Vec<(u64, u64)> = by_trace
        .iter()
        .filter_map(|(&trace_id, times)| {
            let (a, b) = (times.get("parse")?, times.get("write")?);
            b.checked_sub(*a).map(|total| (trace_id, total))
        })
        .collect();
    totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    totals.truncate(n);
    totals
}

/// Diffs two captures phase by phase: every phase present in both whose
/// median grew by more than `threshold_pct` percent is reported.
/// Sub-microsecond baseline medians are compared with a 1 µs floor so
/// scheduling noise on near-zero phases does not trip the gate.
#[must_use]
pub fn compare(old: &[Event], new: &[Event], threshold_pct: f64) -> Vec<Regression> {
    let old_stats: BTreeMap<&str, u64> = phase_breakdown(old)
        .into_iter()
        .map(|s| (s.name, s.p50_ns))
        .collect();
    phase_breakdown(new)
        .into_iter()
        .filter_map(|s| {
            let &old_p50 = old_stats.get(s.name)?;
            let floor = old_p50.max(1_000);
            let growth_pct = 100.0 * (s.p50_ns as f64 - old_p50 as f64) / floor as f64;
            (growth_pct > threshold_pct).then_some(Regression {
                phase: s.name,
                old_p50_ns: old_p50,
                new_p50_ns: s.p50_ns,
                growth_pct,
            })
        })
        .collect()
}

/// Renders the phase breakdown and slowest-requests tables as the
/// aligned text report `rlckit-traceview` prints.
#[must_use]
pub fn render_report(events: &[Event], dropped: u64) -> String {
    let mut out = String::new();
    let traces = kind_times(events).len();
    let _ = writeln!(out, "{} events across {traces} traces", events.len());
    if dropped > 0 {
        let _ = writeln!(out, "WARNING: {dropped} events were dropped at capture (ring wrap)");
    }
    let _ = writeln!(out, "\nphase      count       mean_ns        p50_ns        p95_ns        max_ns");
    for s in phase_breakdown(events) {
        let _ = writeln!(
            out,
            "{:<9} {:>6} {:>13.0} {:>13} {:>13} {:>13}",
            s.name, s.count, s.mean_ns, s.p50_ns, s.p95_ns, s.max_ns
        );
    }
    let worst = slowest(events, 10);
    if !worst.is_empty() {
        let _ = writeln!(out, "\nslowest requests:");
        let _ = writeln!(out, "trace_id      total_ns");
        for (trace_id, total_ns) in worst {
            let _ = writeln!(out, "{trace_id:<10} {total_ns:>13}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic healthy capture: `n` traces, each with the full
    /// pipeline at fixed per-phase latencies (scaled by `solve_scale`
    /// for the solve phase).
    fn fixture(n: u64, solve_scale: u64) -> String {
        let mut out = String::new();
        for trace in 0..n {
            let t0 = 1_000_000 * trace;
            // parse 2µs, queue 5µs, solve 40µs * scale, write 3µs.
            let steps = [
                ("serve.parse", "parse", 0, t0),
                ("serve.route", "route", 1, t0 + 2_000),
                ("par.pool.dequeue", "dequeue", 1, t0 + 7_000),
                ("serve.memo", "probe", 1, t0 + 7_500),
                ("serve.solve", "solve", 0, t0 + 7_000 + 40_000 * solve_scale),
                ("serve.write", "write", 90, t0 + 10_000 + 40_000 * solve_scale),
            ];
            for (scope, kind, value, t_ns) in steps {
                out.push_str(&format!(
                    "{{\"type\":\"event\",\"trace_id\":{trace},\"scope\":\"{scope}\",\
                     \"kind\":\"{kind}\",\"value\":{value},\"t_ns\":{t_ns}}}\n"
                ));
            }
        }
        out
    }

    #[test]
    fn parses_events_and_skips_foreign_lines() {
        let text = format!(
            "{{\"type\":\"metrics\",\"seq\":1}}\n{}{{\"type\":\"events_dropped\",\"value\":7}}\n",
            fixture(2, 1)
        );
        let (events, dropped) = parse_events(&text);
        assert_eq!(events.len(), 12);
        assert_eq!(dropped, 7);
        assert_eq!(events[0].scope, "serve.parse");
        assert_eq!(events[0].kind, "parse");
        assert_eq!(events[5].value, 90);
    }

    #[test]
    fn phase_breakdown_recovers_the_injected_latencies() {
        let (events, _) = parse_events(&fixture(8, 1));
        let stats = phase_breakdown(&events);
        let by_name: BTreeMap<&str, &PhaseStats> =
            stats.iter().map(|s| (s.name, s)).collect();
        assert_eq!(by_name["parse"].p50_ns, 2_000);
        assert_eq!(by_name["queue"].p50_ns, 5_000);
        assert_eq!(by_name["solve"].p50_ns, 40_000);
        assert_eq!(by_name["write"].p50_ns, 3_000);
        assert_eq!(by_name["total"].p50_ns, 50_000);
        assert_eq!(by_name["total"].count, 8);
        assert_eq!(by_name["solve"].max_ns, 40_000);
    }

    #[test]
    fn slowest_ranks_by_total_latency() {
        // Mix two populations: traces 0..4 fast, 4..6 slow (10× solve).
        let mut text = fixture(4, 1);
        let slow = fixture(2, 10).replace("\"trace_id\":0", "\"trace_id\":4").replace(
            "\"trace_id\":1",
            "\"trace_id\":5",
        );
        text.push_str(&slow);
        let (events, _) = parse_events(&text);
        let worst = slowest(&events, 3);
        assert_eq!(worst.len(), 3);
        assert_eq!(worst[0], (4, 410_000));
        assert_eq!(worst[1], (5, 410_000));
        assert!(worst[2].1 < 410_000, "{worst:?}");
    }

    #[test]
    fn compare_flags_an_injected_solve_slowdown() {
        // The acceptance fixture: same pipeline, solve 10× slower.
        let (old, _) = parse_events(&fixture(8, 1));
        let (new, _) = parse_events(&fixture(8, 10));
        let regressions = compare(&old, &new, 25.0);
        let phases: Vec<&str> = regressions.iter().map(|r| r.phase).collect();
        assert!(phases.contains(&"solve"), "{regressions:?}");
        assert!(phases.contains(&"total"), "{regressions:?}");
        assert!(!phases.contains(&"parse"), "{regressions:?}");
        let solve = regressions.iter().find(|r| r.phase == "solve").unwrap();
        assert_eq!(solve.old_p50_ns, 40_000);
        assert_eq!(solve.new_p50_ns, 400_000);
        assert!((solve.growth_pct - 900.0).abs() < 1.0, "{solve:?}");
    }

    #[test]
    fn compare_of_identical_captures_is_clean() {
        let (events, _) = parse_events(&fixture(8, 1));
        assert!(compare(&events, &events, 25.0).is_empty());
        // Sub-threshold drift is also clean.
        let (slightly, _) = parse_events(&fixture(8, 1));
        assert!(compare(&events, &slightly, 0.5).is_empty());
    }

    #[test]
    fn report_renders_counts_and_warns_on_drops() {
        let (events, dropped) =
            parse_events(&format!("{}{{\"type\":\"events_dropped\",\"value\":3}}\n", fixture(2, 1)));
        let report = render_report(&events, dropped);
        assert!(report.contains("12 events across 2 traces"), "{report}");
        assert!(report.contains("WARNING: 3 events were dropped"), "{report}");
        assert!(report.contains("slowest requests:"), "{report}");
        for phase in ["parse", "queue", "solve", "write", "total"] {
            assert!(report.contains(phase), "{phase} missing:\n{report}");
        }
    }

    #[test]
    fn partial_traces_contribute_only_their_phases() {
        // A trace with no write event (in flight at drain time).
        let text = "{\"type\":\"event\",\"trace_id\":9,\"scope\":\"serve.parse\",\
                    \"kind\":\"parse\",\"value\":0,\"t_ns\":100}\n\
                    {\"type\":\"event\",\"trace_id\":9,\"scope\":\"serve.route\",\
                    \"kind\":\"route\",\"value\":2,\"t_ns\":600}\n";
        let (events, _) = parse_events(text);
        let stats = phase_breakdown(&events);
        assert_eq!(stats.len(), 1, "{stats:?}");
        assert_eq!(stats[0].name, "parse");
        assert_eq!(stats[0].p50_ns, 500);
        assert!(slowest(&events, 5).is_empty());
    }
}
