//! The §3.2 inductance-variation study as a reusable, seeded flow.
//!
//! The line inductance is *pattern-dependent* and effectively random per
//! switching event, so a fixed design faces a delay **distribution**,
//! not a point. This module samples `l` from a triangular distribution
//! over the practical band for each candidate design (RC optimum, RLC
//! optimum at the band mode, RLC optimum at the worst case) and reports
//! the delay-per-unit-length spread — the jitter a clock/bus designer
//! must margin for.
//!
//! The flow is fully deterministic in its seed: the same
//! [`VariationConfig`] always produces bit-identical draws and summary
//! statistics, which the determinism test in `tests/determinism.rs`
//! pins down. Each sample evaluates on its own child generator derived
//! serially from the master seed via [`Rng::split`], so the draw
//! sequence — and therefore every summary statistic — is independent of
//! how the evaluation is scheduled: serial and parallel runs are
//! bit-identical for a given seed.

use rlckit::elmore::rc_optimum;
use rlckit::optimizer::{optimize_rlc, segment_delay, OptimizerOptions};
use rlckit_numeric::rng::Rng;
use rlckit_par::{par_map_chunked, Parallelism};
use rlckit_tech::TechNode;
use rlckit_tline::LineRlc;
use rlckit_units::{HenriesPerMeter, Meters};

/// Configuration of the Monte-Carlo variation study.
#[derive(Debug, Clone)]
pub struct VariationConfig {
    /// Number of inductance draws.
    pub samples: usize,
    /// PRNG seed; equal seeds give bit-identical results.
    pub seed: u64,
    /// Lower edge of the practical inductance band, nH/mm.
    pub band_lo: f64,
    /// Upper edge of the practical inductance band, nH/mm.
    pub band_hi: f64,
    /// Mode (most likely value) of the triangular distribution, nH/mm.
    pub band_mode: f64,
}

impl Default for VariationConfig {
    fn default() -> Self {
        Self {
            samples: 4000,
            seed: 0xd1a1,
            band_lo: 0.4,
            band_hi: 3.0,
            band_mode: 1.2,
        }
    }
}

/// Summary statistics of delay per unit length (s/m) for one design.
#[derive(Debug, Clone)]
pub struct DesignOutcome {
    /// Human-readable design label.
    pub name: &'static str,
    /// Segment length of the fixed design.
    pub segment_length: Meters,
    /// Repeater size of the fixed design.
    pub repeater_size: f64,
    /// Mean delay per unit length over the draws.
    pub mean: f64,
    /// Standard deviation over the draws.
    pub std: f64,
    /// 95th percentile over the draws.
    pub p95: f64,
}

/// The study's raw draws plus per-design outcomes.
#[derive(Debug, Clone)]
pub struct VariationStudy {
    /// The sampled inductances, nH/mm, in draw order.
    pub draws: Vec<f64>,
    /// One outcome per candidate design.
    pub designs: Vec<DesignOutcome>,
}

/// Triangular sample on `[lo, hi]` with mode at `mode`.
#[must_use]
pub fn triangular(rng: &mut Rng, lo: f64, hi: f64, mode: f64) -> f64 {
    let u = rng.next_f64();
    let cut = (mode - lo) / (hi - lo);
    if u < cut {
        lo + ((hi - lo) * (mode - lo) * u).sqrt()
    } else {
        hi - ((hi - lo) * (hi - mode) * (1.0 - u)).sqrt()
    }
}

/// Runs the variation study for `node` under `cfg`.
///
/// # Panics
///
/// Panics if an optimizer or delay solve fails, which the paper's
/// parameter ranges do not trigger.
#[must_use]
pub fn run_variation_study(node: &TechNode, cfg: &VariationConfig) -> VariationStudy {
    run_variation_study_with(node, cfg, Parallelism::Auto)
}

/// [`run_variation_study`] with an explicit execution policy.
///
/// Per-sample child generators are derived serially from the master
/// seed up front, so [`Parallelism::Serial`] and any parallel policy
/// produce bit-identical draws and statistics.
///
/// # Panics
///
/// See [`run_variation_study`].
#[must_use]
pub fn run_variation_study_with(
    node: &TechNode,
    cfg: &VariationConfig,
    parallelism: Parallelism,
) -> VariationStudy {
    let line_at = |l_nh: f64| {
        LineRlc::new(
            node.line().resistance,
            HenriesPerMeter::from_nano_per_milli(l_nh),
            node.line().capacitance,
        )
    };

    let rc = rc_optimum(&node.line(), &node.driver());
    let mid = optimize_rlc(&line_at(cfg.band_mode), &node.driver(), OptimizerOptions::default())
        .expect("mid optimum");
    let worst = optimize_rlc(&line_at(cfg.band_hi), &node.driver(), OptimizerOptions::default())
        .expect("worst-case optimum");
    let designs: [(&'static str, Meters, f64); 3] = [
        ("RC optimum (l ignored)", rc.segment_length, rc.repeater_size),
        ("RLC @ band mode", mid.segment_length, mid.repeater_size),
        ("RLC @ band max", worst.segment_length, worst.repeater_size),
    ];

    // One child stream per sample, derived serially so the sequence
    // depends only on the seed, never on the worker schedule.
    let mut master = Rng::new(cfg.seed);
    let streams: Vec<Rng> = (0..cfg.samples).map(|_| master.split()).collect();

    let samples: Vec<(f64, [f64; 3])> =
        par_map_chunked(&streams, parallelism, 0, |_, stream| {
            let mut rng = stream.clone();
            let l = triangular(&mut rng, cfg.band_lo, cfg.band_hi, cfg.band_mode);
            let line = line_at(l);
            let mut per_design = [0.0f64; 3];
            for (slot, &(_, h, k)) in per_design.iter_mut().zip(designs.iter()) {
                *slot = segment_delay(&line, &node.driver(), h, k, 0.5)?.get() / h.get();
            }
            Ok((l, per_design))
        })
        .expect("delay");

    let draws: Vec<f64> = samples.iter().map(|&(l, _)| l).collect();
    let outcomes = designs
        .iter()
        .enumerate()
        .map(|(i, &(name, h, k))| {
            let mut per_len: Vec<f64> = samples.iter().map(|&(_, d)| d[i]).collect();
            per_len.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let mean = per_len.iter().sum::<f64>() / per_len.len() as f64;
            let var = per_len.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                / per_len.len() as f64;
            let p95 = per_len[(0.95 * per_len.len() as f64) as usize];
            DesignOutcome {
                name,
                segment_length: h,
                repeater_size: k,
                mean,
                std: var.sqrt(),
                p95,
            }
        })
        .collect();

    VariationStudy {
        draws,
        designs: outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_stays_in_band_and_peaks_at_mode() {
        let mut rng = Rng::new(9);
        let (lo, hi, mode) = (0.4, 3.0, 1.2);
        let draws: Vec<f64> = (0..20_000).map(|_| triangular(&mut rng, lo, hi, mode)).collect();
        assert!(draws.iter().all(|&v| (lo..=hi).contains(&v)));
        // Triangular mean is (lo + hi + mode) / 3.
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - (lo + hi + mode) / 3.0).abs() < 0.02, "mean {mean}");
    }
}
