//! `rlckit-par` — a hermetic, std-only parallel campaign engine.
//!
//! The paper's entire §3 analysis (Figs. 4–12) is one embarrassingly
//! parallel outer loop: an inductance sweep that re-runs the Eq. 5–8
//! Newton optimizer and the Eq. 3 delay solve at every point. This crate
//! provides the execution substrate for that loop — and for the §3.2
//! Monte-Carlo and the route-planner sweep — without pulling in any
//! registry dependency: scoped threads from `std::thread::scope`, work
//! distribution by an atomic chunk counter, and results collected **in
//! input order** regardless of scheduling.
//!
//! # Determinism contract
//!
//! [`par_map_chunked`] guarantees that its output vector is element-wise
//! identical — bit-for-bit for floating-point payloads — to the serial
//! `items.iter().map(f)` evaluation, for every thread count and chunk
//! size. Two ingredients make this true:
//!
//! 1. the mapped function receives the item *and its input index*, never
//!    any shared mutable state, so each element's value is a pure
//!    function of the input; and
//! 2. every chunk writes its results into a dedicated slot keyed by
//!    chunk index, so collection order is input order, not completion
//!    order.
//!
//! Stochastic callers (the §3.2 Monte-Carlo) keep the contract by
//! deriving one child generator per item up front via
//! [`rlckit_numeric::rng::Rng::split`] and handing workers the child
//! streams — never a shared generator.
//!
//! # Panic policy
//!
//! A panic inside a worker must not poison a lock or wedge the join: the
//! worker catches it, the remaining chunks are still processed, and the
//! whole map returns [`NumericError::InvalidInput`] naming the panic
//! message. Callers therefore see an `Err`, never a hang and never an
//! abort of the calling thread.
//!
//! # Worker count
//!
//! [`Parallelism::Auto`] resolves to the `RLCKIT_THREADS` environment
//! variable when set to a positive integer, otherwise to
//! [`std::thread::available_parallelism`]. `RLCKIT_THREADS=1` forces the
//! serial path — useful to bisect any suspected parallelism issue.
//!
//! `RLCKIT_THREADS` is read **once per process** (the same pattern
//! `rlckit-trace` uses for `RLCKIT_TRACE`): a campaign resolves the same
//! worker count at every stage, and the hot path never pays a per-call
//! env lookup. Tests and embedders that need a different count
//! mid-process use [`set_threads`], which takes precedence over the
//! cached environment value.
//!
//! # Scheduling
//!
//! [`par_map_chunked`] distributes fixed-size chunks (~4 per worker by
//! default) off an atomic counter. [`par_map_guided`] is the adaptive
//! alternative for workloads with large per-item cost variance (the
//! route planner's trade-off sweep spans ~3× between its cheapest and
//! dearest points): workers claim `remaining / (2·workers)` items at a
//! time, so claims start large and halve toward the tail, bounding the
//! straggler tail by the cost of one small claim while keeping the
//! claim count — and therefore counter contention — logarithmic. Both
//! modes collect results by input index and are bit-identical to the
//! serial evaluation.
//!
//! # Examples
//!
//! ```
//! use rlckit_par::{par_map_chunked, Parallelism};
//!
//! # fn main() -> Result<(), rlckit_numeric::NumericError> {
//! let xs: Vec<f64> = (0..1000).map(f64::from).collect();
//! let squares = par_map_chunked(&xs, Parallelism::Auto, 0, |_, &x| Ok(x * x))?;
//! assert_eq!(squares[7], 49.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;

pub use pool::{PoolClosed, ShardedPool};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use rlckit_numeric::{NumericError, Result};
use rlckit_trace::{counter, histogram};

/// How a parallel map distributes its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run on the calling thread; spawns nothing. The reference
    /// semantics every parallel mode must reproduce exactly.
    Serial,
    /// Resolve the worker count from `RLCKIT_THREADS`, falling back to
    /// [`std::thread::available_parallelism`].
    #[default]
    Auto,
    /// Exactly this many workers (clamped to ≥ 1; `1` is [`Self::Serial`]).
    Threads(usize),
}

impl Parallelism {
    /// The worker count this policy resolves to (always ≥ 1).
    #[must_use]
    pub fn resolve(self) -> usize {
        match self {
            Self::Serial => 1,
            Self::Auto => available_threads(),
            Self::Threads(n) => n.max(1),
        }
    }
}

/// The `Auto` worker count: a [`set_threads`] override when active,
/// else `RLCKIT_THREADS` when it parses as a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 if even that is
/// unavailable). The environment variable is read and parsed exactly
/// once per process; later mutations of the process environment do not
/// change the resolved count.
#[must_use]
pub fn available_threads() -> usize {
    let forced = FORCED_THREADS.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = *ENV_THREADS.get_or_init(env_threads) {
        return n;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Programmatically overrides the [`Parallelism::Auto`] worker count,
/// taking precedence over the cached `RLCKIT_THREADS` value. Pass
/// `Some(n)` to force `n` workers (clamped to ≥ 1) or `None` to restore
/// the environment/auto-detected count. Intended for tests and
/// embedders that must change the count mid-process now that the
/// environment variable is read only once.
pub fn set_threads(n: Option<usize>) {
    FORCED_THREADS.store(n.map_or(0, |v| v.max(1)), Ordering::Relaxed);
}

/// Once-per-process cache of the parsed `RLCKIT_THREADS` value
/// (`None` = unset or unparseable, so auto-detection applies).
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

/// Programmatic [`set_threads`] override; 0 means "no override".
static FORCED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Reads and parses `RLCKIT_THREADS` (called at most once per process).
fn env_threads() -> Option<usize> {
    parse_threads(&std::env::var("RLCKIT_THREADS").ok()?)
}

/// Parses an `RLCKIT_THREADS` value; empty, non-numeric or zero values
/// are ignored (auto-detection applies).
fn parse_threads(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// What one worker records for one chunk.
enum ChunkOutcome<U> {
    Done(Vec<U>),
    Failed(NumericError),
    Panicked(String),
}

/// Maps `f` over `items` with `parallelism` workers, collecting results
/// in input order.
///
/// `f` receives `(input_index, &item)` and may fail; the map returns the
/// error of the **earliest** failing input, matching what the serial
/// loop would report first. `chunk_size` is the number of consecutive
/// items a worker claims at a time; pass `0` to let the engine pick
/// (targets ~4 chunks per worker so stragglers rebalance).
///
/// The output is bit-identical to the serial evaluation for every
/// worker count and chunk size — see the crate-level determinism
/// contract.
///
/// # Errors
///
/// Propagates the earliest `Err` returned by `f`, or
/// [`NumericError::InvalidInput`] if a worker panicked.
pub fn par_map_chunked<T, U, F>(
    items: &[T],
    parallelism: Parallelism,
    chunk_size: usize,
    f: F,
) -> Result<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> Result<U> + Sync,
{
    let threads = parallelism.resolve();
    if threads <= 1 || items.len() <= 1 {
        return serial_map(items, &f);
    }
    let chunk = effective_chunk_size(items.len(), threads, chunk_size);
    if chunk >= items.len() {
        return serial_map(items, &f);
    }

    let n_chunks = items.len().div_ceil(chunk);
    let next_chunk = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<ChunkOutcome<U>>>> = {
        let mut v = Vec::with_capacity(n_chunks);
        v.resize_with(n_chunks, || None);
        Mutex::new(v)
    };

    let worker = || {
        // Scheduling telemetry for the ROADMAP's work-stealing rung:
        // how many tasks and chunks this worker ended up claiming.
        // These are the one `par.*` metric family that is *not*
        // deterministic run-to-run (totals are; the per-worker split is
        // whatever the race produced).
        let mut my_tasks = 0u64;
        let mut my_chunks = 0u64;
        loop {
            let ci = next_chunk.fetch_add(1, Ordering::Relaxed);
            if ci >= n_chunks {
                break;
            }
            let start = ci * chunk;
            let end = (start + chunk).min(items.len());
            my_tasks += (end - start) as u64;
            my_chunks += 1;
            // Catch panics *outside* the slot lock: a panicking `f` can
            // then never poison the mutex, so sibling workers keep
            // draining chunks and the scope join always completes.
            let outcome = match catch_unwind(AssertUnwindSafe(|| {
                let mut out = Vec::with_capacity(end - start);
                for (i, item) in items[start..end].iter().enumerate() {
                    out.push(f(start + i, item)?);
                }
                Ok(out)
            })) {
                Ok(Ok(values)) => ChunkOutcome::Done(values),
                Ok(Err(e)) => ChunkOutcome::Failed(e),
                Err(payload) => ChunkOutcome::Panicked(panic_message(payload.as_ref())),
            };
            let mut guard = slots.lock().expect("outcome slots never poisoned");
            guard[ci] = Some(outcome);
        }
        histogram!("par.tasks_per_worker").observe(my_tasks);
        histogram!("par.chunks_per_worker").observe(my_chunks);
    };

    counter!("par.maps").incr();
    counter!("par.tasks").add(items.len() as u64);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n_chunks) {
            scope.spawn(worker);
        }
    });

    let slots = slots.into_inner().expect("outcome slots never poisoned");
    let mut results = Vec::with_capacity(items.len());
    for (ci, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(ChunkOutcome::Done(values)) => results.extend(values),
            Some(ChunkOutcome::Failed(e)) => return Err(e),
            Some(ChunkOutcome::Panicked(msg)) => {
                return Err(NumericError::InvalidInput(format!(
                    "parallel worker panicked while mapping chunk {ci}: {msg}"
                )))
            }
            None => {
                // Unreachable: every chunk index below n_chunks is
                // claimed by exactly one worker before the scope joins.
                return Err(NumericError::InvalidInput(format!(
                    "parallel chunk {ci} was never processed"
                )));
            }
        }
    }
    Ok(results)
}

/// Maps `f` over `items` with guided self-scheduling: each worker
/// CAS-claims `remaining / (2·workers)` consecutive items at a time, so
/// claims start large and halve toward the tail.
///
/// Prefer this over [`par_map_chunked`] when per-item cost varies a lot
/// (the route planner's trade-off sweep spans ~3× between points): a
/// fixed chunk sized for the mean either leaves the tail imbalanced or
/// pays counter traffic on every item, while guided claims bound the
/// straggler tail by one small claim and keep the total claim count
/// logarithmic in the input length.
///
/// The output is bit-identical to the serial evaluation for every
/// worker count: each element is a pure function of `(input_index,
/// item)` and results are collected sorted by claim start, so the
/// claim-boundary race affects scheduling only, never values. On
/// failure the error of the **earliest** failing input is returned,
/// exactly as the serial loop would report it.
///
/// # Errors
///
/// Propagates the earliest `Err` returned by `f`, or
/// [`NumericError::InvalidInput`] if a worker panicked (the message
/// names the start of the claim being processed, which may vary with
/// scheduling; result values never do).
pub fn par_map_guided<T, U, F>(items: &[T], parallelism: Parallelism, f: F) -> Result<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> Result<U> + Sync,
{
    let threads = parallelism.resolve();
    let len = items.len();
    if threads <= 1 || len <= 1 {
        return serial_map(items, &f);
    }

    let next = AtomicUsize::new(0);
    let claims: Mutex<Vec<(usize, ChunkOutcome<U>)>> = Mutex::new(Vec::new());

    let worker = || {
        let mut my_tasks = 0u64;
        let mut my_claims = 0u64;
        let mut start = next.load(Ordering::Relaxed);
        'claims: loop {
            // CAS-claim [start, end): the claim size is recomputed from
            // the *observed* remaining count, so a failed exchange
            // retries against the freshest counter value.
            let end = loop {
                if start >= len {
                    break 'claims;
                }
                let end = start + guided_claim(len - start, threads);
                match next.compare_exchange_weak(start, end, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break end,
                    Err(observed) => start = observed,
                }
            };
            my_tasks += (end - start) as u64;
            my_claims += 1;
            // Same panic policy as the fixed-chunk engine: catch outside
            // the lock so a panicking `f` can never poison the mutex.
            let outcome = match catch_unwind(AssertUnwindSafe(|| {
                let mut out = Vec::with_capacity(end - start);
                for (i, item) in items[start..end].iter().enumerate() {
                    out.push(f(start + i, item)?);
                }
                Ok(out)
            })) {
                Ok(Ok(values)) => ChunkOutcome::Done(values),
                Ok(Err(e)) => ChunkOutcome::Failed(e),
                Err(payload) => ChunkOutcome::Panicked(panic_message(payload.as_ref())),
            };
            claims
                .lock()
                .expect("claim slots never poisoned")
                .push((start, outcome));
            start = next.load(Ordering::Relaxed);
        }
        histogram!("par.tasks_per_worker").observe(my_tasks);
        histogram!("par.claims_per_worker").observe(my_claims);
    };

    counter!("par.guided_maps").incr();
    counter!("par.tasks").add(len as u64);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(len) {
            scope.spawn(worker);
        }
    });

    // The claims partition [0, len); sorted by start they reproduce the
    // input order, and the first non-`Done` claim in that order contains
    // the earliest failing input (each claim short-circuits in-order).
    let mut claims = claims.into_inner().expect("claim slots never poisoned");
    claims.sort_unstable_by_key(|&(start, _)| start);
    let mut results = Vec::with_capacity(len);
    for (start, outcome) in claims {
        match outcome {
            ChunkOutcome::Done(values) => results.extend(values),
            ChunkOutcome::Failed(e) => return Err(e),
            ChunkOutcome::Panicked(msg) => {
                return Err(NumericError::InvalidInput(format!(
                    "parallel worker panicked while mapping items from {start}: {msg}"
                )))
            }
        }
    }
    debug_assert_eq!(results.len(), len, "claims must partition the input");
    Ok(results)
}

/// The guided self-scheduling claim size: `remaining / (2·workers)`, at
/// least 1. Early claims grab long contiguous runs (minimal counter
/// traffic, cache-friendly); late claims shrink geometrically so the
/// slowest worker finishes at most one small claim after its siblings.
fn guided_claim(remaining: usize, threads: usize) -> usize {
    (remaining / (threads * 2)).max(1)
}

/// Maps an infallible `f` over `items`; a convenience wrapper around
/// [`par_map_chunked`] for pure per-item computations.
///
/// # Errors
///
/// Returns [`NumericError::InvalidInput`] only if a worker panicked.
pub fn par_map<T, U, F>(items: &[T], parallelism: Parallelism, f: F) -> Result<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_chunked(items, parallelism, 0, |i, item| Ok(f(i, item)))
}

/// The serial reference path: a plain in-order loop on the caller's
/// thread, short-circuiting on the first error exactly like `collect`
/// over `Result`s.
fn serial_map<T, U>(items: &[T], f: &(impl Fn(usize, &T) -> Result<U> + Sync)) -> Result<Vec<U>> {
    counter!("par.serial_maps").incr();
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        out.push(f(i, item)?);
    }
    Ok(out)
}

/// Picks the chunk size: the caller's when positive, otherwise sized for
/// ~4 chunks per worker so a slow chunk (a hard optimization point) can
/// be rebalanced around.
fn effective_chunk_size(len: usize, threads: usize, requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    len.div_ceil(threads * 4).max(1)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_on_squares() {
        let xs: Vec<f64> = (0..257).map(|i| f64::from(i) * 0.37).collect();
        let serial = par_map_chunked(&xs, Parallelism::Serial, 0, |i, &x| Ok(x * x + i as f64))
            .unwrap();
        for threads in [2, 3, 8] {
            for chunk in [0, 1, 7, 64, 1000] {
                let par = par_map_chunked(&xs, Parallelism::Threads(threads), chunk, |i, &x| {
                    Ok(x * x + i as f64)
                })
                .unwrap();
                assert_eq!(serial.len(), par.len());
                for (a, b) in serial.iter().zip(&par) {
                    assert_eq!(a.to_bits(), b.to_bits(), "threads={threads} chunk={chunk}");
                }
            }
        }
    }

    #[test]
    fn indices_arrive_in_input_order() {
        let xs: Vec<u32> = (0..100).collect();
        let out = par_map_chunked(&xs, Parallelism::Threads(4), 3, |i, &x| {
            assert_eq!(i as u32, x, "index must match the input position");
            Ok(i)
        })
        .unwrap();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn earliest_error_wins() {
        let xs: Vec<usize> = (0..64).collect();
        let run = |parallelism| {
            par_map_chunked(&xs, parallelism, 2, |i, _| {
                if i >= 10 {
                    Err(NumericError::InvalidInput(format!("boom at {i}")))
                } else {
                    Ok(i)
                }
            })
        };
        for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
            match run(parallelism) {
                Err(NumericError::InvalidInput(msg)) => {
                    assert!(msg.contains("boom at 10"), "{parallelism:?}: {msg}")
                }
                other => panic!("{parallelism:?}: expected earliest error, got {other:?}"),
            }
        }
    }

    #[test]
    fn worker_panic_becomes_an_error_not_a_hang() {
        let xs: Vec<usize> = (0..32).collect();
        let out = par_map_chunked(&xs, Parallelism::Threads(4), 1, |i, _| {
            assert!(i != 13, "unlucky index");
            Ok(i)
        });
        match out {
            Err(NumericError::InvalidInput(msg)) => {
                assert!(msg.contains("panicked"), "{msg}");
                assert!(msg.contains("unlucky index"), "{msg}");
            }
            other => panic!("expected surfaced panic, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_single_inputs_stay_on_the_calling_thread() {
        let empty: [f64; 0] = [];
        assert_eq!(
            par_map_chunked(&empty, Parallelism::Threads(8), 0, |_, &x: &f64| Ok(x)).unwrap(),
            Vec::<f64>::new()
        );
        let one = [42.0f64];
        assert_eq!(
            par_map_chunked(&one, Parallelism::Threads(8), 0, |_, &x| Ok(x * 2.0)).unwrap(),
            vec![84.0]
        );
    }

    #[test]
    fn infallible_wrapper_matches_serial_map() {
        let xs: Vec<i64> = (0..500).collect();
        let expected: Vec<i64> = xs.iter().map(|&x| x * 3 - 1).collect();
        let got = par_map(&xs, Parallelism::Threads(5), |_, &x| x * 3 - 1).unwrap();
        assert_eq!(expected, got);
    }

    #[test]
    fn parallelism_resolution_is_at_least_one() {
        assert_eq!(Parallelism::Serial.resolve(), 1);
        assert_eq!(Parallelism::Threads(0).resolve(), 1);
        assert_eq!(Parallelism::Threads(6).resolve(), 6);
        assert!(Parallelism::Auto.resolve() >= 1);
    }

    #[test]
    fn auto_chunking_gives_multiple_chunks_per_worker() {
        assert_eq!(effective_chunk_size(1000, 4, 0), 63);
        assert_eq!(effective_chunk_size(1000, 4, 17), 17);
        assert_eq!(effective_chunk_size(3, 8, 0), 1);
        assert_eq!(effective_chunk_size(0, 8, 0), 1);
    }

    #[test]
    fn threads_value_parsing_ignores_garbage_and_zero() {
        assert_eq!(parse_threads("3"), Some(3));
        assert_eq!(parse_threads(" 12 "), Some(12));
        for bad in ["0", "", "  ", "many", "-4", "1.5"] {
            assert_eq!(parse_threads(bad), None, "RLCKIT_THREADS={bad:?}");
        }
    }

    #[test]
    fn guided_claims_start_large_and_halve_toward_the_tail() {
        assert_eq!(guided_claim(1000, 4), 125);
        assert_eq!(guided_claim(100, 4), 12);
        assert_eq!(guided_claim(8, 4), 1);
        assert_eq!(guided_claim(1, 4), 1);
    }

    #[test]
    fn guided_matches_serial_bit_for_bit() {
        let xs: Vec<f64> = (0..511).map(|i| f64::from(i) * 0.73 - 4.0).collect();
        let f = |i: usize, &x: &f64| Ok((x * x).sin() + i as f64 * 1e-3);
        let serial = par_map_chunked(&xs, Parallelism::Serial, 0, f).unwrap();
        for threads in [2, 3, 8] {
            let guided = par_map_guided(&xs, Parallelism::Threads(threads), f).unwrap();
            assert_eq!(serial.len(), guided.len());
            for (a, b) in serial.iter().zip(&guided) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn guided_earliest_error_wins() {
        let xs: Vec<usize> = (0..96).collect();
        for threads in [2, 4] {
            match par_map_guided(&xs, Parallelism::Threads(threads), |i, _| {
                if i >= 23 {
                    Err(NumericError::InvalidInput(format!("boom at {i}")))
                } else {
                    Ok(i)
                }
            }) {
                Err(NumericError::InvalidInput(msg)) => {
                    assert!(msg.contains("boom at 23"), "threads={threads}: {msg}")
                }
                other => panic!("threads={threads}: expected earliest error, got {other:?}"),
            }
        }
    }

    #[test]
    fn guided_worker_panic_becomes_an_error_not_a_hang() {
        let xs: Vec<usize> = (0..48).collect();
        match par_map_guided(&xs, Parallelism::Threads(4), |i, _| {
            assert!(i != 29, "unlucky index");
            Ok(i)
        }) {
            Err(NumericError::InvalidInput(msg)) => {
                assert!(msg.contains("panicked"), "{msg}");
                assert!(msg.contains("unlucky index"), "{msg}");
            }
            other => panic!("expected surfaced panic, got {other:?}"),
        }
    }

    #[test]
    fn guided_empty_and_single_inputs_stay_on_the_calling_thread() {
        let empty: [f64; 0] = [];
        assert_eq!(
            par_map_guided(&empty, Parallelism::Threads(8), |_, &x: &f64| Ok(x)).unwrap(),
            Vec::<f64>::new()
        );
        let one = [42.0f64];
        assert_eq!(
            par_map_guided(&one, Parallelism::Threads(8), |_, &x| Ok(x * 2.0)).unwrap(),
            vec![84.0]
        );
    }
}
