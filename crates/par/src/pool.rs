//! A sharded, bounded-queue worker pool for long-running services.
//!
//! [`par_map_chunked`](crate::par_map_chunked) and
//! [`par_map_guided`](crate::par_map_guided) execute one finite batch
//! and join; a serving daemon instead needs workers that outlive any
//! single request and a **bounded** intake so a burst backpressures the
//! producer instead of growing an unbounded buffer. [`ShardedPool`]
//! provides that: one OS thread and one bounded FIFO queue per shard,
//! with requests routed to an explicit shard index.
//!
//! # Ordering and affinity contract
//!
//! * Requests submitted to the same shard are handled **in submission
//!   order** (per-shard FIFO), by **the same worker thread** every
//!   time. A serving layer that routes each request to the shard
//!   owning its cache key therefore serializes same-key requests —
//!   which is what makes a daemon's hit/miss sequence deterministic —
//!   while different keys proceed in parallel with no shared lock.
//! * [`ShardedPool::submit`] blocks when the shard's queue is full
//!   (bounded backpressure), never drops, and never reorders.
//!
//! # Panic policy
//!
//! A panicking handler must not kill its worker (a daemon shard that
//! dies silently turns every later request on that shard into a hang).
//! The worker catches the panic, counts it under `par.pool.panics`,
//! and keeps serving. Handlers signal *expected* failures through
//! their own response channel, not by panicking.
//!
//! # Telemetry
//!
//! `par.pool.submitted` counts intake, `par.pool.backpressure` counts
//! submissions that found the queue full and had to block, and the
//! `par.pool.queue_depth` histogram records the shard's queue depth
//! observed at each submission — the live "how far behind is the
//! daemon" signal. Like the rest of the `par.*` family these record
//! scheduling, not algorithmic, quantities.
//!
//! Requests submitted through [`ShardedPool::submit_traced`]
//! additionally carry a flight-recorder `trace_id`: the worker records
//! a `par.pool.dequeue` event (kind [`EventKind::Dequeue`], value =
//! shard index) the moment it picks the request up. Because workers
//! are pinned to shards, the shard index *is* the worker attribution,
//! and it is deterministic (key-hash routing), unlike the queue-depth
//! scheduling metrics above.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use rlckit_trace::events::EventKind;
use rlckit_trace::{counter, event, histogram};

/// A submission rejected because the target shard's worker is gone —
/// possible only after the pool has started tearing down. Carries the
/// rejected request back to the caller, so a serving layer can still
/// answer it (e.g. with an error response naming the request's id)
/// instead of dropping it on the floor.
pub struct PoolClosed<Req> {
    /// The shard whose worker was gone.
    pub shard: usize,
    /// The rejected request, returned intact.
    pub request: Req,
}

impl<Req> std::fmt::Debug for PoolClosed<Req> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PoolClosed {{ shard: {} }}", self.shard)
    }
}

impl<Req> std::fmt::Display for PoolClosed<Req> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool shard {} worker is gone", self.shard)
    }
}

/// What travels down a shard's queue: the optional flight-recorder
/// trace id, then the request itself.
type Tagged<Req> = (Option<u64>, Req);

/// A fixed set of worker threads, each owning one bounded FIFO queue.
/// See the module docs for the ordering, backpressure and panic
/// contracts.
pub struct ShardedPool<Req: Send + 'static> {
    senders: std::sync::RwLock<Option<Vec<SyncSender<Tagged<Req>>>>>,
    workers: usize,
    depths: Arc<Vec<AtomicUsize>>,
    handles: std::sync::Mutex<Vec<JoinHandle<()>>>,
}

impl<Req: Send + 'static> ShardedPool<Req> {
    /// Spawns `workers` threads (clamped to ≥ 1), each with a bounded
    /// queue of `queue_depth` requests (clamped to ≥ 1). `handler`
    /// receives `(shard_index, request)` and runs on shard
    /// `shard_index`'s dedicated thread.
    #[must_use]
    pub fn new<F>(workers: usize, queue_depth: usize, handler: F) -> Self
    where
        F: Fn(usize, Req) + Send + Sync + 'static,
    {
        let workers = workers.max(1);
        let queue_depth = queue_depth.max(1);
        let handler = Arc::new(handler);
        let depths: Arc<Vec<AtomicUsize>> =
            Arc::new((0..workers).map(|_| AtomicUsize::new(0)).collect());
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for shard in 0..workers {
            let (tx, rx) = sync_channel::<(Option<u64>, Req)>(queue_depth);
            let handler = Arc::clone(&handler);
            let depths = Arc::clone(&depths);
            handles.push(std::thread::spawn(move || {
                while let Ok((trace_id, req)) = rx.recv() {
                    depths[shard].fetch_sub(1, Ordering::Relaxed);
                    if let Some(id) = trace_id {
                        event!(id, "par.pool.dequeue", EventKind::Dequeue, shard as u64);
                    }
                    if catch_unwind(AssertUnwindSafe(|| handler(shard, req))).is_err() {
                        counter!("par.pool.panics").incr();
                    }
                }
            }));
            senders.push(tx);
        }
        Self {
            senders: std::sync::RwLock::new(Some(senders)),
            workers,
            depths,
            handles: std::sync::Mutex::new(handles),
        }
    }

    /// Number of workers (= shards).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueues `req` on shard `shard % workers()`. Blocks while the
    /// shard's queue is full (bounded backpressure).
    ///
    /// # Errors
    ///
    /// [`PoolClosed`] — carrying the rejected request back — if the
    /// shard's worker is gone, possible only after the pool has started
    /// tearing down.
    pub fn submit(&self, shard: usize, req: Req) -> std::result::Result<(), PoolClosed<Req>> {
        self.submit_inner(shard, None, req)
    }

    /// Like [`ShardedPool::submit`], but tags the request with a
    /// flight-recorder `trace_id`: the shard's worker records a
    /// `par.pool.dequeue` event (value = shard index — worker
    /// attribution, since workers are pinned) when it picks the
    /// request up.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedPool::submit`].
    pub fn submit_traced(
        &self,
        shard: usize,
        trace_id: u64,
        req: Req,
    ) -> std::result::Result<(), PoolClosed<Req>> {
        self.submit_inner(shard, Some(trace_id), req)
    }

    fn submit_inner(
        &self,
        shard: usize,
        trace_id: Option<u64>,
        req: Req,
    ) -> std::result::Result<(), PoolClosed<Req>> {
        let shard = shard % self.workers;
        let senders = self
            .senders
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // On rejection the request is handed back to the caller — a
        // serving layer answers it inline with the id it already parsed
        // rather than losing the correlation.
        let Some(senders) = senders.as_ref() else {
            return Err(PoolClosed { shard, request: req });
        };
        counter!("par.pool.submitted").incr();
        let depth = self.depths[shard].fetch_add(1, Ordering::Relaxed) + 1;
        histogram!("par.pool.queue_depth").observe(depth as u64);
        let disconnected = |depths: &[AtomicUsize], request: Req| {
            depths[shard].fetch_sub(1, Ordering::Relaxed);
            PoolClosed { shard, request }
        };
        match senders[shard].try_send((trace_id, req)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(req)) => {
                counter!("par.pool.backpressure").incr();
                senders[shard]
                    .send(req)
                    .map_err(|e| disconnected(&self.depths, (e.0).1))
            }
            Err(TrySendError::Disconnected((_, req))) => Err(disconnected(&self.depths, req)),
        }
    }

    /// Closes every queue and joins every worker **without consuming
    /// the pool**: requests already enqueued are still handled, and
    /// every later submit returns [`PoolClosed`] carrying its request
    /// back. Idempotent — a second call is a no-op. A worker that
    /// panicked during teardown is ignored (its panics were already
    /// counted).
    pub fn shutdown(&self) {
        let taken = self
            .senders
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        drop(taken); // workers see Disconnected once their queue drains
        let handles = std::mem::take(
            &mut *self
                .handles
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Consuming variant of [`ShardedPool::shutdown`], for owners that
    /// are done with the pool entirely.
    pub fn join(self) {
        self.shutdown();
    }
}

impl<Req: Send + 'static> Drop for ShardedPool<Req> {
    /// Dropping the pool drains and joins its workers ([`shutdown`]
    /// semantics), so no worker thread outlives the pool it belongs to.
    ///
    /// [`shutdown`]: ShardedPool::shutdown
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Mutex;

    #[test]
    fn every_request_is_handled_by_its_shards_worker() {
        let seen: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let pool = ShardedPool::new(3, 8, move |shard, req: usize| {
            sink.lock().unwrap().push((shard, req));
        });
        assert_eq!(pool.workers(), 3);
        for i in 0..96 {
            pool.submit(i % 3, i).unwrap();
        }
        pool.join();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 96);
        for &(shard, req) in seen.iter() {
            assert_eq!(shard, req % 3, "request {req} handled off its shard");
        }
    }

    #[test]
    fn same_shard_requests_keep_submission_order() {
        let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let pool = ShardedPool::new(1, 4, move |_, req: usize| {
            sink.lock().unwrap().push(req);
        });
        for i in 0..50 {
            pool.submit(0, i).unwrap();
        }
        pool.join();
        assert_eq!(*seen.lock().unwrap(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn traced_submissions_record_worker_attributed_dequeue_events() {
        rlckit_trace::set_enabled(true);
        let pool = ShardedPool::new(2, 8, move |_, _req: usize| {});
        for i in 0..6u64 {
            pool.submit_traced(i as usize % 2, 9000 + i, i as usize).unwrap();
        }
        // Untraced submissions must not fabricate events.
        pool.submit(0, 99).unwrap();
        pool.join();
        let events: Vec<_> = rlckit_trace::events::collect()
            .events
            .into_iter()
            .filter(|e| e.scope == "par.pool.dequeue" && (9000..9006).contains(&e.trace_id))
            .collect();
        assert_eq!(events.len(), 6);
        for e in &events {
            assert_eq!(e.kind, EventKind::Dequeue);
            assert_eq!(e.value, e.trace_id % 2, "value must be the owning shard");
        }
    }

    /// Pre-fix regression (serving-layer correlation): a submit that
    /// finds the pool shut down must hand the request back so the
    /// caller can still answer it with the id it already parsed. The
    /// old signature returned a bare error and dropped the request.
    #[test]
    fn shutdown_rejections_carry_the_request_back() {
        let pool = ShardedPool::new(2, 4, move |_, _req: (u64, String)| {});
        pool.submit(0, (1, "first".to_string())).unwrap();
        pool.shutdown();
        let err = pool
            .submit_traced(1, 77, (42, "orphan".to_string()))
            .expect_err("a shut-down pool must reject new work");
        assert_eq!(err.request.0, 42, "the request must come back intact");
        assert_eq!(err.request.1, "orphan");
        assert_eq!(err.shard, 1);
        // Idempotent: a second shutdown (and the final join) is a no-op.
        pool.shutdown();
        pool.join();
    }

    #[test]
    fn a_panicking_handler_does_not_kill_the_worker() {
        let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let before = rlckit_trace::snapshot();
        let pool = ShardedPool::new(1, 4, move |_, req: usize| {
            assert!(req != 2, "injected handler panic");
            sink.lock().unwrap().push(req);
        });
        for i in 0..5 {
            pool.submit(0, i).unwrap();
        }
        pool.join();
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 3, 4]);
        let delta = rlckit_trace::snapshot().since(&before);
        assert_eq!(delta.counter("par.pool.panics"), 1);
    }

    #[test]
    fn full_queue_backpressures_instead_of_dropping() {
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let handled = Arc::new(AtomicUsize::new(0));
        let count = Arc::clone(&handled);
        let gate_rx = Mutex::new(gate_rx);
        let before = rlckit_trace::snapshot();
        let pool = Arc::new(ShardedPool::new(1, 2, move |_, _req: usize| {
            // Each request waits for one gate token, stalling the shard.
            gate_rx.lock().unwrap().recv().unwrap();
            count.fetch_add(1, Ordering::SeqCst);
        }));
        // One request occupies the worker, two fill the bounded queue.
        // (The first submits may transiently see a full queue while the
        // worker is still picking up its request, so backpressure below
        // is asserted as ≥ 1, not == 1.)
        for i in 0..3 {
            pool.submit(0, i).unwrap();
        }
        // The next submission must find the queue full and block.
        let blocked = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.submit(0, 3).unwrap())
        };
        for _ in 0..4 {
            gate_tx.send(()).unwrap();
        }
        blocked.join().unwrap();
        Arc::try_unwrap(pool)
            .unwrap_or_else(|_| panic!("submitter thread still holds the pool"))
            .join();
        assert_eq!(handled.load(Ordering::SeqCst), 4, "no request may be dropped");
        // The pool metrics are process-global and the sibling tests run
        // in parallel, so the delta assertions are lower/upper bounds,
        // not exact counts.
        let delta = rlckit_trace::snapshot().since(&before);
        assert!(
            delta.counter("par.pool.backpressure") >= 1,
            "the over-capacity submit must have blocked"
        );
        assert!(delta.counter("par.pool.submitted") >= 4);
        let depth = &delta.histograms["par.pool.queue_depth"];
        assert!(depth.count >= 4);
        // Every pool in this test binary has queue_depth ≤ 8; a
        // submission can observe at most queue + its own increment + one
        // concurrently blocked submitter.
        assert!(depth.max.unwrap_or(0) <= 10, "depth must stay bounded");
    }
}
