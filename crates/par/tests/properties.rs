//! The determinism contract, property-tested: `par_map_chunked` must
//! equal the serial map **bit-for-bit** for arbitrary inputs, chunk
//! sizes and thread counts. Seeded via the `rlckit-check` harness, so a
//! failure replays from its reported `RLCKIT_CHECK_SEED`.

use rlckit_check::{gen, Check};
use rlckit_numeric::{NumericError, Result};
use rlckit_par::{par_map_chunked, Parallelism};

/// A mildly expensive, strictly per-item pure function: enough floating
/// point that any cross-thread interference or reordering would show up
/// in the bits.
fn work(i: usize, x: f64) -> f64 {
    let mut acc = x;
    for k in 0..40 {
        acc = (acc * 1.000_000_1 + f64::from(k as u16)).sin().mul_add(0.5, x) + i as f64 * 1e-9;
    }
    acc
}

#[test]
fn par_map_chunked_equals_serial_map_for_random_shapes() {
    Check::new().cases(48).run(
        &gen::tuple4(
            gen::vec_in(gen::range(-1e3, 1e3), 0, 300),
            gen::usize_range(0, 40),  // chunk size (0 = auto)
            gen::usize_range(1, 9),   // thread count
            gen::range(-10.0, 10.0),  // offset folded into the work
        ),
        |(xs, chunk, threads, offset)| {
            let f = |i: usize, x: &f64| -> Result<f64> { Ok(work(i, x + offset)) };
            let serial = par_map_chunked(xs, Parallelism::Serial, *chunk, f).unwrap();
            let parallel =
                par_map_chunked(xs, Parallelism::Threads(*threads), *chunk, f).unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (idx, (a, b)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "element {idx} diverged (chunk={chunk}, threads={threads})"
                );
            }
        },
    );
}

#[test]
fn errors_replay_identically_in_serial_and_parallel() {
    Check::new().cases(32).run(
        &gen::tuple3(
            gen::usize_range(2, 200),  // input length
            gen::usize_range(0, 199), // first failing index
            gen::usize_range(1, 8),   // thread count
        ),
        |(len, fail_at, threads)| {
            let items: Vec<usize> = (0..*len).collect();
            let f = |i: usize, _: &usize| -> Result<usize> {
                if i >= *fail_at {
                    Err(NumericError::InvalidInput(format!("fail at {i}")))
                } else {
                    Ok(i)
                }
            };
            let serial = par_map_chunked(&items, Parallelism::Serial, 0, f);
            let parallel = par_map_chunked(&items, Parallelism::Threads(*threads), 0, f);
            match (serial, parallel) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(ea), Err(eb)) => assert_eq!(
                    format!("{ea}"),
                    format!("{eb}"),
                    "both modes must report the earliest failure"
                ),
                (a, b) => panic!("modes disagree: serial {a:?} vs parallel {b:?}"),
            }
        },
    );
}
