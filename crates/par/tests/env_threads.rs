//! `RLCKIT_THREADS` override behaviour. Lives in its own test binary
//! (one `#[test]`) because the process environment is global state: the
//! harness would otherwise race concurrent tests on it.

use rlckit_par::{available_threads, par_map_chunked, Parallelism};

#[test]
fn rlckit_threads_overrides_auto_detection() {
    // Positive values win over auto-detection…
    std::env::set_var("RLCKIT_THREADS", "3");
    assert_eq!(available_threads(), 3);
    assert_eq!(Parallelism::Auto.resolve(), 3);

    // …`1` forces the serial path (still correct results)…
    std::env::set_var("RLCKIT_THREADS", "1");
    assert_eq!(available_threads(), 1);
    let xs = [1.0f64, 2.0, 3.0];
    let out = par_map_chunked(&xs, Parallelism::Auto, 0, |_, &x| Ok(x + 1.0)).unwrap();
    assert_eq!(out, vec![2.0, 3.0, 4.0]);

    // …and garbage or zero falls back to auto-detection.
    for bad in ["0", "", "many", "-4"] {
        std::env::set_var("RLCKIT_THREADS", bad);
        assert!(available_threads() >= 1, "RLCKIT_THREADS={bad:?}");
    }
    std::env::remove_var("RLCKIT_THREADS");
    assert!(available_threads() >= 1);
}
