//! `RLCKIT_THREADS` once-per-process semantics. Lives in its own test
//! binary (one `#[test]`) because the process environment and the
//! process-wide thread-count cache are global state: the harness would
//! otherwise race concurrent tests on them.

use rlckit_par::{available_threads, par_map_chunked, set_threads, Parallelism};

/// Regression test for the mid-process env-mutation bug: `Auto` used to
/// re-read and re-parse `RLCKIT_THREADS` on every `resolve()`, so an env
/// change between campaign stages silently changed worker counts (and
/// every resolve paid an env lookup). This test FAILED before the fix —
/// `available_threads()` tracked the second `set_var` — and passes now
/// that the variable is read exactly once per process.
#[test]
fn rlckit_threads_is_read_once_per_process() {
    // The first resolve snapshots the environment…
    std::env::set_var("RLCKIT_THREADS", "3");
    assert_eq!(available_threads(), 3);
    assert_eq!(Parallelism::Auto.resolve(), 3);

    // …and mid-process mutations no longer alter the resolved count.
    std::env::set_var("RLCKIT_THREADS", "7");
    assert_eq!(
        available_threads(),
        3,
        "mid-process RLCKIT_THREADS change must not alter the worker count"
    );
    std::env::remove_var("RLCKIT_THREADS");
    assert_eq!(
        available_threads(),
        3,
        "unsetting RLCKIT_THREADS mid-process must not alter the worker count"
    );

    // The programmatic override is the supported way to change the
    // count mid-process; it takes precedence and is reversible.
    set_threads(Some(5));
    assert_eq!(available_threads(), 5);
    assert_eq!(Parallelism::Auto.resolve(), 5);
    set_threads(Some(1));
    let xs = [1.0f64, 2.0, 3.0];
    let out = par_map_chunked(&xs, Parallelism::Auto, 0, |_, &x| Ok(x + 1.0)).unwrap();
    assert_eq!(out, vec![2.0, 3.0, 4.0]);
    set_threads(None);
    assert_eq!(available_threads(), 3, "clearing the override restores the cached env value");
}
