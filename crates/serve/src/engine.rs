//! The serving engine: bounded intake, sharded workers, ordered output.
//!
//! # Pipeline
//!
//! ```text
//! session A: reader ──► router ──┐                      ┌──► writer A
//!                                ├─► ShardedPool ───────┤
//! session B: reader ──► router ──┘   (worker i owns     └──► writer B
//!                                     memo shard i)
//! ```
//!
//! One [`Server`] owns a single [`rlckit_par::ShardedPool`] and memo
//! for its whole lifetime, and **any number of sessions** (TCP
//! connections, stdin, bench replays) run [`Server::serve`] against it
//! concurrently. Each session has its own router thread (the caller of
//! `serve`) reading requests line by line, its own **sequence space**,
//! and its own writer thread reordering worker responses back into that
//! session's request order. Every routed query carries its session's
//! reply sender, so the shared workers answer straight back to the
//! session that asked. This shape is what makes the daemon
//! **deterministic**:
//!
//! * Same-key requests hash to the same shard, whose queue is FIFO and
//!   whose worker is pinned — so of two back-to-back asks of one cold
//!   key, the first always solves and the second always hits, *even
//!   when the two asks come from different connections* (they
//!   serialize on the pinned shard worker). No global lock is
//!   contended across shards.
//! * Responses are emitted strictly in request order **per session**
//!   regardless of which worker finished first, so a connection's
//!   response stream is byte-identical (modulo `*_ns` wall-clock
//!   fields) to serving it alone against the same warm memo — the
//!   tier-1 parallel-clients smoke `cmp`s exactly this.
//! * A `stats` request is a **per-session barrier**: the router sleeps
//!   on a condvar ([`Progress`]) until its writer has put every
//!   earlier response of *this session* on the wire, then answers from
//!   the session's quiescent counters — so stats are a pure function
//!   of the session's request prefix, not of scheduling. (Other
//!   sessions keep flowing; the barrier never stalls the shared pool.)
//! * A `trace` request is the deliberate exception: a *live*
//!   observability snapshot the router answers without a barrier, so
//!   its in-flight count and slowest ranking reflect scheduling and sit
//!   outside the byte-identity contract.
//!
//! # Eviction
//!
//! The shared memo defaults to **LRU** ([`Eviction::Lru`]): a serving
//! mix re-asks its hot (warm-grid) keys, and per-shard FIFO would
//! evict exactly those oldest inserts first under cold churn.
//! [`ServeConfig::eviction`] selects the policy; campaign paths build
//! their own FIFO memos and are untouched.
//!
//! # Observability
//!
//! Every request line is assigned a process-monotonic `trace_id` and
//! leaves a span tree in the flight recorder
//! ([`rlckit_trace::events`]):
//!
//! | event scope | kind | thread | value |
//! |---|---|---|---|
//! | `serve.parse` | `Parse` | router | [`Op::code`], or 5 on a parse error |
//! | `serve.route` | `Route` | router | shard index |
//! | `par.pool.dequeue` | `Dequeue` | worker | shard index (= worker) |
//! | `serve.memo` | `Probe` | worker | 1 = hit, 0 = miss |
//! | `serve.solve` | `Solve` | worker | 0 = served, 1 = solve error, 2 = panic |
//! | `serve.write` | `Write` | writer | response bytes (query requests only) |
//!
//! Everything but each event's `t_ns` is deterministic for a solo
//! session, so two seeded runs drain byte-identical event streams
//! after stripping `t_ns`. (Concurrent sessions interleave their
//! traces; each trace's own span tree stays intact and causal.)
//!
//! `serve.requests` / `serve.parse_errors` / `serve.solve_errors`
//! count intake and failures; `serve.latency_log2_ns` is a log₂-bucketed
//! **end-to-end** (parse-to-write) latency histogram for query
//! requests, recorded only while tracing is enabled so the disabled
//! path stays clock-free. Percentiles come from
//! [`HistogramSnapshot::percentile`] via [`log2_percentile_ns`]. Queue
//! depth is `par.pool.queue_depth` from the pool, and hit rate is
//! `memo.hits` / `memo.misses` from the memo.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

use rlckit::memo::{key_for, Eviction, OptimumMemo, Served, DEFAULT_CAPACITY};
use rlckit::optimizer::optimize_rlc;
use rlckit_par::ShardedPool;
use rlckit_tech::TechNode;
use rlckit_tline::LineRlc;
use rlckit_trace::events::EventKind;
use rlckit_trace::{counter, event, histogram, HistogramSnapshot};
use rlckit_units::HenriesPerMeter;

use crate::protocol::{
    parse_request, request_id_of, response_error, response_lcrit, response_optimum,
    response_route_delay, response_stats, response_trace, Op, Query, Request, SlowRequest,
    StatsView, TraceOpView,
};

/// The `serve.parse` event value for lines that failed to parse (the
/// real ops use [`Op::code`], 0–4).
pub const PARSE_ERROR_CODE: u64 = 5;

/// Slowest requests the live slow log retains (the `trace` response's
/// table size).
pub const SLOW_LOG_CAPACITY: usize = 8;

/// Allocates request trace ids, monotonic across the whole process so
/// ids stay unique when one process serves several sessions (TCP
/// connections, bench replays).
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Sizing knobs of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads — one per memo shard.
    pub workers: usize,
    /// Bounded per-worker queue depth (intake backpressures beyond it).
    pub queue_depth: usize,
    /// Memo entries retained per shard.
    pub shard_capacity: usize,
    /// Eviction policy of the shared memo. Defaults to
    /// [`Eviction::Lru`]: a serving mix re-asks its warm-grid keys, and
    /// FIFO evicts exactly those oldest inserts first under cold churn.
    pub eviction: Eviction,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            shard_capacity: DEFAULT_CAPACITY,
            eviction: Eviction::Lru,
        }
    }
}

/// What one [`Server::serve`] session did (totals over the session, as
/// opposed to the process-lifetime trace counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Request lines consumed (blank lines excluded).
    pub requests: u64,
    /// Requests answered from the memo.
    pub hits: u64,
    /// Requests answered by a fresh solve.
    pub misses: u64,
    /// Malformed requests plus failed solves (each still got an error
    /// response).
    pub errors: u64,
    /// Whether the session ended because the reader hit its idle read
    /// timeout (the connection was closed cleanly with a final error
    /// response) rather than end-of-input.
    pub timed_out: bool,
}

/// Per-session tallies, shared between a session's router and whichever
/// pinned pool workers answer its queries.
#[derive(Default)]
struct SessionCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    solve_errors: AtomicU64,
}

/// What a worker (or the router, for inline answers) hands a session's
/// writer: `(seq, trace_id, query started-at, response text)`.
type Reply = (u64, u64, Option<Instant>, String);

/// One routed query in flight through the shared pool. Owns everything
/// the worker needs to answer — including the submitting session's
/// reply sender, which is how one pool serves many sessions without
/// knowing they exist.
struct Job {
    seq: u64,
    trace_id: u64,
    t0: Option<Instant>,
    query: Box<Query>,
    counters: Arc<SessionCounters>,
    reply: mpsc::Sender<Reply>,
}

/// A session's write-progress cursor: how many responses its writer has
/// put on the wire, guarded by a condvar so the router's `stats`
/// barrier *sleeps* until the writer catches up instead of busy-spinning
/// `yield_now()` (which, on a loaded box, burned a core per barrier).
struct Progress {
    written: Mutex<u64>,
    wrote: Condvar,
}

impl Progress {
    fn new() -> Self {
        Self {
            written: Mutex::new(0),
            wrote: Condvar::new(),
        }
    }

    /// Writer-side: every response with `seq < next` is on the wire.
    fn advance_to(&self, next: u64) {
        *self
            .written
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = next;
        self.wrote.notify_all();
    }

    /// Writer-side, on an I/O error: releases every waiter forever. A
    /// barrier that outlives its writer would otherwise hang the
    /// session's router.
    fn abandon(&self) {
        self.advance_to(u64::MAX);
    }

    /// Router-side: blocks until at least `seq` responses are written
    /// (or the writer abandoned the session).
    fn wait_for(&self, seq: u64) {
        let mut written = self
            .written
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *written < seq {
            written = self
                .wrote
                .wait(written)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn current(&self) -> u64 {
        *self
            .written
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The server-lifetime log of the slowest requests, worst first, ties
/// broken toward the earlier trace id. Maintained by the writer threads
/// (only while tracing is enabled), read by any router's `trace` op.
#[derive(Debug, Default)]
struct SlowLog {
    entries: Vec<SlowRequest>,
}

impl SlowLog {
    fn record(&mut self, trace_id: u64, total_ns: u64) {
        self.entries.push(SlowRequest { trace_id, total_ns });
        self.entries
            .sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.trace_id.cmp(&b.trace_id)));
        self.entries.truncate(SLOW_LOG_CAPACITY);
    }
}

/// The paper's standard inductance sweep: `points` values spanning
/// 0–4.95 nH/mm, matching the campaign grid so warm-started entries
/// cover the asks a figure-replay workload makes.
#[must_use]
pub fn standard_grid(points: usize) -> Vec<f64> {
    match points {
        0 => Vec::new(),
        1 => vec![0.0],
        n => (0..n)
            .map(|i| 4.95 * i as f64 / (n - 1) as f64)
            .collect(),
    }
}

/// A query daemon: a sharded memo plus the serving pipeline around it.
/// One `Server` serves any number of concurrent sessions — see the
/// module docs.
pub struct Server {
    memo: Arc<OptimumMemo>,
    pool: ShardedPool<Job>,
    config: ServeConfig,
    started: Instant,
    slow: Mutex<SlowLog>,
}

impl Server {
    /// Creates a server with one memo shard per worker. The worker pool
    /// lives as long as the server and is shared by every session.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        let memo = Arc::new(OptimumMemo::sharded_with_eviction(
            config.workers.max(1),
            config.shard_capacity,
            config.eviction,
        ));
        let pool = {
            let memo = Arc::clone(&memo);
            ShardedPool::new(config.workers, config.queue_depth, move |_shard, job: Job| {
                let Job {
                    seq,
                    trace_id,
                    t0,
                    query,
                    counters,
                    reply,
                } = job;
                let response = catch_unwind(AssertUnwindSafe(|| {
                    answer(&memo, trace_id, &query, &counters)
                }))
                .unwrap_or_else(|_| {
                    event!(trace_id, "serve.solve", EventKind::Solve, 2);
                    response_error(Some(query.id), "internal error: solver panicked")
                });
                let _ = reply.send((seq, trace_id, t0, response));
            })
        };
        Self {
            memo,
            pool,
            config,
            started: Instant::now(),
            slow: Mutex::new(SlowLog::default()),
        }
    }

    /// The shared memo (snapshot save/load operates on this).
    #[must_use]
    pub fn memo(&self) -> &Arc<OptimumMemo> {
        &self.memo
    }

    /// The sizing knobs this server was built with.
    #[must_use]
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Nanoseconds since this server was created.
    #[must_use]
    pub fn uptime_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Shuts the shared worker pool down (drains queued jobs, joins the
    /// workers). Idempotent. Sessions still running afterwards answer
    /// every further query inline with a `"pool shut down"` error
    /// response that keeps the request's `id` — they do not hang and do
    /// not lose the correlation.
    pub fn shutdown_pool(&self) {
        self.pool.shutdown();
    }

    /// Pre-solves the default-threshold optimum for every Table 1 node
    /// (plus the identical-`c` control) over [`standard_grid`] points
    /// and preloads the results, so on-grid asks hit from the first
    /// request. Returns the number of entries preloaded (grid points
    /// already present — e.g. from a snapshot — are skipped unsolved).
    pub fn warm_grid(&self, points_per_node: usize) -> usize {
        let mut preloaded = 0;
        let nodes = [
            TechNode::nm250(),
            TechNode::nm100(),
            TechNode::nm100_with_250nm_dielectric(),
        ];
        let options = rlckit::optimizer::OptimizerOptions::default();
        for node in &nodes {
            for l_nh_mm in standard_grid(points_per_node) {
                let line = LineRlc::new(
                    node.line().resistance,
                    HenriesPerMeter::from_nano_per_milli(l_nh_mm),
                    node.line().capacitance,
                );
                let key = key_for(&line, &node.driver(), options);
                if self.memo.probe(&key).is_some() {
                    continue;
                }
                if let Ok(opt) = optimize_rlc(&line, &node.driver(), options) {
                    if self.memo.preload(key, opt) {
                        preloaded += 1;
                    }
                }
            }
        }
        preloaded
    }

    /// Runs one serving session until `reader` reaches end of input,
    /// writing one response line per request line in **request order**
    /// (this session's own sequence space). Any number of sessions may
    /// run concurrently against one server; see the module docs for
    /// the determinism contract.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures of the reader or writer. Malformed
    /// requests and failed solves are *not* errors here — they get
    /// error response lines and are tallied in
    /// [`ServeSummary::errors`]. Neither is an idle read timeout
    /// ([`std::io::ErrorKind::WouldBlock`] / `TimedOut` from a reader
    /// over a socket with a read timeout, see the `rlckit-serve`
    /// `--idle-timeout-secs` flag): the session ends *cleanly* with a
    /// final `"ok":false` response, a `serve.timeouts` counter tick,
    /// and [`ServeSummary::timed_out`] set — so one stalled client can
    /// never wedge the daemon.
    ///
    /// # Panics
    ///
    /// Panics if the writer thread itself panicked (it contains no
    /// panicking code of its own).
    pub fn serve<R: BufRead, W: Write + Send>(
        &self,
        reader: R,
        writer: W,
    ) -> std::io::Result<ServeSummary> {
        let base = rlckit_trace::snapshot();
        let progress = Progress::new();
        let counters = Arc::new(SessionCounters::default());
        let (tx, rx) = mpsc::channel::<Reply>();

        std::thread::scope(|scope| {
            let writer_handle = {
                let progress = &progress;
                let slow = &self.slow;
                scope.spawn(move || -> std::io::Result<()> {
                    let mut writer = writer;
                    let mut pending: BTreeMap<u64, (u64, Option<Instant>, String)> =
                        BTreeMap::new();
                    let mut next = 0u64;
                    let result = (|| -> std::io::Result<()> {
                        while let Ok((seq, trace_id, t0, text)) = rx.recv() {
                            pending.insert(seq, (trace_id, t0, text));
                            while let Some((trace_id, t0, text)) = pending.remove(&next) {
                                writeln!(writer, "{text}")?;
                                writer.flush()?;
                                // Query requests only (`t0` is set iff the
                                // request was a query with tracing live):
                                // their response bytes are deterministic,
                                // keeping the drained event stream
                                // byte-identical across seeded runs. The
                                // router-answered ops' responses embed
                                // wall-clock digits, so a Write event for
                                // them would leak `*_ns` entropy into the
                                // `value` field.
                                if let Some(t0) = t0 {
                                    event!(
                                        trace_id,
                                        "serve.write",
                                        EventKind::Write,
                                        text.len() as u64
                                    );
                                    let ns = u64::try_from(t0.elapsed().as_nanos())
                                        .unwrap_or(u64::MAX - 1);
                                    histogram!("serve.latency_log2_ns")
                                        .observe(u64::from((ns + 1).ilog2()));
                                    slow.lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                                        .record(trace_id, ns);
                                }
                                next += 1;
                                progress.advance_to(next);
                            }
                        }
                        writer.flush()
                    })();
                    if result.is_err() {
                        // A dead writer must not strand barrier waiters.
                        progress.abandon();
                    }
                    result
                })
            };

            let mut seq = 0u64;
            let mut parse_errors = 0u64;
            let mut timed_out = false;
            let router = (|| -> std::io::Result<()> {
                for line in reader.lines() {
                    let line = match line {
                        Ok(line) => line,
                        // An idle client (read timeout armed by the
                        // daemon) ends the session cleanly: tell the
                        // client why, then fall through to the normal
                        // drain-and-close path.
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                        {
                            counter!("serve.timeouts").incr();
                            timed_out = true;
                            let trace_id = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
                            let _ = tx.send((
                                seq,
                                trace_id,
                                None,
                                response_error(None, "idle timeout: closing connection"),
                            ));
                            seq += 1;
                            return Ok(());
                        }
                        Err(e) => return Err(e),
                    };
                    if line.trim().is_empty() {
                        continue;
                    }
                    counter!("serve.requests").incr();
                    let trace_id = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
                    let t0 = rlckit_trace::enabled().then(Instant::now);
                    match parse_request(&line) {
                        Ok(Request::Query(query)) => {
                            event!(trace_id, "serve.parse", EventKind::Parse, query.op.code());
                            let key = key_for(&query.line, &query.driver, query.options);
                            let shard = self.memo.shard_of(&key);
                            event!(trace_id, "serve.route", EventKind::Route, shard as u64);
                            let job = Job {
                                seq,
                                trace_id,
                                t0,
                                query,
                                counters: Arc::clone(&counters),
                                reply: tx.clone(),
                            };
                            if let Err(rejected) = self.pool.submit_traced(shard, trace_id, job)
                            {
                                // Possible only mid-teardown. The pool
                                // hands the unanswered job back, so the
                                // inline error keeps the id the client
                                // sent — it can still correlate the
                                // failure to its request.
                                let Job {
                                    seq,
                                    trace_id,
                                    query,
                                    reply,
                                    ..
                                } = rejected.request;
                                let _ = reply.send((
                                    seq,
                                    trace_id,
                                    None,
                                    response_error(Some(query.id), "pool shut down"),
                                ));
                            }
                        }
                        Ok(Request::Stats { id }) => {
                            event!(trace_id, "serve.parse", EventKind::Parse, Op::Stats.code());
                            // Barrier: every earlier response of THIS
                            // session must be on the wire before the
                            // counters are read. Sleeps on the condvar —
                            // other sessions keep flowing meanwhile.
                            progress.wait_for(seq);
                            let session = rlckit_trace::snapshot().since(&base);
                            let latency = session.histograms.get("serve.latency_log2_ns");
                            let stats = StatsView {
                                entries: self.memo.len(),
                                workers: self.pool.workers(),
                                hits: counters.hits.load(Ordering::SeqCst),
                                misses: counters.misses.load(Ordering::SeqCst),
                                evictions: session.counter("memo.evictions"),
                                in_flight: seq.saturating_sub(progress.current()),
                                uptime_ns: self.uptime_ns(),
                                p50_ns: log2_percentile_ns(latency, 0.50),
                                p95_ns: log2_percentile_ns(latency, 0.95),
                                p99_ns: log2_percentile_ns(latency, 0.99),
                            };
                            let _ = tx.send((seq, trace_id, None, response_stats(id, &stats)));
                        }
                        Ok(Request::Trace { id }) => {
                            event!(trace_id, "serve.parse", EventKind::Parse, Op::Trace.code());
                            // Live snapshot: no barrier, answered from
                            // whatever is true right now.
                            let session = rlckit_trace::snapshot().since(&base);
                            let latency = session.histograms.get("serve.latency_log2_ns");
                            let events = rlckit_trace::events::collect().events.len() as u64;
                            let view = TraceOpView {
                                // Self-inclusive: counts this trace
                                // request itself, unlike the stats view
                                // (see the protocol.rs contract).
                                requests: seq + 1,
                                parse_errors,
                                solve_errors: counters.solve_errors.load(Ordering::SeqCst),
                                in_flight: seq.saturating_sub(progress.current()),
                                events,
                                uptime_ns: self.uptime_ns(),
                                p50_ns: log2_percentile_ns(latency, 0.50),
                                p95_ns: log2_percentile_ns(latency, 0.95),
                                p99_ns: log2_percentile_ns(latency, 0.99),
                                slowest: self
                                    .slow
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                                    .entries
                                    .clone(),
                            };
                            let _ = tx.send((seq, trace_id, None, response_trace(id, &view)));
                        }
                        Err(message) => {
                            event!(trace_id, "serve.parse", EventKind::Parse, PARSE_ERROR_CODE);
                            counter!("serve.parse_errors").incr();
                            parse_errors += 1;
                            let id = request_id_of(&line);
                            let _ = tx.send((seq, trace_id, None, response_error(id, &message)));
                        }
                    }
                    seq += 1;
                }
                Ok(())
            })();

            // Session drain: every routed job answers through the reply
            // sender it carries, so waiting for this session's cursor to
            // reach `seq` — rather than joining the shared pool, which
            // other sessions are still using — is what ends the session.
            // (If the writer died, `abandon` has already released us.)
            progress.wait_for(seq);
            drop(tx);
            let writer_result = writer_handle.join().expect("writer thread panicked");
            router.and(writer_result)?;
            Ok(ServeSummary {
                // The timeout notice occupies a writer slot but is not
                // a consumed request line.
                requests: seq - u64::from(timed_out),
                hits: counters.hits.load(Ordering::SeqCst),
                misses: counters.misses.load(Ordering::SeqCst),
                errors: parse_errors + counters.solve_errors.load(Ordering::SeqCst),
                timed_out,
            })
        })
    }
}

/// Computes the response for one validated query (worker-side).
fn answer(memo: &OptimumMemo, trace_id: u64, query: &Query, counters: &SessionCounters) -> String {
    match memo.optimum_served(&query.line, &query.driver, query.options) {
        Ok((opt, served)) => {
            match served {
                Served::Hit => counters.hits.fetch_add(1, Ordering::SeqCst),
                Served::Solved => counters.misses.fetch_add(1, Ordering::SeqCst),
            };
            event!(
                trace_id,
                "serve.memo",
                EventKind::Probe,
                u64::from(served == Served::Hit)
            );
            let response = match query.op {
                Op::Optimum => response_optimum(query.id, &opt, served),
                Op::RouteDelay => {
                    let length = query.length.expect("validated by parse_request");
                    response_route_delay(query.id, length, opt.total_delay(length), served)
                }
                Op::Lcrit => response_lcrit(query.id, opt.critical_inductance, served),
                // Stats and trace never reach a worker (router-handled).
                Op::Stats | Op::Trace => {
                    response_error(Some(query.id), "stats/trace are router-handled")
                }
            };
            event!(trace_id, "serve.solve", EventKind::Solve, 0);
            response
        }
        Err(e) => {
            counter!("serve.solve_errors").incr();
            counters.solve_errors.fetch_add(1, Ordering::SeqCst);
            event!(trace_id, "serve.memo", EventKind::Probe, 0);
            event!(trace_id, "serve.solve", EventKind::Solve, 1);
            response_error(Some(query.id), &format!("solve failed: {e}"))
        }
    }
}

/// The interpolated `q`-quantile of a log₂-ns latency histogram,
/// converted back to nanoseconds (`2^percentile`, rounded). 0 when the
/// histogram is absent or empty — "no latency recorded yet" renders as
/// 0 ns rather than an error.
#[must_use]
pub fn log2_percentile_ns(h: Option<&HistogramSnapshot>, q: f64) -> u64 {
    h.and_then(|h| h.percentile(q))
        .map_or(0, |p| 2f64.powf(p).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(server: &Server, input: &str) -> (String, ServeSummary) {
        let mut out = Vec::new();
        let summary = server.serve(input.as_bytes(), &mut out).unwrap();
        (String::from_utf8(out).unwrap(), summary)
    }

    /// Removes every `"<key>_ns":<digits>` field (and its trailing
    /// comma, when present) — the documented wall-clock escape hatch —
    /// so byte-identity can be asserted on everything else.
    fn strip_ns_fields(text: &str) -> String {
        let mut out = String::new();
        for line in text.lines() {
            let mut s = line.to_string();
            while let Some(found) = s.find("_ns\":") {
                let key_start = s[..found].rfind('"').unwrap_or(0);
                let mut end = found + "_ns\":".len();
                while s.as_bytes().get(end).is_some_and(u8::is_ascii_digit) {
                    end += 1;
                }
                if s.as_bytes().get(end) == Some(&b',') {
                    end += 1;
                }
                s.replace_range(key_start..end, "");
            }
            out.push_str(&s);
            out.push('\n');
        }
        out
    }

    #[test]
    fn responses_come_back_in_request_order_with_hits_after_misses() {
        let server = Server::new(ServeConfig::default());
        let input = r#"{"id":1,"op":"optimum","node":"100nm","l_nh_mm":1.8}
{"id":2,"op":"optimum","node":"100nm","l_nh_mm":1.8}
{"id":3,"op":"route_delay","node":"100nm","l_nh_mm":1.8,"length_mm":30}
"#;
        let (out, summary) = run(&server, input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"id\":1,"), "{}", lines[0]);
        assert!(lines[0].contains("\"source\":\"solve\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"id\":2,"), "{}", lines[1]);
        assert!(lines[1].contains("\"source\":\"memo\""), "{}", lines[1]);
        // Same key again: route_delay rides the optimum's entry.
        assert!(lines[2].contains("\"source\":\"memo\""), "{}", lines[2]);
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.misses, 1);
        assert_eq!(summary.hits, 2);
        assert_eq!(summary.errors, 0);
    }

    /// A reader that yields some bytes, then fails every further read
    /// with `WouldBlock` — exactly what a `BufReader` over a TCP
    /// stream with a read timeout produces when the client stalls
    /// mid-session.
    struct StallingReader {
        data: &'static [u8],
        pos: usize,
    }

    impl std::io::Read for StallingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn idle_read_timeout_closes_the_session_cleanly() {
        let server = Server::new(ServeConfig::default());
        let reader = std::io::BufReader::new(StallingReader {
            data: b"{\"id\":1,\"op\":\"optimum\",\"node\":\"100nm\",\"l_nh_mm\":1.8}\n",
            pos: 0,
        });
        let mut out = Vec::new();
        let summary = server
            .serve(reader, &mut out)
            .expect("an idle timeout must not surface as an I/O error");
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        // The request before the stall was answered normally...
        assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
        // ...and the stalled client got a clean goodbye, not a cut wire.
        assert!(lines[1].contains("\"ok\":false"), "{}", lines[1]);
        assert!(lines[1].contains("idle timeout"), "{}", lines[1]);
        assert!(summary.timed_out);
        assert_eq!(summary.requests, 1);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn non_timeout_reader_errors_still_propagate() {
        let server = Server::new(ServeConfig::default());
        struct BrokenReader;
        impl std::io::Read for BrokenReader {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::ErrorKind::ConnectionReset.into())
            }
        }
        let result = server.serve(std::io::BufReader::new(BrokenReader), Vec::new());
        assert!(result.is_err(), "a reset is a real error, not an idle close");
    }

    /// Pre-fix regression: the pool-shutdown fallback answered
    /// `response_error(None, ...)` although the parsed query's id was
    /// in hand, so the client could not correlate the error to its
    /// request. The pool now hands the rejected job back and the
    /// router answers with the id preserved.
    #[test]
    fn pool_shutdown_answers_keep_the_request_id() {
        let server = Server::new(ServeConfig::default());
        server.shutdown_pool();
        let (out, summary) = run(
            &server,
            "{\"id\":41,\"op\":\"optimum\",\"node\":\"100nm\",\"l_nh_mm\":1.0}\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1, "{out}");
        assert!(lines[0].contains("\"id\":41"), "the id must survive: {out}");
        assert!(lines[0].contains("\"ok\":false"), "{out}");
        assert!(lines[0].contains("pool shut down"), "{out}");
        assert_eq!(summary.requests, 1);
        // Double shutdown is a no-op; the session still ran to completion.
        server.shutdown_pool();
    }

    /// The documented asymmetry (see `protocol.rs`): `stats` is a
    /// barrier over the *preceding* prefix, while the `trace` view's
    /// `requests` count is **self-inclusive** — it counts the trace
    /// request itself.
    #[test]
    fn trace_requests_is_self_inclusive_while_stats_covers_the_prefix() {
        let server = Server::new(ServeConfig::default());
        let input = r#"{"id":1,"op":"optimum","node":"100nm","l_nh_mm":0.3}
{"id":2,"op":"stats"}
{"id":3,"op":"trace"}
"#;
        let (out, summary) = run(&server, input);
        assert_eq!(summary.requests, 3);
        let stats_line = out.lines().nth(1).unwrap();
        // Stats: exactly the one preceding query, barrier-drained.
        assert!(stats_line.contains("\"misses\":1"), "{stats_line}");
        assert!(stats_line.contains("\"hits\":0"), "{stats_line}");
        assert!(stats_line.contains("\"in_flight\":0"), "{stats_line}");
        let trace_line = out.lines().nth(2).unwrap();
        // Trace: two preceding requests plus itself.
        assert!(trace_line.contains("\"requests\":3"), "{trace_line}");
    }

    /// The tentpole in miniature: two sessions run against one server
    /// *simultaneously* and each gets its own in-order response stream,
    /// while keys solved by either session warm the shared memo.
    #[test]
    fn concurrent_sessions_share_the_pool_and_the_memo() {
        let server = Server::new(ServeConfig::default());
        let input_a = "{\"id\":1,\"op\":\"optimum\",\"node\":\"250nm\",\"l_nh_mm\":0.8}\n\
                       {\"id\":2,\"op\":\"optimum\",\"node\":\"250nm\",\"l_nh_mm\":0.8}\n";
        let input_b = "{\"id\":1,\"op\":\"lcrit\",\"node\":\"100nm\",\"l_nh_mm\":1.3}\n\
                       {\"id\":2,\"op\":\"lcrit\",\"node\":\"100nm\",\"l_nh_mm\":1.3}\n";
        let (summary_a, summary_b, out_a, out_b) = std::thread::scope(|scope| {
            let a = scope.spawn(|| {
                let mut out = Vec::new();
                let s = server.serve(input_a.as_bytes(), &mut out).unwrap();
                (s, String::from_utf8(out).unwrap())
            });
            let b = scope.spawn(|| {
                let mut out = Vec::new();
                let s = server.serve(input_b.as_bytes(), &mut out).unwrap();
                (s, String::from_utf8(out).unwrap())
            });
            let (summary_a, out_a) = a.join().unwrap();
            let (summary_b, out_b) = b.join().unwrap();
            (summary_a, summary_b, out_a, out_b)
        });
        for (out, summary) in [(&out_a, summary_a), (&out_b, summary_b)] {
            let lines: Vec<&str> = out.lines().collect();
            assert_eq!(lines.len(), 2, "{out}");
            assert!(lines[0].starts_with("{\"id\":1,"), "{out}");
            assert!(lines[1].starts_with("{\"id\":2,"), "{out}");
            // Each session's second ask of its own key hits: same-key
            // requests serialize on the pinned shard worker.
            assert!(lines[1].contains("\"source\":\"memo\""), "{out}");
            assert_eq!(summary.requests, 2);
            assert_eq!(summary.hits, 1);
            assert_eq!(summary.misses, 1);
        }
        // Cross-session warming: a third session re-asks both keys and
        // hits both — the memo outlives and spans the sessions.
        let (out, summary) = run(
            &server,
            "{\"id\":9,\"op\":\"optimum\",\"node\":\"250nm\",\"l_nh_mm\":0.8}\n\
             {\"id\":10,\"op\":\"lcrit\",\"node\":\"100nm\",\"l_nh_mm\":1.3}\n",
        );
        assert_eq!(summary.hits, 2, "{out}");
        assert_eq!(summary.misses, 0, "{out}");
    }

    #[test]
    fn two_runs_over_the_same_input_are_byte_identical_modulo_ns() {
        let input = r#"{"id":1,"op":"optimum","node":"250nm","l_nh_mm":0.9}
{"id":2,"op":"lcrit","node":"100nm","l_nh_mm":2.2}
{"id":3,"op":"optimum","node":"250nm","l_nh_mm":0.9}
{"id":4,"op":"stats"}
{"id":5,"op":"route_delay","node":"100nm","l_nh_mm":2.2,"length_mm":15}
not json at all
{"id":7,"op":"optimum","node":"100nm","l_nh_mm":2.2000000000001}
"#;
        let (a, sa) = run(&Server::new(ServeConfig::default()), input);
        let (b, sb) = run(&Server::new(ServeConfig::default()), input);
        assert_eq!(
            strip_ns_fields(&a),
            strip_ns_fields(&b),
            "same input must produce byte-identical output modulo *_ns fields"
        );
        assert_eq!(sa, sb);
        assert_eq!(sa.errors, 1);
        // The mid-stream stats saw exactly the first three requests.
        let stats_line = a.lines().nth(3).unwrap();
        assert!(stats_line.contains("\"hits\":1"), "{stats_line}");
        assert!(stats_line.contains("\"misses\":2"), "{stats_line}");
        // The barrier guarantees nothing is in flight, deterministically.
        assert!(stats_line.contains("\"in_flight\":0"), "{stats_line}");
        for field in ["\"uptime_ns\":", "\"p50_ns\":", "\"p95_ns\":", "\"p99_ns\":"] {
            assert!(stats_line.contains(field), "{field} missing: {stats_line}");
        }
    }

    #[test]
    fn trace_op_answers_a_live_snapshot() {
        rlckit_trace::set_enabled(true);
        let server = Server::new(ServeConfig::default());
        let input = r#"{"id":1,"op":"optimum","node":"100nm","l_nh_mm":0.7}
{"id":2,"op":"stats"}
{"id":3,"op":"trace"}
"#;
        let (out, summary) = run(&server, input);
        assert_eq!(summary.requests, 3);
        let trace_line = out.lines().nth(2).unwrap();
        assert!(trace_line.starts_with("{\"id\":3,\"ok\":true,\"op\":\"trace\""), "{trace_line}");
        assert!(trace_line.contains("\"requests\":3"), "{trace_line}");
        assert!(trace_line.contains("\"parse_errors\":0"), "{trace_line}");
        assert!(trace_line.contains("\"uptime_ns\":"), "{trace_line}");
        assert!(trace_line.contains("\"slowest\":[{\"trace_id\":"), "{trace_line}");
        // The flight recorder had recorded events by answer time.
        let events: u64 = trace_line
            .split("\"events\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert!(events > 0, "{trace_line}");
    }

    #[test]
    fn every_request_leaves_a_reconstructible_span_tree() {
        rlckit_trace::set_enabled(true);
        let server = Server::new(ServeConfig::default());
        let input = r#"{"id":1,"op":"optimum","node":"250nm","l_nh_mm":1.1}
{"id":2,"op":"lcrit","node":"250nm","l_nh_mm":1.1}
"#;
        let (_, summary) = run(&server, input);
        assert_eq!(summary.requests, 2);
        // Group all flight-recorder events by trace. Sibling tests may
        // interleave their own traces; the span-tree invariant below
        // holds for every query trace regardless of origin.
        let drained = rlckit_trace::events::collect();
        let mut by_trace: BTreeMap<u64, Vec<&rlckit_trace::events::EventRecord>> = BTreeMap::new();
        for e in &drained.events {
            by_trace.entry(e.trace_id).or_default().push(e);
        }
        let mut full_trees = 0;
        for events in by_trace.values() {
            // A trace that probed the memo is a served query: it must
            // carry the whole pipeline, in causal order.
            if !events.iter().any(|e| e.scope == "serve.memo") {
                continue;
            }
            let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
            assert_eq!(
                kinds,
                vec![
                    EventKind::Parse,
                    EventKind::Route,
                    EventKind::Dequeue,
                    EventKind::Probe,
                    EventKind::Solve,
                    EventKind::Write,
                ],
                "incomplete span tree: {events:?}"
            );
            // Route and Dequeue agree on the shard (worker pinning).
            assert_eq!(events[1].value, events[2].value, "{events:?}");
            // Causal order is also temporal order within one trace.
            for pair in events.windows(2) {
                assert!(pair[0].t_ns <= pair[1].t_ns, "{events:?}");
            }
            full_trees += 1;
        }
        assert!(full_trees >= 2, "both queries must leave full span trees");
    }

    #[test]
    fn warm_start_makes_the_first_on_grid_ask_a_memo_hit() {
        let server = Server::new(ServeConfig::default());
        let preloaded = server.warm_grid(5);
        assert_eq!(preloaded, 3 * 5, "three nodes × five grid points");
        assert_eq!(server.memo().len(), 15);
        // 4.95/4 * 2 = 2.475 nH/mm is the third grid point of the 100nm node.
        let (out, summary) = run(
            &server,
            "{\"id\":1,\"op\":\"optimum\",\"node\":\"100nm\",\"l_nh_mm\":2.475}\n",
        );
        assert!(out.contains("\"source\":\"memo\""), "{out}");
        assert_eq!(summary.hits, 1);
        assert_eq!(summary.misses, 0);
        // Re-warming is idempotent: everything is already present.
        assert_eq!(server.warm_grid(5), 0);
    }

    #[test]
    fn served_answers_are_bit_identical_to_a_cold_solve() {
        let server = Server::new(ServeConfig::default());
        server.warm_grid(3);
        let node = rlckit_tech::TechNode::nm250();
        let line = LineRlc::new(
            node.line().resistance,
            HenriesPerMeter::from_nano_per_milli(2.475),
            node.line().capacitance,
        );
        let cold = optimize_rlc(
            &line,
            &node.driver(),
            rlckit::optimizer::OptimizerOptions::default(),
        )
        .unwrap();
        let (out, summary) = run(
            &server,
            "{\"id\":1,\"op\":\"optimum\",\"node\":\"250nm\",\"l_nh_mm\":2.475}\n",
        );
        assert_eq!(summary.hits, 1, "on-grid ask must hit the warm memo");
        assert!(
            out.contains(&format!("\"h_m\":{}", cold.segment_length.get())),
            "served h must print the cold solve's bits: {out}"
        );
        assert!(
            out.contains(&format!("\"segment_delay_s\":{}", cold.segment_delay.get())),
            "served delay must print the cold solve's bits: {out}"
        );
    }

    #[test]
    fn log2_percentile_ns_interpolates_the_latency_histogram() {
        assert_eq!(log2_percentile_ns(None, 0.95), 0);
        let empty = HistogramSnapshot::default();
        assert_eq!(log2_percentile_ns(Some(&empty), 0.95), 0);
        // All observations in log₂ bucket 10 (≈1–2 µs): the
        // interpolated p95 sits inside [2^10, 2^11).
        let mut h = HistogramSnapshot {
            count: 100,
            sum: 1000,
            min: Some(10),
            max: Some(10),
            buckets: vec![0; rlckit_trace::BUCKETS],
        };
        h.buckets[10] = 100;
        let p95 = log2_percentile_ns(Some(&h), 0.95);
        assert!((1024..2048).contains(&p95), "{p95}");
    }

    #[test]
    fn slow_log_keeps_the_worst_n_sorted() {
        let mut log = SlowLog::default();
        for (id, ns) in (0..20u64).map(|i| (i, 1000 * (i % 10) + 7)) {
            log.record(id, ns);
        }
        assert_eq!(log.entries.len(), SLOW_LOG_CAPACITY);
        for pair in log.entries.windows(2) {
            assert!(pair[0].total_ns >= pair[1].total_ns, "{:?}", log.entries);
        }
        assert_eq!(log.entries[0].total_ns, 9007, "worst first");
    }

    #[test]
    fn solver_failures_get_error_responses_not_hangs() {
        // threshold is validated at parse; an in-range but pathological
        // ask that the solver rejects still must produce a response.
        // Use a raw line with absurd values that parse but fail to
        // converge... the optimizer is robust, so instead exercise the
        // parse-error path plus a valid ask around it.
        let server = Server::new(ServeConfig::default());
        let input = "{\"id\":1,\"op\":\"optimum\",\"node\":\"100nm\"}\n\
                     {\"id\":2,\"op\":\"optimum\",\"node\":\"100nm\",\"l_nh_mm\":1.0}\n";
        let (out, summary) = run(&server, input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ok\":false"), "{}", lines[0]);
        assert!(lines[1].contains("\"ok\":true"), "{}", lines[1]);
        assert_eq!(summary.errors, 1);
    }
}
