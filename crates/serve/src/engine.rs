//! The serving engine: bounded intake, sharded workers, ordered output.
//!
//! # Pipeline
//!
//! ```text
//! reader ──► router ──► ShardedPool (worker i owns memo shard i) ──► writer
//!              │                                                      ▲
//!              └── parse errors / stats barriers ─────────────────────┘
//! ```
//!
//! One router thread (the caller of [`Server::serve`]) reads requests
//! line by line, routes each query to the [`rlckit_par::ShardedPool`]
//! shard that owns its memo key, and tags it with a sequence number. A
//! writer thread reorders worker responses back into input order before
//! writing. This shape is what makes the daemon **deterministic**:
//!
//! * Same-key requests hash to the same shard, whose queue is FIFO and
//!   whose worker is pinned — so of two back-to-back asks of one cold
//!   key, the first always solves and the second always hits. No global
//!   lock is contended across shards.
//! * Responses are emitted strictly in request order regardless of
//!   which worker finished first, so two runs over the same input
//!   produce byte-identical output (the tier-1 serve smoke `cmp`s
//!   exactly this).
//! * A `stats` request is a **pipeline barrier**: the router stalls
//!   intake until every earlier response has been written, then answers
//!   from quiescent counters — so stats are a pure function of the
//!   request prefix, not of scheduling.
//!
//! # Telemetry
//!
//! `serve.requests` / `serve.parse_errors` / `serve.solve_errors`
//! count intake and failures; `serve.latency_log2_ns` is a log₂-bucketed
//! wall-clock latency histogram (recorded only while tracing is
//! enabled, keeping the disabled path clock-free; the `_ns` suffix
//! marks it non-deterministic per the trace contract — p95 comes from
//! [`p95_bucket`]). Queue depth is `par.pool.queue_depth` from the
//! pool, and hit rate is `memo.hits` / `memo.misses` from the memo.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use rlckit::memo::{key_for, OptimumMemo, Served, DEFAULT_CAPACITY};
use rlckit::optimizer::optimize_rlc;
use rlckit_par::ShardedPool;
use rlckit_tech::TechNode;
use rlckit_tline::LineRlc;
use rlckit_trace::{counter, histogram, HistogramSnapshot};
use rlckit_units::HenriesPerMeter;

use crate::protocol::{
    parse_request, request_id_of, response_error, response_lcrit, response_optimum,
    response_route_delay, response_stats, Op, Query, Request, StatsView,
};

/// Sizing knobs of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads — one per memo shard.
    pub workers: usize,
    /// Bounded per-worker queue depth (intake backpressures beyond it).
    pub queue_depth: usize,
    /// Memo entries retained per shard.
    pub shard_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            shard_capacity: DEFAULT_CAPACITY,
        }
    }
}

/// What one [`Server::serve`] session did (totals over the session, as
/// opposed to the process-lifetime trace counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Request lines consumed (blank lines excluded).
    pub requests: u64,
    /// Requests answered from the memo.
    pub hits: u64,
    /// Requests answered by a fresh solve.
    pub misses: u64,
    /// Malformed requests plus failed solves (each still got an error
    /// response).
    pub errors: u64,
}

/// The paper's standard inductance sweep: `points` values spanning
/// 0–4.95 nH/mm, matching the campaign grid so warm-started entries
/// cover the asks a figure-replay workload makes.
#[must_use]
pub fn standard_grid(points: usize) -> Vec<f64> {
    match points {
        0 => Vec::new(),
        1 => vec![0.0],
        n => (0..n)
            .map(|i| 4.95 * i as f64 / (n - 1) as f64)
            .collect(),
    }
}

/// A query daemon: a sharded memo plus the serving pipeline around it.
pub struct Server {
    memo: Arc<OptimumMemo>,
    config: ServeConfig,
}

impl Server {
    /// Creates a server with one memo shard per worker.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        Self {
            memo: Arc::new(OptimumMemo::sharded(config.workers.max(1), config.shard_capacity)),
            config,
        }
    }

    /// The shared memo (snapshot save/load operates on this).
    #[must_use]
    pub fn memo(&self) -> &Arc<OptimumMemo> {
        &self.memo
    }

    /// Pre-solves the default-threshold optimum for every Table 1 node
    /// (plus the identical-`c` control) over [`standard_grid`] points
    /// and preloads the results, so on-grid asks hit from the first
    /// request. Returns the number of entries preloaded (grid points
    /// already present — e.g. from a snapshot — are skipped unsolved).
    pub fn warm_grid(&self, points_per_node: usize) -> usize {
        let mut preloaded = 0;
        let nodes = [
            TechNode::nm250(),
            TechNode::nm100(),
            TechNode::nm100_with_250nm_dielectric(),
        ];
        let options = rlckit::optimizer::OptimizerOptions::default();
        for node in &nodes {
            for l_nh_mm in standard_grid(points_per_node) {
                let line = LineRlc::new(
                    node.line().resistance,
                    HenriesPerMeter::from_nano_per_milli(l_nh_mm),
                    node.line().capacitance,
                );
                let key = key_for(&line, &node.driver(), options);
                if self.memo.probe(&key).is_some() {
                    continue;
                }
                if let Ok(opt) = optimize_rlc(&line, &node.driver(), options) {
                    if self.memo.preload(key, opt) {
                        preloaded += 1;
                    }
                }
            }
        }
        preloaded
    }

    /// Runs the serving pipeline until `reader` reaches end of input,
    /// writing one response line per request line in **request order**.
    /// See the module docs for the determinism contract.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures of the reader or writer. Malformed
    /// requests and failed solves are *not* errors here — they get
    /// error response lines and are tallied in
    /// [`ServeSummary::errors`].
    ///
    /// # Panics
    ///
    /// Panics if the writer thread itself panicked (it contains no
    /// panicking code of its own).
    pub fn serve<R: BufRead, W: Write + Send>(
        &self,
        reader: R,
        writer: W,
    ) -> std::io::Result<ServeSummary> {
        let base = rlckit_trace::snapshot();
        let written = Arc::new(AtomicU64::new(0));
        let hits = Arc::new(AtomicU64::new(0));
        let misses = Arc::new(AtomicU64::new(0));
        let solve_errors = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel::<(u64, String)>();

        std::thread::scope(|scope| {
            let writer_handle = {
                let written = Arc::clone(&written);
                scope.spawn(move || -> std::io::Result<()> {
                    let mut writer = writer;
                    let mut pending: BTreeMap<u64, String> = BTreeMap::new();
                    let mut next = 0u64;
                    while let Ok((seq, text)) = rx.recv() {
                        pending.insert(seq, text);
                        while let Some(text) = pending.remove(&next) {
                            writeln!(writer, "{text}")?;
                            writer.flush()?;
                            next += 1;
                            written.store(next, Ordering::SeqCst);
                        }
                    }
                    writer.flush()
                })
            };

            let pool = {
                let memo = Arc::clone(&self.memo);
                let hits = Arc::clone(&hits);
                let misses = Arc::clone(&misses);
                let solve_errors = Arc::clone(&solve_errors);
                let worker_tx = Mutex::new(tx.clone());
                ShardedPool::new(
                    self.config.workers,
                    self.config.queue_depth,
                    move |_shard, (seq, query): (u64, Box<Query>)| {
                        let started = rlckit_trace::enabled().then(std::time::Instant::now);
                        let response = catch_unwind(AssertUnwindSafe(|| {
                            answer(&memo, &query, &hits, &misses, &solve_errors)
                        }))
                        .unwrap_or_else(|_| {
                            response_error(Some(query.id), "internal error: solver panicked")
                        });
                        if let Some(t0) = started {
                            let ns =
                                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX - 1);
                            histogram!("serve.latency_log2_ns").observe(u64::from((ns + 1).ilog2()));
                        }
                        let _ = worker_tx
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .send((seq, response));
                    },
                )
            };

            let mut seq = 0u64;
            let mut parse_errors = 0u64;
            let router = (|| -> std::io::Result<()> {
                for line in reader.lines() {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    counter!("serve.requests").incr();
                    match parse_request(&line) {
                        Ok(Request::Query(query)) => {
                            let key = key_for(&query.line, &query.driver, query.options);
                            let shard = self.memo.shard_of(&key);
                            if pool.submit(shard, (seq, query)).is_err() {
                                // Possible only mid-teardown; answer inline.
                                let _ = tx.send((seq, response_error(None, "pool shut down")));
                            }
                        }
                        Ok(Request::Stats { id }) => {
                            // Barrier: every earlier response must be on
                            // the wire before the counters are read.
                            while written.load(Ordering::SeqCst) < seq {
                                std::thread::yield_now();
                            }
                            let evictions = rlckit_trace::snapshot()
                                .since(&base)
                                .counter("memo.evictions");
                            let stats = StatsView {
                                entries: self.memo.len(),
                                workers: pool.workers(),
                                hits: hits.load(Ordering::SeqCst),
                                misses: misses.load(Ordering::SeqCst),
                                evictions,
                            };
                            let _ = tx.send((seq, response_stats(id, &stats)));
                        }
                        Err(message) => {
                            counter!("serve.parse_errors").incr();
                            parse_errors += 1;
                            let id = request_id_of(&line);
                            let _ = tx.send((seq, response_error(id, &message)));
                        }
                    }
                    seq += 1;
                }
                Ok(())
            })();

            // Shutdown: joining the pool drops the workers' sender clone,
            // then dropping the router's own sender lets the writer drain
            // and exit.
            pool.join();
            drop(tx);
            let writer_result = writer_handle.join().expect("writer thread panicked");
            router.and(writer_result)?;
            Ok(ServeSummary {
                requests: seq,
                hits: hits.load(Ordering::SeqCst),
                misses: misses.load(Ordering::SeqCst),
                errors: parse_errors + solve_errors.load(Ordering::SeqCst),
            })
        })
    }
}

/// Computes the response for one validated query (worker-side).
fn answer(
    memo: &OptimumMemo,
    query: &Query,
    hits: &AtomicU64,
    misses: &AtomicU64,
    solve_errors: &AtomicU64,
) -> String {
    match memo.optimum_served(&query.line, &query.driver, query.options) {
        Ok((opt, served)) => {
            match served {
                Served::Hit => hits.fetch_add(1, Ordering::SeqCst),
                Served::Solved => misses.fetch_add(1, Ordering::SeqCst),
            };
            match query.op {
                Op::Optimum => response_optimum(query.id, &opt, served),
                Op::RouteDelay => {
                    let length = query.length.expect("validated by parse_request");
                    response_route_delay(query.id, length, opt.total_delay(length), served)
                }
                Op::Lcrit => response_lcrit(query.id, opt.critical_inductance, served),
                // Stats never reaches a worker (the router answers it).
                Op::Stats => response_error(Some(query.id), "stats is router-handled"),
            }
        }
        Err(e) => {
            counter!("serve.solve_errors").incr();
            solve_errors.fetch_add(1, Ordering::SeqCst);
            response_error(Some(query.id), &format!("solve failed: {e}"))
        }
    }
}

/// The bucket index at or below which 95 % of a histogram's
/// observations fall (`None` when empty). For `serve.latency_log2_ns`
/// the bucket index is `log₂(latency in ns)`, so p95 latency is
/// `~2^bucket` ns.
#[must_use]
pub fn p95_bucket(h: &HistogramSnapshot) -> Option<usize> {
    if h.count == 0 {
        return None;
    }
    let rank = (h.count * 95).div_ceil(100).max(1);
    let mut cumulative = 0u64;
    for (index, &bucket) in h.buckets.iter().enumerate() {
        cumulative += bucket;
        if cumulative >= rank {
            return Some(index);
        }
    }
    Some(h.buckets.len().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(server: &Server, input: &str) -> (String, ServeSummary) {
        let mut out = Vec::new();
        let summary = server.serve(input.as_bytes(), &mut out).unwrap();
        (String::from_utf8(out).unwrap(), summary)
    }

    #[test]
    fn responses_come_back_in_request_order_with_hits_after_misses() {
        let server = Server::new(ServeConfig::default());
        let input = r#"{"id":1,"op":"optimum","node":"100nm","l_nh_mm":1.8}
{"id":2,"op":"optimum","node":"100nm","l_nh_mm":1.8}
{"id":3,"op":"route_delay","node":"100nm","l_nh_mm":1.8,"length_mm":30}
"#;
        let (out, summary) = run(&server, input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"id\":1,"), "{}", lines[0]);
        assert!(lines[0].contains("\"source\":\"solve\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"id\":2,"), "{}", lines[1]);
        assert!(lines[1].contains("\"source\":\"memo\""), "{}", lines[1]);
        // Same key again: route_delay rides the optimum's entry.
        assert!(lines[2].contains("\"source\":\"memo\""), "{}", lines[2]);
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.misses, 1);
        assert_eq!(summary.hits, 2);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn two_runs_over_the_same_input_are_byte_identical() {
        let input = r#"{"id":1,"op":"optimum","node":"250nm","l_nh_mm":0.9}
{"id":2,"op":"lcrit","node":"100nm","l_nh_mm":2.2}
{"id":3,"op":"optimum","node":"250nm","l_nh_mm":0.9}
{"id":4,"op":"stats"}
{"id":5,"op":"route_delay","node":"100nm","l_nh_mm":2.2,"length_mm":15}
not json at all
{"id":7,"op":"optimum","node":"100nm","l_nh_mm":2.2000000000001}
"#;
        let (a, sa) = run(&Server::new(ServeConfig::default()), input);
        let (b, sb) = run(&Server::new(ServeConfig::default()), input);
        assert_eq!(a, b, "same input must produce byte-identical output");
        assert_eq!(sa, sb);
        assert_eq!(sa.errors, 1);
        // The mid-stream stats saw exactly the first three requests.
        let stats_line = a.lines().nth(3).unwrap();
        assert!(stats_line.contains("\"hits\":1"), "{stats_line}");
        assert!(stats_line.contains("\"misses\":2"), "{stats_line}");
    }

    #[test]
    fn warm_start_makes_the_first_on_grid_ask_a_memo_hit() {
        let server = Server::new(ServeConfig::default());
        let preloaded = server.warm_grid(5);
        assert_eq!(preloaded, 3 * 5, "three nodes × five grid points");
        assert_eq!(server.memo().len(), 15);
        // 4.95/4 * 2 = 2.475 nH/mm is the third grid point of the 100nm node.
        let (out, summary) = run(
            &server,
            "{\"id\":1,\"op\":\"optimum\",\"node\":\"100nm\",\"l_nh_mm\":2.475}\n",
        );
        assert!(out.contains("\"source\":\"memo\""), "{out}");
        assert_eq!(summary.hits, 1);
        assert_eq!(summary.misses, 0);
        // Re-warming is idempotent: everything is already present.
        assert_eq!(server.warm_grid(5), 0);
    }

    #[test]
    fn served_answers_are_bit_identical_to_a_cold_solve() {
        let server = Server::new(ServeConfig::default());
        server.warm_grid(3);
        let node = rlckit_tech::TechNode::nm250();
        let line = LineRlc::new(
            node.line().resistance,
            HenriesPerMeter::from_nano_per_milli(2.475),
            node.line().capacitance,
        );
        let cold = optimize_rlc(
            &line,
            &node.driver(),
            rlckit::optimizer::OptimizerOptions::default(),
        )
        .unwrap();
        let (out, summary) = run(
            &server,
            "{\"id\":1,\"op\":\"optimum\",\"node\":\"250nm\",\"l_nh_mm\":2.475}\n",
        );
        assert_eq!(summary.hits, 1, "on-grid ask must hit the warm memo");
        assert!(
            out.contains(&format!("\"h_m\":{}", cold.segment_length.get())),
            "served h must print the cold solve's bits: {out}"
        );
        assert!(
            out.contains(&format!("\"segment_delay_s\":{}", cold.segment_delay.get())),
            "served delay must print the cold solve's bits: {out}"
        );
    }

    #[test]
    fn p95_bucket_reads_the_cumulative_histogram() {
        let mut h = HistogramSnapshot::default();
        assert_eq!(p95_bucket(&h), None);
        h.count = 100;
        h.buckets = vec![50, 40, 5, 4, 1];
        assert_eq!(p95_bucket(&h), Some(2));
        h.count = 1;
        h.buckets = vec![0, 1];
        assert_eq!(p95_bucket(&h), Some(1));
    }

    #[test]
    fn solver_failures_get_error_responses_not_hangs() {
        // threshold is validated at parse; an in-range but pathological
        // ask that the solver rejects still must produce a response.
        // Use a raw line with absurd values that parse but fail to
        // converge... the optimizer is robust, so instead exercise the
        // parse-error path plus a valid ask around it.
        let server = Server::new(ServeConfig::default());
        let input = "{\"id\":1,\"op\":\"optimum\",\"node\":\"100nm\"}\n\
                     {\"id\":2,\"op\":\"optimum\",\"node\":\"100nm\",\"l_nh_mm\":1.0}\n";
        let (out, summary) = run(&server, input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ok\":false"), "{}", lines[0]);
        assert!(lines[1].contains("\"ok\":true"), "{}", lines[1]);
        assert_eq!(summary.errors, 1);
    }
}
