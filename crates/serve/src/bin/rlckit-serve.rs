//! The `rlckit-serve` daemon: answers `optimum` / `route_delay` /
//! `lcrit` queries over stdin/stdout JSONL or a localhost TCP socket.
//!
//! ```text
//! rlckit-serve [--stdin | --tcp ADDR]
//!              [--workers N] [--queue-depth N] [--shard-capacity N]
//!              [--warm-grid POINTS] [--snapshot PATH]
//! ```
//!
//! Boot order: load `--snapshot` if present and compatible, then
//! `--warm-grid` fills whatever grid points are still missing, then the
//! (possibly grown) memo is saved back to `--snapshot`. Diagnostics go
//! to stderr; stdout carries only protocol responses. Telemetry follows
//! the usual `RLCKIT_TRACE` contract and is flushed on exit.

#![forbid(unsafe_code)]

use std::io::{BufReader, Write};
use std::process::ExitCode;

use rlckit_serve::snapshot::{self, LoadOutcome};
use rlckit_serve::{ServeConfig, Server};

struct Args {
    tcp: Option<String>,
    config: ServeConfig,
    warm_grid: usize,
    snapshot: Option<std::path::PathBuf>,
}

fn usage() -> &'static str {
    "usage: rlckit-serve [--stdin | --tcp ADDR] [--workers N] [--queue-depth N] \
     [--shard-capacity N] [--warm-grid POINTS] [--snapshot PATH]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        config: ServeConfig::default(),
        warm_grid: 0,
        snapshot: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--stdin" => args.tcp = None,
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--workers" => {
                args.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-depth" => {
                args.config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--shard-capacity" => {
                args.config.shard_capacity = value("--shard-capacity")?
                    .parse()
                    .map_err(|e| format!("--shard-capacity: {e}"))?;
            }
            "--warm-grid" => {
                args.warm_grid = value("--warm-grid")?
                    .parse()
                    .map_err(|e| format!("--warm-grid: {e}"))?;
            }
            "--snapshot" => args.snapshot = Some(value("--snapshot")?.into()),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn boot(args: &Args) -> std::io::Result<Server> {
    let server = Server::new(args.config);
    if let Some(path) = &args.snapshot {
        match snapshot::load(path, server.memo())? {
            LoadOutcome::Loaded(n) => {
                eprintln!("rlckit-serve: warm-started {n} entries from {}", path.display());
            }
            LoadOutcome::Missing => {
                eprintln!("rlckit-serve: no snapshot at {} (cold boot)", path.display());
            }
            LoadOutcome::Incompatible => {
                eprintln!(
                    "rlckit-serve: snapshot at {} has a different format fingerprint; ignoring",
                    path.display()
                );
            }
        }
    }
    if args.warm_grid > 0 {
        let solved = server.warm_grid(args.warm_grid);
        eprintln!(
            "rlckit-serve: warm grid solved {solved} new entries ({} total)",
            server.memo().len()
        );
    }
    if let Some(path) = &args.snapshot {
        let written = snapshot::save(path, server.memo())?;
        eprintln!("rlckit-serve: snapshot of {written} entries saved to {}", path.display());
    }
    Ok(server)
}

fn run() -> std::io::Result<ExitCode> {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let server = boot(&args)?;

    match &args.tcp {
        None => {
            let stdin = std::io::stdin().lock();
            // `Stdout` (unlike `StdoutLock`) is `Send`, which the writer
            // thread needs; it still buffers line-by-line internally.
            let summary = server.serve(stdin, std::io::stdout())?;
            eprintln!(
                "rlckit-serve: served {} requests ({} hits, {} misses, {} errors)",
                summary.requests, summary.hits, summary.misses, summary.errors
            );
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)?;
            eprintln!("rlckit-serve: listening on {}", listener.local_addr()?);
            for stream in listener.incoming() {
                let stream = stream?;
                let peer = stream.peer_addr()?;
                let reader = BufReader::new(stream.try_clone()?);
                // Connections are served sequentially: the memo warms
                // across them, and each gets the whole pool.
                match server.serve(reader, stream) {
                    Ok(summary) => eprintln!(
                        "rlckit-serve: {peer} closed after {} requests ({} hits)",
                        summary.requests, summary.hits
                    ),
                    Err(e) => eprintln!("rlckit-serve: connection {peer}: {e}"),
                }
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let code = match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("rlckit-serve: {e}");
            ExitCode::FAILURE
        }
    };
    rlckit_trace::flush();
    let _ = std::io::stderr().flush();
    code
}
