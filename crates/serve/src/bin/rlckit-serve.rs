//! The `rlckit-serve` daemon: answers `optimum` / `route_delay` /
//! `lcrit` queries over stdin/stdout JSONL or a localhost TCP socket.
//!
//! ```text
//! rlckit-serve [--stdin | --tcp ADDR] [--idle-timeout-secs N]
//!              [--workers N] [--queue-depth N] [--shard-capacity N]
//!              [--warm-grid POINTS] [--snapshot PATH]
//!              [--trace-events PATH] [--trace-flush-secs N]
//! ```
//!
//! Boot order: load `--snapshot` if present and compatible, then
//! `--warm-grid` fills whatever grid points are still missing, then the
//! (possibly grown) memo is saved back to `--snapshot`. Diagnostics go
//! to stderr; stdout carries only protocol responses. Telemetry follows
//! the usual `RLCKIT_TRACE` contract and is flushed on exit.
//!
//! # Observability flags
//!
//! `--trace-events PATH` enables the flight recorder (see
//! [`rlckit_trace::events`]) and drains it to `PATH` as JSONL — after
//! the stdin session ends, or after **each** TCP connection closes (the
//! file is rewritten, so it always holds the freshest complete drain).
//! `rlckit-traceview` reads this file. `--trace-flush-secs N` starts a
//! background thread that calls [`rlckit_trace::flush`] every `N`
//! seconds, so a long-lived daemon's metrics reach the `RLCKIT_TRACE`
//! sink (use the `jsonl+:` append sink to keep every period) without
//! waiting for exit.
//!
//! # Idle clients
//!
//! TCP connections are served sequentially, so a client that connects
//! and then goes silent would wedge the accept loop forever.
//! `--idle-timeout-secs N` (default 0 = never) arms a socket read
//! timeout: a connection idle for `N` seconds is answered with one
//! final `"ok":false` line, tallied in the `serve.timeouts` counter,
//! and closed — the loop moves on to the next client.

#![forbid(unsafe_code)]

use std::io::{BufReader, Write};
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

use rlckit_serve::snapshot::{self, LoadOutcome};
use rlckit_serve::{ServeConfig, Server};

struct Args {
    tcp: Option<String>,
    idle_timeout_secs: u64,
    config: ServeConfig,
    warm_grid: usize,
    snapshot: Option<std::path::PathBuf>,
    trace_events: Option<std::path::PathBuf>,
    trace_flush_secs: u64,
}

fn usage() -> &'static str {
    "usage: rlckit-serve [--stdin | --tcp ADDR] [--idle-timeout-secs N] \
     [--workers N] [--queue-depth N] [--shard-capacity N] [--warm-grid POINTS] \
     [--snapshot PATH] [--trace-events PATH] [--trace-flush-secs N]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        idle_timeout_secs: 0,
        config: ServeConfig::default(),
        warm_grid: 0,
        snapshot: None,
        trace_events: None,
        trace_flush_secs: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--stdin" => args.tcp = None,
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--idle-timeout-secs" => {
                args.idle_timeout_secs = value("--idle-timeout-secs")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-secs: {e}"))?;
            }
            "--workers" => {
                args.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-depth" => {
                args.config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--shard-capacity" => {
                args.config.shard_capacity = value("--shard-capacity")?
                    .parse()
                    .map_err(|e| format!("--shard-capacity: {e}"))?;
            }
            "--warm-grid" => {
                args.warm_grid = value("--warm-grid")?
                    .parse()
                    .map_err(|e| format!("--warm-grid: {e}"))?;
            }
            "--snapshot" => args.snapshot = Some(value("--snapshot")?.into()),
            "--trace-events" => args.trace_events = Some(value("--trace-events")?.into()),
            "--trace-flush-secs" => {
                args.trace_flush_secs = value("--trace-flush-secs")?
                    .parse()
                    .map_err(|e| format!("--trace-flush-secs: {e}"))?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn boot(args: &Args) -> std::io::Result<Server> {
    let server = Server::new(args.config);
    if let Some(path) = &args.snapshot {
        match snapshot::load(path, server.memo())? {
            LoadOutcome::Loaded(n) => {
                eprintln!("rlckit-serve: warm-started {n} entries from {}", path.display());
            }
            LoadOutcome::Missing => {
                eprintln!("rlckit-serve: no snapshot at {} (cold boot)", path.display());
            }
            LoadOutcome::Incompatible => {
                eprintln!(
                    "rlckit-serve: snapshot at {} has a different format fingerprint; ignoring",
                    path.display()
                );
            }
        }
    }
    if args.warm_grid > 0 {
        let solved = server.warm_grid(args.warm_grid);
        eprintln!(
            "rlckit-serve: warm grid solved {solved} new entries ({} total)",
            server.memo().len()
        );
    }
    if let Some(path) = &args.snapshot {
        let written = snapshot::save(path, server.memo())?;
        eprintln!("rlckit-serve: snapshot of {written} entries saved to {}", path.display());
    }
    Ok(server)
}

/// Drains the flight recorder to `path`, logging the count to stderr.
fn drain_events(path: &std::path::Path) {
    match rlckit_trace::events::write_jsonl(path) {
        Ok(count) => {
            eprintln!("rlckit-serve: drained {count} events to {}", path.display());
        }
        Err(e) => eprintln!("rlckit-serve: event drain to {} failed: {e}", path.display()),
    }
}

/// A periodic metrics flusher: ticks every `secs` until the returned
/// stop handle is dropped, then flushes one final time on the way out.
struct Flusher {
    stop: Option<mpsc::Sender<()>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Flusher {
    fn start(secs: u64) -> Self {
        let (stop, tick) = mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            while let Err(mpsc::RecvTimeoutError::Timeout) =
                tick.recv_timeout(Duration::from_secs(secs))
            {
                rlckit_trace::flush();
            }
        });
        Self {
            stop: Some(stop),
            handle: Some(handle),
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        drop(self.stop.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn run() -> std::io::Result<ExitCode> {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return Ok(ExitCode::FAILURE);
        }
    };
    if args.trace_events.is_some() {
        // The flight recorder shares the metrics enable gate; the flag
        // is an explicit opt-in even without RLCKIT_TRACE set.
        rlckit_trace::set_enabled(true);
    }
    let _flusher = (args.trace_flush_secs > 0).then(|| Flusher::start(args.trace_flush_secs));
    let server = boot(&args)?;

    match &args.tcp {
        None => {
            let stdin = std::io::stdin().lock();
            // `Stdout` (unlike `StdoutLock`) is `Send`, which the writer
            // thread needs; it still buffers line-by-line internally.
            let summary = server.serve(stdin, std::io::stdout())?;
            eprintln!(
                "rlckit-serve: served {} requests ({} hits, {} misses, {} errors)",
                summary.requests, summary.hits, summary.misses, summary.errors
            );
            if let Some(path) = &args.trace_events {
                drain_events(path);
            }
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)?;
            eprintln!("rlckit-serve: listening on {}", listener.local_addr()?);
            for stream in listener.incoming() {
                let stream = stream?;
                let peer = stream.peer_addr()?;
                if args.idle_timeout_secs > 0 {
                    // Clones share the socket, so the reader side
                    // inherits the timeout; the engine turns the
                    // resulting WouldBlock into a clean close.
                    stream.set_read_timeout(Some(Duration::from_secs(args.idle_timeout_secs)))?;
                }
                let reader = BufReader::new(stream.try_clone()?);
                // Connections are served sequentially: the memo warms
                // across them, and each gets the whole pool.
                match server.serve(reader, stream) {
                    Ok(summary) => eprintln!(
                        "rlckit-serve: {peer} closed after {} requests ({} hits{})",
                        summary.requests,
                        summary.hits,
                        if summary.timed_out { ", idle timeout" } else { "" }
                    ),
                    Err(e) => eprintln!("rlckit-serve: connection {peer}: {e}"),
                }
                if let Some(path) = &args.trace_events {
                    drain_events(path);
                }
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let code = match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("rlckit-serve: {e}");
            ExitCode::FAILURE
        }
    };
    rlckit_trace::flush();
    let _ = std::io::stderr().flush();
    code
}
