//! The `rlckit-serve` daemon: answers `optimum` / `route_delay` /
//! `lcrit` queries over stdin/stdout JSONL or a localhost TCP socket.
//!
//! ```text
//! rlckit-serve [--stdin | --tcp ADDR] [--idle-timeout-secs N]
//!              [--max-connections N] [--workers N] [--queue-depth N]
//!              [--shard-capacity N] [--eviction lru|fifo]
//!              [--warm-grid POINTS] [--snapshot PATH] [--rewarm-secs N]
//!              [--trace-events PATH] [--trace-flush-secs N]
//! ```
//!
//! Boot order: load `--snapshot` if present and compatible, then
//! `--warm-grid` fills whatever grid points are still missing, then the
//! (possibly grown) memo is saved back to `--snapshot`. Diagnostics go
//! to stderr; stdout carries only protocol responses. Telemetry follows
//! the usual `RLCKIT_TRACE` contract and is flushed on exit.
//!
//! # Concurrent TCP serving
//!
//! Connections are served **concurrently** over the one shared pool
//! and memo ([`rlckit_serve::daemon::serve_connections`]): each gets
//! its own session thread, sequence space, and in-order response
//! stream, up to `--max-connections` simultaneous sessions (beyond
//! which an arrival is answered with one clean `"ok":false` line and
//! closed). Accept-side failures — a failed accept, a peer reset
//! before its metadata could be read — are logged, counted under
//! `serve.accept_errors`, and survived; they never terminate the
//! daemon.
//!
//! `--rewarm-secs N` starts a background re-warmer that re-solves
//! missing warm-grid points every `N` seconds and atomically refreshes
//! `--snapshot`, so evictions under cold churn are repaired while the
//! daemon is live.
//!
//! # Observability flags
//!
//! `--trace-events PATH` enables the flight recorder (see
//! [`rlckit_trace::events`]) and drains it to `PATH` as JSONL — after
//! the stdin session ends, or after **each** TCP connection closes (the
//! file is rewritten, so it always holds the freshest complete drain).
//! `rlckit-traceview` reads this file. `--trace-flush-secs N` starts a
//! background thread that calls [`rlckit_trace::flush`] every `N`
//! seconds, so a long-lived daemon's metrics reach the `RLCKIT_TRACE`
//! sink (use the `jsonl+:` append sink to keep every period) without
//! waiting for exit — plus one final flush on shutdown, even for
//! sessions shorter than one period.
//!
//! # Idle clients
//!
//! `--idle-timeout-secs N` (default 0 = never) arms a socket read
//! timeout on each connection: one idle for `N` seconds is answered
//! with one final `"ok":false` line, tallied in the `serve.timeouts`
//! counter, and closed — without disturbing any other session.

#![forbid(unsafe_code)]

use std::io::Write;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rlckit::memo::Eviction;
use rlckit_serve::daemon::{serve_connections, Flusher, Rewarmer, TcpOptions};
use rlckit_serve::snapshot::{self, LoadOutcome};
use rlckit_serve::{ServeConfig, Server};

struct Args {
    tcp: Option<String>,
    idle_timeout_secs: u64,
    max_connections: usize,
    config: ServeConfig,
    warm_grid: usize,
    snapshot: Option<std::path::PathBuf>,
    rewarm_secs: u64,
    trace_events: Option<std::path::PathBuf>,
    trace_flush_secs: u64,
}

fn usage() -> &'static str {
    "usage: rlckit-serve [--stdin | --tcp ADDR] [--idle-timeout-secs N] \
     [--max-connections N] [--workers N] [--queue-depth N] [--shard-capacity N] \
     [--eviction lru|fifo] [--warm-grid POINTS] [--snapshot PATH] [--rewarm-secs N] \
     [--trace-events PATH] [--trace-flush-secs N]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        idle_timeout_secs: 0,
        max_connections: rlckit_serve::daemon::DEFAULT_MAX_CONNECTIONS,
        config: ServeConfig::default(),
        warm_grid: 0,
        snapshot: None,
        rewarm_secs: 0,
        trace_events: None,
        trace_flush_secs: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--stdin" => args.tcp = None,
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--idle-timeout-secs" => {
                args.idle_timeout_secs = value("--idle-timeout-secs")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-secs: {e}"))?;
            }
            "--max-connections" => {
                args.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?;
                if args.max_connections == 0 {
                    return Err("--max-connections must be ≥ 1".to_string());
                }
            }
            "--workers" => {
                args.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-depth" => {
                args.config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--shard-capacity" => {
                args.config.shard_capacity = value("--shard-capacity")?
                    .parse()
                    .map_err(|e| format!("--shard-capacity: {e}"))?;
            }
            "--eviction" => {
                args.config.eviction = match value("--eviction")?.as_str() {
                    "lru" => Eviction::Lru,
                    "fifo" => Eviction::Fifo,
                    other => return Err(format!("--eviction: {other:?} is not lru|fifo")),
                };
            }
            "--warm-grid" => {
                args.warm_grid = value("--warm-grid")?
                    .parse()
                    .map_err(|e| format!("--warm-grid: {e}"))?;
            }
            "--snapshot" => args.snapshot = Some(value("--snapshot")?.into()),
            "--rewarm-secs" => {
                args.rewarm_secs = value("--rewarm-secs")?
                    .parse()
                    .map_err(|e| format!("--rewarm-secs: {e}"))?;
            }
            "--trace-events" => args.trace_events = Some(value("--trace-events")?.into()),
            "--trace-flush-secs" => {
                args.trace_flush_secs = value("--trace-flush-secs")?
                    .parse()
                    .map_err(|e| format!("--trace-flush-secs: {e}"))?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn boot(args: &Args) -> std::io::Result<Server> {
    let server = Server::new(args.config);
    if let Some(path) = &args.snapshot {
        match snapshot::load(path, server.memo())? {
            LoadOutcome::Loaded(n) => {
                eprintln!("rlckit-serve: warm-started {n} entries from {}", path.display());
            }
            LoadOutcome::Missing => {
                eprintln!("rlckit-serve: no snapshot at {} (cold boot)", path.display());
            }
            LoadOutcome::Incompatible => {
                eprintln!(
                    "rlckit-serve: snapshot at {} has a different format fingerprint; ignoring",
                    path.display()
                );
            }
        }
    }
    if args.warm_grid > 0 {
        let solved = server.warm_grid(args.warm_grid);
        eprintln!(
            "rlckit-serve: warm grid solved {solved} new entries ({} total)",
            server.memo().len()
        );
    }
    if let Some(path) = &args.snapshot {
        let written = snapshot::save_atomic(path, server.memo())?;
        eprintln!("rlckit-serve: snapshot of {written} entries saved to {}", path.display());
    }
    Ok(server)
}

/// Drains the flight recorder to `path`, logging the count to stderr.
fn drain_events(path: &std::path::Path) {
    match rlckit_trace::events::write_jsonl(path) {
        Ok(count) => {
            eprintln!("rlckit-serve: drained {count} events to {}", path.display());
        }
        Err(e) => eprintln!("rlckit-serve: event drain to {} failed: {e}", path.display()),
    }
}

fn run() -> std::io::Result<ExitCode> {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return Ok(ExitCode::FAILURE);
        }
    };
    if args.trace_events.is_some() {
        // The flight recorder shares the metrics enable gate; the flag
        // is an explicit opt-in even without RLCKIT_TRACE set.
        rlckit_trace::set_enabled(true);
    }
    let _flusher = (args.trace_flush_secs > 0).then(|| Flusher::start(args.trace_flush_secs));
    let server = Arc::new(boot(&args)?);
    let _rewarmer = (args.rewarm_secs > 0).then(|| {
        Rewarmer::start(
            Arc::clone(&server),
            Duration::from_secs(args.rewarm_secs),
            args.warm_grid,
            args.snapshot.clone(),
        )
    });

    match &args.tcp {
        None => {
            let stdin = std::io::stdin().lock();
            // `Stdout` (unlike `StdoutLock`) is `Send`, which the writer
            // thread needs; it still buffers line-by-line internally.
            let summary = server.serve(stdin, std::io::stdout())?;
            eprintln!(
                "rlckit-serve: served {} requests ({} hits, {} misses, {} errors)",
                summary.requests, summary.hits, summary.misses, summary.errors
            );
            if let Some(path) = &args.trace_events {
                drain_events(path);
            }
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)?;
            eprintln!("rlckit-serve: listening on {}", listener.local_addr()?);
            let options = TcpOptions {
                idle_timeout: (args.idle_timeout_secs > 0)
                    .then(|| Duration::from_secs(args.idle_timeout_secs)),
                max_connections: args.max_connections,
            };
            // Session-close bookkeeping runs on the session threads;
            // the event drain rewrites one shared file, so serialize it.
            let drain_gate = Mutex::new(());
            serve_connections(&server, listener.incoming(), &options, |peer, result| {
                match result {
                    Ok(summary) => eprintln!(
                        "rlckit-serve: {peer} closed after {} requests ({} hits{})",
                        summary.requests,
                        summary.hits,
                        if summary.timed_out { ", idle timeout" } else { "" }
                    ),
                    Err(e) => eprintln!("rlckit-serve: connection {peer}: {e}"),
                }
                if let Some(path) = &args.trace_events {
                    let _serialized = drain_gate.lock();
                    drain_events(path);
                }
            });
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let code = match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("rlckit-serve: {e}");
            ExitCode::FAILURE
        }
    };
    rlckit_trace::flush();
    let _ = std::io::stderr().flush();
    code
}
