//! `rlckit-serve`: a long-running query daemon over the RLC optimizer.
//!
//! Campaigns ([`rlckit::sweeps`], the figure binaries) are batch jobs:
//! enumerate a grid, solve every point, write artifacts. Interactive
//! use — a designer asking "optimum for *this* wire?", a flow invoking
//! `lcrit` per net — has the opposite shape: many small questions, most
//! of them near-repeats, where latency is dominated by the Newton solve
//! unless answers are memoized. This crate is that serving layer:
//!
//! * [`protocol`] — a line-oriented JSON request/response protocol
//!   (`optimum`, `route_delay`, `lcrit`, `stats`, `trace`),
//!   hand-validated so no request can reach a panicking constructor;
//! * [`engine`] — the pipeline: one router, a
//!   [`rlckit_par::ShardedPool`] of workers pinned one-to-one to the
//!   shards of a [`rlckit::memo::OptimumMemo`], and a writer that
//!   restores request order (byte-identical reruns by construction,
//!   modulo the `*_ns` wall-clock fields), plus the per-request
//!   flight-recorder span trees ([`rlckit_trace::events`]);
//! * [`snapshot`] — boot-time warm-start persistence, so the NTRS grid
//!   optima survive restarts.
//!
//! The `rlckit-serve` binary wires these to stdin/stdout (JSONL) or a
//! localhost TCP listener. Campaign code must **not** route through
//! this crate: served answers are quantization-class representatives
//! (see the memo docs), while campaigns promise exact-input
//! bit-identity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod engine;
pub mod protocol;
pub mod snapshot;

pub use engine::{Server, ServeConfig, ServeSummary};
