//! Warm-start snapshot: persist and reload the memo across restarts.
//!
//! The daemon pre-solves a grid of NTRS technology optima at boot so
//! the first interactive ask is a memo hit, not a multi-second Newton
//! solve. That warm-up is itself worth persisting: `save` writes every
//! retained entry to a plain-text file of hex-encoded `f64` bit
//! patterns, and `load` replays it through
//! [`OptimumMemo::preload`] (counter-free, first-answer-wins) on the
//! next boot. A reloaded entry is **bit-identical** to the solve that
//! produced it — the snapshot stores raw bits, never decimal round
//! trips.
//!
//! # Format
//!
//! Line 1 is a header carrying a format fingerprint over
//! `(version, QUANT_BITS, key width)`; a snapshot written under a
//! different quantization or key layout reports
//! [`LoadOutcome::Incompatible`] and is ignored (the daemon then falls
//! back to a cold warm-up — never to silently wrong cache hits). Every
//! further line is one entry: 15 space-separated 16-digit hex words
//! (the 7 key words, then the 8 value words). A torn tail — a crash
//! mid-write — stops the load at the last complete entry.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use rlckit::checkpoint::fingerprint64;
use rlckit::memo::{MemoKey, OptimumMemo, QUANT_BITS};
use rlckit::optimizer::RlcOptimum;
use rlckit_tline::Damping;
use rlckit_units::{HenriesPerMeter, Meters, Seconds};

/// Version of the snapshot layout described in the module docs.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Number of hex words on one entry line (7 key + 8 value).
const ENTRY_WORDS: usize = 15;

/// The format fingerprint the header must carry: any change to the
/// snapshot version, the quantization granularity, or the key width
/// invalidates persisted entries.
#[must_use]
pub fn format_fingerprint() -> u64 {
    fingerprint64([SNAPSHOT_VERSION, u64::from(QUANT_BITS), 7])
}

/// Result of a [`load`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOutcome {
    /// The snapshot was read; this many entries were preloaded.
    Loaded(usize),
    /// No snapshot file exists at the path.
    Missing,
    /// The file exists but was written under a different format
    /// fingerprint (version / quantization / key-width change); nothing
    /// was loaded.
    Incompatible,
}

fn encode_value(v: &RlcOptimum) -> [u64; 8] {
    let damping = match v.damping {
        Damping::Overdamped => 0,
        Damping::CriticallyDamped => 1,
        Damping::Underdamped => 2,
    };
    [
        v.segment_length.get().to_bits(),
        v.repeater_size.to_bits(),
        v.segment_delay.get().to_bits(),
        damping,
        v.critical_inductance.get().to_bits(),
        v.iterations as u64,
        u64::from(v.used_fallback),
        u64::from(v.restarts),
    ]
}

fn decode_value(words: &[u64]) -> Option<RlcOptimum> {
    let damping = match words[3] {
        0 => Damping::Overdamped,
        1 => Damping::CriticallyDamped,
        2 => Damping::Underdamped,
        _ => return None,
    };
    Some(RlcOptimum {
        segment_length: Meters::new(f64::from_bits(words[0])),
        repeater_size: f64::from_bits(words[1]),
        segment_delay: Seconds::new(f64::from_bits(words[2])),
        damping,
        critical_inductance: HenriesPerMeter::new(f64::from_bits(words[4])),
        iterations: usize::try_from(words[5]).ok()?,
        used_fallback: words[6] != 0,
        restarts: u32::try_from(words[7]).ok()?,
    })
}

/// Writes every retained memo entry to `path` (atomically enough for a
/// boot-time snapshot: full rewrite, torn tails are tolerated by
/// [`load`]). Returns the number of entries written.
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn save(path: &Path, memo: &OptimumMemo) -> std::io::Result<usize> {
    let entries = memo.export();
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        out,
        "rlckit-serve-snapshot version={SNAPSHOT_VERSION} quant_bits={QUANT_BITS} \
         fingerprint={:016x}",
        format_fingerprint()
    )?;
    for (key, value) in &entries {
        let words: Vec<String> = key
            .iter()
            .copied()
            .chain(encode_value(value))
            .map(|w| format!("{w:016x}"))
            .collect();
        writeln!(out, "{}", words.join(" "))?;
    }
    out.flush()?;
    Ok(entries.len())
}

/// Like [`save`], but **atomic**: writes to a `.tmp` sibling and
/// renames it over `path`, so a reader (another daemon booting, an
/// operator's `cp`) never observes a half-written snapshot. This is
/// the variant the background re-warmer uses — it refreshes the
/// snapshot while the daemon is live, where a torn rewrite window
/// would no longer be a boot-time-only risk.
///
/// # Errors
///
/// Propagates file-creation, write, and rename failures (the `.tmp`
/// sibling is left behind on failure for post-mortems).
pub fn save_atomic(path: &Path, memo: &OptimumMemo) -> std::io::Result<usize> {
    let tmp = path.with_extension("tmp");
    let written = save(&tmp, memo)?;
    std::fs::rename(&tmp, path)?;
    Ok(written)
}

/// Preloads `memo` from the snapshot at `path`. Entries re-route to
/// whatever shard layout `memo` has — the snapshot is layout-agnostic.
/// A torn tail stops the load at the last complete entry; already
/// present keys keep their first answer ([`OptimumMemo::preload`]).
///
/// # Errors
///
/// Propagates read failures other than the file not existing (which is
/// the normal first-boot case, reported as [`LoadOutcome::Missing`]).
pub fn load(path: &Path, memo: &OptimumMemo) -> std::io::Result<LoadOutcome> {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LoadOutcome::Missing),
        Err(e) => return Err(e),
    };
    let mut lines = BufReader::new(file).lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Ok(LoadOutcome::Incompatible),
    };
    let expected = format!("fingerprint={:016x}", format_fingerprint());
    if !header.starts_with("rlckit-serve-snapshot ") || !header.contains(&expected) {
        return Ok(LoadOutcome::Incompatible);
    }
    let mut loaded = 0usize;
    for line in lines {
        let line = line?;
        let words: Vec<u64> = line
            .split_ascii_whitespace()
            .map_while(|w| u64::from_str_radix(w, 16).ok())
            .collect();
        if words.len() != ENTRY_WORDS {
            break; // torn tail: keep what loaded cleanly
        }
        let mut key: MemoKey = [0; 7];
        key.copy_from_slice(&words[..7]);
        let Some(value) = decode_value(&words[7..]) else {
            break;
        };
        if memo.preload(key, value) {
            loaded += 1;
        }
    }
    Ok(LoadOutcome::Loaded(loaded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit::optimizer::OptimizerOptions;
    use rlckit_tech::TechNode;
    use rlckit_tline::LineRlc;

    fn solved_memo(entries: u32) -> OptimumMemo {
        let node = TechNode::nm100();
        let memo = OptimumMemo::sharded(3, 64);
        for i in 0..entries {
            let line = LineRlc::new(
                node.line().resistance,
                HenriesPerMeter::from_nano_per_milli(0.5 + 0.7 * f64::from(i)),
                node.line().capacitance,
            );
            memo.optimum(&line, &node.driver(), OptimizerOptions::default())
                .unwrap();
        }
        memo
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rlckit-serve-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let source = solved_memo(4);
        let path = temp_path("round-trip.snap");
        assert_eq!(save(&path, &source).unwrap(), 4);

        // Reload into a *differently sharded* memo: entries re-route.
        let target = OptimumMemo::sharded(5, 64);
        assert_eq!(load(&path, &target).unwrap(), LoadOutcome::Loaded(4));
        assert_eq!(target.len(), 4);
        for (key, value) in source.export() {
            let got = target.probe(&key).expect("entry survives the round trip");
            assert_eq!(
                got.segment_delay.get().to_bits(),
                value.segment_delay.get().to_bits()
            );
            assert_eq!(
                got.segment_length.get().to_bits(),
                value.segment_length.get().to_bits()
            );
            assert_eq!(got.damping, value.damping);
            assert_eq!(got.used_fallback, value.used_fallback);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_and_incompatible_snapshots_load_nothing() {
        let memo = OptimumMemo::default();
        let missing = temp_path("does-not-exist.snap");
        std::fs::remove_file(&missing).ok();
        assert_eq!(load(&missing, &memo).unwrap(), LoadOutcome::Missing);

        let stale = temp_path("stale.snap");
        std::fs::write(
            &stale,
            "rlckit-serve-snapshot version=0 quant_bits=13 fingerprint=dead\n",
        )
        .unwrap();
        assert_eq!(load(&stale, &memo).unwrap(), LoadOutcome::Incompatible);
        assert!(memo.is_empty());
        std::fs::remove_file(&stale).ok();
    }

    #[test]
    fn a_torn_tail_keeps_the_complete_prefix() {
        let source = solved_memo(3);
        let path = temp_path("torn.snap");
        save(&path, &source).unwrap();
        // Chop the last line in half, as a crash mid-write would.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep = text.len() - 40;
        std::fs::write(&path, &text[..keep]).unwrap();

        let target = OptimumMemo::default();
        assert_eq!(load(&path, &target).unwrap(), LoadOutcome::Loaded(2));
        assert_eq!(target.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
