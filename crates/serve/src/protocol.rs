//! The `rlckit-serve` wire protocol: one JSON object per line, in and
//! out.
//!
//! # Requests
//!
//! Every request carries an `"id"` (echoed verbatim in the response)
//! and an `"op"`:
//!
//! | op | answers | extra fields |
//! |---|---|---|
//! | `optimum` | optimal `(h, k)` configuration | — |
//! | `route_delay` | total delay of an optimally-buffered route | `length_m` or `length_mm` |
//! | `lcrit` | critical inductance at the optimum (Eq. 4) | — |
//! | `stats` | memo/served counters + latency percentiles (barrier) | — |
//! | `trace` | live snapshot: counters, percentiles, slowest traces, in-flight, uptime | — |
//!
//! `stats` is a pipeline barrier and therefore deterministic (its
//! `*_ns` fields aside); `trace` is answered immediately by the router
//! as a *live* observability snapshot — its in-flight count and
//! slowest-request ranking reflect scheduling and are explicitly
//! outside the byte-identity contract.
//!
//! The line and driver are specified either from a named NTRS node —
//! `"node"`: `"250nm"`, `"100nm"` or `"100nm_eps33"` — plus the swept
//! inductance (`l_nh_mm` or `l_h_per_m`), or from raw SI fields
//! (`r_ohm_per_m`, `c_f_per_m`, `rs_ohm`, `cp_f`, `c0_f`), which also
//! override individual node defaults. `threshold` (default 0.5) selects
//! the delay threshold `f`.
//!
//! ```text
//! {"id":1,"op":"optimum","node":"100nm","l_nh_mm":1.8}
//! {"id":2,"op":"route_delay","node":"100nm","l_nh_mm":1.8,"length_mm":30}
//! ```
//!
//! # Responses
//!
//! All responses echo `id` and `op` and carry `"ok"`. Successful query
//! responses add `"source"`: `"memo"` (served from the sharded memo,
//! bit-identical to the first answer for the quantized key) or
//! `"solve"` (computed now, and inserted). Floating-point values are
//! printed with Rust's shortest-round-trip formatting, so equal bits
//! always produce equal bytes — the two-run byte-identity the tier-1
//! serve smoke asserts hangs off this.

use rlckit::optimizer::OptimizerOptions;
use rlckit::optimizer::RlcOptimum;
use rlckit::memo::Served;
use rlckit_tech::{DriverParams, TechNode};
use rlckit_tline::LineRlc;
use rlckit_units::{FaradsPerMeter, HenriesPerMeter, Meters, OhmsPerMeter, Seconds};

/// A parsed scalar JSON value — all the protocol's flat objects need.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
}

/// Splits one flat JSON object line into `(key, value)` pairs. Strict
/// about structure (quotes, escapes, commas), intolerant of nesting —
/// the protocol is flat by design, and rejecting nesting keeps a
/// hostile payload from smuggling fields.
fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut bytes = line.trim().as_bytes();
    if bytes.first() != Some(&b'{') || bytes.last() != Some(&b'}') {
        return Err("request is not a JSON object".into());
    }
    bytes = &bytes[1..bytes.len() - 1];
    let mut fields = Vec::new();
    let mut pos = 0usize;
    let skip_ws = |bytes: &[u8], mut p: usize| {
        while matches!(bytes.get(p), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            p += 1;
        }
        p
    };
    loop {
        pos = skip_ws(bytes, pos);
        if pos == bytes.len() {
            if fields.is_empty() {
                break; // {} is a valid (empty) object
            }
            return Err("trailing comma".into());
        }
        let (key, next) = parse_string(bytes, pos)?;
        pos = skip_ws(bytes, next);
        if bytes.get(pos) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        pos = skip_ws(bytes, pos + 1);
        let (value, next) = parse_value(bytes, pos)?;
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate field {key:?}"));
        }
        fields.push((key, value));
        pos = skip_ws(bytes, next);
        match bytes.get(pos) {
            None => break,
            Some(b',') => pos += 1,
            Some(_) => return Err("expected ',' between fields".into()),
        }
    }
    Ok(fields)
}

/// Parses a quoted string starting at `pos`; returns it and the
/// position after the closing quote.
fn parse_string(bytes: &[u8], pos: usize) -> Result<(String, usize), String> {
    if bytes.get(pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    let mut out = String::new();
    let mut p = pos + 1;
    loop {
        match bytes.get(p) {
            None => return Err("unterminated string".into()),
            Some(b'"') => return Ok((out, p + 1)),
            Some(b'\\') => {
                p += 1;
                match bytes.get(p) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    _ => return Err("unsupported escape".into()),
                }
                p += 1;
            }
            Some(&c) if c < 0x20 => return Err("control byte in string".into()),
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from &str, so
                // boundaries are valid).
                let s = std::str::from_utf8(&bytes[p..]).map_err(|_| "bad utf-8")?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                p += c.len_utf8();
            }
        }
    }
}

fn parse_value(bytes: &[u8], pos: usize) -> Result<(Value, usize), String> {
    match bytes.get(pos) {
        Some(b'"') => parse_string(bytes, pos).map(|(s, p)| (Value::Str(s), p)),
        Some(b't') if bytes[pos..].starts_with(b"true") => Ok((Value::Bool(true), pos + 4)),
        Some(b'f') if bytes[pos..].starts_with(b"false") => Ok((Value::Bool(false), pos + 5)),
        Some(b'n') if bytes[pos..].starts_with(b"null") => Ok((Value::Null, pos + 4)),
        Some(b'{' | b'[') => Err("nested containers are not part of the protocol".into()),
        Some(_) => {
            let start = pos;
            let mut p = pos;
            while bytes
                .get(p)
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
            {
                p += 1;
            }
            let text = std::str::from_utf8(&bytes[start..p]).map_err(|_| "bad number")?;
            text.parse::<f64>()
                .map(|n| (Value::Num(n), p))
                .map_err(|_| format!("bad number {text:?}"))
        }
        None => Err("missing value".into()),
    }
}

/// The five request operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// The continuous optimum `(h_opt, k_opt, τ_opt)`.
    Optimum,
    /// Total optimally-buffered delay of a route of a given length.
    RouteDelay,
    /// Critical inductance at the optimum (Eq. 4).
    Lcrit,
    /// Serving counters (a pipeline barrier: answered only after every
    /// earlier response has been written).
    Stats,
    /// Live flight-recorder snapshot (router-answered, no barrier).
    Trace,
}

impl Op {
    /// The wire name of this op.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Optimum => "optimum",
            Self::RouteDelay => "route_delay",
            Self::Lcrit => "lcrit",
            Self::Stats => "stats",
            Self::Trace => "trace",
        }
    }

    /// A stable small integer for flight-recorder event payloads
    /// (`serve.parse` events carry it as the value).
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            Self::Optimum => 0,
            Self::RouteDelay => 1,
            Self::Lcrit => 2,
            Self::Stats => 3,
            Self::Trace => 4,
        }
    }
}

/// A fully validated solver-bound query (`optimum` / `route_delay` /
/// `lcrit`).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Client-chosen request id, echoed in the response.
    pub id: u64,
    /// Which answer is wanted.
    pub op: Op,
    /// The line under question.
    pub line: LineRlc,
    /// The driving repeater technology.
    pub driver: DriverParams,
    /// Optimizer options (threshold; solver knobs stay at defaults).
    pub options: OptimizerOptions,
    /// Route length (`route_delay` only).
    pub length: Option<Meters>,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A solver-bound query.
    Query(Box<Query>),
    /// A stats barrier.
    Stats {
        /// Client-chosen request id, echoed in the response.
        id: u64,
    },
    /// A live trace snapshot (no barrier).
    Trace {
        /// Client-chosen request id, echoed in the response.
        id: u64,
    },
}

fn get_num(fields: &[(String, Value)], key: &str) -> Result<Option<f64>, String> {
    match fields.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Num(n))) => Ok(Some(*n)),
        Some((_, other)) => Err(format!("field {key:?} must be a number, got {other:?}")),
    }
}

fn get_str<'a>(fields: &'a [(String, Value)], key: &str) -> Result<Option<&'a str>, String> {
    match fields.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Str(s))) => Ok(Some(s.as_str())),
        Some((_, other)) => Err(format!("field {key:?} must be a string, got {other:?}")),
    }
}

fn require_positive(name: &str, x: f64) -> Result<f64, String> {
    if x.is_finite() && x > 0.0 {
        Ok(x)
    } else {
        Err(format!("{name} must be finite and > 0, got {x}"))
    }
}

fn require_non_negative(name: &str, x: f64) -> Result<f64, String> {
    if x.is_finite() && x >= 0.0 {
        Ok(x)
    } else {
        Err(format!("{name} must be finite and >= 0, got {x}"))
    }
}

/// Parses and validates one request line.
///
/// # Errors
///
/// A human-readable message naming the malformed or missing field. The
/// caller pairs it with whatever `id` could still be extracted (see
/// [`request_id_of`]) so the client can correlate the error.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let fields = parse_object(line)?;
    let id = match get_num(&fields, "id")? {
        Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) => n as u64,
        Some(n) => return Err(format!("id must be a non-negative integer, got {n}")),
        None => return Err("missing field \"id\"".into()),
    };
    let op = match get_str(&fields, "op")? {
        Some("optimum") => Op::Optimum,
        Some("route_delay") => Op::RouteDelay,
        Some("lcrit") => Op::Lcrit,
        Some("stats") => return Ok(Request::Stats { id }),
        Some("trace") => return Ok(Request::Trace { id }),
        Some(other) => return Err(format!("unknown op {other:?}")),
        None => return Err("missing field \"op\"".into()),
    };

    // Node defaults first, raw fields override.
    let node = match get_str(&fields, "node")? {
        None => None,
        Some("250nm") => Some(TechNode::nm250()),
        Some("100nm") => Some(TechNode::nm100()),
        Some("100nm_eps33") => Some(TechNode::nm100_with_250nm_dielectric()),
        Some(other) => return Err(format!("unknown node {other:?}")),
    };
    let defaults = node.as_ref().map(|n| (n.line(), n.driver()));

    let r = match get_num(&fields, "r_ohm_per_m")? {
        Some(x) => require_positive("r_ohm_per_m", x)?,
        None => defaults
            .as_ref()
            .map(|(l, _)| l.resistance.get())
            .ok_or("need \"r_ohm_per_m\" or \"node\"")?,
    };
    let c = match get_num(&fields, "c_f_per_m")? {
        Some(x) => require_positive("c_f_per_m", x)?,
        None => defaults
            .as_ref()
            .map(|(l, _)| l.capacitance.get())
            .ok_or("need \"c_f_per_m\" or \"node\"")?,
    };
    let l = match (get_num(&fields, "l_h_per_m")?, get_num(&fields, "l_nh_mm")?) {
        (Some(_), Some(_)) => return Err("give \"l_h_per_m\" or \"l_nh_mm\", not both".into()),
        (Some(x), None) => require_non_negative("l_h_per_m", x)?,
        (None, Some(x)) => require_non_negative("l_nh_mm", x)? * 1e-6,
        (None, None) => return Err("missing inductance (\"l_h_per_m\" or \"l_nh_mm\")".into()),
    };
    let rs = match get_num(&fields, "rs_ohm")? {
        Some(x) => require_positive("rs_ohm", x)?,
        None => defaults
            .as_ref()
            .map(|(_, d)| d.output_resistance.get())
            .ok_or("need \"rs_ohm\" or \"node\"")?,
    };
    let cp = match get_num(&fields, "cp_f")? {
        Some(x) => require_non_negative("cp_f", x)?,
        None => defaults
            .as_ref()
            .map(|(_, d)| d.parasitic_capacitance.get())
            .ok_or("need \"cp_f\" or \"node\"")?,
    };
    let c0 = match get_num(&fields, "c0_f")? {
        Some(x) => require_positive("c0_f", x)?,
        None => defaults
            .as_ref()
            .map(|(_, d)| d.input_capacitance.get())
            .ok_or("need \"c0_f\" or \"node\"")?,
    };
    let threshold = match get_num(&fields, "threshold")? {
        Some(x) if x.is_finite() && x > 0.0 && x < 1.0 => x,
        Some(x) => return Err(format!("threshold must be in (0, 1), got {x}")),
        None => OptimizerOptions::default().threshold,
    };
    let length = match (get_num(&fields, "length_m")?, get_num(&fields, "length_mm")?) {
        (Some(_), Some(_)) => return Err("give \"length_m\" or \"length_mm\", not both".into()),
        (Some(x), None) => Some(require_positive("length_m", x)?),
        (None, Some(x)) => Some(require_positive("length_mm", x)? * 1e-3),
        (None, None) => None,
    };
    if op == Op::RouteDelay && length.is_none() {
        return Err("route_delay needs \"length_m\" or \"length_mm\"".into());
    }

    Ok(Request::Query(Box::new(Query {
        id,
        op,
        line: LineRlc::new(
            OhmsPerMeter::new(r),
            HenriesPerMeter::new(l),
            FaradsPerMeter::new(c),
        ),
        driver: DriverParams::new(
            rlckit_units::Ohms::new(rs),
            rlckit_units::Farads::new(cp),
            rlckit_units::Farads::new(c0),
        ),
        options: OptimizerOptions {
            threshold,
            ..OptimizerOptions::default()
        },
        length: length.map(Meters::new),
    })))
}

/// Best-effort extraction of the `id` of a line that failed
/// [`parse_request`], so error responses can still be correlated.
#[must_use]
pub fn request_id_of(line: &str) -> Option<u64> {
    let fields = parse_object(line).ok()?;
    match get_num(&fields, "id").ok()?? {
        n if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) => Some(n as u64),
        _ => None,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Successful `optimum` response.
#[must_use]
pub fn response_optimum(id: u64, opt: &RlcOptimum, served: Served) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"op\":\"optimum\",\"h_m\":{},\"k\":{},\
         \"segment_delay_s\":{},\"delay_per_m_s\":{},\"lcrit_h_per_m\":{},\
         \"damping\":\"{}\",\"source\":\"{}\"}}",
        opt.segment_length.get(),
        opt.repeater_size,
        opt.segment_delay.get(),
        opt.delay_per_length(),
        opt.critical_inductance.get(),
        opt.damping,
        served.label(),
    )
}

/// Successful `route_delay` response.
#[must_use]
pub fn response_route_delay(id: u64, length: Meters, delay: Seconds, served: Served) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"op\":\"route_delay\",\"length_m\":{},\
         \"delay_s\":{},\"source\":\"{}\"}}",
        length.get(),
        delay.get(),
        served.label(),
    )
}

/// Successful `lcrit` response.
#[must_use]
pub fn response_lcrit(id: u64, lcrit: HenriesPerMeter, served: Served) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"op\":\"lcrit\",\"lcrit_h_per_m\":{},\"source\":\"{}\"}}",
        lcrit.get(),
        served.label(),
    )
}

/// Counters reported by a `stats` response.
///
/// A `stats` request is a **per-session barrier**: it is answered only
/// after every *preceding* request of the asking session is on the
/// wire, and its counts cover exactly that preceding prefix — the
/// stats request itself is **not** counted (contrast
/// [`TraceOpView::requests`], which is self-inclusive). Every field
/// except the three `*_ns` latency percentiles and `uptime_ns` is
/// deterministic at the barrier (`in_flight` is always 0 there — the
/// barrier *is* "nothing in flight"); the `*_ns` fields are wall
/// clock, named per the trace-crate contract so determinism checks can
/// strip them. `hits`/`misses` are **session-scoped**, so a
/// connection's stats responses are byte-identical to a solo replay
/// even while other connections share the daemon; `entries` and
/// `evictions` observe the shared memo and are constant across
/// connections only in an eviction-free (e.g. all-hot) mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsView {
    /// Entries currently retained across all shards (process-wide).
    pub entries: usize,
    /// Worker (= shard) count.
    pub workers: usize,
    /// This session's memo hits over its preceding request prefix.
    pub hits: u64,
    /// This session's fresh solves over its preceding request prefix.
    pub misses: u64,
    /// `memo.evictions` observed since this session began
    /// (process-wide under concurrency; 0 in an eviction-free mix).
    pub evictions: u64,
    /// Requests submitted but not yet written (0 at a barrier).
    pub in_flight: u64,
    /// Nanoseconds since the server was created.
    pub uptime_ns: u64,
    /// Median end-to-end request latency in ns (session, interpolated
    /// from the log₂ histogram; 0 when no latency was recorded).
    pub p50_ns: u64,
    /// 95th-percentile end-to-end request latency in ns.
    pub p95_ns: u64,
    /// 99th-percentile end-to-end request latency in ns.
    pub p99_ns: u64,
}

/// Successful `stats` response.
#[must_use]
pub fn response_stats(id: u64, stats: &StatsView) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"op\":\"stats\",\"entries\":{},\"workers\":{},\
         \"hits\":{},\"misses\":{},\"evictions\":{},\"in_flight\":{},\
         \"uptime_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
        stats.entries,
        stats.workers,
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.in_flight,
        stats.uptime_ns,
        stats.p50_ns,
        stats.p95_ns,
        stats.p99_ns,
    )
}

/// One entry of the `trace` response's slowest-requests table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowRequest {
    /// The request's flight-recorder trace id.
    pub trace_id: u64,
    /// End-to-end latency (parse to write) in ns.
    pub total_ns: u64,
}

/// The live snapshot reported by a `trace` response. Unlike
/// [`StatsView`] this is *not* part of the byte-identity contract:
/// `in_flight` and the slowest ranking reflect scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOpView {
    /// Requests consumed by this session so far, **including the trace
    /// request itself** (self-inclusive). This is the deliberate
    /// asymmetry with the stats view, whose counters cover only the
    /// *preceding* prefix: a trace is a live snapshot taken at parse
    /// time, so the freshest fact it knows is its own arrival — after
    /// `n` earlier requests it reports `n + 1`. `rlckit-traceview`
    /// relies on this when cross-checking a trace line against a
    /// drained event file (the trace request contributes its own
    /// `Parse` event), so the contract is pinned by test.
    pub requests: u64,
    /// Session parse errors.
    pub parse_errors: u64,
    /// This session's solve errors.
    pub solve_errors: u64,
    /// Requests submitted but not yet written, at answer time.
    pub in_flight: u64,
    /// Flight-recorder events currently retained across all rings.
    pub events: u64,
    /// Nanoseconds since the server was created.
    pub uptime_ns: u64,
    /// Median end-to-end request latency in ns (session).
    pub p50_ns: u64,
    /// 95th-percentile end-to-end request latency in ns.
    pub p95_ns: u64,
    /// 99th-percentile end-to-end request latency in ns.
    pub p99_ns: u64,
    /// The slowest requests seen so far, worst first.
    pub slowest: Vec<SlowRequest>,
}

/// Successful `trace` response. The `slowest` array is the protocol's
/// one nested value — it appears only in responses; requests stay
/// flat.
#[must_use]
pub fn response_trace(id: u64, view: &TraceOpView) -> String {
    let slowest: Vec<String> = view
        .slowest
        .iter()
        .map(|s| format!("{{\"trace_id\":{},\"total_ns\":{}}}", s.trace_id, s.total_ns))
        .collect();
    format!(
        "{{\"id\":{id},\"ok\":true,\"op\":\"trace\",\"requests\":{},\"parse_errors\":{},\
         \"solve_errors\":{},\"in_flight\":{},\"events\":{},\"uptime_ns\":{},\
         \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"slowest\":[{}]}}",
        view.requests,
        view.parse_errors,
        view.solve_errors,
        view.in_flight,
        view.events,
        view.uptime_ns,
        view.p50_ns,
        view.p95_ns,
        view.p99_ns,
        slowest.join(","),
    )
}

/// Error response; `id` is `null` when the request's id could not even
/// be parsed.
#[must_use]
pub fn response_error(id: Option<u64>, message: &str) -> String {
    let id = id.map_or_else(|| "null".to_string(), |n| n.to_string());
    format!("{{\"id\":{id},\"ok\":false,\"error\":{}}}", json_escape(message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_shorthand_fills_line_and_driver() {
        let req = parse_request(r#"{"id":7,"op":"optimum","node":"100nm","l_nh_mm":1.8}"#)
            .expect("valid request");
        let Request::Query(q) = req else { panic!("not a query") };
        let node = TechNode::nm100();
        assert_eq!(q.id, 7);
        assert_eq!(q.op, Op::Optimum);
        assert_eq!(q.line.resistance(), node.line().resistance);
        assert_eq!(q.line.capacitance(), node.line().capacitance);
        assert!((q.line.inductance().to_nano_per_milli() - 1.8).abs() < 1e-12);
        assert_eq!(q.driver, node.driver());
        assert!((q.options.threshold - 0.5).abs() < 1e-15);
        assert_eq!(q.length, None);
    }

    #[test]
    fn raw_fields_override_node_defaults() {
        let req = parse_request(
            r#"{"id":1,"op":"lcrit","node":"250nm","l_nh_mm":1.0,"rs_ohm":5000.0,"threshold":0.9}"#,
        )
        .expect("valid request");
        let Request::Query(q) = req else { panic!("not a query") };
        assert!((q.driver.output_resistance.get() - 5000.0).abs() < 1e-9);
        assert_eq!(
            q.driver.parasitic_capacitance,
            TechNode::nm250().driver().parasitic_capacitance
        );
        assert!((q.options.threshold - 0.9).abs() < 1e-15);
    }

    #[test]
    fn route_delay_requires_a_length_and_converts_mm() {
        let err = parse_request(r#"{"id":1,"op":"route_delay","node":"100nm","l_nh_mm":1.8}"#)
            .unwrap_err();
        assert!(err.contains("length"), "{err}");
        let req = parse_request(
            r#"{"id":1,"op":"route_delay","node":"100nm","l_nh_mm":1.8,"length_mm":30}"#,
        )
        .expect("valid request");
        let Request::Query(q) = req else { panic!("not a query") };
        assert!((q.length.unwrap().get() - 0.03).abs() < 1e-15);
    }

    #[test]
    fn invalid_inputs_are_rejected_not_panicked() {
        for (line, needle) in [
            ("", "object"),
            ("{}", "id"),
            (r#"{"id":1}"#, "op"),
            (r#"{"id":1,"op":"bogus"}"#, "unknown op"),
            (r#"{"id":1,"op":"optimum"}"#, "node"),
            (r#"{"id":1,"op":"optimum","node":"7nm","l_nh_mm":1}"#, "unknown node"),
            (r#"{"id":1,"op":"optimum","node":"100nm"}"#, "inductance"),
            (r#"{"id":1,"op":"optimum","node":"100nm","l_nh_mm":-1}"#, ">= 0"),
            (r#"{"id":1,"op":"optimum","node":"100nm","l_nh_mm":1,"threshold":1.5}"#, "threshold"),
            (r#"{"id":1,"op":"optimum","node":"100nm","l_nh_mm":1,"r_ohm_per_m":0}"#, "> 0"),
            (r#"{"id":-3,"op":"optimum","node":"100nm","l_nh_mm":1}"#, "id"),
            (r#"{"id":1,"id":2,"op":"stats"}"#, "duplicate"),
            (r#"{"id":1,"op":"stats","x":{"nested":1}}"#, "nested"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(
                err.to_lowercase().contains(&needle.to_lowercase()),
                "{line}: expected {needle:?} in {err:?}"
            );
        }
    }

    #[test]
    fn stats_parses_and_ids_survive_parse_failures() {
        assert_eq!(
            parse_request(r#"{"id":9,"op":"stats"}"#).unwrap(),
            Request::Stats { id: 9 }
        );
        assert_eq!(
            parse_request(r#"{"id":11,"op":"trace"}"#).unwrap(),
            Request::Trace { id: 11 }
        );
        assert_eq!(request_id_of(r#"{"id":4,"op":"bogus"}"#), Some(4));
        assert_eq!(request_id_of("not json"), None);
    }

    #[test]
    fn responses_are_single_json_lines() {
        let err = response_error(Some(3), "bad \"field\"");
        assert_eq!(err, r#"{"id":3,"ok":false,"error":"bad \"field\""}"#);
        assert_eq!(
            response_error(None, "x"),
            r#"{"id":null,"ok":false,"error":"x"}"#
        );
        let stats = response_stats(
            1,
            &StatsView {
                entries: 2,
                workers: 4,
                hits: 10,
                misses: 3,
                evictions: 0,
                in_flight: 0,
                uptime_ns: 123,
                p50_ns: 512,
                p95_ns: 2048,
                p99_ns: 4096,
            },
        );
        assert_eq!(
            stats,
            "{\"id\":1,\"ok\":true,\"op\":\"stats\",\"entries\":2,\"workers\":4,\
             \"hits\":10,\"misses\":3,\"evictions\":0,\"in_flight\":0,\
             \"uptime_ns\":123,\"p50_ns\":512,\"p95_ns\":2048,\"p99_ns\":4096}"
        );
    }

    #[test]
    fn trace_response_carries_the_slowest_table() {
        let view = TraceOpView {
            requests: 9,
            parse_errors: 1,
            solve_errors: 0,
            in_flight: 2,
            events: 40,
            uptime_ns: 777,
            p50_ns: 100,
            p95_ns: 200,
            p99_ns: 300,
            slowest: vec![
                SlowRequest { trace_id: 5, total_ns: 9000 },
                SlowRequest { trace_id: 2, total_ns: 4000 },
            ],
        };
        assert_eq!(
            response_trace(7, &view),
            "{\"id\":7,\"ok\":true,\"op\":\"trace\",\"requests\":9,\"parse_errors\":1,\
             \"solve_errors\":0,\"in_flight\":2,\"events\":40,\"uptime_ns\":777,\
             \"p50_ns\":100,\"p95_ns\":200,\"p99_ns\":300,\
             \"slowest\":[{\"trace_id\":5,\"total_ns\":9000},{\"trace_id\":2,\"total_ns\":4000}]}"
        );
        // Empty slow log still renders a well-formed array.
        let empty = TraceOpView { slowest: Vec::new(), ..view };
        assert!(response_trace(7, &empty).contains("\"slowest\":[]}"));
    }

    #[test]
    fn op_codes_are_stable_and_distinct() {
        let ops = [Op::Optimum, Op::RouteDelay, Op::Lcrit, Op::Stats, Op::Trace];
        let codes: Vec<u64> = ops.iter().map(|o| o.code()).collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 4]);
        assert_eq!(Op::Trace.label(), "trace");
    }
}
