//! Daemon plumbing around the engine: the concurrent TCP accept loop,
//! the periodic metrics flusher, and the background re-warmer.
//!
//! # Concurrent connections
//!
//! [`serve_connections`] multiplexes any number of client connections
//! onto one [`Server`] (and therefore one shared pool and memo): each
//! accepted connection gets its own scoped session thread running
//! [`Server::serve`], bounded by [`TcpOptions::max_connections`] —
//! over-capacity connections are answered with a single clean
//! `"ok":false` line and closed, never silently dropped or queued
//! behind a stranger's session.
//!
//! Accept-side failures are **survivable by design**: a failed accept,
//! a peer that resets before its metadata can be read, or a socket
//! whose timeout cannot be armed is logged to stderr, tallied under
//! `serve.accept_errors`, and skipped — the daemon keeps serving
//! everyone else. (The pre-fix accept loop `?`-propagated each of
//! these out of `run()`, so one aborted handshake killed the daemon
//! for every client.)
//!
//! The loop is written against the small [`Connection`] trait rather
//! than [`std::net::TcpStream`] directly so the failure paths are unit
//! testable without real sockets.
//!
//! # Background threads
//!
//! [`Flusher`] ticks [`rlckit_trace::flush`] every period so a
//! long-lived daemon's counters reach the `RLCKIT_TRACE` sink without
//! waiting for exit — and flushes **one final time on drop**, so even
//! a session shorter than one period sinks its counters.
//! [`Rewarmer`] periodically re-solves missing warm-grid points (an
//! eviction under cold churn is repaired within one period, not at the
//! next reboot) and atomically refreshes the `--snapshot` file via
//! [`snapshot::save_atomic`].

use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use rlckit_trace::counter;

use crate::engine::{ServeSummary, Server};
use crate::protocol::response_error;
use crate::snapshot;

/// Default cap on simultaneously served connections
/// ([`TcpOptions::max_connections`]).
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// Accept-loop knobs of [`serve_connections`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpOptions {
    /// Read timeout armed on each accepted connection (`None` = never):
    /// an idle client is answered with a final `"ok":false` line and
    /// closed by the engine's clean-timeout path.
    pub idle_timeout: Option<Duration>,
    /// Simultaneously served connections beyond which a new arrival is
    /// answered with one `"ok":false` over-capacity line and closed.
    pub max_connections: usize,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            idle_timeout: None,
            max_connections: DEFAULT_MAX_CONNECTIONS,
        }
    }
}

/// One accepted client connection, as the accept loop sees it. The
/// trait exists so [`serve_connections`]' failure handling (bad peer
/// metadata, un-armable timeouts) is testable without real sockets;
/// [`std::net::TcpStream`] is the production implementation.
pub trait Connection: Send {
    /// The read half handed to the session (wrapped in a `BufReader`).
    type Reader: std::io::Read + Send;
    /// The write half handed to the session.
    type Writer: std::io::Write + Send;

    /// Peer name for logs — the step that can fail on a connection
    /// that was reset between accept and metadata read.
    fn peer(&self) -> std::io::Result<String>;

    /// Arms the read timeout (`None` clears it).
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;

    /// Splits into independently owned read and write halves.
    ///
    /// # Errors
    ///
    /// Propagates the platform's handle-duplication failure (for TCP,
    /// `try_clone`).
    fn split(self) -> std::io::Result<(Self::Reader, Self::Writer)>;
}

impl Connection for std::net::TcpStream {
    type Reader = std::net::TcpStream;
    type Writer = std::net::TcpStream;

    fn peer(&self) -> std::io::Result<String> {
        Ok(self.peer_addr()?.to_string())
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        std::net::TcpStream::set_read_timeout(self, timeout)
    }

    fn split(self) -> std::io::Result<(Self, Self)> {
        // Clones share the socket, so the reader half inherits the
        // timeout armed above.
        let reader = self.try_clone()?;
        Ok((reader, self))
    }
}

/// Decrements the active-connection gauge when a session thread exits,
/// however it exits.
struct ActiveGuard<'a>(&'a AtomicUsize);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Serves every connection yielded by `incoming` concurrently against
/// one shared `server`, until the iterator ends (a real
/// `TcpListener::incoming` never does; tests and drains do). Calls
/// `on_close(peer, result)` as each session finishes — logging and
/// event-draining live in the caller. Returns the number of
/// **accept-side** errors survived (failed accepts, unreadable peer
/// metadata, un-armable timeouts, failed splits), which are also
/// logged to stderr and counted under `serve.accept_errors`; none of
/// them terminates the loop.
pub fn serve_connections<C, I, F>(
    server: &Server,
    incoming: I,
    options: &TcpOptions,
    on_close: F,
) -> u64
where
    C: Connection,
    I: Iterator<Item = std::io::Result<C>>,
    F: Fn(&str, &std::io::Result<ServeSummary>) + Sync,
{
    let accept_errors = AtomicU64::new(0);
    let active = AtomicUsize::new(0);
    let survive = |stage: &str, e: std::io::Error| {
        eprintln!("rlckit-serve: accept error ({stage}): {e}");
        counter!("serve.accept_errors").incr();
        accept_errors.fetch_add(1, Ordering::SeqCst);
    };
    std::thread::scope(|scope| {
        for item in incoming {
            let conn = match item {
                Ok(conn) => conn,
                Err(e) => {
                    survive("accept", e);
                    continue;
                }
            };
            let peer = match conn.peer() {
                Ok(peer) => peer,
                Err(e) => {
                    survive("peer metadata", e);
                    continue;
                }
            };
            if options.idle_timeout.is_some() {
                if let Err(e) = conn.set_read_timeout(options.idle_timeout) {
                    survive("read timeout", e);
                    continue;
                }
            }
            let (reader, mut writer) = match conn.split() {
                Ok(halves) => halves,
                Err(e) => {
                    survive("split", e);
                    continue;
                }
            };
            // The gauge is incremented here, on the accept thread, so
            // the next arrival's capacity check already sees this
            // session — no window where k+1 sessions slip in.
            if active.load(Ordering::SeqCst) >= options.max_connections {
                counter!("serve.over_capacity").incr();
                let refusal = response_error(
                    None,
                    &format!(
                        "server at capacity ({} connections); retry later",
                        options.max_connections
                    ),
                );
                let _ = writeln!(writer, "{refusal}");
                let _ = writer.flush();
                continue;
            }
            active.fetch_add(1, Ordering::SeqCst);
            let active = &active;
            let on_close = &on_close;
            scope.spawn(move || {
                let _guard = ActiveGuard(active);
                let result = server.serve(BufReader::new(reader), writer);
                on_close(&peer, &result);
            });
        }
    });
    accept_errors.load(Ordering::SeqCst)
}

/// A periodic metrics flusher: ticks every period until dropped, then
/// flushes **one final time on the way out** — so a daemon session
/// shorter than one period still sinks its counters. (The pre-fix
/// version exited its loop on disconnect without that final flush,
/// contradicting its own doc.)
pub struct Flusher {
    stop: Option<mpsc::Sender<()>>,
    handle: Option<std::thread::JoinHandle<()>>,
    flush: Arc<dyn Fn() + Send + Sync>,
}

impl Flusher {
    /// Starts the background thread, flushing [`rlckit_trace::flush`]
    /// every `secs` seconds.
    #[must_use]
    pub fn start(secs: u64) -> Self {
        Self::with_flush(Duration::from_secs(secs), Arc::new(rlckit_trace::flush))
    }

    /// Test seam: same lifecycle, caller-supplied flush action.
    fn with_flush(period: Duration, flush: Arc<dyn Fn() + Send + Sync>) -> Self {
        let (stop, tick) = mpsc::channel::<()>();
        let handle = {
            let flush = Arc::clone(&flush);
            std::thread::spawn(move || {
                while let Err(mpsc::RecvTimeoutError::Timeout) = tick.recv_timeout(period) {
                    flush();
                }
            })
        };
        Self {
            stop: Some(stop),
            handle: Some(handle),
            flush,
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        drop(self.stop.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        // The final flush the doc promises, after the thread is gone so
        // nothing can race it.
        (self.flush)();
    }
}

/// A background re-warmer: every period, re-solves warm-grid points
/// missing from the server's memo (repairing evictions while the
/// daemon is live) and — when a snapshot path is configured —
/// atomically refreshes the snapshot file so the next boot, or a
/// sibling daemon, warm-starts from the freshest state. Stops (and
/// joins) on drop. Newly re-solved points are counted under
/// `serve.rewarm_solved`.
pub struct Rewarmer {
    stop: Option<mpsc::Sender<()>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Rewarmer {
    /// Starts the re-warm thread: every `period`, re-solve missing
    /// points of the `points`-per-node warm grid and refresh
    /// `snapshot_path` (if any) via [`snapshot::save_atomic`].
    #[must_use]
    pub fn start(
        server: Arc<Server>,
        period: Duration,
        points: usize,
        snapshot_path: Option<PathBuf>,
    ) -> Self {
        let (stop, tick) = mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            while let Err(mpsc::RecvTimeoutError::Timeout) = tick.recv_timeout(period) {
                let solved = server.warm_grid(points);
                if solved > 0 {
                    counter!("serve.rewarm_solved").add(solved as u64);
                    eprintln!(
                        "rlckit-serve: re-warmer solved {solved} missing grid points ({} total)",
                        server.memo().len()
                    );
                }
                if let Some(path) = &snapshot_path {
                    // Refresh even when nothing was re-solved: entries
                    // added by live traffic reach the snapshot too.
                    match snapshot::save_atomic(path, server.memo()) {
                        Ok(written) => {
                            if solved > 0 {
                                eprintln!(
                                    "rlckit-serve: re-warmer refreshed {} ({written} entries)",
                                    path.display()
                                );
                            }
                        }
                        Err(e) => eprintln!(
                            "rlckit-serve: re-warmer snapshot refresh of {} failed: {e}",
                            path.display()
                        ),
                    }
                }
            }
        });
        Self {
            stop: Some(stop),
            handle: Some(handle),
        }
    }
}

impl Drop for Rewarmer {
    fn drop(&mut self) {
        drop(self.stop.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use std::sync::Mutex;

    /// An in-memory [`Connection`] whose reader is an mpsc byte feed
    /// (blocking until fed or EOF'd) and whose writer is shared with
    /// the test. Failure injection per accept stage.
    struct TestConn {
        input: mpsc::Receiver<Vec<u8>>,
        output: Arc<Mutex<Vec<u8>>>,
        fail_peer: bool,
        fail_split: bool,
    }

    type Feed = mpsc::Sender<Vec<u8>>;
    type Output = Arc<Mutex<Vec<u8>>>;

    fn test_conn(fail_peer: bool, fail_split: bool) -> (TestConn, Feed, Output) {
        let (feed, input) = mpsc::channel();
        let output = Arc::new(Mutex::new(Vec::new()));
        let conn = TestConn {
            input,
            output: Arc::clone(&output),
            fail_peer,
            fail_split,
        };
        (conn, feed, output)
    }

    struct ChannelReader {
        input: mpsc::Receiver<Vec<u8>>,
        buffered: Vec<u8>,
    }

    impl std::io::Read for ChannelReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.buffered.is_empty() {
                match self.input.recv() {
                    Ok(bytes) => self.buffered = bytes,
                    Err(_) => return Ok(0), // feed dropped = EOF
                }
            }
            let n = buf.len().min(self.buffered.len());
            buf[..n].copy_from_slice(&self.buffered[..n]);
            self.buffered.drain(..n);
            Ok(n)
        }
    }

    struct SharedWriter(Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for SharedWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Connection for TestConn {
        type Reader = ChannelReader;
        type Writer = SharedWriter;

        fn peer(&self) -> std::io::Result<String> {
            if self.fail_peer {
                return Err(std::io::ErrorKind::ConnectionReset.into());
            }
            Ok("test-peer".to_string())
        }

        fn set_read_timeout(&self, _timeout: Option<Duration>) -> std::io::Result<()> {
            Ok(())
        }

        fn split(self) -> std::io::Result<(ChannelReader, SharedWriter)> {
            if self.fail_split {
                return Err(std::io::ErrorKind::Other.into());
            }
            Ok((
                ChannelReader {
                    input: self.input,
                    buffered: Vec::new(),
                },
                SharedWriter(self.output),
            ))
        }
    }

    const ASK: &[u8] = b"{\"id\":1,\"op\":\"optimum\",\"node\":\"100nm\",\"l_nh_mm\":1.8}\n";

    /// Pre-fix regression (the daemon-killer): an accept error, a peer
    /// whose metadata read fails, and a failed split each used to
    /// `?`-propagate out of the accept loop, terminating the daemon for
    /// every other client. Now each is logged, counted, and skipped —
    /// and the well-behaved client behind them is still served.
    #[test]
    fn accept_errors_are_survived_and_the_next_client_is_served() {
        rlckit_trace::set_enabled(true);
        let server = Server::new(ServeConfig::default());
        let before = rlckit_trace::snapshot();
        let (bad_peer, _feed1, _out1) = test_conn(true, false);
        let (bad_split, _feed2, _out2) = test_conn(false, true);
        let (good, feed, out) = test_conn(false, false);
        feed.send(ASK.to_vec()).unwrap();
        drop(feed); // EOF after the one request
        let closed = Mutex::new(Vec::new());
        let incoming = vec![
            Err(std::io::ErrorKind::ConnectionAborted.into()),
            Ok(bad_peer),
            Ok(bad_split),
            Ok(good),
        ];
        let survived = serve_connections(
            &server,
            incoming.into_iter(),
            &TcpOptions::default(),
            |peer, result| {
                closed
                    .lock()
                    .unwrap()
                    .push((peer.to_string(), result.as_ref().unwrap().requests));
            },
        );
        assert_eq!(survived, 3, "accept, peer, and split errors all survive");
        let delta = rlckit_trace::snapshot().since(&before);
        assert_eq!(delta.counter("serve.accept_errors"), 3);
        let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"id\":1,\"ok\":true"), "good client served: {text}");
        assert_eq!(*closed.lock().unwrap(), vec![("test-peer".to_string(), 1)]);
    }

    /// Capacity bound: with one slot occupied by a live session, the
    /// next arrival gets a clean `"ok":false` refusal naming the limit
    /// — and the occupied session is unaffected.
    #[test]
    fn over_capacity_connections_get_a_clean_refusal() {
        let server = Server::new(ServeConfig::default());
        let options = TcpOptions {
            idle_timeout: None,
            max_connections: 1,
        };
        let (occupant, occupant_feed, occupant_out) = test_conn(false, false);
        let (refused, _refused_feed, refused_out) = test_conn(false, false);
        occupant_feed.send(ASK.to_vec()).unwrap();
        // The incoming iterator releases the occupant's EOF only after
        // the refused connection has been processed, making the
        // capacity collision deterministic.
        let mut occupant = Some(occupant);
        let mut refused = Some(refused);
        let mut occupant_feed = Some(occupant_feed);
        let mut stage = 0;
        let incoming = std::iter::from_fn(move || {
            stage += 1;
            match stage {
                1 => Some(Ok(occupant.take().unwrap())),
                2 => Some(Ok(refused.take().unwrap())),
                _ => {
                    drop(occupant_feed.take()); // EOF the occupant
                    None
                }
            }
        });
        let survived = serve_connections(&server, incoming, &options, |_, _| {});
        assert_eq!(survived, 0, "a refusal is not an accept error");
        let refused_text = String::from_utf8(refused_out.lock().unwrap().clone()).unwrap();
        assert!(refused_text.contains("\"ok\":false"), "{refused_text}");
        assert!(refused_text.contains("at capacity (1 connections)"), "{refused_text}");
        let occupant_text = String::from_utf8(occupant_out.lock().unwrap().clone()).unwrap();
        assert!(
            occupant_text.contains("\"id\":1,\"ok\":true"),
            "the occupant's session must complete normally: {occupant_text}"
        );
    }

    /// Pre-fix regression: the flusher's doc promised a final flush on
    /// the way out, but the loop exited on disconnect without one — a
    /// session shorter than one period sank nothing.
    #[test]
    fn flusher_flushes_on_drop_even_within_the_first_period() {
        let flushes = Arc::new(AtomicUsize::new(0));
        let count = Arc::clone(&flushes);
        let flusher = Flusher::with_flush(
            Duration::from_secs(3600),
            Arc::new(move || {
                count.fetch_add(1, Ordering::SeqCst);
            }),
        );
        drop(flusher); // well inside the first period
        assert!(
            flushes.load(Ordering::SeqCst) >= 1,
            "a sub-period session must still sink its counters"
        );
    }

    #[test]
    fn rewarmer_resolves_missing_points_and_atomically_refreshes_the_snapshot() {
        let dir = std::env::temp_dir().join(format!("rlckit-rewarm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rewarm.snap");
        let _ = std::fs::remove_file(&path);
        let server = Arc::new(Server::new(ServeConfig::default()));
        assert_eq!(server.memo().len(), 0, "cold boot");
        let rewarmer = Rewarmer::start(
            Arc::clone(&server),
            Duration::from_millis(20),
            1,
            Some(path.clone()),
        );
        // One point per node = 3 entries; wait for the re-warmer to
        // repair the cold memo and write the snapshot.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while (server.memo().len() < 3 || !path.exists())
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(rewarmer);
        assert_eq!(server.memo().len(), 3, "one grid point per node");
        // The refreshed snapshot is complete and loadable (rename was
        // atomic: no torn half-file, no lingering tmp sibling).
        let fresh = rlckit::memo::OptimumMemo::sharded(2, 64);
        match snapshot::load(&path, &fresh).unwrap() {
            snapshot::LoadOutcome::Loaded(n) => assert_eq!(n, 3),
            other => panic!("snapshot must load cleanly, got {other:?}"),
        }
        assert!(!path.with_extension("tmp").exists(), "tmp sibling must be renamed away");
    }
}
