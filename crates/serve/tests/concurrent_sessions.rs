//! Concurrent-session determinism suite: N client sessions against one
//! live [`Server`], each replaying a seeded mix.
//!
//! The tentpole contract under test: every session's response stream
//! is **byte-identical (modulo `*_ns` fields) to a solo replay of the
//! same mix against the same warm memo**, even while the sessions run
//! simultaneously over the one shared pool — plus cross-connection
//! memo warming and per-session `stats` barrier correctness.

use rlckit_serve::{ServeConfig, Server};

/// Deterministic splitmix64 — the seed fully determines each mix.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const NODES: [&str; 3] = ["250nm", "100nm", "100nm_eps33"];

/// The daemon's 5-point warm grid in nH/mm: `4.95 * i / 4`.
fn grid_l(i: usize) -> f64 {
    4.95 * i as f64 / 4.0
}

/// A seeded mix of `n` requests over **on-grid keys only** (every
/// query hits a 5-point warm grid), with a `stats` barrier roughly
/// every sixth request. On-grid keys keep the shared memo's entry
/// count constant, which is what makes even the stats lines
/// solo-replayable under concurrency.
fn hot_mix(seed: u64, n: usize) -> String {
    let mut state = seed;
    let mut out = String::new();
    for id in 1..=n {
        let r = splitmix64(&mut state);
        if id % 6 == 0 {
            out.push_str(&format!("{{\"id\":{id},\"op\":\"stats\"}}\n"));
            continue;
        }
        let node = NODES[(r % 3) as usize];
        let l = grid_l(((r >> 8) % 5) as usize);
        match (r >> 16) % 3 {
            0 => out.push_str(&format!(
                "{{\"id\":{id},\"op\":\"optimum\",\"node\":\"{node}\",\"l_nh_mm\":{l}}}\n"
            )),
            1 => out.push_str(&format!(
                "{{\"id\":{id},\"op\":\"lcrit\",\"node\":\"{node}\",\"l_nh_mm\":{l}}}\n"
            )),
            _ => out.push_str(&format!(
                "{{\"id\":{id},\"op\":\"route_delay\",\"node\":\"{node}\",\"l_nh_mm\":{l},\
                 \"length_mm\":{}}}\n",
                5 + (r >> 24) % 40
            )),
        }
    }
    out
}

fn run_session(server: &Server, input: &str) -> (String, rlckit_serve::ServeSummary) {
    let mut out = Vec::new();
    let summary = server.serve(input.as_bytes(), &mut out).unwrap();
    (String::from_utf8(out).unwrap(), summary)
}

/// Removes every `"<key>_ns":<digits>` field (and a trailing comma) —
/// the documented wall-clock escape hatch of the byte-identity
/// contract.
fn strip_ns_fields(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        let mut s = line.to_string();
        while let Some(found) = s.find("_ns\":") {
            let key_start = s[..found].rfind('"').unwrap_or(0);
            let mut end = found + "_ns\":".len();
            while s.as_bytes().get(end).is_some_and(u8::is_ascii_digit) {
                end += 1;
            }
            if s.as_bytes().get(end) == Some(&b',') {
                end += 1;
            }
            s.replace_range(key_start..end, "");
        }
        out.push_str(&s);
        out.push('\n');
    }
    out
}

/// The tentpole acceptance check, in-process: four sessions replay
/// seeded hot mixes *simultaneously* against one warm server, and each
/// session's stream — responses **and** barrier-drained stats lines —
/// is byte-identical (modulo `*_ns`) to replaying it alone against an
/// identically warmed server.
#[test]
fn concurrent_sessions_match_their_solo_replays_byte_for_byte() {
    let mixes: Vec<String> = (0..4).map(|i| hot_mix(0xC0FFEE + i, 30)).collect();

    let shared = Server::new(ServeConfig::default());
    assert_eq!(shared.warm_grid(5), 15);
    let concurrent: Vec<(String, rlckit_serve::ServeSummary)> = std::thread::scope(|scope| {
        let handles: Vec<_> = mixes
            .iter()
            .map(|mix| scope.spawn(|| run_session(&shared, mix)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (mix, (out, summary)) in mixes.iter().zip(&concurrent) {
        // Solo replay on a fresh, identically warmed server.
        let solo_server = Server::new(ServeConfig::default());
        solo_server.warm_grid(5);
        let (solo_out, solo_summary) = run_session(&solo_server, mix);
        assert_eq!(
            strip_ns_fields(out),
            strip_ns_fields(&solo_out),
            "a concurrent session must be byte-identical to its solo replay"
        );
        assert_eq!(*summary, solo_summary);
        // Hot mix on a warm grid: every query is a hit, nothing solves.
        assert_eq!(summary.misses, 0);
        assert_eq!(summary.errors, 0);
        // Per-connection response order: ids come back 1..=n.
        for (i, line) in out.lines().enumerate() {
            let expect = format!("{{\"id\":{},", i + 1);
            assert!(line.starts_with(&expect), "out of order at line {i}: {line}");
        }
    }
}

/// Cross-connection warming: a key solved by one connection is a memo
/// hit for every later connection — and when two connections race on
/// the *same* cold key, the pinned shard worker serializes them so
/// exactly one solve happens in total.
#[test]
fn keys_solved_on_one_connection_hit_on_the_next() {
    let server = Server::new(ServeConfig::default());
    // Off-grid key: nothing pre-warmed.
    let ask = "{\"id\":1,\"op\":\"optimum\",\"node\":\"100nm\",\"l_nh_mm\":3.1415}\n\
               {\"id\":2,\"op\":\"optimum\",\"node\":\"100nm\",\"l_nh_mm\":3.1415}\n";
    let (a, b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| run_session(&server, ask).1);
        let b = scope.spawn(|| run_session(&server, ask).1);
        (a.join().unwrap(), b.join().unwrap())
    });
    // The two racing sessions asked the same key four times in total:
    // the shard worker serialized them, so exactly one ask solved.
    assert_eq!(a.misses + b.misses, 1, "{a:?} {b:?}");
    assert_eq!(a.hits + b.hits, 3, "{a:?} {b:?}");
    // A third connection, after both: pure hits.
    let (out, summary) = run_session(&server, ask);
    assert_eq!(summary.hits, 2);
    assert_eq!(summary.misses, 0);
    assert!(out.lines().all(|l| l.contains("\"source\":\"memo\"")), "{out}");
}

/// `stats` is a per-session barrier: each session's stats lines report
/// exactly that session's preceding prefix (its own hits/misses, zero
/// in flight), no matter how many sibling sessions are hammering the
/// same pool at that moment.
#[test]
fn stats_barriers_stay_session_scoped_under_concurrency() {
    let server = Server::new(ServeConfig::default());
    assert_eq!(server.warm_grid(5), 15);
    // Each session: 2 distinct on-grid queries, stats, 2 more, stats.
    let session_input = |node: &str| {
        format!(
            "{{\"id\":1,\"op\":\"optimum\",\"node\":\"{node}\",\"l_nh_mm\":{}}}\n\
             {{\"id\":2,\"op\":\"optimum\",\"node\":\"{node}\",\"l_nh_mm\":{}}}\n\
             {{\"id\":3,\"op\":\"stats\"}}\n\
             {{\"id\":4,\"op\":\"lcrit\",\"node\":\"{node}\",\"l_nh_mm\":{}}}\n\
             {{\"id\":5,\"op\":\"stats\"}}\n",
            grid_l(0),
            grid_l(1),
            grid_l(2),
        )
    };
    let outputs: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = NODES
            .iter()
            .map(|node| {
                let input = session_input(node);
                let server = &server;
                scope.spawn(move || run_session(server, &input).0)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for out in &outputs {
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5, "{out}");
        // First barrier: exactly this session's 2 preceding hits.
        assert!(lines[2].contains("\"hits\":2,\"misses\":0"), "{}", lines[2]);
        assert!(lines[2].contains("\"in_flight\":0"), "{}", lines[2]);
        // Second barrier: 3 preceding hits — unmoved by the siblings'
        // concurrent traffic (their hits land in their own stats).
        assert!(lines[4].contains("\"hits\":3,\"misses\":0"), "{}", lines[4]);
        assert!(lines[4].contains("\"in_flight\":0"), "{}", lines[4]);
        // The shared memo stayed at the warm-grid 15 throughout.
        assert!(lines[2].contains("\"entries\":15"), "{}", lines[2]);
        assert!(lines[4].contains("\"entries\":15"), "{}", lines[4]);
    }
}
