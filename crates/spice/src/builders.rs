//! Circuit builders for the structures the paper simulates.

use rlckit_tech::device::MosParams;
use rlckit_tech::TechNode;
use rlckit_units::Meters;

use crate::netlist::{Circuit, ElementId, MosPolarity, Node};
use crate::waveform::Waveform;

/// Per-unit-length line parameters accepted by the ladder builder.
///
/// (Kept local so the simulator substrate does not depend on the
/// transmission-line crate; the core crate converts.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderLine {
    /// Resistance per metre (Ω/m).
    pub r_per_m: f64,
    /// Inductance per metre (H/m, may be 0).
    pub l_per_m: f64,
    /// Capacitance per metre (F/m).
    pub c_per_m: f64,
}

/// Handles into an instantiated RLC ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct Ladder {
    /// The series inductor of each section (current probes).
    pub inductors: Vec<ElementId>,
    /// The interior nodes, from the driven end to the load end
    /// (`segments − 1` of them).
    pub interior_nodes: Vec<Node>,
}

/// Instantiates a uniform RLC line as `segments` L-sections with
/// half-capacitors at both ends (an overall π structure, second-order
/// accurate in the section count).
///
/// Each section carries `r·Δx` in series with `l·Δx` (the inductor is
/// present even at `l = 0`, giving a current probe), and shunt
/// capacitance `c·Δx` split between its end nodes.
///
/// # Panics
///
/// Panics if `segments == 0` or the line length is not positive.
pub fn rlc_ladder(
    circuit: &mut Circuit,
    from: Node,
    to: Node,
    line: LadderLine,
    length: Meters,
    segments: usize,
) -> Ladder {
    assert!(segments > 0, "need at least one ladder segment");
    let h = length.get();
    assert!(h > 0.0, "line length must be positive");
    let dx = h / segments as f64;
    let r_seg = line.r_per_m * dx;
    let l_seg = line.l_per_m * dx;
    let c_seg = line.c_per_m * dx;

    let mut inductors = Vec::with_capacity(segments);
    let mut interior_nodes = Vec::with_capacity(segments.saturating_sub(1));

    // Half-cap at the driven end.
    circuit.capacitor(from, Circuit::GROUND, c_seg / 2.0);
    let mut prev = from;
    for seg in 0..segments {
        let next = if seg + 1 == segments {
            to
        } else {
            let n = circuit.add_node(format!("ladder{}", seg + 1));
            interior_nodes.push(n);
            n
        };
        let mid = circuit.add_node(format!("ladder{}rl", seg + 1));
        circuit.resistor(prev, mid, r_seg);
        inductors.push(circuit.inductor(mid, next, l_seg));
        // Full shunt cap at interior nodes, half at the final node.
        let shunt = if seg + 1 == segments { c_seg / 2.0 } else { c_seg };
        circuit.capacitor(next, Circuit::GROUND, shunt);
        prev = next;
    }

    Ladder {
        inductors,
        interior_nodes,
    }
}

/// Saturation current of the drain-junction clamp diodes of a
/// minimum-sized inverter, in amperes. Scaled by the inverter size.
const CLAMP_DIODE_IS: f64 = 1e-16;

/// Handles into an instantiated inverter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inverter {
    /// The NMOS pull-down device.
    pub nmos: ElementId,
    /// The PMOS pull-up device.
    pub pmos: ElementId,
}

/// Instantiates a `size`-times-minimum CMOS inverter with its linearized
/// parasitics — gate capacitance `c₀·k` on the input, drain parasitic
/// `c_p·k` on the output — and the drain-junction clamp diodes (output to
/// both rails) that bound ringing excursions the way real devices do.
///
/// # Panics
///
/// Panics if `size` is not strictly positive.
pub fn inverter(
    circuit: &mut Circuit,
    input: Node,
    output: Node,
    vdd: Node,
    params: MosParams,
    size: f64,
) -> Inverter {
    assert!(size > 0.0, "inverter size must be positive");
    let nmos = circuit.mosfet(output, input, Circuit::GROUND, params, size, MosPolarity::Nmos);
    let pmos = circuit.mosfet(output, input, vdd, params, size, MosPolarity::Pmos);
    circuit.capacitor(input, Circuit::GROUND, params.gate_capacitance().get() * size);
    circuit.capacitor(
        output,
        Circuit::GROUND,
        params.drain_capacitance().get() * size,
    );
    // Drain junction diodes: substrate→output and output→well.
    circuit.diode(Circuit::GROUND, output, CLAMP_DIODE_IS * size, 1.0);
    circuit.diode(output, vdd, CLAMP_DIODE_IS * size, 1.0);
    Inverter { nmos, pmos }
}

/// A fully built ring oscillator (paper §3.3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct RingOscillator {
    /// The circuit itself.
    pub circuit: Circuit,
    /// Supply node.
    pub vdd: Node,
    /// Stage inputs: `stage_inputs[i]` is the input of inverter `i`
    /// (= the far end of the previous stage's line).
    pub stage_inputs: Vec<Node>,
    /// Stage outputs (driver side of each line).
    pub stage_outputs: Vec<Node>,
    /// Line current probes: first-section series inductor of each stage.
    pub line_probes: Vec<ElementId>,
}

/// Builds an `n_stages` ring oscillator in which every stage is a
/// `size`-times-minimum inverter driving a distributed line of the given
/// length, exactly the structure of the paper's Fig. 9–12 study.
///
/// # Panics
///
/// Panics unless `n_stages` is odd and ≥ 3 and `segments > 0`.
#[must_use]
pub fn ring_oscillator(
    node: &TechNode,
    inductance_per_m: f64,
    size: f64,
    line_length: Meters,
    n_stages: usize,
    segments: usize,
) -> RingOscillator {
    assert!(
        n_stages >= 3 && n_stages % 2 == 1,
        "a ring oscillator needs an odd stage count ≥ 3"
    );
    let params = MosParams::for_node(node);
    let vdd_value = node.supply_voltage().get();
    let line = LadderLine {
        r_per_m: node.line().resistance.get(),
        l_per_m: inductance_per_m,
        c_per_m: node.line().capacitance.get(),
    };

    let mut circuit = Circuit::new();
    let vdd = circuit.add_node("vdd");
    circuit.voltage_source(vdd, Circuit::GROUND, Waveform::Dc(vdd_value));

    let inputs: Vec<Node> = (0..n_stages)
        .map(|i| circuit.add_node(format!("in{i}")))
        .collect();
    let outputs: Vec<Node> = (0..n_stages)
        .map(|i| circuit.add_node(format!("out{i}")))
        .collect();

    let mut probes = Vec::with_capacity(n_stages);
    for i in 0..n_stages {
        inverter(&mut circuit, inputs[i], outputs[i], vdd, params, size);
        let ladder = rlc_ladder(
            &mut circuit,
            outputs[i],
            inputs[(i + 1) % n_stages],
            line,
            line_length,
            segments,
        );
        probes.push(ladder.inductors[0]);
    }

    RingOscillator {
        circuit,
        vdd,
        stage_inputs: inputs,
        stage_outputs: outputs,
        line_probes: probes,
    }
}

/// A buffered line driven by an external square wave — the paper's
/// cross-check that the false-switching phenomenon is not a
/// ring-oscillator artifact (§3.3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct BufferedLine {
    /// The circuit itself.
    pub circuit: Circuit,
    /// The square-wave source node.
    pub source: Node,
    /// Repeater inputs along the chain (`n_stages + 1` nodes: the input
    /// of each repeater and the final receiver input).
    pub taps: Vec<Node>,
    /// First-section line current probes, one per stage.
    pub line_probes: Vec<ElementId>,
}

/// Builds a chain of `n_stages` repeaters each driving a line segment,
/// excited by a square wave of the given period and terminated by an
/// identical receiver.
///
/// # Panics
///
/// Panics unless `n_stages ≥ 1` and `segments > 0`.
#[must_use]
pub fn buffered_line(
    node: &TechNode,
    inductance_per_m: f64,
    size: f64,
    line_length: Meters,
    n_stages: usize,
    segments: usize,
    period: f64,
) -> BufferedLine {
    assert!(n_stages >= 1, "need at least one stage");
    let params = MosParams::for_node(node);
    let vdd_value = node.supply_voltage().get();
    let line = LadderLine {
        r_per_m: node.line().resistance.get(),
        l_per_m: inductance_per_m,
        c_per_m: node.line().capacitance.get(),
    };

    let mut circuit = Circuit::new();
    let vdd = circuit.add_node("vdd");
    circuit.voltage_source(vdd, Circuit::GROUND, Waveform::Dc(vdd_value));
    let source = circuit.add_node("src");
    let edge = period / 50.0;
    circuit.voltage_source(
        source,
        Circuit::GROUND,
        Waveform::pulse(
            0.0,
            vdd_value,
            0.0,
            edge,
            edge,
            period / 2.0 - edge,
            period,
        ),
    );

    let mut taps = vec![source];
    let mut probes = Vec::with_capacity(n_stages);
    let mut prev = source;
    for i in 0..n_stages {
        let out = circuit.add_node(format!("buf{i}"));
        inverter(&mut circuit, prev, out, vdd, params, size);
        let next = circuit.add_node(format!("tap{}", i + 1));
        let ladder = rlc_ladder(&mut circuit, out, next, line, line_length, segments);
        probes.push(ladder.inductors[0]);
        taps.push(next);
        prev = next;
    }
    // Identical receiving repeater as the far-end load.
    let sink = circuit.add_node("sink");
    inverter(&mut circuit, prev, sink, vdd, params, size);

    BufferedLine {
        circuit,
        source,
        taps,
        line_probes: probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::{simulate, TransientOptions};
    use rlckit_units::Meters;

    #[test]
    fn ladder_structure_counts() {
        let mut ckt = Circuit::new();
        let a = ckt.add_node("a");
        let b = ckt.add_node("b");
        let line = LadderLine {
            r_per_m: 4400.0,
            l_per_m: 1e-6,
            c_per_m: 203.5e-12,
        };
        let ladder = rlc_ladder(&mut ckt, a, b, line, Meters::from_milli(10.0), 8);
        assert_eq!(ladder.inductors.len(), 8);
        assert_eq!(ladder.interior_nodes.len(), 7);
        // 8 R + 8 L + 9 caps (driven-end half + 7 interior + far-end half).
        assert_eq!(ckt.elements().len(), 8 + 8 + 9);
    }

    #[test]
    fn ladder_total_resistance_matches_line() {
        // DC through the ladder sees exactly r·h.
        let mut ckt = Circuit::new();
        let a = ckt.add_node("a");
        let b = ckt.add_node("b");
        ckt.voltage_source(a, Circuit::GROUND, Waveform::Dc(1.0));
        let line = LadderLine {
            r_per_m: 4400.0,
            l_per_m: 1e-6,
            c_per_m: 203.5e-12,
        };
        rlc_ladder(&mut ckt, a, b, line, Meters::from_milli(10.0), 16);
        ckt.resistor(b, Circuit::GROUND, 44.0); // matches r·h = 44 Ω
        let op = crate::dc::operating_point(&ckt).unwrap();
        assert!((op.voltage(b) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ladder_delay_approaches_elmore_prediction() {
        // Drive a 14.4 mm RC-dominated line through R_S and check the 50 %
        // delay against the two-pole model's prediction within ~10 %.
        let k = 578.0;
        let rs = 11_784.0 / k;
        let cp = 6.2474e-15 * k;
        let cl = 1.6314e-15 * k;
        let line = LadderLine {
            r_per_m: 4400.0,
            l_per_m: 0.0,
            c_per_m: 203.5e-12,
        };
        let mut ckt = Circuit::new();
        let src = ckt.add_node("src");
        let drv = ckt.add_node("drv");
        let far = ckt.add_node("far");
        ckt.voltage_source(src, Circuit::GROUND, Waveform::step(0.0, 1.0, 10e-12, 1e-12));
        ckt.resistor(src, drv, rs);
        ckt.capacitor(drv, Circuit::GROUND, cp);
        rlc_ladder(&mut ckt, drv, far, line, Meters::from_milli(14.4), 24);
        ckt.capacitor(far, Circuit::GROUND, cl);
        let res = simulate(&ckt, &TransientOptions::new(2.5e-9, 1e-12)).unwrap();
        let d = crate::measure::delay_between(
            res.times(),
            res.voltage(src),
            res.voltage(far),
            0.5,
            crate::measure::Edge::Rising,
            crate::measure::Edge::Rising,
        )
        .unwrap();
        // Two-pole prediction for this exact structure (from the tline
        // crate's formulas, evaluated here numerically): b1, b2.
        let (r, c, h) = (4400.0, 203.5e-12, 0.0144);
        let b1 = rs * (cp + cl) + r * c * h * h / 2.0 + rs * c * h + cl * r * h;
        // Fully RC: delay should sit in the Elmore neighbourhood.
        assert!(
            d > 0.5 * b1 && d < 1.1 * b1,
            "delay {d:e} vs b1 {b1:e}"
        );
    }

    #[test]
    fn ring_oscillator_builds_consistently() {
        let node = rlckit_tech::TechNode::nm100();
        let ro = ring_oscillator(&node, 1.8e-6, 50.0, Meters::from_milli(11.1), 5, 6);
        assert_eq!(ro.stage_inputs.len(), 5);
        assert_eq!(ro.stage_outputs.len(), 5);
        assert_eq!(ro.line_probes.len(), 5);
        crate::dc::sanity_check(&ro.circuit).unwrap();
    }

    #[test]
    fn buffered_line_builds_consistently() {
        let node = rlckit_tech::TechNode::nm100();
        let bl = buffered_line(&node, 1.8e-6, 50.0, Meters::from_milli(11.1), 3, 6, 4e-9);
        assert_eq!(bl.taps.len(), 4);
        assert_eq!(bl.line_probes.len(), 3);
        crate::dc::sanity_check(&bl.circuit).unwrap();
    }
}
